//! Quickstart: build the paper's Figure 1 network, send a message, and
//! inspect the outcome.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use metro_sim::{NetworkSim, SimConfig};
use metro_topo::MultibutterflySpec;

fn main() {
    // The 16-endpoint multipath network of Figure 1: three stages of
    // 4-port routers, dilation 2/2/1, two network ports per endpoint.
    let spec = MultibutterflySpec::figure1();
    let config = SimConfig::default(); // 8-bit channels, hw = 0, dp = 1
    let mut sim = NetworkSim::new(&spec, &config).expect("valid network");

    println!(
        "network: {} endpoints, {} routers in {} stages",
        sim.topology().endpoints(),
        sim.topology().total_routers(),
        sim.topology().stages()
    );

    // A 16-byte payload from endpoint 3 to endpoint 12.
    let payload: Vec<u16> = (0..16).map(|k| (k * 11 + 3) & 0xFF).collect();
    let outcome = sim
        .send_and_wait(3, 12, &payload, 1_000)
        .expect("message delivers");

    println!("delivered: {:?}", outcome.payload_delivered);
    assert_eq!(outcome.payload_delivered, payload);
    println!(
        "network latency: {} cycles, retries: {}",
        outcome.network_latency(),
        outcome.retries
    );

    // The self-routing stream the NIC injected: header word(s), payload,
    // end-to-end checksum, TURN.
    let stream = sim.stream_for(12, &payload);
    println!(
        "stream: {} words ({} header + {} payload + checksum + TURN)",
        stream.len(),
        sim.header_plan().header_words(),
        payload.len()
    );
    println!("first words: {:?}", &stream[..3.min(stream.len())]);
}
