//! Width cascading (§5.1): four 4-bit METROJR slices acting as one
//! 16-bit logical router, kept consistent by shared randomness, with
//! the wired-AND IN-USE check containing a slice fault.
//!
//! ```sh
//! cargo run --example cascade_wide_path
//! ```

use metro_core::cascade::{join_words, split_word};
use metro_core::{ArchParams, BwdIn, CascadeGroup, FwdIn, RouterConfig, Word};

fn main() {
    let params = ArchParams::metrojr(); // i = o = w = 4
    let config = RouterConfig::new(&params)
        .with_dilation(2)
        .with_swallow_all(true)
        .build()
        .unwrap();
    let mut cascade = CascadeGroup::new(params, config, 4, 0xCAFE).expect("cascade");
    println!(
        "cascade: {} slices of w = {} -> logical {}-bit datapath",
        cascade.width_factor(),
        params.width(),
        cascade.logical_width()
    );

    // Wide words to move: 16-bit values split across the slices. The
    // route header is *replicated* on every slice — that is why Table 4
    // multiplies hbits by the cascade factor c — so all slices decode
    // identical connection requests.
    let values: [u64; 3] = [0xBEEF, 0x1234, 0xF00D];
    let header_nibble = Word::Data(0b1000); // direction 1 in the top bit

    // Open the connection: each slice sees the same header nibble.
    let open: Vec<FwdIn> = (0..4)
        .map(|_| FwdIn::idle(4).with(0, header_nibble))
        .collect();
    let idle: Vec<BwdIn> = (0..4).map(|_| BwdIn::idle(4)).collect();
    cascade.tick(&open, &idle);

    let reference = cascade.slice(0).in_use_vector();
    println!("allocation after open: {reference:?}");
    for k in 1..4 {
        assert_eq!(
            cascade.slice(k).in_use_vector(),
            reference,
            "shared randomness keeps slices in lockstep"
        );
    }
    let out_port = reference
        .iter()
        .position(|&u| u)
        .expect("a port is allocated");

    // Stream the wide payload; reassemble what exits the slices.
    for v in values {
        let slices = split_word(v, 4, 4);
        let fwd: Vec<FwdIn> = slices.iter().map(|w| FwdIn::idle(4).with(0, *w)).collect();
        let outs = cascade.tick(&fwd, &idle);
        let exit: Vec<Word> = outs.iter().map(|o| o.bwd[out_port]).collect();
        if exit.iter().all(Word::is_active) {
            let joined = join_words(&exit, 4);
            println!("slices emitted {exit:?} -> logical {joined:04X?}");
        }
    }
    // One more tick flushes the last word through the dp = 1 pipeline.
    let fwd: Vec<FwdIn> = (0..4)
        .map(|_| FwdIn::idle(4).with(0, Word::DataIdle))
        .collect();
    let outs = cascade.tick(&fwd, &idle);
    let exit: Vec<Word> = outs.iter().map(|o| o.bwd[out_port]).collect();
    if let Some(joined) = join_words(&exit, 4) {
        println!("slices emitted {exit:?} -> logical {joined:04X}");
    }

    assert!(cascade.faults().is_empty());

    // Now a fault: slice 2's header is corrupted in flight, so it
    // requests a different direction. The wired-AND IN-USE check
    // catches the disagreement and shuts the connection down on every
    // slice — fault containment.
    println!("\ninjecting corrupted header on slice 2:");
    let mut cascade = CascadeGroup::new(
        params,
        RouterConfig::new(&params)
            .with_dilation(2)
            .with_swallow_all(true)
            .build()
            .unwrap(),
        4,
        0xCAFE,
    )
    .expect("cascade");
    let mut open: Vec<FwdIn> = (0..4)
        .map(|_| FwdIn::idle(4).with(0, header_nibble))
        .collect();
    open[2] = FwdIn::idle(4).with(0, Word::Data(0b0000)); // wrong direction
    cascade.tick(&open, &idle);
    println!("IN-USE disagreements detected: {:?}", cascade.faults());
    assert!(!cascade.faults().is_empty());
    for k in 0..4 {
        assert!(
            cascade.slice(k).in_use_vector().iter().all(|&u| !u),
            "containment: every slice released the connection"
        );
    }
    println!("connection shut down on all slices; the source will retry");
}
