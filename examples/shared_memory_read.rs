//! Distributed-shared-memory read over connection reversal — the
//! paper's motivating use of TURN and DATA-IDLE (§5.1): "the sending
//! endpoint might turn the connection around to get a fast reply to a
//! read request. … The remote node can send DATA-IDLE words to fill the
//! variable delay associated with data retrieval."
//!
//! The requester opens a circuit, streams the read request, TURNs the
//! connection, and the reply comes back over the *same* circuit — no
//! second connection setup. Memory latency at the remote node appears
//! as DATA-IDLE fill, transparent to the protocol.
//!
//! ```sh
//! cargo run --example shared_memory_read
//! ```

use metro_sim::endpoint::{EndpointConfig, ReplyPolicy};
use metro_sim::{NetworkSim, SimConfig};
use metro_topo::MultibutterflySpec;

fn main() {
    // Remote nodes answer reads with a 4-word cache line after a
    // 6-cycle memory access (the DATA-IDLE fill).
    let config = SimConfig {
        endpoint: EndpointConfig {
            reply: ReplyPolicy::ReadReply {
                latency: 6,
                words: 4,
            },
            ..EndpointConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure3(), &config).expect("valid network");

    // Read request: address words only — small request, bigger reply.
    let address = [0x12u16, 0x34];
    let outcome = sim
        .send_and_wait(5, 40, &address, 2_000)
        .expect("read completes");

    println!("read request from node 5 to node 40");
    println!(
        "round trip: {} cycles over one circuit (no second connection setup)",
        outcome.network_latency()
    );
    println!("cache line received: {:?}", outcome.reply_received);
    assert_eq!(outcome.reply_received.len(), 4);

    // Compare with an ack-only transaction: the read reply rides the
    // turned connection for only a few extra cycles (memory latency +
    // 4 words), far cheaper than a second network transaction.
    let mut ack_sim = NetworkSim::new(&MultibutterflySpec::figure3(), &SimConfig::default())
        .expect("valid network");
    let ack_only = ack_sim
        .send_and_wait(5, 40, &address, 2_000)
        .expect("ack completes");
    println!(
        "ack-only transaction: {} cycles; read reply added {} cycles",
        ack_only.network_latency(),
        outcome.network_latency() - ack_only.network_latency()
    );
}
