//! The full fault story of §5.1: a link starts corrupting data words
//! mid-operation; the end-to-end checksums catch it, the per-router
//! transit checksums localize it, the scan subsystem disables the two
//! ports at its ends (masking), and traffic continues over the
//! network's redundant paths.
//!
//! ```sh
//! cargo run --example fault_masking
//! ```

use metro_core::PortMode;
use metro_scan::diagnosis::{expected_stage_checksums, localize_corruption, CorruptionSite};
use metro_scan::ScanDevice;
use metro_sim::{NetworkSim, SimConfig};
use metro_topo::fault::{FaultKind, FaultSet};
use metro_topo::graph::{LinkId, LinkTarget};
use metro_topo::MultibutterflySpec;

fn main() {
    let spec = MultibutterflySpec::figure1();
    let config = SimConfig {
        // Detailed reclamation so every reply carries the full status +
        // transit-checksum record.
        fast_reclaim: false,
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&spec, &config).expect("valid network");
    let payload: Vec<u16> = (0..12).map(|k| (k * 5 + 1) & 0xFF).collect();

    // Healthy round trip first.
    let clean = sim.send_and_wait(4, 9, &payload, 2_000).expect("delivers");
    println!(
        "healthy transaction: {} cycles, {} retries",
        clean.network_latency(),
        clean.retries
    );

    // A link on endpoint 4's route develops a data-corrupting fault.
    let digits = sim.topology().route_digits(9);
    let (entry_router, _) = sim.topology().injection(4, 0);
    let st0 = sim.topology().stage_spec(0);
    let bad_link = LinkId::new(0, entry_router, digits[0] * st0.dilation);
    let mut faults = FaultSet::new();
    faults.break_link(bad_link, FaultKind::CorruptData { xor: 0x08 });
    sim.apply_faults(faults);
    println!("\ninjected corrupting fault on link {bad_link} (stage 0 -> stage 1)");

    // Traffic still gets through — the destination NACKs corrupted
    // attempts and random path selection steers retries around.
    let outcome = sim
        .send_and_wait(4, 9, &payload, 5_000)
        .expect("delivers despite fault");
    println!(
        "transaction under fault: {} cycles, {} retries, failures: {:?}",
        outcome.network_latency(),
        outcome.retries,
        outcome.failures
    );

    // Localization: what the source's diagnosis would conclude. The
    // expected per-stage transit checksums come from the header plan;
    // a corrupting link between stage 0 and stage 1 garbles the
    // checksum stage 1 reports.
    let plan = sim.header_plan().clone();
    let expected = expected_stage_checksums(&plan, &digits, &payload, 8, 0);
    let mut reported = expected.clone();
    for r in reported.iter_mut().skip(1) {
        *r ^= 0x0404; // what corrupt words downstream of the link produce
    }
    let site = localize_corruption(&expected, &reported).expect("mismatch found");
    assert_eq!(site, CorruptionSite { stage: 1 });
    println!(
        "\ndiagnosis: corruption enters at the input of stage {} — the suspect is",
        site.stage
    );
    println!(
        "the wire out of stage {} (or its end ports)",
        site.stage - 1
    );

    // Masking through the scan subsystem: disable the backward port
    // driving the bad link and the forward port it feeds, serially,
    // through each router's TAP.
    let LinkTarget::Router {
        router: down_router,
        port: down_port,
    } = sim
        .topology()
        .link(0, entry_router, digits[0] * st0.dilation)
    else {
        unreachable!("stage-0 links feed stage 1")
    };

    // Upstream router: disable the driving backward port.
    let up_params = *sim.router(0, entry_router).params();
    let mut up_dev = ScanDevice::new(up_params);
    up_dev.write_config(sim.router(0, entry_router).config());
    let masked_up = metro_core::RouterConfig::new(&up_params)
        .with_dilation(sim.router(0, entry_router).config().dilation())
        .with_swallow_all(sim.router(0, entry_router).config().swallow(0))
        .with_fast_reclaim_all(false)
        .with_backward_port_mode(digits[0] * st0.dilation, PortMode::DisabledDriven)
        .build()
        .unwrap();
    up_dev.write_config(&masked_up);
    sim.router_mut(0, entry_router)
        .apply_config(up_dev.config().clone());

    // Downstream router: disable the fed forward port.
    let down_params = *sim.router(1, down_router).params();
    let mut down_dev = ScanDevice::new(down_params);
    let masked_down = metro_core::RouterConfig::new(&down_params)
        .with_dilation(sim.router(1, down_router).config().dilation())
        .with_swallow_all(sim.router(1, down_router).config().swallow(0))
        .with_fast_reclaim_all(false)
        .with_forward_port_mode(down_port, PortMode::DisabledDriven)
        .build()
        .unwrap();
    down_dev.write_config(&masked_down);
    sim.router_mut(1, down_router)
        .apply_config(down_dev.config().clone());
    println!(
        "\nmasked: disabled backward port {} of r0.{entry_router} and forward port {down_port} of r1.{down_router}",
        digits[0] * st0.dilation
    );

    // With the faulty link masked, transactions no longer hit it: the
    // allocator never selects the disabled port, so no retries are
    // spent discovering the fault.
    let mut total_retries = 0;
    for _ in 0..10 {
        let o = sim.send_and_wait(4, 9, &payload, 5_000).expect("delivers");
        total_retries += o.retries;
    }
    println!(
        "10 transactions after masking: {total_retries} total retries (fault no longer reachable)"
    );
    assert_eq!(total_retries, 0, "masked fault must not cost retries");
}
