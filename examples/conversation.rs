//! A multi-round conversation over one circuit — the paper's "any
//! number of data transmission reversals may occur during a single
//! connection" (§5.1), exercised end to end.
//!
//! A write-then-verify exchange: the source streams a block, the
//! destination acknowledges and hands the line back (TURN), the source
//! streams the next block — three rounds over one locked-down path,
//! with no re-arbitration between rounds. Compare the router grant
//! counts: one circuit total, three reversals per router.
//!
//! ```sh
//! cargo run --example conversation
//! ```

use metro::sim::endpoint::{EndpointConfig, ReplyPolicy};
use metro::sim::{NetworkSim, SimConfig};
use metro::topo::MultibutterflySpec;

fn main() {
    let config = SimConfig {
        endpoint: EndpointConfig {
            reply: ReplyPolicy::Conversation,
            ..EndpointConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure3(), &config).expect("valid network");
    sim.enable_trace(0);

    let blocks: [&[u16]; 3] = [
        &[0xDE, 0xAD, 0xBE, 0xEF],
        &[0xCA, 0xFE],
        &[0x01, 0x02, 0x03, 0x04, 0x05, 0x06],
    ];
    println!(
        "conversation: node 7 -> node 42, {} segments over one circuit",
        blocks.len()
    );
    sim.send_conversation(7, 42, &blocks);

    let mut cycles = 0;
    while !sim.is_quiescent() && cycles < 5_000 {
        sim.tick();
        cycles += 1;
    }
    let outcome = sim.drain_outcomes().pop().expect("conversation completes");
    println!(
        "completed in {} cycles, {} retries",
        outcome.total_latency(),
        outcome.retries
    );

    let delivered = sim.endpoint_mut(42).take_delivered();
    for (k, d) in delivered.iter().enumerate() {
        println!("segment {k}: {:02X?} (cycle {})", d.payload, d.at);
    }
    assert_eq!(delivered.len(), 3);

    let grants = sim.router_stat_total(|s| s.grants);
    let turns = sim.router_stat_total(|s| s.turns);
    println!("\nrouter totals: {grants} connection grants, {turns} forward reversals");
    println!("one circuit carried all three segments — connection setup paid once;");
    println!("each round-trip reversal cost only the pipeline flush/fill (§5.1).");

    // Contrast: the same three blocks as independent messages pay
    // arbitration (and risk blocking) three times.
    let mut separate =
        NetworkSim::new(&MultibutterflySpec::figure3(), &SimConfig::default()).unwrap();
    for b in blocks {
        separate.send(7, 42, b);
    }
    let mut cycles = 0;
    while !separate.is_quiescent() && cycles < 5_000 {
        separate.tick();
        cycles += 1;
    }
    let grants3 = separate.router_stat_total(|s| s.grants);
    println!("as three separate messages the routers granted {grants3} connections (3 circuits)");
}
