//! Fully automated fault localization with `metro::doctor`: inject a
//! corrupting link, run traffic with failure-record capture, and let
//! the doctor name the faulty link from nothing but the reply streams
//! the source saw — then mask it and verify the fleet runs clean.
//!
//! ```sh
//! cargo run --example auto_doctor
//! ```

use metro::core::PortMode;
use metro::doctor::{diagnose, Finding};
use metro::sim::endpoint::EndpointConfig;
use metro::sim::{NetworkSim, SimConfig};
use metro::topo::fault::{FaultKind, FaultSet};
use metro::topo::graph::{LinkId, LinkTarget};
use metro::topo::MultibutterflySpec;

fn main() {
    let config = SimConfig {
        endpoint: EndpointConfig {
            capture_failure_records: true,
            ..EndpointConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).expect("valid network");
    let plan = sim.header_plan().clone();

    // A stage-0 link develops a silent data-corrupting fault.
    let src = 4;
    let dest = 9;
    let digits = sim.topology().route_digits(dest);
    let (entry, _) = sim.topology().injection(src, 0);
    let st0 = sim.topology().stage_spec(0);
    let victim = LinkId::new(0, entry, digits[0] * st0.dilation);
    let mut faults = FaultSet::new();
    faults.break_link(victim, FaultKind::CorruptData { xor: 0x05 });
    sim.apply_faults(faults);
    println!("injected corrupting fault on {victim} (invisible to the fabric)");

    // Normal traffic; the end-to-end checksums NACK corrupted attempts
    // and retries deliver — but the failure records accumulate evidence.
    let payload = [0x11u16, 0x22, 0x33, 0x44];
    let mut finding = None;
    let mut transactions = 0;
    while finding.is_none() && transactions < 50 {
        transactions += 1;
        let Some(outcome) = sim.send_and_wait(src, dest, &payload, 20_000) else {
            continue;
        };
        assert_eq!(outcome.payload_delivered, payload, "never silently corrupt");
        for (port, record) in &outcome.failure_records {
            if record.checksums.len() == sim.topology().stages() {
                finding = diagnose(sim.topology(), &plan, src, dest, *port, &payload, record);
            }
        }
    }
    let finding = finding.expect("evidence must surface");
    println!("after {transactions} transactions the doctor concludes: {finding:?}");
    let Finding::Link(link) = finding else {
        panic!("expected a link finding");
    };
    assert_eq!(link, victim, "the doctor named the exact injected fault");

    // Mask: disable the driving backward port and the fed forward port
    // (a scan master would push these through the TAPs; see the
    // fault_masking example for the bit-serial version).
    let LinkTarget::Router {
        router: down_router,
        port: down_port,
    } = sim.topology().link(link.stage, link.router, link.port)
    else {
        panic!("inter-stage link");
    };
    let up = sim.router(link.stage, link.router);
    let up_cfg = rebuild_with(up.config(), |b| {
        b.with_backward_port_mode(link.port, PortMode::DisabledDriven)
    });
    sim.router_mut(link.stage, link.router).apply_config(up_cfg);
    let down = sim.router(link.stage + 1, down_router);
    let down_cfg = rebuild_with(down.config(), |b| {
        b.with_forward_port_mode(down_port, PortMode::DisabledDriven)
    });
    sim.router_mut(link.stage + 1, down_router)
        .apply_config(down_cfg);
    println!("masked both ends of {link}");

    // Clean from here on: no retries across a batch of transactions.
    let mut retries = 0;
    for _ in 0..10 {
        let o = sim
            .send_and_wait(src, dest, &payload, 20_000)
            .expect("delivers");
        retries += o.retries;
    }
    println!("10 post-mask transactions: {retries} retries");
    assert_eq!(retries, 0);
}

/// Rebuilds a config preserving dilation/swallow/reclamation, applying
/// one extra builder step.
fn rebuild_with(
    live: &metro::core::RouterConfig,
    extra: impl FnOnce(metro::core::ConfigBuilder) -> metro::core::ConfigBuilder,
) -> metro::core::RouterConfig {
    // The builder needs the params; recover i from the live config by
    // probing — simpler: rebuild from the standard Figure 1 part.
    let params = metro::core::ArchParams::new(4, 4, 8, 2, 0, 1).unwrap();
    let mut b = metro::core::RouterConfig::new(&params).with_dilation(live.dilation());
    for f in 0..4 {
        b = b
            .with_swallow(f, live.swallow(f))
            .with_fast_reclaim(f, live.fast_reclaim(f))
            .with_forward_port_mode(f, live.forward_mode(f));
    }
    for p in 0..4 {
        b = b.with_backward_port_mode(p, live.backward_mode(p));
    }
    extra(b).build().expect("valid mask config")
}
