//! The paper's quantitative claims, asserted end to end:
//! Table 3's printed cells, Figure 3's 28-cycle unloaded latency and
//! curve shape, Figure 1's path structure, and the §6.2 robustness
//! claim.

use metro::sim::experiment::{run_fault_point, run_load_point, unloaded_latency, SweepConfig};
use metro::timing::catalog::table3;
use metro::timing::contemporary::{routers_slower_than, table5};
use metro::topo::analysis::{path_profile, single_router_tolerance};
use metro::topo::fault::FaultSet;
use metro::topo::multibutterfly::{Multibutterfly, MultibutterflySpec};

#[test]
fn table3_reproduces_every_printed_cell() {
    for row in table3() {
        assert_eq!(
            row.t20_32_ns(),
            row.expected_t20_32_ns,
            "{} [{}]",
            row.name,
            row.technology
        );
        assert_eq!(row.t_stg_ns(), row.expected_t_stg_ns, "{}", row.name);
    }
}

#[test]
fn table5_estimates_are_close_to_published() {
    for r in table5() {
        let (lo, hi) = r.estimate_t20_32_ns();
        let (plo, phi) = r.published_t20_32_ns;
        assert!((lo - plo).abs() / plo < 0.2, "{}", r.name);
        assert!((hi - phi).abs() / phi < 0.2, "{}", r.name);
    }
}

#[test]
fn section7_comparison_holds() {
    // "even the minimal gate-array implementation of METRO compares
    // favorably with the existing field of routing technologies."
    let orbit = table3()[0].t20_32_ns();
    assert_eq!(orbit, 1250.0);
    let slower = routers_slower_than(orbit);
    assert!(slower.len() >= 4, "most of Table 5 is slower: {slower:?}");
}

#[test]
fn figure3_unloaded_latency_near_28_cycles() {
    // "The unloaded message latency is 28 clock cycles from message
    // injection to acknowledgment receipt." Our protocol realization
    // measures 30 cycles — same regime, small constant differences in
    // turnaround accounting (see EXPERIMENTS.md).
    let lat = unloaded_latency(&SweepConfig::figure3());
    assert!(
        (26..=33).contains(&(lat as usize)),
        "unloaded latency {lat} not near 28"
    );
}

#[test]
fn figure3_curve_shape_low_flat_then_knee() {
    let mut cfg = SweepConfig::figure3();
    cfg.warmup = 500;
    cfg.measure = 3_000;
    cfg.drain = 1_500;
    let base = unloaded_latency(&cfg) as f64;
    let low = run_load_point(&cfg, 0.1);
    let mid = run_load_point(&cfg, 0.4);
    let high = run_load_point(&cfg, 0.8);
    // Low load sits near the unloaded latency.
    assert!(low.mean_latency < base * 1.5, "low {}", low.mean_latency);
    // Latency rises monotonically with load and blows past the knee.
    assert!(mid.mean_latency > low.mean_latency);
    assert!(
        high.mean_latency > mid.mean_latency * 2.0,
        "no congestion knee"
    );
    // Accepted throughput tracks offered load before saturation (the
    // short measurement window truncates in-flight completions, so the
    // mid-load point reads a little low; the full-window fig3 binary
    // tracks within 1%).
    assert!((low.accepted - 0.1).abs() < 0.03);
    assert!((mid.accepted - 0.4).abs() < 0.1);
}

#[test]
fn figure1_multipath_structure() {
    let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
    // "there are many paths between each pair of network endpoints"
    let p = path_profile(&net, &FaultSet::new());
    assert_eq!(p.min_paths, 8);
    assert_eq!(p.max_paths, 8);
    // "tolerate the complete loss of any router in the final stage
    // without isolating any endpoints"
    assert!(single_router_tolerance(&net)[2]);
}

#[test]
fn section62_robust_degradation() {
    // "performance degrades robustly in the face of faults": with 10%
    // of the dilated-stage routers dead, latency grows moderately and
    // nothing is lost.
    let mut cfg = SweepConfig::figure3();
    cfg.warmup = 500;
    cfg.measure = 3_000;
    cfg.drain = 2_000;
    let clean = run_fault_point(&cfg, 0.3, 0, 0);
    let faulty = run_fault_point(&cfg, 0.3, 3, 0);
    assert_eq!(clean.abandoned, 0);
    assert_eq!(faulty.abandoned, 0, "faults must not lose messages");
    assert!(
        faulty.delivered > clean.delivered / 2,
        "throughput collapse"
    );
    assert!(
        faulty.mean_latency < clean.mean_latency * 6.0,
        "degradation not graceful: {} vs {}",
        faulty.mean_latency,
        clean.mean_latency
    );
}

#[test]
fn stateless_network_claim() {
    // §2, circuit-switching advantage 3: "No messages ever exist solely
    // in the network. Consequently, it is possible to stop network
    // operation at any point in time without losing or duplicating
    // messages" — gang-scheduled context switches need no network
    // snapshot. Operationally: once the endpoints quiesce, the fabric
    // holds zero state.
    use metro::sim::{NetworkSim, SimConfig};
    use metro::topo::MultibutterflySpec;
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure3(), &SimConfig::default()).unwrap();
    // A burst of traffic; stop offering at an arbitrary point.
    for src in 0..64 {
        sim.send(src, (src + 17) % 64, &[src as u16; 10]);
    }
    sim.run(40); // mid-flight "context switch request"
    assert!(!sim.fabric_idle(), "traffic is in flight");
    // Stop injecting; the circuits drain on their own.
    let mut cycles = 0;
    while !sim.is_quiescent() && cycles < 60_000 {
        sim.tick();
        cycles += 1;
    }
    // A few more ticks flush the last wires.
    sim.run(8);
    assert!(
        sim.fabric_idle(),
        "a quiescent network must hold zero state"
    );
    // Nothing was lost across the drain.
    assert_eq!(sim.drain_outcomes().len(), 64);
}

#[test]
fn retries_in_practice_are_small() {
    // §4: "The number of retries required, in practice, is small."
    let mut cfg = SweepConfig::figure3();
    cfg.warmup = 500;
    cfg.measure = 3_000;
    cfg.drain = 1_500;
    let p = run_load_point(&cfg, 0.3);
    assert!(
        p.retries_per_message < 1.0,
        "retries/message {} not small at moderate load",
        p.retries_per_message
    );
}
