//! Cross-crate integration: the scan subsystem driving live routers —
//! serial configuration writes, MultiTAP failover, and the
//! localize → disable → test → mask loop of §5.1.

use metro::core::{ArchParams, PortMode, RouterConfig};
use metro::scan::boundary::test_wire;
use metro::scan::diagnosis::{expected_stage_checksums, localize_corruption, mask_plan};
use metro::scan::multitap::MultiTap;
use metro::scan::ScanDevice;
use metro::sim::{NetworkSim, SimConfig};
use metro::topo::MultibutterflySpec;

#[test]
fn serial_config_write_reconfigures_a_live_router() {
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &SimConfig::default()).unwrap();
    let params = *sim.router(0, 0).params();
    let live = sim.router(0, 0).config().clone();

    // Build the new image: same as live but with backward port 1
    // disabled; push it through the bit-serial TAP interface.
    let mut dev = ScanDevice::new(params);
    dev.write_config(&live);
    assert_eq!(dev.config(), &live);
    let mut masked = RouterConfig::new(&params)
        .with_dilation(live.dilation())
        .with_backward_port_mode(1, PortMode::DisabledDriven);
    for f in 0..params.forward_ports() {
        masked = masked
            .with_swallow(f, live.swallow(f))
            .with_fast_reclaim(f, live.fast_reclaim(f));
    }
    let masked = masked.build().unwrap();
    dev.write_config(&masked);
    sim.router_mut(0, 0).apply_config(dev.config().clone());

    // The router still routes (dilation means port 1 has a partner).
    for src in 0..16 {
        let o = sim.send_and_wait(src, (src + 1) % 16, &[3], 20_000);
        assert!(o.is_some(), "src {src}");
    }
    assert!(!sim.router(0, 0).config().backward_enabled(1));
}

#[test]
fn multitap_failover_keeps_the_component_configurable() {
    let params = ArchParams::metrojr();
    let mut mt = MultiTap::new(params, params.scan_paths());
    assert_eq!(mt.taps(), 2);
    let cfg = RouterConfig::new(&params).with_dilation(1).build().unwrap();
    mt.write_config(&cfg).unwrap();
    assert_eq!(mt.device().config().dilation(), 1);
    // Primary scan path breaks mid-life.
    assert_eq!(mt.mark_broken(0), Some(1));
    let cfg2 = RouterConfig::new(&params).with_dilation(2).build().unwrap();
    mt.write_config(&cfg2).unwrap();
    assert_eq!(mt.device().config().dilation(), 2);
}

#[test]
fn full_localize_disable_test_mask_loop() {
    // 1. Source-side localization from transit checksums.
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &SimConfig::default()).unwrap();
    let plan = sim.header_plan().clone();
    let digits = sim.topology().route_digits(9);
    let payload = [4u16, 5, 6];
    let expected = expected_stage_checksums(&plan, &digits, &payload, 8, 0);
    // Simulated report: corruption entered at stage 2's input.
    let mut reported = expected.clone();
    reported[2] ^= 0xFF;
    let site = localize_corruption(&expected, &reported).expect("found");
    assert_eq!(site.stage, 2);

    // 2. The mask plan names both ends of the suspect link. Suppose the
    // connection ran through backward ports [2, 1, 3] and forward
    // ports [0, 1, 2].
    let plan2 = mask_plan(site, &[2, 1, 3], &[0, 1, 2]);
    assert_eq!(plan2.upstream_stage, Some(1));
    assert_eq!(plan2.upstream_backward_port, Some(1));

    // 3. Boundary-scan the suspect wire: a stuck-at fault fails the
    // vectors, confirming the hardware fault.
    let report = test_wire(8, |v| {
        let mut out = v.to_vec();
        out[0] = true; // stuck-at-1 on bit 0
        out
    });
    assert!(!report.passed());

    // 4. Mask: disable the confirmed ports on the live routers.
    let up_stage = plan2.upstream_stage.unwrap();
    let up_port = plan2.upstream_backward_port.unwrap();
    let params = *sim.router(up_stage, 0).params();
    let live = sim.router(up_stage, 0).config().clone();
    let mut rebuilt = RouterConfig::new(&params)
        .with_dilation(live.dilation())
        .with_backward_port_mode(up_port, PortMode::DisabledTristate);
    for f in 0..params.forward_ports() {
        rebuilt = rebuilt.with_swallow(f, live.swallow(f));
    }
    sim.router_mut(up_stage, 0)
        .apply_config(rebuilt.build().unwrap());
    assert!(!sim.router(up_stage, 0).config().backward_enabled(up_port));

    // The network still functions with the masked port.
    let o = sim.send_and_wait(0, 9, &payload, 20_000).expect("delivery");
    assert_eq!(o.payload_delivered, payload);
}

#[test]
fn config_register_bit_flip_maps_to_exactly_one_option() {
    // Structural check across core + scan: each register bit drives one
    // Table 2 option; flipping bit 0 of the image toggles forward port
    // 0's enable and nothing about dilation.
    let params = ArchParams::rn1();
    let cfg = RouterConfig::new(&params).build().unwrap();
    let mut image = metro::scan::encode_config(&cfg, &params);
    image[0] = false;
    let decoded = metro::scan::decode_config(&image, &params).unwrap();
    assert!(!decoded.forward_enabled(0));
    assert_eq!(decoded.dilation(), cfg.dilation());
    assert_eq!(decoded.radix(), cfg.radix());
}

#[test]
fn idcode_identifies_the_component_class() {
    let mut dev = ScanDevice::new(ArchParams::metrojr());
    dev.load_instruction(metro::scan::Instruction::IdCode);
    let bits = dev.scan_dr(&[false; 32]);
    let value = bits
        .iter()
        .enumerate()
        .fold(0u32, |acc, (k, &b)| acc | (u32::from(b) << k));
    assert_eq!(value, metro::scan::device::METRO_IDCODE);
    assert_eq!(value & 1, 1, "IEEE 1149.1 mandates IDCODE LSB = 1");
}
