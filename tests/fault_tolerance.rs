//! Cross-crate integration: dynamic faults under live traffic, the
//! source-responsible retry story, and structural tolerance claims.

use metro::core::PortMode;
use metro::sim::{NetworkSim, SimConfig};
use metro::topo::analysis::single_router_tolerance;
use metro::topo::fault::{FaultKind, FaultSet};
use metro::topo::graph::LinkId;
use metro::topo::multibutterfly::{Multibutterfly, MultibutterflySpec};
use metro::topo::paths::all_links;

#[test]
fn dynamic_router_death_mid_traffic_loses_nothing() {
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &SimConfig::default()).unwrap();
    // Launch a batch of messages.
    for src in 0..16 {
        sim.send(src, (src + 8) % 16, &[1, 2, 3, 4, 5, 6]);
    }
    // A few cycles in, a middle-stage router dies.
    sim.run(10);
    let mut faults = FaultSet::new();
    faults.kill_router(1, 3);
    sim.apply_faults(faults);

    let mut cycles = 0;
    while !sim.is_quiescent() && cycles < 60_000 {
        sim.tick();
        cycles += 1;
    }
    let outs = sim.drain_outcomes();
    assert_eq!(outs.len(), 16, "every message must still complete");
    for o in &outs {
        assert!(
            o.total_latency() < 30_000,
            "{}->{} took too long",
            o.src,
            o.dest
        );
    }
}

#[test]
fn several_random_link_deaths_are_survived() {
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure3(), &SimConfig::default()).unwrap();
    let links = all_links(sim.topology());
    let mut faults = FaultSet::new();
    let mut rng = metro::core::RandomSource::new(404);
    faults.kill_random_links(&links, 6, &mut rng);
    sim.apply_faults(faults);
    for src in [0, 13, 30, 50, 63] {
        let dest = 63 - src;
        if dest == src {
            continue;
        }
        let o = sim.send_and_wait(src, dest, &[9, 9, 9], 20_000);
        assert!(o.is_some(), "{src} -> {dest} lost with 6 dead links");
    }
}

#[test]
fn corrupting_link_yields_nack_then_clean_retry() {
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &SimConfig::default()).unwrap();
    // Corrupt every stage-0 output of endpoint 1's entry routers so the
    // first attempt is very likely to hit a corruptor.
    let mut faults = FaultSet::new();
    let digits = sim.topology().route_digits(10);
    let st0 = sim.topology().stage_spec(0);
    for p in 0..2 {
        let (r, _) = sim.topology().injection(1, p);
        // One of the two dilated copies corrupts.
        faults.break_link(
            LinkId::new(0, r, digits[0] * st0.dilation),
            FaultKind::CorruptData { xor: 0x11 },
        );
    }
    sim.apply_faults(faults);
    let o = sim
        .send_and_wait(1, 10, &[7, 7, 7, 7], 20_000)
        .expect("delivers");
    assert_eq!(o.payload_delivered, vec![7, 7, 7, 7]);
    // Either it got lucky through the clean copies, or it NACKed and
    // retried; both are correct. What is forbidden is silent corruption:
    assert_eq!(o.payload_delivered, vec![7, 7, 7, 7]);
}

#[test]
fn silent_corruption_is_impossible_under_corrupting_links() {
    // Spray corrupting faults on many links and hammer the network; a
    // delivered payload must never differ from the sent payload.
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &SimConfig::default()).unwrap();
    let links = all_links(sim.topology());
    let mut faults = FaultSet::new();
    for (k, link) in links.iter().enumerate() {
        if k % 7 == 0 {
            faults.break_link(*link, FaultKind::CorruptData { xor: 0x20 });
        }
    }
    sim.apply_faults(faults);
    for src in 0..16 {
        let payload = [0x3Au16, src as u16, 0x55];
        if let Some(o) = sim.send_and_wait(src, (src + 4) % 16, &payload, 30_000) {
            assert_eq!(o.payload_delivered, payload, "silent corruption at {src}");
        }
    }
}

#[test]
fn disabled_ports_reroute_traffic() {
    // Scan-style masking: disable one backward port on every stage-0
    // router; the network must still deliver everywhere (dilation gives
    // the slack).
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &SimConfig::default()).unwrap();
    for r in 0..8 {
        let cfg = sim.router(0, r).config().clone();
        let params = *sim.router(0, r).params();
        let mut rebuilt = metro::core::RouterConfig::new(&params)
            .with_dilation(cfg.dilation())
            .with_fast_reclaim_all(true)
            .with_backward_port_mode(0, PortMode::DisabledDriven);
        for f in 0..4 {
            rebuilt = rebuilt.with_swallow(f, cfg.swallow(f));
        }
        sim.router_mut(0, r).apply_config(rebuilt.build().unwrap());
    }
    for src in 0..16 {
        let o = sim.send_and_wait(src, (src + 3) % 16, &[5, 5], 20_000);
        assert!(o.is_some(), "{src} failed with disabled ports");
    }
}

#[test]
fn figure1_structural_tolerance_matches_caption() {
    let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
    let tol = single_router_tolerance(&net);
    assert_eq!(tol, vec![true, true, true]);
}

#[test]
fn dead_destination_times_out_but_does_not_wedge_network() {
    let config = SimConfig {
        endpoint: metro::sim::EndpointConfig {
            timeout: 100,
            max_retries: 3,
            ..Default::default()
        },
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
    let mut faults = FaultSet::new();
    faults.kill_endpoint(9);
    sim.apply_faults(faults);
    sim.send(0, 9, &[1]);
    // A healthy transaction alongside must proceed normally.
    let healthy = sim
        .send_and_wait(3, 12, &[2, 2], 20_000)
        .expect("healthy pair works");
    assert_eq!(healthy.payload_delivered, vec![2, 2]);
    // The doomed message is eventually abandoned, not wedged.
    let mut cycles = 0;
    while !sim.is_quiescent() && cycles < 30_000 {
        sim.tick();
        cycles += 1;
    }
    let outs = sim.drain_outcomes();
    let doomed = outs
        .iter()
        .find(|o| o.dest == 9)
        .expect("abandonment recorded");
    assert!(doomed.retries >= 3);
}

#[test]
fn ack_corruption_gives_at_least_once_delivery() {
    // The protocol guarantees *reliable* delivery via end-to-end
    // acknowledgment — which is at-least-once semantics: if the ACK
    // itself is corrupted on the reverse lane, the source retries a
    // message the destination already consumed, and the destination
    // sees it twice. Deduplication (sequence numbers) belongs to the
    // layer above, as in every source-responsible protocol.
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &SimConfig::default()).unwrap();
    // Corrupt every delivery wire into endpoint 9: payloads are checked
    // by the *forward* checksum (NACK + retry), and reverse-lane ACKs
    // get flipped to garbage (retry after successful delivery).
    let mut faults = FaultSet::new();
    for p in 0..2 {
        let (r, b) = sim.topology().delivery(9, p);
        faults.break_link(LinkId::new(2, r, b), FaultKind::CorruptData { xor: 0x3F });
    }
    sim.apply_faults(faults);
    sim.send(0, 9, &[1, 2, 3]);
    let mut cycles = 0;
    while !sim.is_quiescent() && cycles < 60_000 {
        sim.tick();
        cycles += 1;
    }
    // The transaction can never complete (the ACK is always mangled),
    // so the source is still retrying at timeout horizons — but the
    // destination may have consumed the (NACKed-by-corruption) payload
    // zero or more times. What must never happen is a *wrong* payload
    // being delivered.
    for d in sim.endpoint_mut(9).take_delivered() {
        assert_eq!(
            d.payload,
            vec![1, 2, 3],
            "corrupted payloads are never consumed"
        );
    }
}

#[test]
fn conversation_survives_a_dynamic_router_death() {
    use metro::sim::endpoint::{EndpointConfig, ReplyPolicy};
    let config = SimConfig {
        endpoint: EndpointConfig {
            reply: ReplyPolicy::Conversation,
            ..EndpointConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
    let segs: [&[u16]; 3] = [&[1], &[2, 2], &[3, 3, 3]];
    sim.send_conversation(3, 12, &segs);
    // Kill a dilated-stage router mid-conversation.
    sim.run(8);
    let mut faults = FaultSet::new();
    faults.kill_router(1, 1);
    sim.apply_faults(faults);
    let mut cycles = 0;
    while !sim.is_quiescent() && cycles < 60_000 {
        sim.tick();
        cycles += 1;
    }
    let outs = sim.drain_outcomes();
    assert_eq!(
        outs.len(),
        1,
        "conversation must complete despite the death"
    );
    // The destination saw the three segments in order as the final
    // (complete) exchange; earlier aborted attempts may have delivered
    // a prefix again (at-least-once).
    let delivered = sim.endpoint_mut(12).take_delivered();
    let tail: Vec<&[u16]> = delivered
        .iter()
        .rev()
        .take(3)
        .map(|d| &d.payload[..])
        .collect();
    let mut tail = tail;
    tail.reverse();
    assert_eq!(tail, segs.to_vec(), "final exchange intact and in order");
}

#[test]
fn intermittent_fault_is_ridden_through_with_occasional_retries() {
    // A marginal wire corrupts one word in eight: most transactions
    // succeed outright, the unlucky ones NACK and retry — the dynamic
    // fault regime §4's stochastic retry is designed for. Nothing is
    // ever silently corrupted, and the element needs no masking to keep
    // the machine in service.
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &SimConfig::default()).unwrap();
    let digits = sim.topology().route_digits(9);
    let st0 = sim.topology().stage_spec(0);
    let (entry, _) = sim.topology().injection(4, 0);
    let mut faults = FaultSet::new();
    faults.break_link(
        LinkId::new(0, entry, digits[0] * st0.dilation),
        FaultKind::Intermittent {
            xor: 0x40,
            period: 8,
        },
    );
    sim.apply_faults(faults);
    let payload: Vec<u16> = (0..12).map(|k| k as u16).collect();
    let mut total_retries = 0;
    for _ in 0..20 {
        let o = sim.send_and_wait(4, 9, &payload, 30_000).expect("delivers");
        assert_eq!(o.payload_delivered, payload, "never silently corrupt");
        total_retries += o.retries;
    }
    assert!(
        total_retries > 0,
        "a 1-in-8 corruptor must cost some retries"
    );
    assert!(
        total_retries < 40,
        "but most attempts succeed ({total_retries})"
    );
}
