//! Cross-crate integration: messages across simulated METRO networks,
//! exercising core + topo + sim together.

use metro::sim::{NetworkSim, SimConfig};
use metro::topo::multibutterfly::{MultibutterflySpec, StageSpec, WiringStyle};

#[test]
fn figure1_all_pairs_deliver_intact() {
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &SimConfig::default()).unwrap();
    for src in 0..16 {
        for offset in [1, 5, 9, 15] {
            let dest = (src + offset) % 16;
            let payload = [src as u16, dest as u16, 0xAB];
            let o = sim
                .send_and_wait(src, dest, &payload, 1_000)
                .unwrap_or_else(|| panic!("{src} -> {dest} failed"));
            assert_eq!(o.payload_delivered, payload, "{src} -> {dest}");
        }
    }
}

#[test]
fn figure3_all_distances_deliver() {
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure3(), &SimConfig::default()).unwrap();
    for dest in [1, 7, 31, 63] {
        let payload: Vec<u16> = (0..19).map(|k| k as u16).collect();
        let o = sim.send_and_wait(0, dest, &payload, 1_000).unwrap();
        assert_eq!(o.payload_delivered, payload);
    }
}

#[test]
fn message_lengths_from_one_word_to_sixty() {
    // "(Unlimited) Variable Length Message Support" (paper §1).
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &SimConfig::default()).unwrap();
    for len in [1usize, 2, 5, 19, 40, 60] {
        let payload: Vec<u16> = (0..len).map(|k| (k * 3) as u16 & 0xFF).collect();
        let o = sim
            .send_and_wait(2, 13, &payload, 2_000)
            .unwrap_or_else(|| panic!("length {len} failed"));
        assert_eq!(o.payload_delivered, payload, "length {len}");
    }
}

#[test]
fn saturating_hotspot_traffic_is_lossless() {
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &SimConfig::default()).unwrap();
    for round in 0..3 {
        for src in 0..16 {
            if src != 0 {
                sim.send(src, 0, &[round as u16, src as u16]);
            }
        }
    }
    let mut cycles = 0;
    while !sim.is_quiescent() && cycles < 60_000 {
        sim.tick();
        cycles += 1;
    }
    let outs = sim.drain_outcomes();
    assert_eq!(outs.len(), 45, "all hotspot messages must complete");
    assert!(outs.iter().all(|o| o
        .failures
        .iter()
        .all(|f| !matches!(f, metro::sim::message::FailureKind::Timeout))));
}

#[test]
fn five_stage_network_with_multi_word_headers() {
    // A deeper network than any in the paper: 5 stages of radix-2
    // dilation-2 routers, 32 endpoints, on a 4-bit channel — the 5
    // route digits need two header words, so the swallow option fires
    // mid-path (after stage 3) as well as at delivery.
    let spec = MultibutterflySpec {
        endpoints: 32,
        endpoint_ports: 2,
        stages: vec![StageSpec::new(4, 4, 2); 5],
        wiring: WiringStyle::Randomized,
        seed: 5,
    };
    let config = SimConfig {
        width: 4,
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&spec, &config).unwrap();
    assert_eq!(sim.header_plan().header_words(), 2);
    assert_eq!(
        sim.header_plan().swallow(),
        &[false, false, false, true, true]
    );
    for dest in [1, 16, 31] {
        let payload: Vec<u16> = (0..10).map(|k| k as u16 & 0xF).collect();
        let o = sim.send_and_wait(0, dest, &payload, 2_000).unwrap();
        assert_eq!(o.payload_delivered, payload, "dest {dest}");
    }
}

#[test]
fn paper_32_node_network_simulates() {
    // The 32-node network Table 3's t_20,32 is defined over: four
    // stages, radices 2/2/2/4, two ports per endpoint (Figure 1 style).
    let spec = MultibutterflySpec {
        endpoints: 32,
        endpoint_ports: 2,
        stages: vec![
            StageSpec::new(4, 4, 2),
            StageSpec::new(4, 4, 2),
            StageSpec::new(4, 4, 2),
            StageSpec::new(4, 4, 1),
        ],
        wiring: WiringStyle::Randomized,
        seed: 32,
    };
    let config = SimConfig {
        width: 4, // METROJR-ORBIT width
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&spec, &config).unwrap();
    // 20-byte message on a 4-bit channel = 40 payload nibbles.
    let payload: Vec<u16> = (0..40).map(|k| (k & 0xF) as u16).collect();
    let o = sim.send_and_wait(0, 31, &payload, 2_000).expect("delivery");
    assert_eq!(o.payload_delivered, payload);
    // Cycle count sanity: stream ≈ 2 header + 40 + 2 control, 4 stages.
    assert!(
        (45..75).contains(&(o.network_latency() as usize)),
        "32-node latency {} cycles",
        o.network_latency()
    );
}

#[test]
fn wiring_styles_have_same_functional_behaviour() {
    for style in [WiringStyle::Deterministic, WiringStyle::Randomized] {
        let spec = MultibutterflySpec::figure1().with_wiring(style);
        let mut sim = NetworkSim::new(&spec, &SimConfig::default()).unwrap();
        let o = sim.send_and_wait(7, 2, &[1, 2, 3], 1_000).unwrap();
        assert_eq!(o.payload_delivered, vec![1, 2, 3], "{style:?}");
    }
}
