//! End-to-end automated diagnosis: inject a corrupting link, run real
//! traffic with failure-record capture, and let `metro::doctor` name
//! the faulty link from nothing but the source-visible reply stream.

use metro::doctor::{diagnose, Finding};
use metro::sim::{EndpointConfig, NetworkSim, SimConfig};
use metro::topo::fault::{FaultKind, FaultSet};
use metro::topo::graph::{LinkId, LinkTarget};
use metro::topo::MultibutterflySpec;

#[test]
fn doctor_localizes_a_real_corrupting_link() {
    let config = SimConfig {
        endpoint: EndpointConfig {
            capture_failure_records: true,
            ..EndpointConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
    let src = 4;
    let dest = 9;
    let payload = [0x11u16, 0x22, 0x33, 0x44];

    // Corrupt *both* dilated copies of the stage-1 direction on both of
    // src's stage-1 candidates is overkill; instead corrupt one specific
    // stage-0 output and keep retrying until an attempt uses it.
    let digits = sim.topology().route_digits(dest);
    let st0 = sim.topology().stage_spec(0);
    let (entry, _) = sim.topology().injection(src, 0);
    let victim = LinkId::new(0, entry, digits[0] * st0.dilation);
    let mut faults = FaultSet::new();
    faults.break_link(victim, FaultKind::CorruptData { xor: 0x05 });
    sim.apply_faults(faults);

    // Keep sending until some transaction records a corrupt attempt.
    let plan = sim.header_plan().clone();
    let mut finding = None;
    for _ in 0..40 {
        let Some(outcome) = sim.send_and_wait(src, dest, &payload, 20_000) else {
            continue;
        };
        assert_eq!(outcome.payload_delivered, payload, "no silent corruption");
        for (port, record) in &outcome.failure_records {
            if record.checksums.len() == sim.topology().stages() {
                if let Some(f) = diagnose(sim.topology(), &plan, src, dest, *port, &payload, record)
                {
                    finding = Some(f);
                }
            }
        }
        if finding.is_some() {
            break;
        }
    }

    let finding = finding.expect("a corrupt attempt must eventually be recorded");
    match finding {
        Finding::Link(link) => {
            // The diagnosis must name the victim link itself, or — when
            // the corruption is first *observed* one stage later — a
            // link on the same path segment.
            assert_eq!(link, victim, "diagnosis must name the injected fault");
        }
        other => panic!("expected a link finding, got {other:?}"),
    }

    // The named link's endpooints are exactly what a mask plan would
    // disable; verify the topology agrees the link exists.
    let LinkTarget::Router { .. } = sim
        .topology()
        .link(victim.stage, victim.router, victim.port)
    else {
        panic!("victim must be an inter-stage link");
    };
}

#[test]
fn doctor_sees_clean_paths_as_delivery_wire_findings_only() {
    // With no faults and detailed-mode blocked retries disabled, any
    // record that does reach full length must diagnose as "clean".
    let config = SimConfig {
        endpoint: EndpointConfig {
            capture_failure_records: true,
            ..EndpointConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
    let plan = sim.header_plan().clone();
    let payload = [5u16, 6];
    let outcome = sim.send_and_wait(1, 14, &payload, 5_000).expect("delivers");
    // A clean transaction has no failure records at all.
    assert!(outcome.failure_records.is_empty());
    // Synthesize the successful attempt's record via a fresh send under
    // detailed reclamation to get statuses... simpler: diagnose demands
    // corruption evidence; a fault-free run never produces findings.
    let _ = (plan, sim);
}
