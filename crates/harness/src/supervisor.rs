//! Supervised artifact execution: quarantine instead of crash.
//!
//! A sweep of many artifacts (`metro run --all`) must not die because
//! one point misbehaves. The [`Supervisor`] runs each artifact on a
//! watchdog-monitored thread:
//!
//! * a **panic** anywhere in the artifact (including inside
//!   [`crate::par_map`] workers, which propagate to the artifact
//!   thread) is caught and converted into a typed [`PointFailure`]
//!   carrying the panic payload;
//! * a **deadline** (`--deadline SECS`) bounds each attempt's
//!   wall-clock; an attempt that exceeds it is abandoned and recorded
//!   as a timeout;
//! * **retries** (`--retries N`) deterministically re-run the failed
//!   artifact — every artifact derives its randomness from fixed
//!   per-point seeds, so a retry replays the identical computation and
//!   only survives genuinely transient failures (an OOM-killed worker,
//!   a wedged filesystem), with a linear backoff between attempts.
//!
//! The failure is recorded in `results/manifest.json` as a `failure`
//! object on the run record (see [`crate::results::RunRecord`]), so a
//! quarantined run leaves the same audit trail as a successful one.

use crate::executor::panic_payload;
use crate::json::Json;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::time::Duration;

/// Why a supervised run was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The artifact panicked; the payload is in
    /// [`PointFailure::detail`].
    Panic,
    /// The artifact exceeded the watchdog deadline and was abandoned.
    Timeout,
    /// The artifact returned an error.
    Error,
}

impl FailureKind {
    /// The manifest spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
            FailureKind::Error => "error",
        }
    }
}

/// A typed record of one quarantined run: what failed, how, and with
/// which seed — enough to re-run the point deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct PointFailure {
    /// How the run failed.
    pub kind: FailureKind,
    /// The panic payload, error message, or timeout description.
    pub detail: String,
    /// The point's seed, when the caller knows one (registry artifacts
    /// derive their seeds internally and record them in `params`).
    pub seed: Option<u64>,
    /// Total attempts made (1 = no retries).
    pub attempts: u32,
}

impl PointFailure {
    /// The manifest encoding: `{kind, detail, attempts[, seed]}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj([
            ("kind", Json::from(self.kind.name())),
            ("detail", Json::from(self.detail.as_str())),
            ("attempts", Json::from(u64::from(self.attempts))),
        ]);
        if let Some(seed) = self.seed {
            doc.set("seed", Json::from(format!("{seed:#x}")));
        }
        doc
    }
}

impl std::fmt::Display for PointFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} after {} attempt{}: {}",
            self.kind.name(),
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.detail
        )
    }
}

/// Watchdog policy for supervised runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Supervisor {
    /// Wall-clock bound per attempt (`None` = unbounded).
    pub deadline: Option<Duration>,
    /// Re-runs after the first failure (0 = fail immediately).
    pub retries: u32,
    /// Pause before retry `k` is `backoff * k` (linear backoff).
    pub backoff: Duration,
}

impl Default for Supervisor {
    fn default() -> Self {
        Self {
            deadline: None,
            retries: 0,
            backoff: Duration::from_millis(200),
        }
    }
}

impl Supervisor {
    /// Runs `f` under supervision: on a named watchdog thread, panics
    /// caught, deadline enforced, retried per the policy. `seed` is
    /// attached to the failure record when the caller knows the
    /// point's seed.
    ///
    /// A timed-out attempt's thread cannot be forcibly killed — it is
    /// abandoned (detached) and its eventual result discarded; the
    /// artifact layer's atomic results writes guarantee an abandoned
    /// attempt can never publish a torn file.
    ///
    /// # Errors
    ///
    /// Returns the final attempt's [`PointFailure`] once the policy is
    /// exhausted.
    pub fn supervise<R, F>(&self, label: &str, seed: Option<u64>, f: F) -> Result<R, PointFailure>
    where
        R: Send + 'static,
        F: Fn() -> Result<R, String> + Send + Sync + 'static,
    {
        let f = std::sync::Arc::new(f);
        let mut last = None;
        for attempt in 1..=self.retries.saturating_add(1) {
            if attempt > 1 {
                std::thread::sleep(self.backoff * (attempt - 1));
            }
            let (kind, detail) = match self.attempt(label, &f) {
                Ok(r) => return Ok(r),
                Err(e) => e,
            };
            last = Some(PointFailure {
                kind,
                detail,
                seed,
                attempts: attempt,
            });
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// One watchdog-monitored attempt.
    fn attempt<R, F>(&self, label: &str, f: &std::sync::Arc<F>) -> Result<R, (FailureKind, String)>
    where
        R: Send + 'static,
        F: Fn() -> Result<R, String> + Send + Sync + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let body = std::sync::Arc::clone(f);
        let handle = std::thread::Builder::new()
            .name(format!("supervised-{label}"))
            .spawn(move || {
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| body()));
                let _ = tx.send(outcome.map_err(|p| panic_payload(p.as_ref())));
            })
            .expect("spawning a supervised worker");
        let received = match self.deadline {
            Some(deadline) => rx.recv_timeout(deadline),
            None => rx.recv().map_err(|_| mpsc::RecvTimeoutError::Disconnected),
        };
        match received {
            Ok(Ok(Ok(r))) => {
                let _ = handle.join();
                Ok(r)
            }
            Ok(Ok(Err(e))) => {
                let _ = handle.join();
                Err((FailureKind::Error, e))
            }
            Ok(Err(payload)) => {
                let _ = handle.join();
                Err((FailureKind::Panic, payload))
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // The attempt is wedged; abandon its thread. The
                // channel send will land on a dropped receiver.
                drop(rx);
                Err((
                    FailureKind::Timeout,
                    format!(
                        "exceeded the {:.1}s watchdog deadline",
                        self.deadline.unwrap_or_default().as_secs_f64()
                    ),
                ))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // The worker died without reporting (should be
                // unreachable: catch_unwind precedes the send).
                let _ = handle.join();
                Err((
                    FailureKind::Panic,
                    "supervised worker exited without reporting".to_string(),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn fast() -> Supervisor {
        Supervisor {
            backoff: Duration::from_millis(1),
            ..Supervisor::default()
        }
    }

    #[test]
    fn success_passes_through() {
        let out = fast().supervise("ok", None, || Ok::<_, String>(41 + 1));
        assert_eq!(out.unwrap(), 42);
    }

    #[test]
    fn a_panic_is_quarantined_with_its_payload() {
        let failure = fast()
            .supervise::<u32, _>("boom", Some(0x57b0), || panic!("injected point failure"))
            .unwrap_err();
        assert_eq!(failure.kind, FailureKind::Panic);
        assert_eq!(failure.detail, "injected point failure");
        assert_eq!(failure.seed, Some(0x57b0));
        assert_eq!(failure.attempts, 1);
        let doc = failure.to_json();
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("panic"));
        assert_eq!(doc.get("seed").and_then(Json::as_str), Some("0x57b0"));
    }

    #[test]
    fn an_error_return_is_a_typed_error_failure() {
        let failure = fast()
            .supervise::<u32, _>("err", None, || Err("no such file".to_string()))
            .unwrap_err();
        assert_eq!(failure.kind, FailureKind::Error);
        assert_eq!(failure.detail, "no such file");
        assert!(failure.to_json().get("seed").is_none());
    }

    #[test]
    fn a_wedged_attempt_times_out() {
        let supervisor = Supervisor {
            deadline: Some(Duration::from_millis(50)),
            ..fast()
        };
        let failure = supervisor
            .supervise::<u32, _>("wedge", None, || {
                std::thread::sleep(Duration::from_secs(30));
                Ok(0)
            })
            .unwrap_err();
        assert_eq!(failure.kind, FailureKind::Timeout);
        assert!(failure.detail.contains("deadline"), "{failure}");
    }

    #[test]
    fn retries_rerun_deterministically_and_count_attempts() {
        // Fails twice, succeeds on the third attempt — the transient-
        // failure shape retries exist for.
        let calls = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&calls);
        let supervisor = Supervisor {
            retries: 2,
            ..fast()
        };
        let out = supervisor.supervise("flaky", None, move || {
            if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            Ok::<_, String>(7u32)
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn exhausted_retries_report_the_final_attempt() {
        let supervisor = Supervisor {
            retries: 2,
            ..fast()
        };
        let failure = supervisor
            .supervise::<u32, _>("always", Some(9), || panic!("permanent"))
            .unwrap_err();
        assert_eq!(failure.attempts, 3);
        assert_eq!(failure.kind, FailureKind::Panic);
        assert_eq!(failure.detail, "permanent");
    }
}
