//! The `metro` CLI: one front door for every registered artifact.
//!
//! ```text
//! metro list
//! metro run <artifact>... [--quick] [--json] [--jobs N] [artifact flags]
//! metro run --all [--quick] [--json] [--jobs N]
//! ```
//!
//! `run` executes each named artifact, prints its human report (or the
//! JSON document with `--json`), writes `results/<artifact>.json`, and
//! appends a record to `results/manifest.json`. The legacy
//! one-artifact binaries call [`shim`], which maps their historical
//! flags (`--quick`, `--dot`, …) onto the same path.

use crate::artifact::{Registry, RunCtx};
use crate::json::Json;
use crate::log::{self, Verbosity};
use crate::results::{git_describe, unix_time_now, RunRecord};
use crate::supervisor::Supervisor;
use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

/// A parsed `metro` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `metro list`
    List,
    /// `metro run ...`
    Run {
        /// Artifact names to run (in registry order when `--all`).
        names: Vec<String>,
        /// The shared run context settings.
        quick: bool,
        /// Print JSON documents instead of human reports.
        json: bool,
        /// Worker threads (`None` = host parallelism).
        jobs: Option<NonZeroUsize>,
        /// Debug-level harness narration (`--verbose`).
        verbose: bool,
        /// Watchdog deadline per artifact attempt (`--deadline SECS`).
        deadline: Option<Duration>,
        /// Supervised re-runs after a failure (`--retries N`).
        retries: u32,
        /// Unrecognized flags, passed through to artifacts.
        flags: Vec<String>,
    },
    /// `metro help` / usage errors (with an optional message).
    Help(Option<String>),
}

/// Parses CLI arguments (without the program name) against a registry.
#[must_use]
pub fn parse_args(registry: &Registry, args: &[String]) -> Command {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        None | Some("help" | "--help" | "-h") => Command::Help(None),
        Some("list") => Command::List,
        Some("run") => {
            let mut names = Vec::new();
            let mut all = false;
            let mut quick = false;
            let mut json = false;
            let mut jobs = None;
            let mut verbose = false;
            let mut deadline = None;
            let mut retries = 0u32;
            let mut flags = Vec::new();
            let mut it = it.peekable();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--all" => all = true,
                    "--quick" => quick = true,
                    "--json" => json = true,
                    "--verbose" => verbose = true,
                    "--jobs" => {
                        let Some(v) = it.next() else {
                            return Command::Help(Some("--jobs needs a value".to_string()));
                        };
                        match v.parse::<NonZeroUsize>() {
                            Ok(n) => jobs = Some(n),
                            Err(_) => {
                                return Command::Help(Some(format!(
                                    "--jobs needs a positive integer, got {v:?}"
                                )))
                            }
                        }
                    }
                    "--deadline" => {
                        let Some(v) = it.next() else {
                            return Command::Help(Some("--deadline needs a value".to_string()));
                        };
                        match v.parse::<f64>() {
                            Ok(secs) if secs > 0.0 && secs.is_finite() => {
                                deadline = Some(Duration::from_secs_f64(secs));
                            }
                            _ => {
                                return Command::Help(Some(format!(
                                    "--deadline needs positive seconds, got {v:?}"
                                )))
                            }
                        }
                    }
                    "--retries" => {
                        let Some(v) = it.next() else {
                            return Command::Help(Some("--retries needs a value".to_string()));
                        };
                        match v.parse::<u32>() {
                            Ok(n) => retries = n,
                            Err(_) => {
                                return Command::Help(Some(format!(
                                    "--retries needs a non-negative integer, got {v:?}"
                                )))
                            }
                        }
                    }
                    f if f.starts_with("--") => flags.push(f.to_string()),
                    name => {
                        if registry.get(name).is_none() {
                            return Command::Help(Some(format!(
                                "unknown artifact {name:?} (see `metro list`)"
                            )));
                        }
                        names.push(name.to_string());
                    }
                }
            }
            if all {
                names = registry.names().iter().map(ToString::to_string).collect();
            }
            if names.is_empty() {
                return Command::Help(Some(
                    "nothing to run: name artifacts or pass --all".to_string(),
                ));
            }
            Command::Run {
                names,
                quick,
                json,
                jobs,
                verbose,
                deadline,
                retries,
                flags,
            }
        }
        Some(other) => Command::Help(Some(format!("unknown command {other:?}"))),
    }
}

/// Renders the `metro list` table.
#[must_use]
pub fn render_list(registry: &Registry) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{} artifacts registered:\n", registry.len());
    for a in registry {
        let _ = writeln!(out, "  {:<22} {}", a.name, a.description);
        let _ = writeln!(out, "  {:<22}   quick: {}", "", a.quick_profile);
        let _ = writeln!(out, "  {:<22}   full:  {}", "", a.full_profile);
    }
    let _ = writeln!(
        out,
        "\nrun with: metro run <artifact>... [--quick] [--json] [--jobs N]"
    );
    out
}

/// Usage text.
#[must_use]
pub fn usage() -> String {
    "metro — unified METRO experiment harness\n\
     \n\
     usage:\n\
     \x20 metro list                                   show every registered artifact\n\
     \x20 metro run <artifact>... [options]            run named artifacts\n\
     \x20 metro run --all [options]                    run all artifacts in order\n\
     \n\
     options:\n\
     \x20 --quick      scaled-down profile (CI smoke; shorter measurement windows)\n\
     \x20 --json       print the machine-readable document instead of the report\n\
     \x20 --jobs N     worker threads for sweep points (default: host parallelism)\n\
     \x20 --verbose    debug-level harness narration (sidecar paths, hashes)\n\
     \x20 --deadline S watchdog: abandon an artifact attempt after S seconds\n\
     \x20 --retries N  re-run a failed artifact up to N times (deterministic replay)\n\
     \n\
     every run writes results/<artifact>.json and appends to results/manifest.json;\n\
     simulation-backed artifacts add .scenario.json and .telemetry.json sidecars.\n\
     a panicking, timed-out, or failing artifact is quarantined: the sweep\n\
     continues and the manifest records a typed failure entry\n"
        .to_string()
}

/// Runs one artifact end to end under supervision: execute (panics
/// caught, deadline enforced, retries per [`RunCtx`]), print, write
/// `results/<name>.json`, append the manifest record. Returns the
/// artifact's wall-clock seconds.
///
/// A failed artifact is **quarantined**, not fatal: the typed failure
/// (panic payload / timeout / error, attempt count) is appended to the
/// manifest so a `metro run --all` sweep continues past it with an
/// audit trail. The `--inject-panic` flag is the supervision
/// self-test hook: it makes the artifact panic before running, so CI
/// can assert the quarantine path end to end.
///
/// # Errors
///
/// Returns a description if the artifact was quarantined or the
/// results layer cannot write.
pub fn run_one(
    registry: &Registry,
    name: &str,
    ctx: &RunCtx,
    print_json: bool,
) -> Result<f64, String> {
    let artifact = registry
        .get(name)
        .ok_or_else(|| format!("unknown artifact {name:?}"))?;
    let supervisor = Supervisor {
        deadline: ctx.deadline,
        retries: ctx.retries,
        ..Supervisor::default()
    };
    let run_fn = artifact.run;
    let worker_ctx = ctx.clone();
    let started = Instant::now();
    let outcome = supervisor.supervise(name, None, move || {
        assert!(
            !worker_ctx.flag("--inject-panic"),
            "injected panicking point (--inject-panic)"
        );
        run_fn(&worker_ctx)
    });
    let wall = started.elapsed().as_secs_f64();
    let output = match outcome {
        Ok(output) => output,
        Err(failure) => {
            let record = RunRecord {
                artifact: name.to_string(),
                git: git_describe(),
                unix_time: unix_time_now(),
                wall_seconds: wall,
                points: 0,
                jobs: ctx.jobs.get(),
                quick: ctx.quick,
                params: Json::obj::<&str>([]),
                scenario_hash: None,
                telemetry_hash: None,
                failure: Some(failure.clone()),
            };
            ctx.results
                .append_manifest(&record)
                .map_err(|e| e.to_string())?;
            return Err(format!("artifact {name} quarantined: {failure}"));
        }
    };

    if print_json {
        log::output(&output.json.render());
    } else {
        log::output(&output.human);
    }

    let path = ctx
        .results
        .write_json(name, &output.json)
        .map_err(|e| e.to_string())?;
    let scenario_hash = match &output.scenario {
        Some(scenario) => {
            let p = ctx
                .results
                .write_json(&format!("{name}.scenario"), scenario)
                .map_err(|e| e.to_string())?;
            let hash = format!("{:#018x}", scenario.canonical_hash());
            log::debug(&format!("[metro] wrote {} ({hash})", p.display()));
            Some(hash)
        }
        None => None,
    };
    let telemetry_hash = match &output.telemetry {
        Some(telemetry) => {
            let p = ctx
                .results
                .write_json(&format!("{name}.telemetry"), telemetry)
                .map_err(|e| e.to_string())?;
            let hash = format!("{:#018x}", telemetry.canonical_hash());
            log::debug(&format!("[metro] wrote {} ({hash})", p.display()));
            Some(hash)
        }
        None => None,
    };
    let record = RunRecord {
        artifact: name.to_string(),
        git: git_describe(),
        unix_time: unix_time_now(),
        wall_seconds: wall,
        points: output.points,
        jobs: ctx.jobs.get(),
        quick: ctx.quick,
        params: output.params,
        scenario_hash,
        telemetry_hash,
        failure: None,
    };
    ctx.results
        .append_manifest(&record)
        .map_err(|e| e.to_string())?;
    if !print_json {
        log::info(&format!(
            "[metro] wrote {} ({} points, {:.2}s, jobs={})",
            path.display(),
            output.points,
            wall,
            ctx.jobs
        ));
    }
    Ok(wall)
}

/// The `metro` binary's entry point: parses `std::env::args`, runs,
/// returns a process exit code (0 success, 1 artifact/results failure,
/// 2 usage error).
#[must_use]
pub fn main_with(registry: &Registry) -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(registry, &args) {
        Command::Help(None) => {
            log::output(&usage());
            0
        }
        Command::Help(Some(msg)) => {
            log::error(&format!("metro: {msg}\n"));
            log::error_text(&usage());
            2
        }
        Command::List => {
            log::output(&render_list(registry));
            0
        }
        Command::Run {
            names,
            quick,
            json,
            jobs,
            verbose,
            deadline,
            retries,
            flags,
        } => {
            if verbose {
                log::set_verbosity(Verbosity::Verbose);
            }
            let ctx = RunCtx {
                quick,
                jobs: jobs.unwrap_or_else(crate::executor::default_jobs),
                flags,
                results: crate::results::ResultsDir::standard(),
                deadline,
                retries,
            };
            let mut failures = 0usize;
            for (i, name) in names.iter().enumerate() {
                if !json {
                    if i > 0 {
                        log::info("");
                    }
                    log::info(&format!(
                        "[metro] running {name} ({}/{})",
                        i + 1,
                        names.len()
                    ));
                }
                if let Err(e) = run_one(registry, name, &ctx, json) {
                    log::error(&format!("metro: {e}"));
                    failures += 1;
                }
            }
            if failures > 0 {
                log::error(&format!(
                    "metro: {failures}/{} artifacts failed",
                    names.len()
                ));
                1
            } else {
                0
            }
        }
    }
}

/// Entry point for the legacy one-artifact binaries: maps their
/// historical flags onto a [`RunCtx`] and runs the named artifact.
/// `--quick` selects the quick profile; any other `--flag` is passed
/// through (e.g. `fig1 --dot`, `fig3 --csv`). Returns an exit code.
#[must_use]
pub fn shim(registry: &Registry, name: &str) -> i32 {
    let mut ctx = RunCtx::new();
    ctx.jobs = crate::executor::default_jobs();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => ctx.quick = true,
            "--verbose" => log::set_verbosity(Verbosity::Verbose),
            "--deadline" => {
                ctx.deadline = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|s| *s > 0.0 && s.is_finite())
                    .map(std::time::Duration::from_secs_f64);
            }
            "--retries" => {
                ctx.retries = args.next().and_then(|v| v.parse().ok()).unwrap_or(0);
            }
            other => ctx.flags.push(other.to_string()),
        }
    }
    match run_one(registry, name, &ctx, false) {
        Ok(_) => 0,
        Err(e) => {
            log::error(&format!("{name}: {e}"));
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{Artifact, ArtifactOutput};
    use crate::json::Json;

    fn ok_run(_: &RunCtx) -> Result<ArtifactOutput, String> {
        Ok(ArtifactOutput {
            human: String::new(),
            json: Json::Null,
            points: 0,
            params: Json::obj::<&str>([]),
            scenario: None,
            telemetry: None,
        })
    }

    fn registry() -> Registry {
        let mut r = Registry::new();
        for name in ["fig3", "table3"] {
            r.register(Artifact {
                name,
                description: "",
                quick_profile: "",
                full_profile: "",
                run: ok_run,
            });
        }
        r
    }

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_run_with_options() {
        let cmd = parse_args(&registry(), &s(&["run", "fig3", "--quick", "--jobs", "4"]));
        match cmd {
            Command::Run {
                names,
                quick,
                json,
                jobs,
                verbose,
                deadline,
                retries,
                flags,
            } => {
                assert_eq!(names, vec!["fig3"]);
                assert!(quick && !json && !verbose);
                assert_eq!(jobs.map(NonZeroUsize::get), Some(4));
                assert_eq!(deadline, None);
                assert_eq!(retries, 0);
                assert!(flags.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_supervision_flags() {
        let cmd = parse_args(
            &registry(),
            &s(&["run", "fig3", "--deadline", "2.5", "--retries", "3"]),
        );
        match cmd {
            Command::Run {
                deadline, retries, ..
            } => {
                assert_eq!(deadline, Some(std::time::Duration::from_secs_f64(2.5)));
                assert_eq!(retries, 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_supervision_values_are_usage_errors() {
        for bad in [
            &["run", "fig3", "--deadline", "0"][..],
            &["run", "fig3", "--deadline", "soon"],
            &["run", "fig3", "--deadline"],
            &["run", "fig3", "--retries", "-1"],
            &["run", "fig3", "--retries"],
        ] {
            assert!(
                matches!(parse_args(&registry(), &s(bad)), Command::Help(Some(_))),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn verbose_is_parsed_not_passed_through() {
        let cmd = parse_args(&registry(), &s(&["run", "fig3", "--verbose"]));
        match cmd {
            Command::Run { verbose, flags, .. } => {
                assert!(verbose);
                assert!(flags.is_empty(), "--verbose is a harness flag");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn run_all_expands_in_registry_order() {
        let cmd = parse_args(&registry(), &s(&["run", "--all"]));
        match cmd {
            Command::Run { names, .. } => assert_eq!(names, vec!["fig3", "table3"]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_artifact_is_a_usage_error() {
        assert!(matches!(
            parse_args(&registry(), &s(&["run", "fig9"])),
            Command::Help(Some(_))
        ));
    }

    #[test]
    fn bad_jobs_is_a_usage_error() {
        for bad in [
            &["run", "fig3", "--jobs", "0"][..],
            &["run", "fig3", "--jobs"],
        ] {
            assert!(matches!(
                parse_args(&registry(), &s(bad)),
                Command::Help(Some(_))
            ));
        }
    }

    #[test]
    fn unrecognized_flags_pass_through() {
        let cmd = parse_args(&registry(), &s(&["run", "fig3", "--dot"]));
        match cmd {
            Command::Run { flags, .. } => assert_eq!(flags, vec!["--dot"]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn list_renders_every_artifact() {
        let text = render_list(&registry());
        assert!(text.contains("fig3") && text.contains("table3"));
    }

    fn panicking_run(_: &RunCtx) -> Result<ArtifactOutput, String> {
        panic!("artifact exploded mid-sweep")
    }

    fn temp_ctx(tag: &str) -> RunCtx {
        let mut ctx = RunCtx::new();
        ctx.results = crate::results::ResultsDir::new(
            std::env::temp_dir().join(format!("metro-cli-{tag}-{}", std::process::id())),
        );
        let _ = std::fs::remove_dir_all(ctx.results.root());
        ctx
    }

    #[test]
    fn a_panicking_artifact_is_quarantined_in_the_manifest() {
        let mut r = registry();
        r.register(Artifact {
            name: "boom",
            description: "",
            quick_profile: "",
            full_profile: "",
            run: panicking_run,
        });
        let ctx = temp_ctx("quarantine");
        let err = run_one(&r, "boom", &ctx, false).unwrap_err();
        assert!(err.contains("quarantined"), "{err}");
        let manifest = ctx.results.read_manifest().unwrap();
        let runs = manifest.get("runs").and_then(Json::as_arr).unwrap();
        let failure = runs[0].get("failure").expect("typed failure recorded");
        assert_eq!(failure.get("kind").and_then(Json::as_str), Some("panic"));
        assert_eq!(
            failure.get("detail").and_then(Json::as_str),
            Some("artifact exploded mid-sweep")
        );
        assert_eq!(failure.get("attempts").and_then(Json::as_f64), Some(1.0));
        let _ = std::fs::remove_dir_all(ctx.results.root());
    }

    #[test]
    fn inject_panic_exercises_the_quarantine_path() {
        // The CI smoke hook: a healthy artifact plus --inject-panic
        // must land in the manifest as a quarantined panic entry.
        let mut ctx = temp_ctx("inject");
        ctx.flags.push("--inject-panic".to_string());
        let err = run_one(&registry(), "fig3", &ctx, false).unwrap_err();
        assert!(err.contains("quarantined"), "{err}");
        let manifest = ctx.results.read_manifest().unwrap();
        let runs = manifest.get("runs").and_then(Json::as_arr).unwrap();
        let failure = runs[0].get("failure").expect("typed failure recorded");
        assert_eq!(failure.get("kind").and_then(Json::as_str), Some("panic"));
        assert!(failure
            .get("detail")
            .and_then(Json::as_str)
            .is_some_and(|d| d.contains("--inject-panic")));
        let _ = std::fs::remove_dir_all(ctx.results.root());
    }

    #[test]
    fn retries_recover_a_transient_artifact_without_a_manifest_failure() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static CALLS: AtomicU32 = AtomicU32::new(0);
        fn flaky_run(_: &RunCtx) -> Result<ArtifactOutput, String> {
            if CALLS.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient wobble");
            }
            ok_run(&RunCtx::new())
        }
        let mut r = Registry::new();
        r.register(Artifact {
            name: "flaky",
            description: "",
            quick_profile: "",
            full_profile: "",
            run: flaky_run,
        });
        let mut ctx = temp_ctx("retry");
        ctx.retries = 1;
        run_one(&r, "flaky", &ctx, false).expect("second attempt succeeds");
        assert_eq!(CALLS.load(Ordering::SeqCst), 2);
        let manifest = ctx.results.read_manifest().unwrap();
        let runs = manifest.get("runs").and_then(Json::as_arr).unwrap();
        assert!(runs[0].get("failure").is_none(), "recovered run is clean");
        let _ = std::fs::remove_dir_all(ctx.results.root());
    }
}
