//! A dependency-free JSON document model.
//!
//! The workspace is built offline with no third-party crates, so the
//! machine-readable results layer hand-rolls its JSON: [`Json`] is the
//! document tree, [`Json::render`] the writer, and [`Json::parse`] a
//! small recursive-descent parser used to round-trip-validate every
//! file the harness writes (and to update `results/manifest.json` in
//! place).
//!
//! Numbers are carried as `f64`. Integral values with magnitude below
//! 2^53 render without a fractional part; non-finite values (which
//! JSON cannot represent) render as `null`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved (insertion order), which keeps
    /// rendered files stable across runs.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Self {
        Json::Arr(items.into_iter().collect())
    }

    /// Looks a key up in an object (`None` for non-objects and missing
    /// keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Inserts or replaces `key` in an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) {
        let Json::Obj(pairs) = self else {
            panic!("Json::set on a non-object");
        };
        if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            pairs.push((key.to_string(), value));
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The elements, mutably, if this is an array.
    pub fn as_arr_mut(&mut self) -> Option<&mut Vec<Json>> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the document with two-space indentation and a trailing
    /// newline — the format of every file under `results/`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders the document on one line (no indentation).
    #[must_use]
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            _ => self.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// A canonical 64-bit content hash: FNV-1a over the compact
    /// rendering. Two documents hash equal iff they render identically
    /// — key *order* is significant (the codec layers above emit keys
    /// in a fixed order, so this is a stable identity for a scenario
    /// or result document).
    #[must_use]
    pub fn canonical_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.render_compact().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a byte offset and message on malformed input (including
    /// trailing garbage after the document).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        // `{}` on f64 is the shortest representation that round-trips.
        let _ = write!(out, "{v}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run of plain bytes up to the
                    // next quote or escape and append it as one slice.
                    // Validating only the run keeps parsing linear:
                    // multi-megabyte strings (checkpoint state blocks)
                    // would otherwise re-validate the entire remaining
                    // input per character.
                    let start = self.pos;
                    while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are valid UTF-8");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::obj([
            ("name", Json::from("fig3")),
            ("quick", Json::from(false)),
            ("points", Json::from(16u64)),
            ("saturation", Json::from(0.59)),
            ("note", Json::from("latency \"knee\" @ ~0.6\nsecond line")),
            (
                "loads",
                Json::arr([Json::from(0.05), Json::from(0.5), Json::from(0.9)]),
            ),
            (
                "nested",
                Json::obj([("empty_arr", Json::arr([])), ("n", Json::Null)]),
            ),
        ])
    }

    #[test]
    fn round_trips_pretty_and_compact() {
        let doc = sample();
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.render_compact()).unwrap(), doc);
    }

    #[test]
    fn integral_numbers_render_without_fraction() {
        assert_eq!(Json::from(16u64).render_compact(), "16");
        assert_eq!(Json::from(-3i64).render_compact(), "-3");
        assert_eq!(Json::from(0.59).render_compact(), "0.59");
    }

    #[test]
    fn non_finite_renders_as_null() {
        assert_eq!(Json::Num(f64::NAN).render_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render_compact(), "null");
    }

    #[test]
    fn escapes_round_trip() {
        let s = Json::from("tab\there \"quotes\" back\\slash\nnewline \u{1}ctl €");
        assert_eq!(Json::parse(&s.render_compact()).unwrap(), s);
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        assert_eq!(Json::parse(r#""€ 😀""#).unwrap(), Json::from("€ 😀"));
    }

    #[test]
    fn parses_multimegabyte_strings_in_linear_time() {
        // Checkpoint files carry multi-megabyte hex state strings; the
        // string scanner must stay linear (a per-character re-validation
        // of the remaining input turns this test into a multi-minute
        // hang rather than milliseconds).
        let big = "0123456789abcdef".repeat(128 * 1024); // 2 MiB
        let doc = format!("{{\"state\": \"{big}\", \"tail\": \"é\\n\"}}");
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.get("state").and_then(Json::as_str), Some(&big[..]));
        assert_eq!(parsed.get("tail").and_then(Json::as_str), Some("é\n"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"abc",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn get_and_set_manipulate_objects() {
        let mut doc = sample();
        assert_eq!(doc.get("points").and_then(Json::as_f64), Some(16.0));
        assert_eq!(doc.get("missing"), None);
        doc.set("points", Json::from(17u64));
        doc.set("new_key", Json::from("v"));
        assert_eq!(doc.get("points").and_then(Json::as_f64), Some(17.0));
        assert_eq!(doc.get("new_key").and_then(Json::as_str), Some("v"));
    }

    #[test]
    fn scientific_notation_parses() {
        assert_eq!(
            Json::parse("[1e3, -2.5E-2, 0.0]").unwrap(),
            Json::arr([Json::from(1000.0), Json::from(-0.025), Json::from(0.0)])
        );
    }
}
