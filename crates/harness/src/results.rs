//! The machine-readable results layer.
//!
//! Every artifact run writes two things through [`ResultsDir`]:
//!
//! * `results/<artifact>.json` — the artifact's data (points, rows,
//!   summary figures), round-trip-validated through the [`crate::json`]
//!   parser before it lands on disk;
//! * `results/manifest.json` — an append-only record of runs: artifact
//!   name, git revision, wall-clock seconds, point count, worker count,
//!   quick/full profile, and the parameters the artifact reports.
//!
//! The manifest is the stable interface future PRs use to track bench
//! trajectories (e.g. comparing `metro run fig3 --jobs 1` against
//! `--jobs 8` wall-clocks across commits).

use crate::json::Json;
use std::path::{Path, PathBuf};

/// Manifest schema version written into `manifest.json`.
pub const MANIFEST_SCHEMA: u64 = 1;
/// Oldest runs are dropped once the manifest exceeds this many records.
pub const MANIFEST_CAP: usize = 256;

/// A typed error from the results layer: which path failed and why,
/// instead of a bare `io::Error` silently tied to the working
/// directory.
#[derive(Debug)]
pub enum ResultsError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A file that should contain JSON did not parse (or a freshly
    /// rendered document failed its round-trip validation — a harness
    /// bug).
    Parse {
        /// The path involved.
        path: PathBuf,
        /// Parser diagnostic.
        detail: String,
    },
}

impl std::fmt::Display for ResultsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResultsError::Io { path, source } => {
                write!(f, "results i/o error at {}: {source}", path.display())
            }
            ResultsError::Parse { path, detail } => {
                write!(f, "invalid JSON at {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for ResultsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResultsError::Io { source, .. } => Some(source),
            ResultsError::Parse { .. } => None,
        }
    }
}

/// One run's manifest record.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Artifact name (registry key).
    pub artifact: String,
    /// `git describe --always --dirty` at run time.
    pub git: String,
    /// Seconds since the Unix epoch when the run finished.
    pub unix_time: u64,
    /// Wall-clock seconds the artifact took.
    pub wall_seconds: f64,
    /// Number of sweep/model points the artifact produced.
    pub points: usize,
    /// Worker threads used by the point executor.
    pub jobs: usize,
    /// Whether the quick profile ran.
    pub quick: bool,
    /// Artifact-reported parameters (a JSON object).
    pub params: Json,
    /// Canonical hash of the run's declarative scenario (hex, e.g.
    /// `"0x1a2b…"`), when the artifact emitted one. Together with
    /// `results/<artifact>.scenario.json` this makes the run
    /// reproducible from its manifest entry alone.
    pub scenario_hash: Option<String>,
    /// Canonical hash of the run's telemetry snapshot sidecar
    /// (`results/<artifact>.telemetry.json`), when one was exported.
    pub telemetry_hash: Option<String>,
    /// Present when the run was quarantined by the supervisor instead
    /// of completing: how it failed (panic payload, timeout, error),
    /// how many attempts were made, and the point seed when known.
    pub failure: Option<crate::supervisor::PointFailure>,
}

impl RunRecord {
    fn to_json(&self) -> Json {
        let mut doc = Json::obj([
            ("artifact", Json::from(self.artifact.as_str())),
            ("git", Json::from(self.git.as_str())),
            ("unix_time", Json::from(self.unix_time)),
            ("wall_seconds", Json::from(self.wall_seconds)),
            ("points", Json::from(self.points)),
            ("jobs", Json::from(self.jobs)),
            ("quick", Json::from(self.quick)),
            ("params", self.params.clone()),
        ]);
        if let Some(hash) = &self.scenario_hash {
            doc.set("scenario_hash", Json::from(hash.as_str()));
        }
        if let Some(hash) = &self.telemetry_hash {
            doc.set("telemetry_hash", Json::from(hash.as_str()));
        }
        if let Some(failure) = &self.failure {
            doc.set("failure", failure.to_json());
        }
        doc
    }
}

/// A directory receiving artifact results and the run manifest.
#[derive(Debug, Clone)]
pub struct ResultsDir {
    root: PathBuf,
}

impl ResultsDir {
    /// A results directory at an explicit root (created on first
    /// write). Tests point this at a temporary directory.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// The standard `results/` directory relative to the working
    /// directory — the layout every artifact in the repository uses.
    #[must_use]
    pub fn standard() -> Self {
        Self::new("results")
    }

    /// The root path.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn ensure_root(&self) -> Result<(), ResultsError> {
        std::fs::create_dir_all(&self.root).map_err(|source| ResultsError::Io {
            path: self.root.clone(),
            source,
        })
    }

    /// Replaces `path` atomically: the contents land in a hidden
    /// same-directory temp file, are fsynced, and are renamed over the
    /// target. A crash (power loss, `kill -9`, panic) at any point
    /// leaves either the complete old file or the complete new file —
    /// never a truncated or interleaved one. Stale temp files from an
    /// earlier interrupted write of the same target are swept first.
    fn write_atomic(&self, path: &Path, contents: &str) -> Result<(), ResultsError> {
        use std::io::Write as _;
        use std::sync::atomic::{AtomicU64, Ordering};
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let io = |p: &Path, source| ResultsError::Io {
            path: p.to_path_buf(),
            source,
        };
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| {
                io(
                    path,
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, "unnamed results file"),
                )
            })?
            .to_string();
        // Recovery from an earlier interrupted write: orphaned temps
        // for this target are garbage by construction (the rename
        // never happened), so clear them out.
        let stale_prefix = format!(".{name}.tmp-");
        if let Ok(entries) = std::fs::read_dir(&self.root) {
            for entry in entries.flatten() {
                if entry
                    .file_name()
                    .to_str()
                    .is_some_and(|n| n.starts_with(&stale_prefix))
                {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        let tmp = path.with_file_name(format!(
            "{stale_prefix}{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| {
            let mut file = std::fs::File::create(&tmp).map_err(|e| io(&tmp, e))?;
            file.write_all(contents.as_bytes())
                .map_err(|e| io(&tmp, e))?;
            // Flush to stable storage before the rename publishes the
            // file: otherwise a crash could expose an empty rename
            // target.
            file.sync_all().map_err(|e| io(&tmp, e))?;
            drop(file);
            std::fs::rename(&tmp, path).map_err(|e| io(path, e))
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Writes `<stem>.json`, round-trip-validating the rendered
    /// document first. Creates the directory if missing. The write is
    /// atomic (temp file + fsync + rename): an interrupted run never
    /// leaves a truncated document behind.
    ///
    /// # Errors
    ///
    /// Returns [`ResultsError::Parse`] if the rendered document does
    /// not survive a parse round-trip, or [`ResultsError::Io`] on
    /// filesystem failure.
    pub fn write_json(&self, stem: &str, doc: &Json) -> Result<PathBuf, ResultsError> {
        self.ensure_root()?;
        let path = self.root.join(format!("{stem}.json"));
        let text = doc.render();
        let reparsed = Json::parse(&text).map_err(|e| ResultsError::Parse {
            path: path.clone(),
            detail: e.to_string(),
        })?;
        if &reparsed != doc {
            return Err(ResultsError::Parse {
                path,
                detail: "document did not survive a write/parse round-trip".to_string(),
            });
        }
        self.write_atomic(&path, &text)?;
        Ok(path)
    }

    /// Writes a plain-text artifact (CSV, DOT, …) under the results
    /// root, creating the directory if missing. Atomic, like
    /// [`ResultsDir::write_json`].
    ///
    /// # Errors
    ///
    /// Returns [`ResultsError::Io`] on filesystem failure.
    pub fn write_text(&self, file_name: &str, contents: &str) -> Result<PathBuf, ResultsError> {
        self.ensure_root()?;
        let path = self.root.join(file_name);
        self.write_atomic(&path, contents)?;
        Ok(path)
    }

    /// Reads and parses `manifest.json`, or returns an empty manifest
    /// if the file does not exist yet.
    ///
    /// # Errors
    ///
    /// Returns [`ResultsError::Parse`] if an existing manifest is not
    /// valid JSON, or [`ResultsError::Io`] on filesystem failure.
    pub fn read_manifest(&self) -> Result<Json, ResultsError> {
        let path = self.root.join("manifest.json");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Json::obj([
                    ("schema", Json::from(MANIFEST_SCHEMA)),
                    ("runs", Json::arr([])),
                ]));
            }
            Err(source) => return Err(ResultsError::Io { path, source }),
        };
        Json::parse(&text).map_err(|e| ResultsError::Parse {
            path,
            detail: e.to_string(),
        })
    }

    /// Appends one run record to `manifest.json` (read-modify-write),
    /// keeping the most recent [`MANIFEST_CAP`] records.
    ///
    /// # Errors
    ///
    /// Propagates [`ResultsError`] from reading or writing the
    /// manifest.
    pub fn append_manifest(&self, record: &RunRecord) -> Result<PathBuf, ResultsError> {
        let mut manifest = self.read_manifest()?;
        if manifest.get("runs").and_then(Json::as_arr).is_none() {
            manifest = Json::obj([
                ("schema", Json::from(MANIFEST_SCHEMA)),
                ("runs", Json::arr([])),
            ]);
        }
        manifest.set("schema", Json::from(MANIFEST_SCHEMA));
        let runs = manifest
            .get("runs")
            .and_then(Json::as_arr)
            .expect("ensured above")
            .to_vec();
        let mut runs = runs;
        runs.push(record.to_json());
        if runs.len() > MANIFEST_CAP {
            let excess = runs.len() - MANIFEST_CAP;
            runs.drain(..excess);
        }
        manifest.set("runs", Json::Arr(runs));
        self.write_json("manifest", &manifest)
    }
}

/// The repository revision, via `git describe --always --dirty`;
/// `"unknown"` when git is unavailable (e.g. a source tarball).
#[must_use]
pub fn git_describe() -> String {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output();
    match out {
        Ok(o) if o.status.success() => String::from_utf8_lossy(&o.stdout).trim().to_string(),
        _ => "unknown".to_string(),
    }
}

/// Seconds since the Unix epoch (0 if the clock is before the epoch).
#[must_use]
pub fn unix_time_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> ResultsDir {
        let dir =
            std::env::temp_dir().join(format!("metro-harness-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultsDir::new(dir)
    }

    fn record(artifact: &str) -> RunRecord {
        RunRecord {
            artifact: artifact.to_string(),
            git: "abc1234".to_string(),
            unix_time: 1_754_000_000,
            wall_seconds: 1.25,
            points: 16,
            jobs: 2,
            quick: true,
            params: Json::obj([("load", Json::from(0.3))]),
            scenario_hash: None,
            telemetry_hash: None,
            failure: None,
        }
    }

    #[test]
    fn a_quarantined_run_records_its_typed_failure() {
        let dir = tmp("failure");
        let mut rec = record("chaos");
        rec.points = 0;
        rec.failure = Some(crate::supervisor::PointFailure {
            kind: crate::supervisor::FailureKind::Panic,
            detail: "index out of bounds".to_string(),
            seed: Some(0x57b0),
            attempts: 2,
        });
        dir.append_manifest(&rec).unwrap();
        let manifest = dir.read_manifest().unwrap();
        let failure = manifest.get("runs").and_then(Json::as_arr).unwrap()[0]
            .get("failure")
            .cloned()
            .expect("failure object recorded");
        assert_eq!(failure.get("kind").and_then(Json::as_str), Some("panic"));
        assert_eq!(
            failure.get("detail").and_then(Json::as_str),
            Some("index out of bounds")
        );
        assert_eq!(failure.get("seed").and_then(Json::as_str), Some("0x57b0"));
        assert_eq!(failure.get("attempts").and_then(Json::as_f64), Some(2.0));
        let _ = std::fs::remove_dir_all(dir.root());
    }

    #[test]
    fn scenario_hash_lands_in_the_manifest_record() {
        let dir = tmp("scenario-hash");
        let mut rec = record("fig3");
        rec.scenario_hash = Some("0x00c0ffee00c0ffee".to_string());
        dir.append_manifest(&rec).unwrap();
        let manifest = dir.read_manifest().unwrap();
        let runs = manifest.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(
            runs[0].get("scenario_hash").and_then(Json::as_str),
            Some("0x00c0ffee00c0ffee")
        );
        let _ = std::fs::remove_dir_all(dir.root());
    }

    #[test]
    fn telemetry_hash_lands_in_the_manifest_record() {
        let dir = tmp("telemetry-hash");
        let mut rec = record("fig3");
        rec.telemetry_hash = Some("0x0123456789abcdef".to_string());
        dir.append_manifest(&rec).unwrap();
        let manifest = dir.read_manifest().unwrap();
        let runs = manifest.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(
            runs[0].get("telemetry_hash").and_then(Json::as_str),
            Some("0x0123456789abcdef")
        );
        let _ = std::fs::remove_dir_all(dir.root());
    }

    #[test]
    fn write_json_creates_directory_and_round_trips() {
        let dir = tmp("write");
        let doc = Json::obj([("x", Json::from(1u64))]);
        let path = dir.write_json("sample", &doc).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        let _ = std::fs::remove_dir_all(dir.root());
    }

    #[test]
    fn manifest_appends_and_caps() {
        let dir = tmp("manifest");
        for k in 0..3 {
            dir.append_manifest(&record(&format!("art{k}"))).unwrap();
        }
        let manifest = dir.read_manifest().unwrap();
        let runs = manifest.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[2].get("artifact").and_then(Json::as_str), Some("art2"));
        assert_eq!(
            manifest.get("schema").and_then(Json::as_f64),
            Some(MANIFEST_SCHEMA as f64)
        );
        let _ = std::fs::remove_dir_all(dir.root());
    }

    #[test]
    fn missing_manifest_reads_as_empty() {
        let dir = tmp("empty");
        let manifest = dir.read_manifest().unwrap();
        assert_eq!(
            manifest
                .get("runs")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(0)
        );
    }

    #[test]
    fn corrupt_manifest_is_a_typed_parse_error() {
        let dir = tmp("corrupt");
        dir.write_text("manifest.json", "{not json").unwrap();
        match dir.read_manifest() {
            Err(ResultsError::Parse { path, .. }) => {
                assert!(path.ends_with("manifest.json"));
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(dir.root());
    }

    #[test]
    fn interrupted_writes_leave_the_old_file_and_are_swept() {
        let dir = tmp("atomic");
        let doc = Json::obj([("generation", Json::from(1u64))]);
        dir.write_json("run", &doc).unwrap();

        // Simulate a writer killed mid-write: a partial temp file for
        // the same target, never renamed.
        let orphan = dir.root().join(".run.json.tmp-99999-0");
        std::fs::write(&orphan, "{\"generation\": 2, \"truncat").unwrap();

        // The published file is still the complete old version.
        let text = std::fs::read_to_string(dir.root().join("run.json")).unwrap();
        assert_eq!(Json::parse(&text).unwrap(), doc);

        // The next write sweeps the orphan and publishes atomically.
        let doc2 = Json::obj([("generation", Json::from(3u64))]);
        dir.write_json("run", &doc2).unwrap();
        assert!(!orphan.exists(), "stale temp file survived the sweep");
        let text = std::fs::read_to_string(dir.root().join("run.json")).unwrap();
        assert_eq!(Json::parse(&text).unwrap(), doc2);

        // No temp droppings remain after a clean write.
        let leftovers: Vec<_> = std::fs::read_dir(dir.root())
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_str().is_some_and(|n| n.contains(".tmp-")))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(dir.root());
    }

    #[test]
    fn io_failure_is_a_typed_error_with_path() {
        // A root that cannot be created: a file stands where the
        // directory should go.
        let base = std::env::temp_dir().join(format!("metro-harness-file-{}", std::process::id()));
        std::fs::write(&base, "occupied").unwrap();
        let dir = ResultsDir::new(base.join("sub"));
        match dir.write_text("x.csv", "a,b\n") {
            Err(ResultsError::Io { path, .. }) => assert!(path.starts_with(&base)),
            other => panic!("expected Io error, got {other:?}"),
        }
        let _ = std::fs::remove_file(&base);
    }
}
