//! # metro-harness — the unified experiment harness
//!
//! Every paper artifact (figure, table, ablation, benchmark) in this
//! workspace is reproduced by a deterministic experiment. This crate is
//! the shared machinery those experiments run on:
//!
//! * [`artifact`] — a registry of named artifacts (description,
//!   quick/full profiles, run function) that the `metro` CLI fronts:
//!   `metro list`, `metro run fig3 --quick --json --jobs 8`,
//!   `metro run --all`.
//! * [`executor`] — a `std::thread::scope` worker pool mapping a
//!   function over independent sweep points. Results come back in input
//!   order, so a parallel sweep is bit-identical to a sequential one as
//!   long as each point's randomness is derived from the point itself
//!   (see `metro_sim::experiment::point_seed`). Also home of
//!   [`TickPool`], the persistent barrier-synchronised worker pool the
//!   sharded Flat engine drives its per-phase tick fan-out through.
//! * [`json`] — a dependency-free JSON document model: a writer that
//!   every artifact emits through, and a small parser used to
//!   round-trip-validate everything written and to update the results
//!   manifest in place.
//! * [`results`] — the results layer: one `results/<artifact>.json`
//!   per run plus `results/manifest.json` recording artifact name, git
//!   revision, wall-clock, point count, worker count, and parameters.
//! * [`supervisor`] — crash-safe artifact execution: panics caught and
//!   quarantined as typed manifest failures, watchdog deadlines, and
//!   deterministic retries (`--deadline`, `--retries`).
//! * [`cli`] — argument parsing and the runner shared by the `metro`
//!   binary and the legacy one-artifact shims.
//!
//! The crate depends only on `std`; it sits below `metro-sim` and
//! `metro-timing` in the workspace graph so their sweep functions can
//! be rebuilt on the executor.

// `deny` rather than `forbid`: the one sanctioned exception is the
// lifetime-erased job slot inside `executor::TickPool` (see the SAFETY
// comments there), which carries a narrowly-scoped `#[allow]`. All
// other code in this crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod cli;
pub mod executor;
pub mod json;
pub mod log;
pub mod results;
pub mod supervisor;

pub use artifact::{Artifact, ArtifactOutput, Registry, RunCtx};
pub use executor::{default_jobs, panic_payload, par_map, try_par_map, PointPanic, TickPool};
pub use json::Json;
pub use log::Verbosity;
pub use results::{ResultsDir, ResultsError, RunRecord};
pub use supervisor::{FailureKind, PointFailure, Supervisor};
