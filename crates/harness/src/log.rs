//! A minimal logging facade for the harness and its CLIs.
//!
//! Artifact *output* (reports, JSON documents) is byte-stable contract
//! data and always prints. Harness *status* (`[metro] running …`) is
//! informational and prints by default but can be silenced; *debug*
//! detail (sidecar paths, hashes) prints only under `--verbose`. Errors
//! always reach stderr. The level is a process-wide atomic so artifact
//! code deep in the bench crate can log without threading a handle.

use std::sync::atomic::{AtomicU8, Ordering};

/// How much the harness narrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// Errors and artifact output only.
    Quiet = 0,
    /// Plus status lines (the default — matches historical CLI output).
    Normal = 1,
    /// Plus debug detail (`--verbose`).
    Verbose = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Verbosity::Normal as u8);

/// Sets the process-wide verbosity.
pub fn set_verbosity(v: Verbosity) {
    LEVEL.store(v as u8, Ordering::Relaxed);
}

/// The current process-wide verbosity.
#[must_use]
pub fn verbosity() -> Verbosity {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Verbosity::Quiet,
        1 => Verbosity::Normal,
        _ => Verbosity::Verbose,
    }
}

/// Prints artifact output verbatim to stdout (no newline added) —
/// unconditional at every verbosity; the byte-stable channel.
pub fn output(text: &str) {
    print!("{text}");
}

/// Prints a status line to stdout at [`Verbosity::Normal`] and above.
pub fn info(line: &str) {
    if verbosity() >= Verbosity::Normal {
        println!("{line}");
    }
}

/// Prints a debug line to stdout at [`Verbosity::Verbose`] only.
pub fn debug(line: &str) {
    if verbosity() >= Verbosity::Verbose {
        println!("{line}");
    }
}

/// Prints an error line to stderr — unconditional.
pub fn error(line: &str) {
    eprintln!("{line}");
}

/// Prints error text verbatim to stderr (no newline) — unconditional.
pub fn error_text(text: &str) {
    eprint!("{text}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbosity_round_trips_and_orders() {
        // Tests share the process-wide atomic: restore the default.
        set_verbosity(Verbosity::Verbose);
        assert_eq!(verbosity(), Verbosity::Verbose);
        set_verbosity(Verbosity::Quiet);
        assert_eq!(verbosity(), Verbosity::Quiet);
        assert!(Verbosity::Quiet < Verbosity::Normal);
        assert!(Verbosity::Normal < Verbosity::Verbose);
        set_verbosity(Verbosity::Normal);
        assert_eq!(verbosity(), Verbosity::Normal);
    }
}
