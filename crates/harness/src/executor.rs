//! A worker pool for embarrassingly-parallel sweep points.
//!
//! Every sweep in this workspace — latency-versus-load (Figure 3),
//! fault degradation (§6.2), the analytic design-space sweeps — is a
//! map over *independent* simulation or model points. [`par_map`] runs
//! that map on a `std::thread::scope` pool (no dependencies, no
//! `unsafe`) and returns results **in input order**, so a parallel
//! sweep is bit-identical to a sequential one provided each point's
//! randomness is a function of the point alone (the per-point seed
//! derivation documented in `metro_sim::experiment`).

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The worker count to use when the caller does not specify one: the
/// host's available parallelism, or 1 if that cannot be determined.
#[must_use]
pub fn default_jobs() -> NonZeroUsize {
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning the
/// results in input order.
///
/// `f` receives `(index, &item)`. Work is claimed dynamically (an
/// atomic cursor), so uneven point costs — a saturated load point can
/// take 50× an unloaded one — still balance across workers. With
/// `jobs == 1` (or a single item) no threads are spawned and the map
/// runs inline on the caller's stack.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(jobs: NonZeroUsize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = jobs.get().min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled by the pool")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..97).collect();
        for n in [1, 2, 4, 9] {
            let out = par_map(jobs(n), &items, |i, &v| {
                assert_eq!(i, v);
                v * 3 + 1
            });
            assert_eq!(out, items.iter().map(|v| v * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        // A deterministic per-point computation must not depend on the
        // worker count.
        let items: Vec<u64> = (0..33).collect();
        let f = |i: usize, &v: &u64| -> u64 {
            let mut x = v.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64;
            for _ in 0..100 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
            }
            x
        };
        let seq = par_map(jobs(1), &items, f);
        let par = par_map(jobs(8), &items, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(jobs(4), &[] as &[u32], |_, _| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = par_map(jobs(64), &[1, 2, 3], |_, &v| v + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }
}
