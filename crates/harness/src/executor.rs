//! A worker pool for embarrassingly-parallel sweep points.
//!
//! Every sweep in this workspace — latency-versus-load (Figure 3),
//! fault degradation (§6.2), the analytic design-space sweeps — is a
//! map over *independent* simulation or model points. [`par_map`] runs
//! that map on a `std::thread::scope` pool (no dependencies, no
//! `unsafe`) and returns results **in input order**, so a parallel
//! sweep is bit-identical to a sequential one provided each point's
//! randomness is a function of the point alone (the per-point seed
//! derivation documented in `metro_sim::experiment`).

use std::cell::UnsafeCell;
use std::num::NonZeroUsize;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The worker count to use when the caller does not specify one: the
/// host's available parallelism, or 1 if that cannot be determined.
#[must_use]
pub fn default_jobs() -> NonZeroUsize {
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning the
/// results in input order.
///
/// `f` receives `(index, &item)`. Work is claimed dynamically (an
/// atomic cursor), so uneven point costs — a saturated load point can
/// take 50× an unloaded one — still balance across workers. With
/// `jobs == 1` (or a single item) no threads are spawned and the map
/// runs inline on the caller's stack.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(jobs: NonZeroUsize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = jobs.get().min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled by the pool")
        })
        .collect()
}

/// A panic captured from one quarantined sweep point: which item
/// panicked and what the panic payload said.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointPanic {
    /// Index of the item whose `f` invocation panicked.
    pub index: usize,
    /// The panic payload, rendered (`&str`/`String` payloads verbatim,
    /// anything else as a placeholder).
    pub payload: String,
}

impl std::fmt::Display for PointPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "point {} panicked: {}", self.index, self.payload)
    }
}

/// Renders a `catch_unwind` payload: the `&str` or `String` message
/// when the panic carried one, a placeholder otherwise.
#[must_use]
pub fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`par_map`] with per-point quarantine: each `f` invocation runs
/// under `catch_unwind`, so one panicking point yields an
/// `Err(PointPanic)` in its slot instead of killing the whole sweep.
/// The other points still run to completion, in input order.
///
/// The sweep caller decides what a quarantined point means — the
/// harness CLI records it as a typed failure in the run manifest
/// (see `crate::supervisor`).
pub fn try_par_map<T, R, F>(jobs: NonZeroUsize, items: &[T], f: F) -> Vec<Result<R, PointPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(jobs, items, |i, item| {
        std::panic::catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|p| PointPanic {
            index: i,
            payload: panic_payload(p.as_ref()),
        })
    })
}

/// How many times a barrier waiter spins before yielding the CPU.
///
/// Kept deliberately small: on an oversubscribed host (more shards
/// than cores) long spins starve the worker that would release the
/// barrier, while on a dedicated multicore the barrier is crossed well
/// within this budget anyway.
const BARRIER_SPIN_LIMIT: u32 = 256;

/// A sense-reversing spin barrier for a fixed set of participants.
///
/// Unlike `std::sync::Barrier` there is no mutex or condvar on the
/// crossing path — per-phase synchronisation inside a simulation tick
/// happens tens of thousands of times per second, and parking workers
/// between phases would dominate the tick itself. Waiters spin briefly
/// and then yield, so correctness does not depend on core count.
struct SpinBarrier {
    participants: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(participants: usize) -> Self {
        Self {
            participants,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks until all participants have called `wait` for the
    /// current generation. The acquire/release pairing on `generation`
    /// (and the AcqRel arrival RMWs feeding it) makes every write
    /// before any participant's `wait` visible to every participant
    /// after it — the happens-before edge `TickPool` relies on.
    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.participants {
            self.arrived.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if spins < BARRIER_SPIN_LIMIT {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// The leader-published job: a borrowed `Fn(usize)` erased to a thin
/// data pointer plus a monomorphised trampoline, so the pool's worker
/// threads (which are `'static`) can call a closure that borrows the
/// caller's stack. Validity is enforced by the barrier protocol in
/// [`TickPool::run`], not by the type system — hence the `unsafe`
/// island below.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
}

#[allow(unsafe_code)]
// SAFETY: the trampoline's only obligation is that `data` points at a
// live `F`; `TickPool::run` guarantees that for the whole window in
// which workers can hold a `Job` (between the start and done barriers,
// while the caller's `f` is borrowed on its stack).
unsafe fn call_job<F: Fn(usize) + Sync>(data: *const (), worker: usize) {
    let f = unsafe { &*data.cast::<F>() };
    f(worker);
}

/// The slot the leader publishes the current [`Job`] through.
///
/// Interior mutability without a lock: the slot is written by the
/// leader only while every worker is parked at the start barrier, and
/// read by workers only after they cross it — the barrier's
/// happens-before edges (see [`SpinBarrier::wait`]) make those
/// accesses data-race-free, which is exactly what the `Sync` impl
/// asserts.
struct JobSlot(UnsafeCell<Option<Job>>);

#[allow(unsafe_code)]
// SAFETY: see the struct-level comment — all cross-thread access is
// ordered by the pool's barriers. The raw `Job` pointers inside are
// only ever dereferenced during a round, while the leader guarantees
// the pointee is live, so moving/sharing the slot across threads adds
// no hazard beyond the access protocol already argued above.
unsafe impl Sync for JobSlot {}
#[allow(unsafe_code)]
// SAFETY: as above.
unsafe impl Send for JobSlot {}

struct PoolShared {
    /// Current job, leader-written between rounds (see [`JobSlot`]).
    job: JobSlot,
    /// Crossed once per round to release workers into the job, and
    /// once at shutdown to release them into exit.
    start: SpinBarrier,
    /// Crossed once per round after every participant finished the
    /// job; the leader does not return from `run` before this, so the
    /// borrowed closure outlives every worker's use of it.
    done: SpinBarrier,
    /// Set (with the job slot left empty) before the final start-
    /// barrier crossing to tell workers to exit.
    shutdown: AtomicBool,
    /// Set by any worker whose job invocation panicked; the leader
    /// converts it into a panic after the done barrier.
    poisoned: AtomicBool,
}

/// A persistent worker pool for barrier-synchronised phase fan-out.
///
/// [`par_map`] spawns a fresh `std::thread::scope` per call, which is
/// fine for sweeps whose points run for milliseconds but hopeless for
/// a simulation tick that fans out several *phases* per tick at
/// microsecond granularity. `TickPool::new(n)` spawns `n - 1` worker
/// threads **once**; every subsequent [`run`](Self::run) hands all `n`
/// participants (the calling thread doubles as participant 0) the same
/// borrowed closure and crosses two spin barriers — no allocation, no
/// locks, no thread spawn on the hot path.
///
/// Participants are told their index (`0..n`), and `run` returns only
/// after every participant finished, so a caller may hand each index a
/// disjoint mutable slice of its own state (via `split_at_mut`-style
/// partitioning) and rely on all writes being visible on return.
pub struct TickPool {
    shared: Arc<PoolShared>,
    participants: usize,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for TickPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TickPool")
            .field("participants", &self.participants)
            .finish_non_exhaustive()
    }
}

impl TickPool {
    /// Creates a pool with `participants` total participants: the
    /// calling thread (participant 0 in every [`run`](Self::run)) plus
    /// `participants - 1` spawned workers.
    #[must_use]
    pub fn new(participants: NonZeroUsize) -> Self {
        let participants = participants.get();
        let shared = Arc::new(PoolShared {
            job: JobSlot(UnsafeCell::new(None)),
            start: SpinBarrier::new(participants),
            done: SpinBarrier::new(participants),
            shutdown: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
        });
        let workers = (1..participants)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tick-pool-{index}"))
                    .spawn(move || Self::worker_loop(&shared, index))
                    .expect("spawning a tick-pool worker")
            })
            .collect();
        Self {
            shared,
            participants,
            workers,
        }
    }

    /// Total participant count (spawned workers plus the caller).
    #[must_use]
    pub fn participants(&self) -> usize {
        self.participants
    }

    #[allow(unsafe_code)]
    fn worker_loop(shared: &PoolShared, index: usize) {
        loop {
            shared.start.wait();
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            // SAFETY: the leader published a `Job` before its own
            // start-barrier arrival, and will not return from `run`
            // (nor touch the slot again) until this worker crosses the
            // done barrier below — so the slot read is ordered after
            // the write, and the pointee `F` is still live for the
            // whole call.
            let job = unsafe { (*shared.job.0.get()).expect("job published before release") };
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe {
                (job.call)(job.data, index)
            }));
            if outcome.is_err() {
                shared.poisoned.store(true, Ordering::Release);
            }
            shared.done.wait();
        }
    }

    /// Runs `f(index)` once per participant (`0..participants`), the
    /// caller executing index 0 in place, and returns after all have
    /// finished. Calls are strictly serialised: a second `run` cannot
    /// begin until the previous one fully completed.
    ///
    /// # Panics
    ///
    /// Panics if any participant's `f` panicked (worker panics are
    /// caught, recorded, and re-raised here after the round completes,
    /// leaving the pool usable).
    #[allow(unsafe_code)]
    pub fn run<F: Fn(usize) + Sync>(&self, f: F) {
        // SAFETY: `data` points at `f`, which lives on this stack
        // frame until the end of this function; the done barrier below
        // guarantees no worker touches the pointer after that. Writing
        // the slot is race-free because every worker is parked at the
        // start barrier until the leader's `wait` below.
        unsafe {
            *self.shared.job.0.get() = Some(Job {
                data: std::ptr::from_ref(&f).cast::<()>(),
                call: call_job::<F>,
            });
        }
        self.shared.start.wait();
        let leader_outcome = std::panic::catch_unwind(AssertUnwindSafe(|| f(0)));
        self.shared.done.wait();
        // SAFETY: every worker has crossed the done barrier, so none
        // holds the job; clearing the slot here cannot race.
        unsafe {
            *self.shared.job.0.get() = None;
        }
        let worker_panicked = self.shared.poisoned.swap(false, Ordering::AcqRel);
        if leader_outcome.is_err() || worker_panicked {
            panic!("TickPool: a participant panicked during run()");
        }
    }
}

impl Drop for TickPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Workers are parked at the start barrier; cross it once more
        // to release them into the shutdown check.
        self.shared.start.wait();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..97).collect();
        for n in [1, 2, 4, 9] {
            let out = par_map(jobs(n), &items, |i, &v| {
                assert_eq!(i, v);
                v * 3 + 1
            });
            assert_eq!(out, items.iter().map(|v| v * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        // A deterministic per-point computation must not depend on the
        // worker count.
        let items: Vec<u64> = (0..33).collect();
        let f = |i: usize, &v: &u64| -> u64 {
            let mut x = v.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64;
            for _ in 0..100 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
            }
            x
        };
        let seq = par_map(jobs(1), &items, f);
        let par = par_map(jobs(8), &items, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(jobs(4), &[] as &[u32], |_, _| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = par_map(jobs(64), &[1, 2, 3], |_, &v| v + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn worker_count_is_capped_at_item_count() {
        // Regression: an uncapped pool would try to honour the
        // requested job count literally — with a pathological request
        // like this one it would attempt a million thread spawns and
        // abort the process long before producing a result.
        let items = [10u64, 20, 30, 40];
        let spawned: Mutex<std::collections::HashSet<std::thread::ThreadId>> =
            Mutex::new(std::collections::HashSet::new());
        let out = par_map(jobs(1_000_000), &items, |i, &v| {
            spawned
                .lock()
                .expect("thread-id set")
                .insert(std::thread::current().id());
            v + i as u64
        });
        assert_eq!(out, vec![10, 21, 32, 43]);
        let distinct = spawned.lock().expect("thread-id set").len();
        assert!(
            distinct <= items.len(),
            "ran on {distinct} threads for {} items",
            items.len()
        );
    }

    #[test]
    fn tick_pool_fans_out_to_every_participant() {
        for n in [1usize, 2, 4] {
            let pool = TickPool::new(jobs(n));
            assert_eq!(pool.participants(), n);
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.run(|w| {
                hits[w].fetch_add(1, Ordering::Relaxed);
            });
            for (w, hit) in hits.iter().enumerate() {
                assert_eq!(hit.load(Ordering::Relaxed), 1, "participant {w}");
            }
        }
    }

    #[test]
    fn tick_pool_is_reusable_across_many_rounds() {
        // The whole point of the pool: thousands of cheap rounds on
        // the same threads. Each round increments disjoint per-worker
        // counters; afterwards every counter saw every round.
        let n = 3usize;
        let pool = TickPool::new(jobs(n));
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        const ROUNDS: usize = 500;
        for _ in 0..ROUNDS {
            pool.run(|w| {
                counters[w].fetch_add(1, Ordering::Relaxed);
            });
        }
        for c in &counters {
            assert_eq!(c.load(Ordering::Relaxed), ROUNDS);
        }
    }

    #[test]
    fn tick_pool_run_observes_all_worker_writes() {
        // `run` returning must publish every participant's writes to
        // the leader (the done barrier's happens-before edge). Workers
        // write disjoint slice regions through a Mutex-free partition.
        let n = 4usize;
        let pool = TickPool::new(jobs(n));
        let mut data = vec![0u64; 64];
        for round in 1..=10u64 {
            let chunk = data.len() / n;
            let parts: Vec<Mutex<&mut [u64]>> = data.chunks_mut(chunk).map(Mutex::new).collect();
            pool.run(|w| {
                let mut part = parts[w].try_lock().expect("disjoint shard slice");
                for v in part.iter_mut() {
                    *v += round;
                }
            });
            drop(parts);
            let expect: u64 = (1..=round).sum();
            assert!(data.iter().all(|&v| v == expect), "round {round}");
        }
    }

    #[test]
    fn try_par_map_quarantines_panicking_points() {
        let items: Vec<u64> = (0..17).collect();
        for n in [1, 4] {
            let out = try_par_map(jobs(n), &items, |_, &v| {
                assert!(v % 5 != 3, "injected failure at {v}");
                v * 2
            });
            for (i, r) in out.iter().enumerate() {
                if i % 5 == 3 {
                    let p = r.as_ref().unwrap_err();
                    assert_eq!(p.index, i);
                    assert!(p.payload.contains("injected failure"), "{p}");
                } else {
                    assert_eq!(*r, Ok(i as u64 * 2));
                }
            }
        }
    }

    #[test]
    fn panic_payload_renders_str_and_string_payloads() {
        let p = std::panic::catch_unwind(|| panic!("plain str")).unwrap_err();
        assert_eq!(panic_payload(p.as_ref()), "plain str");
        let p = std::panic::catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_payload(p.as_ref()), "formatted 7");
        let p = std::panic::catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(panic_payload(p.as_ref()), "non-string panic payload");
    }

    #[test]
    fn tick_pool_worker_panic_poisons_the_round_but_not_the_pool() {
        let pool = TickPool::new(jobs(2));
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|w| {
                assert!(w == 0, "injected worker failure");
            });
        }));
        assert!(caught.is_err(), "worker panic must surface from run()");
        // The pool survives a poisoned round and runs cleanly again.
        let ok = AtomicUsize::new(0);
        pool.run(|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn tick_pool_leader_panic_poisons_the_round_but_not_the_pool() {
        // The leader (participant 0) runs the job inline on the calling
        // thread; its panic must unwind through run() while still
        // releasing the pooled workers for the next round.
        let pool = TickPool::new(jobs(3));
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|w| {
                assert!(w != 0, "injected leader failure");
            });
        }));
        assert!(caught.is_err(), "leader panic must surface from run()");
        let ok = AtomicUsize::new(0);
        pool.run(|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn tick_pool_survives_repeated_poisoned_rounds() {
        // Several consecutive poisoned rounds, interleaved with clean
        // ones: the poison flag must reset every round, never latch.
        let pool = TickPool::new(jobs(2));
        let clean_rounds = AtomicUsize::new(0);
        for round in 0..6usize {
            if round % 2 == 0 {
                let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    pool.run(|w| {
                        assert!(w == 0, "poisoned round {round}");
                    });
                }));
                assert!(caught.is_err(), "round {round} must poison");
            } else {
                pool.run(|_| {
                    clean_rounds.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        assert_eq!(clean_rounds.load(Ordering::Relaxed), 3 * 2);
    }
}
