//! The artifact registry.
//!
//! A paper artifact — a figure, a table, an ablation, a benchmark — is
//! a named, deterministic experiment with a quick and a full profile.
//! The 20 artifacts of the METRO evaluation register here (see
//! `metro_bench::artifacts::registry`) and the single `metro` CLI
//! fronts them all; the historical one-artifact binaries are thin shims
//! over the same registry entries.

use crate::json::Json;
use crate::results::ResultsDir;
use std::num::NonZeroUsize;

/// Everything a running artifact needs from its invocation.
#[derive(Debug, Clone)]
pub struct RunCtx {
    /// Run the scaled-down quick profile instead of the full one.
    pub quick: bool,
    /// Worker threads for the point executor ([`crate::par_map`]).
    pub jobs: NonZeroUsize,
    /// Extra artifact-specific flags passed through unparsed (e.g.
    /// `--dot` for `fig1`).
    pub flags: Vec<String>,
    /// Where results land.
    pub results: ResultsDir,
    /// Watchdog wall-clock bound per artifact attempt
    /// (`--deadline SECS`; `None` = unbounded).
    pub deadline: Option<std::time::Duration>,
    /// Supervised re-runs after a failed attempt (`--retries N`).
    pub retries: u32,
}

impl RunCtx {
    /// A context with defaults: full profile, single worker, standard
    /// `results/` directory.
    #[must_use]
    pub fn new() -> Self {
        Self {
            quick: false,
            jobs: NonZeroUsize::MIN,
            flags: Vec::new(),
            results: ResultsDir::standard(),
            deadline: None,
            retries: 0,
        }
    }

    /// Whether an artifact-specific flag was passed.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

impl Default for RunCtx {
    fn default() -> Self {
        Self::new()
    }
}

/// What an artifact run produced.
#[derive(Debug, Clone)]
pub struct ArtifactOutput {
    /// The human-readable report (what the legacy binary printed).
    pub human: String,
    /// The machine-readable document written to
    /// `results/<name>.json`.
    pub json: Json,
    /// How many sweep/model points were produced (manifest bookkeeping).
    pub points: usize,
    /// Key parameters of the run, recorded in the manifest (a JSON
    /// object).
    pub params: Json,
    /// The declarative scenario this artifact ran (encoded through
    /// `metro_sim::scenario`), when the artifact is simulation-backed.
    /// The CLI writes it to `results/<name>.scenario.json` and records
    /// its [`Json::canonical_hash`] in the manifest so every results
    /// file is reproducible from its manifest entry alone.
    pub scenario: Option<Json>,
    /// The encoded telemetry snapshot for the run's representative
    /// measurement (a `TelemetrySnapshot` document from
    /// `metro-telemetry`), when the artifact exports one. The CLI
    /// writes it to `results/<name>.telemetry.json` and records its
    /// hash in the manifest.
    pub telemetry: Option<Json>,
}

/// An artifact's run function. Errors are surfaced as strings — an
/// artifact failing is a harness-level event, not something callers
/// dispatch on.
pub type RunFn = fn(&RunCtx) -> Result<ArtifactOutput, String>;

/// A registered artifact.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Registry key and results file stem (`results/<name>.json`).
    pub name: &'static str,
    /// One-line description shown by `metro list`.
    pub description: &'static str,
    /// What the quick profile does (shortened windows, fewer points).
    pub quick_profile: &'static str,
    /// What the full profile does.
    pub full_profile: &'static str,
    /// The experiment itself.
    pub run: RunFn,
}

/// An ordered collection of artifacts, keyed by name.
#[derive(Debug, Default)]
pub struct Registry {
    artifacts: Vec<Artifact>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an artifact.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered — duplicate names would
    /// silently shadow results files.
    pub fn register(&mut self, artifact: Artifact) {
        assert!(
            self.get(artifact.name).is_none(),
            "duplicate artifact name {:?}",
            artifact.name
        );
        self.artifacts.push(artifact);
    }

    /// Looks an artifact up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Artifact> {
        self.artifacts.iter().find(|a| a.name == name)
    }

    /// All artifacts, in registration order.
    pub fn iter(&self) -> std::slice::Iter<'_, Artifact> {
        self.artifacts.iter()
    }

    /// Number of artifacts registered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.artifacts.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.artifacts.is_empty()
    }

    /// All artifact names, in registration order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.artifacts.iter().map(|a| a.name).collect()
    }
}

impl<'a> IntoIterator for &'a Registry {
    type Item = &'a Artifact;
    type IntoIter = std::slice::Iter<'a, Artifact>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_run(_: &RunCtx) -> Result<ArtifactOutput, String> {
        Ok(ArtifactOutput {
            human: "ran\n".to_string(),
            json: Json::obj([("ok", Json::from(true))]),
            points: 1,
            params: Json::obj::<&str>([]),
            scenario: None,
            telemetry: None,
        })
    }

    fn art(name: &'static str) -> Artifact {
        Artifact {
            name,
            description: "a test artifact",
            quick_profile: "short",
            full_profile: "long",
            run: ok_run,
        }
    }

    #[test]
    fn registry_preserves_order_and_resolves_names() {
        let mut r = Registry::new();
        r.register(art("b"));
        r.register(art("a"));
        assert_eq!(r.names(), vec!["b", "a"]);
        assert_eq!(r.len(), 2);
        assert!(r.get("a").is_some());
        assert!(r.get("c").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate artifact name")]
    fn duplicate_names_panic() {
        let mut r = Registry::new();
        r.register(art("x"));
        r.register(art("x"));
    }

    #[test]
    fn run_ctx_flags() {
        let mut ctx = RunCtx::new();
        ctx.flags.push("--dot".to_string());
        assert!(ctx.flag("--dot"));
        assert!(!ctx.flag("--csv"));
    }
}
