//! Property tests for the hand-rolled JSON parser/writer.
//!
//! The scenario layer (`metro-sim::scenario`) serializes entire
//! experiment descriptions through this model and demands *byte*-stable
//! round-trips, so the parser/writer pair must be airtight across the
//! whole value space: escapes (including surrogate pairs), deep
//! nesting, and numeric edge cases.

use metro_harness::Json;
use proptest::prelude::*;

/// Builds an arbitrary JSON document from a seed — a deterministic
/// recursive generator over all six value kinds, depth-bounded so
/// documents stay parseable without blowing the test stack.
fn build_json(state: &mut u64, depth: usize) -> Json {
    let mut next = || {
        // SplitMix64: the same mixer the proptest shim uses.
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let pick = if depth == 0 { next() % 4 } else { next() % 6 };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(next() % 2 == 0),
        2 => {
            // Mix integral, fractional, tiny, and large finite values.
            match next() % 4 {
                0 => Json::Num((next() % 1_000_000) as f64),
                1 => Json::Num(-((next() % 9_007_199_254_740_991) as f64)),
                2 => Json::Num(f64::from_bits(next() % (1u64 << 62)).fract()),
                _ => Json::Num((next() % 1_000) as f64 * 1e-3),
            }
        }
        3 => Json::Str(arbitrary_string(state)),
        4 => {
            let n = (next() % 4) as usize;
            let mut s2 = next();
            Json::Arr((0..n).map(|_| build_json(&mut s2, depth - 1)).collect())
        }
        _ => {
            let n = (next() % 4) as usize;
            let mut s2 = next();
            Json::Obj(
                (0..n)
                    .map(|k| {
                        (
                            format!("k{k}_{}", arbitrary_string(&mut s2)),
                            build_json(&mut s2, depth - 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

/// A string drawing from the hostile regions of the char space:
/// quotes, backslashes, control characters, BMP boundary points, and
/// astral-plane characters (which force surrogate pairs in `\u` form).
fn arbitrary_string(state: &mut u64) -> String {
    let mut next = || {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let len = (next() % 12) as usize;
    (0..len)
        .map(|_| match next() % 8 {
            0 => '"',
            1 => '\\',
            2 => char::from_u32((next() % 0x20) as u32).unwrap(), // control
            3 => char::from_u32(0x20 + (next() % 0x5F) as u32).unwrap(), // ASCII
            4 => '€',
            5 => char::from_u32(0x1F600 + (next() % 80) as u32).unwrap(), // astral
            6 => '\u{FFFD}',
            _ => char::from_u32(0xD7FF).unwrap(), // last char before surrogates
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Any generated document survives pretty and compact round-trips.
    #[test]
    fn arbitrary_documents_round_trip(seed in any::<u64>()) {
        let mut s = seed;
        let doc = build_json(&mut s, 4);
        prop_assert_eq!(&Json::parse(&doc.render()).unwrap(), &doc);
        prop_assert_eq!(&Json::parse(&doc.render_compact()).unwrap(), &doc);
    }

    /// Hostile strings — quotes, backslashes, controls, astral-plane
    /// chars — round-trip exactly.
    #[test]
    fn hostile_strings_round_trip(seed in any::<u64>()) {
        let mut s = seed;
        let original = arbitrary_string(&mut s);
        let doc = Json::from(original.clone());
        let back = Json::parse(&doc.render_compact()).unwrap();
        prop_assert_eq!(back.as_str(), Some(original.as_str()));
    }

    /// Rendering is a fixed point: parse(render(x)) renders identically
    /// to render(x) — the byte-stability contract the scenario corpus
    /// relies on.
    #[test]
    fn rendering_is_a_fixed_point(seed in any::<u64>()) {
        let mut s = seed;
        let doc = build_json(&mut s, 3);
        let text = doc.render();
        prop_assert_eq!(Json::parse(&text).unwrap().render(), text);
    }

    /// Integral numbers below 2^53 round-trip exactly through the
    /// integer fast path of the writer.
    #[test]
    fn integral_numbers_round_trip(v in 0u64..(1 << 53)) {
        let doc = Json::from(v);
        prop_assert_eq!(Json::parse(&doc.render_compact()).unwrap(), doc);
        let neg = Json::Num(-(v as f64));
        prop_assert_eq!(Json::parse(&neg.render_compact()).unwrap(), neg);
    }

    /// Finite doubles of any bit pattern round-trip (shortest-repr
    /// formatting must reparse to the same bits).
    #[test]
    fn finite_doubles_round_trip(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        prop_assume!(v.is_finite());
        let doc = Json::Num(v);
        let back = Json::parse(&doc.render_compact()).unwrap();
        prop_assert_eq!(back.as_f64().map(f64::to_bits), Some(v.to_bits()));
    }

    /// Deep nesting: arrays-in-arrays (and objects) to depth 200 parse
    /// back without stack or state corruption.
    #[test]
    fn deep_nesting_round_trips(depth in 1usize..200, use_objects in any::<bool>()) {
        let mut doc = Json::from("bottom");
        for k in 0..depth {
            doc = if use_objects && k % 2 == 0 {
                Json::obj([("d", doc)])
            } else {
                Json::arr([doc])
            };
        }
        prop_assert_eq!(&Json::parse(&doc.render()).unwrap(), &doc);
        prop_assert_eq!(&Json::parse(&doc.render_compact()).unwrap(), &doc);
    }
}

/// Surrogate-pair escapes decode to the astral characters they encode,
/// and lone/invalid surrogates are rejected rather than mangled.
#[test]
fn surrogate_pair_escapes() {
    assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::from("\u{1F600}"));
    assert_eq!(
        Json::parse(r#""😀 tail""#).unwrap(),
        Json::from("\u{1F600} tail")
    );
    // A lone high surrogate, a high surrogate followed by a non-escape,
    // and a bare low surrogate are all malformed.
    for bad in [r#""\ud83d""#, r#""\ud83dxx""#, r#""\udc00""#] {
        assert!(Json::parse(bad).is_err(), "{bad} should be rejected");
    }
}

/// The canonical hash separates differing documents and is insensitive
/// to re-parsing.
#[test]
fn canonical_hash_tracks_content() {
    let mut s = 42u64;
    for _ in 0..64 {
        let doc = build_json(&mut s, 3);
        let reparsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(doc.canonical_hash(), reparsed.canonical_hash());
    }
    let a = Json::obj([("x", Json::from(1u64))]);
    let b = Json::obj([("x", Json::from(2u64))]);
    assert_ne!(a.canonical_hash(), b.canonical_hash());
}
