//! A small, dependency-free property-testing shim.
//!
//! This workspace builds in offline environments where the real
//! [`proptest`](https://crates.io/crates/proptest) crate cannot be
//! downloaded, so this crate vendors the *subset* of its API the
//! workspace's tests use: the [`proptest!`] macro, `prop_assert*`
//! macros, [`Strategy`] with `prop_map`/`prop_filter`, ranges and
//! `any::<T>()` as strategies, [`Just`], `prop_oneof!`, and
//! [`collection::vec`].
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs and
//!   the per-test deterministic seed instead of a minimized example.
//! * **Deterministic by default.** Each test function derives its seed
//!   from its own name (override with the `PROPTEST_SEED` environment
//!   variable), so runs are reproducible in CI.

use std::fmt;

/// Runner configuration: how many passing cases each property needs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and is not counted.
    Reject(String),
    /// An assertion failed: the property is falsified.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// A rejection (assumption unmet) with the given reason.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Reject(m) => write!(f, "rejected: {m}"),
            Self::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// The result of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic random source driving generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is negligible for test generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// Derives the deterministic seed for a named test, honouring the
/// `PROPTEST_SEED` environment override.
#[must_use]
pub fn seed_for(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            return v;
        }
    }
    // FNV-1a over the test path.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A value generator. The shim's strategies are plain generators: no
/// shrinking, `generate` produces one value from the random stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred`, retrying (bounded).
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn ErasedStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

trait ErasedStrategy<T> {
    fn erased_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.erased_generate(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// The [`Strategy::prop_filter`] combinator.
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..100_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected every candidate: {}", self.whence);
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// A union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let k = rng.below(self.options.len() as u64) as usize;
        self.options[k].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    #[must_use]
    fn arbitrary() -> ArbitraryStrategy<Self>;
}

/// The strategy returned by [`any`].
pub struct ArbitraryStrategy<T> {
    gen_fn: fn(&mut TestRng) -> T,
}

impl<T> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// The whole-domain strategy for `T` — `any::<u64>()` etc.
#[must_use]
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    T::arbitrary()
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> ArbitraryStrategy<Self> {
                ArbitraryStrategy {
                    gen_fn: |rng| rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary() -> ArbitraryStrategy<Self> {
        ArbitraryStrategy {
            gen_fn: |rng| rng.next_u64() & 1 == 1,
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident/$idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive length window for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    /// The vec strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + rng.below(span as u64 + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and
    /// whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
        TestCaseResult, Union,
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// A uniform choice among strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($strategy),+])
    };
}

/// Declares property test functions:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn it_holds(x in 0usize..10, seed in any::<u64>()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            let seed = $crate::seed_for(test_path);
            let mut rng = $crate::TestRng::new(seed);
            let strategy = ($($strategy,)+);
            let mut passed: u32 = 0;
            let mut rejected: u64 = 0;
            while passed < config.cases {
                let case_rng_snapshot = rng.clone();
                let ($($arg,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                let result: $crate::TestCaseResult = (|| {
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                match result {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < 65_536,
                            "{test_path}: too many prop_assume! rejections"
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        let _ = case_rng_snapshot;
                        panic!(
                            "{test_path}: property falsified at case {} (seed {seed}):\n{msg}",
                            passed + 1
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(1u16..=2), &mut rng);
            assert!((1..=2).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_respects_length_window() {
        let mut rng = crate::TestRng::new(2);
        let s = collection::vec(0u16..256, 2..5);
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 256));
        }
    }

    #[test]
    fn map_filter_and_oneof_compose() {
        let mut rng = crate::TestRng::new(3);
        let s = prop_oneof![Just(1u16), Just(2), Just(3)]
            .prop_map(|v| v * 10)
            .prop_filter("even only", |v| v % 20 == 0);
        for _ in 0..50 {
            assert_eq!(Strategy::generate(&s, &mut rng), 20);
        }
    }

    #[test]
    fn deterministic_per_name() {
        assert_eq!(crate::seed_for("a::b"), crate::seed_for("a::b"));
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_runs(x in 0usize..100, flag in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            if flag {
                prop_assert_ne!(x, 13);
            }
            prop_assert_eq!(x, x);
        }
    }
}
