//! Structural fault-tolerance analysis.
//!
//! Quantifies the claims the paper makes about multipath networks: the
//! Figure 1 caption's "many paths between each pair of network
//! endpoints", and §5.1's observation that dilation-1 routers in the
//! final stage "allow the network … to tolerate the complete loss of any
//! router in the final stage without isolating any endpoints".

use crate::fault::FaultSet;
use crate::multibutterfly::Multibutterfly;
use crate::paths::{count_paths, min_path_count};

/// Whether every ordered endpoint pair still has at least one live path.
#[must_use]
pub fn fully_connected(net: &Multibutterfly, faults: &FaultSet) -> bool {
    min_path_count(net, faults) > 0
}

/// Summary of the network's path redundancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathProfile {
    /// Minimum wire-level paths over all endpoint pairs.
    pub min_paths: usize,
    /// Maximum wire-level paths over all endpoint pairs.
    pub max_paths: usize,
    /// Total wire-level paths summed over all ordered pairs.
    pub total_paths: usize,
}

/// Computes the path-redundancy profile of the network under `faults`.
#[must_use]
pub fn path_profile(net: &Multibutterfly, faults: &FaultSet) -> PathProfile {
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut total = 0usize;
    for src in 0..net.endpoints() {
        for dest in 0..net.endpoints() {
            let c = count_paths(net, src, dest, faults);
            min = min.min(c);
            max = max.max(c);
            total += c;
        }
    }
    PathProfile {
        min_paths: min,
        max_paths: max,
        total_paths: total,
    }
}

/// Tests single-router fault tolerance stage by stage: for each stage,
/// returns `true` if the loss of *any single router* in that stage
/// leaves the network fully connected.
#[must_use]
pub fn single_router_tolerance(net: &Multibutterfly) -> Vec<bool> {
    (0..net.stages())
        .map(|s| {
            (0..net.routers_in_stage(s)).all(|r| {
                let mut faults = FaultSet::new();
                faults.kill_router(s, r);
                fully_connected(net, &faults)
            })
        })
        .collect()
}

/// The largest `k` (up to `limit`) such that every way of killing `k`
/// routers sampled by `samples` random trials leaves the network
/// connected — a Monte-Carlo estimate of fault tolerance margin.
#[must_use]
pub fn random_fault_margin(net: &Multibutterfly, limit: usize, samples: usize, seed: u64) -> usize {
    let routers: Vec<usize> = (0..net.stages()).map(|s| net.routers_in_stage(s)).collect();
    let mut rng = metro_core::RandomSource::new(seed);
    let mut margin = 0;
    for k in 1..=limit {
        let mut survived_all = true;
        for _ in 0..samples {
            let mut faults = FaultSet::new();
            faults.kill_random_routers(&routers, k, &mut rng);
            if !fully_connected(net, &faults) {
                survived_all = false;
                break;
            }
        }
        if survived_all {
            margin = k;
        } else {
            break;
        }
    }
    margin
}

/// Expansion measurement — the property that makes multibutterflies
/// work (\[16\]: "Expanders Might Be Practical").
///
/// For a stage boundary, a set `S` of upstream routers within one
/// direction subgroup *expands* if its wires reach strictly more than
/// `|S|` distinct downstream routers. [`min_expansion`] reports, for
/// each stage boundary, the minimum ratio
/// `|reachable downstream routers| / |S|` over all subgroup router sets
/// of size at most half the subgroup — the standard `(α, β)` expansion
/// probe at `α = 1/2`.
#[must_use]
pub fn min_expansion(net: &Multibutterfly) -> Vec<f64> {
    use crate::graph::LinkTarget;
    let mut result = Vec::new();
    for s in 0..net.stages().saturating_sub(1) {
        let st = net.stage_spec(s);
        let rpg = net.routers_in_stage(s) / net.groups_at_stage(s);
        let mut min_ratio = f64::INFINITY;
        for g in 0..net.groups_at_stage(s) {
            for j in 0..st.radix() {
                // All subsets is exponential; probe every contiguous
                // window and every single router, which bounds the
                // minimum from above and catches clustered wirings.
                for size in 1..=(rpg / 2).max(1) {
                    for start in 0..rpg {
                        let mut reached = std::collections::BTreeSet::new();
                        for k in 0..size {
                            let r = g * rpg + (start + k) % rpg;
                            for c in 0..st.dilation {
                                if let LinkTarget::Router { router, .. } =
                                    net.link(s, r, j * st.dilation + c)
                                {
                                    reached.insert(router);
                                }
                            }
                        }
                        let ratio = reached.len() as f64 / size as f64;
                        min_ratio = min_ratio.min(ratio);
                    }
                }
            }
        }
        result.push(min_ratio);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multibutterfly::MultibutterflySpec;

    #[test]
    fn figure1_final_stage_tolerates_any_single_router_loss() {
        // Paper §5.1: "The dilation-1 routers in the final stage allow
        // the network shown to tolerate the complete loss of any router
        // in the final stage without isolating any endpoints."
        let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
        let tolerance = single_router_tolerance(&net);
        assert_eq!(tolerance.len(), 3);
        assert!(
            tolerance[2],
            "final stage single-router loss must be tolerated"
        );
        assert!(
            tolerance[0] && tolerance[1],
            "early stages too (dilation 2)"
        );
    }

    #[test]
    fn fault_free_profile_is_uniform_for_figure1() {
        let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
        let p = path_profile(&net, &FaultSet::new());
        assert_eq!(p.min_paths, 8);
        assert_eq!(p.max_paths, 8);
        assert_eq!(p.total_paths, 8 * 16 * 16);
    }

    #[test]
    fn two_random_router_faults_usually_survive_figure1() {
        let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
        let margin = random_fault_margin(&net, 2, 20, 99);
        assert!(
            margin >= 1,
            "single random faults must always be survivable"
        );
    }

    #[test]
    fn disconnection_is_detected() {
        let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
        let mut faults = FaultSet::new();
        // Kill both last-stage routers serving destination 0's group.
        let (r0, _) = net.delivery(0, 0);
        let (r1, _) = net.delivery(0, 1);
        faults.kill_router(2, r0);
        faults.kill_router(2, r1);
        assert!(!fully_connected(&net, &faults));
    }

    #[test]
    fn figure3_network_is_fully_connected() {
        let net = Multibutterfly::build(&MultibutterflySpec::figure3()).unwrap();
        assert!(fully_connected(&net, &FaultSet::new()));
    }

    #[test]
    fn paper32_network_matches_table3_assumptions() {
        let net = Multibutterfly::build(&MultibutterflySpec::paper32()).unwrap();
        assert_eq!(net.endpoints(), 32);
        assert_eq!(net.stages(), 4);
        // Σ log2 r = 1+1+1+2 = 5 routing bits, the hbits input of
        // Table 4.
        assert_eq!(net.stage_digit_bits().iter().sum::<usize>(), 5);
        assert!(fully_connected(&net, &FaultSet::new()));
        assert!(single_router_tolerance(&net).iter().all(|&t| t));
    }

    #[test]
    fn dilated_stages_expand() {
        // The wiring guarantees per-router distinctness (a singleton's
        // d wires reach d routers); larger probe sets can contract
        // somewhat — full (α, β)-expansion with β > 1 is a property of
        // *random* wirings in the large-network limit ([16]), not of
        // every instance. What every instance must satisfy: singletons
        // expand by d, and no probed set collapses below half its size.
        let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
        let exp = min_expansion(&net);
        assert_eq!(exp.len(), 2);
        for (s, &e) in exp.iter().enumerate() {
            assert!(e >= 0.5, "boundary {s} collapses: {e}");
        }
        // A singleton's 2 dilated wires reach 2 routers, so the
        // reported minimum cannot exceed the dilation factor.
        assert!(exp[0] <= 2.0);
    }

    #[test]
    fn expansion_holds_for_deterministic_wiring_too() {
        use crate::multibutterfly::WiringStyle;
        let net = Multibutterfly::build(
            &MultibutterflySpec::figure1().with_wiring(WiringStyle::Deterministic),
        )
        .unwrap();
        for &e in &min_expansion(&net) {
            assert!(e >= 0.5);
        }
    }
}
