//! Inter-stage wiring patterns.
//!
//! Between stage `s` and stage `s+1`, the wires of one logical direction
//! subgroup must be assigned to the forward ports of the subgroup's
//! downstream routers. A good assignment sends the `d` dilated copies of
//! each upstream router's direction to `d` *distinct* downstream routers
//! — that distinctness is what turns dilation into node-disjoint path
//! redundancy. Randomized wirings additionally give the expansion
//! properties multibutterflies are known for (\[15\], \[16\]).

use metro_core::RandomSource;

/// An assignment of `n` subgroup wires to `n` downstream forward ports.
///
/// Wire `w` (see [`wire_index`]) maps to downstream router
/// `assignment[w] / ports_per_router` and forward port
/// `assignment[w] % ports_per_router`.
pub type Assignment = Vec<usize>;

/// Index of the wire carrying upstream router `t`'s dilated copy `c` of
/// a direction, with `routers` upstream routers in the subgroup.
#[must_use]
pub fn wire_index(t: usize, c: usize, routers: usize) -> usize {
    c * routers + t
}

/// Deterministic wiring: copy `c` of upstream router `t` goes to
/// downstream router `(t + c * stride) mod down_routers`, filling ports
/// in arrival order. `stride` is chosen so the `d` copies land in
/// distinct routers whenever `down_routers >= d`.
#[must_use]
pub fn deterministic(
    up_routers: usize,
    dilation: usize,
    down_routers: usize,
    down_ports: usize,
) -> Assignment {
    let n = up_routers * dilation;
    assert_eq!(
        n,
        down_routers * down_ports,
        "wire and port counts must balance"
    );
    let stride = (down_routers / dilation).max(1);
    let mut next_port = vec![0usize; down_routers];
    let mut assignment = vec![usize::MAX; n];
    for c in 0..dilation {
        for t in 0..up_routers {
            let w = wire_index(t, c, up_routers);
            // Probe from the preferred router to the next with a free port.
            let mut r = (t + c * stride) % down_routers;
            while next_port[r] >= down_ports {
                r = (r + 1) % down_routers;
            }
            assignment[w] = r * down_ports + next_port[r];
            next_port[r] += 1;
        }
    }
    assignment
}

/// Randomized wiring with per-router distinctness: the `d` copies of each
/// upstream router land in `d` distinct downstream routers, but which
/// routers is random. Falls back to plain random assignment if
/// distinctness cannot be satisfied after bounded retries (only possible
/// when `down_routers < dilation`).
#[must_use]
pub fn randomized(
    up_routers: usize,
    dilation: usize,
    down_routers: usize,
    down_ports: usize,
    rng: &mut RandomSource,
) -> Assignment {
    let n = up_routers * dilation;
    assert_eq!(
        n,
        down_routers * down_ports,
        "wire and port counts must balance"
    );
    'retry: for _ in 0..64 {
        let mut ports: Vec<usize> = (0..n).collect();
        // Fisher-Yates shuffle of the downstream port slots.
        for k in (1..n).rev() {
            ports.swap(k, rng.index(k + 1));
        }
        let mut assignment = vec![usize::MAX; n];
        let mut cursor = 0usize;
        for t in 0..up_routers {
            let mut used_routers = Vec::with_capacity(dilation);
            for c in 0..dilation {
                // Scan forward for a slot in a router not yet used by
                // this upstream router.
                let mut probe = cursor;
                loop {
                    if probe >= n {
                        continue 'retry;
                    }
                    let r = ports[probe] / down_ports;
                    if !used_routers.contains(&r) {
                        ports.swap(cursor, probe);
                        break;
                    }
                    probe += 1;
                }
                let slot = ports[cursor];
                cursor += 1;
                used_routers.push(slot / down_ports);
                assignment[wire_index(t, c, up_routers)] = slot;
            }
        }
        return assignment;
    }
    // down_routers < dilation: distinctness impossible; random only.
    let mut ports: Vec<usize> = (0..n).collect();
    for k in (1..n).rev() {
        ports.swap(k, rng.index(k + 1));
    }
    ports
}

/// Checks the distinctness property: for every upstream router, its
/// dilated copies land in distinct downstream routers.
#[must_use]
pub fn has_distinctness(
    assignment: &Assignment,
    up_routers: usize,
    dilation: usize,
    down_ports: usize,
) -> bool {
    for t in 0..up_routers {
        let mut routers: Vec<usize> = (0..dilation)
            .map(|c| assignment[wire_index(t, c, up_routers)] / down_ports)
            .collect();
        routers.sort_unstable();
        routers.dedup();
        if routers.len() != dilation {
            return false;
        }
    }
    true
}

/// Checks that the assignment is a permutation (every port used once).
#[must_use]
pub fn is_permutation(assignment: &Assignment) -> bool {
    let mut seen = vec![false; assignment.len()];
    for &a in assignment {
        if a >= seen.len() || seen[a] {
            return false;
        }
        seen[a] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_is_a_permutation_with_distinctness() {
        for (up, d, down, ports) in [(8, 2, 4, 4), (4, 2, 4, 2), (8, 1, 2, 4), (16, 2, 8, 4)] {
            let a = deterministic(up, d, down, ports);
            assert!(is_permutation(&a), "{up}x{d} -> {down}x{ports}");
            assert!(
                has_distinctness(&a, up, d, ports),
                "{up}x{d} -> {down}x{ports}"
            );
        }
    }

    #[test]
    fn randomized_is_a_permutation_with_distinctness() {
        let mut rng = RandomSource::new(42);
        for (up, d, down, ports) in [(8, 2, 4, 4), (4, 2, 4, 2), (16, 2, 8, 4)] {
            for _ in 0..10 {
                let a = randomized(up, d, down, ports, &mut rng);
                assert!(is_permutation(&a));
                assert!(has_distinctness(&a, up, d, ports));
            }
        }
    }

    #[test]
    fn randomized_differs_between_draws() {
        let mut rng = RandomSource::new(7);
        let a = randomized(8, 2, 4, 4, &mut rng);
        let b = randomized(8, 2, 4, 4, &mut rng);
        assert_ne!(a, b, "two draws should (overwhelmingly) differ");
    }

    #[test]
    fn randomized_same_seed_reproduces() {
        let mut r1 = RandomSource::new(9);
        let mut r2 = RandomSource::new(9);
        assert_eq!(
            randomized(8, 2, 4, 4, &mut r1),
            randomized(8, 2, 4, 4, &mut r2)
        );
    }

    #[test]
    fn dilation_one_trivially_distinct() {
        let a = deterministic(4, 1, 4, 1);
        assert!(is_permutation(&a));
        assert!(has_distinctness(&a, 4, 1, 1));
    }

    #[test]
    #[should_panic(expected = "must balance")]
    fn unbalanced_counts_panic() {
        let _ = deterministic(4, 2, 4, 1);
    }

    #[test]
    fn wire_index_is_copy_major() {
        assert_eq!(wire_index(3, 0, 8), 3);
        assert_eq!(wire_index(3, 1, 8), 11);
    }
}
