//! Flat, precomputed channel indexing for simulator hot paths.
//!
//! A cycle-accurate simulator touches every channel of the network every
//! clock cycle. Resolving each channel through
//! [`Multibutterfly::link`]/[`Multibutterfly::injection`] per tick costs
//! a bounds-checked nested lookup per port per cycle; [`FlatLinks`]
//! performs that resolution **once**, assigning every channel a dense
//! *slot* index into contiguous arrays:
//!
//! * **forward slots** — one per router forward (input-side) port,
//!   numbered stage-major: `fslot(s, r, f) = fbase[s] + r·fports[s] + f`.
//! * **backward slots** — one per router backward (output-side) port:
//!   `bslot(s, r, b) = bbase[s] + r·bports[s] + b`.
//! * **endpoint slots** — one per endpoint port:
//!   `ep_slot(e, p) = e·ep_ports + p`.
//!
//! Each backward slot carries its wire's destination as a
//! [`FlatTarget`]: either the forward slot it feeds in the next stage or
//! the endpoint slot it delivers to. Each endpoint slot carries the
//! stage-0 forward slot its injection wire feeds. A simulator can then
//! walk plain arrays with no per-tick topology queries at all.

use crate::graph::LinkTarget;
use crate::multibutterfly::Multibutterfly;

/// Where a backward-port wire delivers its forward lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlatTarget {
    /// A forward-port slot of the next stage (`fslot` numbering).
    Fwd(u32),
    /// An endpoint input slot (`ep_slot` numbering) — the delivery
    /// boundary out of the last stage.
    Endpoint(u32),
}

/// A dense, contiguous index of every channel in a multibutterfly.
///
/// Built once from a [`Multibutterfly`]; see the [module
/// documentation](self) for the slot numbering scheme.
#[derive(Debug, Clone)]
pub struct FlatLinks {
    stages: usize,
    endpoints: usize,
    ep_ports: usize,
    /// Routers per stage.
    routers: Vec<u32>,
    /// Forward ports per router, per stage.
    fports: Vec<u32>,
    /// Backward ports per router, per stage.
    bports: Vec<u32>,
    /// First forward slot of each stage (plus a final total entry).
    fbase: Vec<u32>,
    /// First backward slot of each stage (plus a final total entry).
    bbase: Vec<u32>,
    /// First flat router index of each stage (plus a final total entry).
    rbase: Vec<u32>,
    /// Destination of each backward slot's wire.
    bwd_target: Vec<FlatTarget>,
    /// Stage-0 forward slot fed by each endpoint slot's injection wire.
    inj_target: Vec<u32>,
}

impl FlatLinks {
    /// Resolves every link of `topo` into a flat slot table.
    ///
    /// # Panics
    ///
    /// Panics if the network holds more than `u32::MAX` channels of one
    /// kind (far beyond any simulable size).
    #[must_use]
    pub fn build(topo: &Multibutterfly) -> Self {
        let stages = topo.stages();
        let mut routers = Vec::with_capacity(stages);
        let mut fports = Vec::with_capacity(stages);
        let mut bports = Vec::with_capacity(stages);
        let mut fbase = Vec::with_capacity(stages + 1);
        let mut bbase = Vec::with_capacity(stages + 1);
        let mut rbase = Vec::with_capacity(stages + 1);
        let (mut ftot, mut btot, mut rtot) = (0u32, 0u32, 0u32);
        for s in 0..stages {
            let st = topo.stage_spec(s);
            let n = u32::try_from(topo.routers_in_stage(s)).expect("router count fits u32");
            routers.push(n);
            fports.push(u32::try_from(st.forward_ports).expect("port count fits u32"));
            bports.push(u32::try_from(st.backward_ports).expect("port count fits u32"));
            fbase.push(ftot);
            bbase.push(btot);
            rbase.push(rtot);
            ftot = ftot
                .checked_add(n * fports[s])
                .expect("forward slots fit u32");
            btot = btot
                .checked_add(n * bports[s])
                .expect("backward slots fit u32");
            rtot = rtot.checked_add(n).expect("routers fit u32");
        }
        fbase.push(ftot);
        bbase.push(btot);
        rbase.push(rtot);

        let mut links = Self {
            stages,
            endpoints: topo.endpoints(),
            ep_ports: topo.endpoint_ports(),
            routers,
            fports,
            bports,
            fbase,
            bbase,
            rbase,
            bwd_target: Vec::with_capacity(btot as usize),
            inj_target: Vec::new(),
        };

        for s in 0..stages {
            for r in 0..links.routers[s] as usize {
                for b in 0..links.bports[s] as usize {
                    let target = match topo.link(s, r, b) {
                        LinkTarget::Router { router, port } => {
                            FlatTarget::Fwd(links.fslot(s + 1, router, port) as u32)
                        }
                        LinkTarget::Endpoint { endpoint, port } => {
                            FlatTarget::Endpoint(links.ep_slot(endpoint, port) as u32)
                        }
                    };
                    links.bwd_target.push(target);
                }
            }
        }
        links.inj_target = (0..links.endpoints)
            .flat_map(|e| {
                (0..links.ep_ports).map(move |p| {
                    let (r0, f0) = topo.injection(e, p);
                    (r0, f0)
                })
            })
            .map(|(r0, f0)| links.fslot(0, r0, f0) as u32)
            .collect();
        links
    }

    /// Number of stages.
    #[must_use]
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Number of endpoints.
    #[must_use]
    pub fn endpoints(&self) -> usize {
        self.endpoints
    }

    /// Ports per endpoint (injection == delivery side).
    #[must_use]
    pub fn ep_ports(&self) -> usize {
        self.ep_ports
    }

    /// Total endpoint slots (`endpoints × ep_ports`).
    #[must_use]
    pub fn n_ep_slots(&self) -> usize {
        self.endpoints * self.ep_ports
    }

    /// Total forward slots across all stages.
    #[must_use]
    pub fn n_fwd_slots(&self) -> usize {
        self.fbase[self.stages] as usize
    }

    /// Total backward slots across all stages.
    #[must_use]
    pub fn n_bwd_slots(&self) -> usize {
        self.bbase[self.stages] as usize
    }

    /// Total routers across all stages.
    #[must_use]
    pub fn n_routers(&self) -> usize {
        self.rbase[self.stages] as usize
    }

    /// Routers in stage `s`.
    #[must_use]
    pub fn routers_in_stage(&self, s: usize) -> usize {
        self.routers[s] as usize
    }

    /// Forward ports per router in stage `s`.
    #[must_use]
    pub fn forward_ports(&self, s: usize) -> usize {
        self.fports[s] as usize
    }

    /// Backward ports per router in stage `s`.
    #[must_use]
    pub fn backward_ports(&self, s: usize) -> usize {
        self.bports[s] as usize
    }

    /// Forward slot of port `f` of router `r` in stage `s`.
    #[must_use]
    pub fn fslot(&self, s: usize, r: usize, f: usize) -> usize {
        (self.fbase[s] + r as u32 * self.fports[s] + f as u32) as usize
    }

    /// Backward slot of port `b` of router `r` in stage `s`.
    #[must_use]
    pub fn bslot(&self, s: usize, r: usize, b: usize) -> usize {
        (self.bbase[s] + r as u32 * self.bports[s] + b as u32) as usize
    }

    /// Flat index of router `r` in stage `s` (stage-major numbering).
    #[must_use]
    pub fn router_index(&self, s: usize, r: usize) -> usize {
        (self.rbase[s] + r as u32) as usize
    }

    /// Destination of backward slot `slot`'s wire.
    #[must_use]
    pub fn bwd_target(&self, slot: usize) -> FlatTarget {
        self.bwd_target[slot]
    }

    /// Slot of port `p` of endpoint `e`.
    #[must_use]
    pub fn ep_slot(&self, e: usize, p: usize) -> usize {
        e * self.ep_ports + p
    }

    /// Stage-0 forward slot fed by endpoint slot `slot`'s injection
    /// wire.
    #[must_use]
    pub fn inj_target(&self, slot: usize) -> usize {
        self.inj_target[slot] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multibutterfly::MultibutterflySpec;

    fn figure1() -> (Multibutterfly, FlatLinks) {
        let topo = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
        let links = FlatLinks::build(&topo);
        (topo, links)
    }

    #[test]
    fn slot_totals_match_port_sums() {
        let (topo, links) = figure1();
        let fwd: usize = (0..topo.stages())
            .map(|s| topo.routers_in_stage(s) * topo.stage_spec(s).forward_ports)
            .sum();
        let bwd: usize = (0..topo.stages())
            .map(|s| topo.routers_in_stage(s) * topo.stage_spec(s).backward_ports)
            .sum();
        assert_eq!(links.n_fwd_slots(), fwd);
        assert_eq!(links.n_bwd_slots(), bwd);
        assert_eq!(links.n_ep_slots(), topo.endpoints() * topo.endpoint_ports());
        let routers: usize = (0..topo.stages()).map(|s| topo.routers_in_stage(s)).sum();
        assert_eq!(links.n_routers(), routers);
    }

    #[test]
    fn slots_are_dense_and_stage_major() {
        let (topo, links) = figure1();
        let mut expect = 0;
        for s in 0..topo.stages() {
            for r in 0..topo.routers_in_stage(s) {
                for f in 0..topo.stage_spec(s).forward_ports {
                    assert_eq!(links.fslot(s, r, f), expect);
                    expect += 1;
                }
            }
        }
        assert_eq!(expect, links.n_fwd_slots());
    }

    #[test]
    fn backward_targets_agree_with_topology_lookups() {
        let (topo, links) = figure1();
        for s in 0..topo.stages() {
            for r in 0..topo.routers_in_stage(s) {
                for b in 0..topo.stage_spec(s).backward_ports {
                    let expected = match topo.link(s, r, b) {
                        LinkTarget::Router { router, port } => {
                            FlatTarget::Fwd(links.fslot(s + 1, router, port) as u32)
                        }
                        LinkTarget::Endpoint { endpoint, port } => {
                            FlatTarget::Endpoint(links.ep_slot(endpoint, port) as u32)
                        }
                    };
                    assert_eq!(links.bwd_target(links.bslot(s, r, b)), expected);
                }
            }
        }
    }

    #[test]
    fn injection_targets_agree_with_topology_lookups() {
        let (topo, links) = figure1();
        for e in 0..topo.endpoints() {
            for p in 0..topo.endpoint_ports() {
                let (r0, f0) = topo.injection(e, p);
                assert_eq!(
                    links.inj_target(links.ep_slot(e, p)),
                    links.fslot(0, r0, f0)
                );
            }
        }
    }

    #[test]
    fn every_last_stage_backward_slot_delivers_to_an_endpoint() {
        let (topo, links) = figure1();
        let last = topo.stages() - 1;
        let mut seen = vec![false; links.n_ep_slots()];
        for r in 0..topo.routers_in_stage(last) {
            for b in 0..topo.stage_spec(last).backward_ports {
                match links.bwd_target(links.bslot(last, r, b)) {
                    FlatTarget::Endpoint(i) => {
                        assert!(!seen[i as usize], "endpoint slot fed twice");
                        seen[i as usize] = true;
                    }
                    FlatTarget::Fwd(_) => panic!("last stage must deliver to endpoints"),
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "every endpoint slot must be fed");
    }
}
