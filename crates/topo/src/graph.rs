//! Identifiers and link targets for multistage network graphs.

use core::fmt;

/// Identifies one router in a multistage network by stage and position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouterId {
    /// Stage index, 0 at the injection side.
    pub stage: usize,
    /// Router index within the stage.
    pub index: usize,
}

impl RouterId {
    /// Creates a router identifier.
    #[must_use]
    pub fn new(stage: usize, index: usize) -> Self {
        Self { stage, index }
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}.{}", self.stage, self.index)
    }
}

/// Where a backward port's wire lands: the next stage's router or, after
/// the final stage, an endpoint input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkTarget {
    /// A forward port of a router in the next stage.
    Router {
        /// Router index within the next stage.
        router: usize,
        /// Forward port index on that router.
        port: usize,
    },
    /// An input port of a network endpoint.
    Endpoint {
        /// Endpoint index.
        endpoint: usize,
        /// Input port index on that endpoint.
        port: usize,
    },
}

impl LinkTarget {
    /// The downstream router index, if the target is a router.
    #[must_use]
    pub fn router(&self) -> Option<usize> {
        match self {
            Self::Router { router, .. } => Some(*router),
            Self::Endpoint { .. } => None,
        }
    }

    /// The endpoint index, if the target is an endpoint.
    #[must_use]
    pub fn endpoint(&self) -> Option<usize> {
        match self {
            Self::Endpoint { endpoint, .. } => Some(*endpoint),
            Self::Router { .. } => None,
        }
    }
}

/// Identifies one inter-stage wire by its source backward port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId {
    /// Source stage (the wire runs from this stage toward stage + 1 or
    /// the endpoints).
    pub stage: usize,
    /// Source router index within the stage.
    pub router: usize,
    /// Source backward port.
    pub port: usize,
}

impl LinkId {
    /// Creates a link identifier.
    #[must_use]
    pub fn new(stage: usize, router: usize, port: usize) -> Self {
        Self {
            stage,
            router,
            port,
        }
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}.{}.{}", self.stage, self.router, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_id_orders_by_stage_then_index() {
        let a = RouterId::new(0, 5);
        let b = RouterId::new(1, 0);
        assert!(a < b);
        assert_eq!(a.to_string(), "r0.5");
    }

    #[test]
    fn link_target_accessors() {
        let r = LinkTarget::Router { router: 3, port: 1 };
        assert_eq!(r.router(), Some(3));
        assert_eq!(r.endpoint(), None);
        let e = LinkTarget::Endpoint {
            endpoint: 7,
            port: 0,
        };
        assert_eq!(e.endpoint(), Some(7));
        assert_eq!(e.router(), None);
    }

    #[test]
    fn link_id_displays_compactly() {
        assert_eq!(LinkId::new(2, 4, 6).to_string(), "l2.4.6");
    }
}
