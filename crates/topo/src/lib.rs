//! # metro-topo — multipath multistage network topologies
//!
//! METRO routers are building blocks for indirect, multistage routing
//! networks: multibutterflies (paper Figure 1, \[16\], \[23\]) and fat-trees
//! (\[17\], \[14\], \[7\]). This crate constructs such topologies from router
//! parameters, analyzes their multipath structure, and models faults.
//!
//! * [`multibutterfly`] — the paper's primary network class: per-stage
//!   dilation, deterministic or randomized inter-stage wiring.
//! * [`fattree`] — fat-tree construction and capacity/path analysis.
//! * [`paths`] — path enumeration and counting between endpoints.
//! * [`fault`] — static and dynamic fault sets (routers, links, ports).
//! * [`flatlinks`] — dense channel-slot indexing for simulator hot paths.
//! * [`analysis`] — connectivity and fault-tolerance analysis.
//!
//! ```
//! use metro_topo::multibutterfly::{Multibutterfly, MultibutterflySpec, StageSpec, WiringStyle};
//!
//! // The 16-endpoint network of paper Figure 1.
//! let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
//! assert_eq!(net.endpoints(), 16);
//! assert_eq!(net.stages(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod dot;
pub mod fattree;
pub mod fault;
pub mod flatlinks;
pub mod graph;
pub mod multibutterfly;
pub mod paths;
pub mod wiring;

pub use fault::{FaultKind, FaultSet};
pub use flatlinks::{FlatLinks, FlatTarget};
pub use graph::{LinkTarget, RouterId};
pub use multibutterfly::{Multibutterfly, MultibutterflySpec, StageSpec, WiringStyle};
