//! Path enumeration and counting.
//!
//! "Dilated routing components give rise to multiple independent paths
//! through the network. The multiple paths in the network increase
//! available bandwidth, decrease congestion, and provide tolerance to
//! link and router faults" (paper §2). These routines quantify that
//! multipath structure: how many wire-level paths connect an endpoint
//! pair, which routers they traverse, and how the counts degrade under a
//! [`FaultSet`].

use crate::fault::FaultSet;
use crate::graph::{LinkId, LinkTarget};
use crate::multibutterfly::Multibutterfly;
use std::collections::BTreeMap;

/// Counts the wire-level paths from endpoint `src` to endpoint `dest`
/// that survive `faults`.
///
/// A path uses one source output port, one wire per stage boundary in
/// the correct logical direction, and one destination input port; dead
/// routers, dead links, and corrupting links are all excluded (a
/// corrupting link cannot carry a successful transmission).
#[must_use]
pub fn count_paths(net: &Multibutterfly, src: usize, dest: usize, faults: &FaultSet) -> usize {
    if faults.endpoint_dead(src) || faults.endpoint_dead(dest) {
        return 0;
    }
    let digits = net.route_digits(dest);
    // Multiplicity of wire-paths arriving at each live stage-0 router.
    let mut mult: BTreeMap<usize, usize> = BTreeMap::new();
    for p in 0..net.endpoint_ports() {
        let (r, _) = net.injection(src, p);
        if !faults.router_dead(0, r) {
            *mult.entry(r).or_insert(0) += 1;
        }
    }
    for (s, &j) in digits.iter().enumerate().take(net.stages()) {
        let st = net.stage_spec(s);
        let mut next: BTreeMap<usize, usize> = BTreeMap::new();
        let mut delivered = 0usize;
        for (&r, &m) in &mult {
            for c in 0..st.dilation {
                let b = j * st.dilation + c;
                let link = LinkId::new(s, r, b);
                if faults.link_fault(link).is_some() {
                    continue;
                }
                match net.link(s, r, b) {
                    LinkTarget::Router { router, .. } => {
                        if !faults.router_dead(s + 1, router) {
                            *next.entry(router).or_insert(0) += m;
                        }
                    }
                    LinkTarget::Endpoint { endpoint, .. } => {
                        if endpoint == dest {
                            delivered += m;
                        }
                    }
                }
            }
        }
        if s + 1 == net.stages() {
            return delivered;
        }
        mult = next;
        if mult.is_empty() {
            return 0;
        }
    }
    0
}

/// One concrete path: the router visited at each stage (the source
/// output port and per-stage backward port are implicit in the wires).
pub type RouterPath = Vec<usize>;

/// Enumerates up to `limit` distinct router-level paths from `src` to
/// `dest` surviving `faults`.
#[must_use]
pub fn enumerate_paths(
    net: &Multibutterfly,
    src: usize,
    dest: usize,
    faults: &FaultSet,
    limit: usize,
) -> Vec<RouterPath> {
    let digits = net.route_digits(dest);
    let mut results = Vec::new();
    let mut entry_routers: Vec<usize> = (0..net.endpoint_ports())
        .map(|p| net.injection(src, p).0)
        .collect();
    entry_routers.sort_unstable();
    entry_routers.dedup();
    for r in entry_routers {
        if faults.router_dead(0, r) {
            continue;
        }
        extend(
            net,
            faults,
            &digits,
            dest,
            0,
            r,
            &mut vec![r],
            &mut results,
            limit,
        );
        if results.len() >= limit {
            break;
        }
    }
    results
}

#[allow(clippy::too_many_arguments)]
fn extend(
    net: &Multibutterfly,
    faults: &FaultSet,
    digits: &[usize],
    dest: usize,
    s: usize,
    r: usize,
    prefix: &mut Vec<usize>,
    results: &mut Vec<RouterPath>,
    limit: usize,
) {
    if results.len() >= limit {
        return;
    }
    let st = net.stage_spec(s);
    let j = digits[s];
    let mut next_routers: Vec<usize> = Vec::new();
    for c in 0..st.dilation {
        let b = j * st.dilation + c;
        if faults.link_fault(LinkId::new(s, r, b)).is_some() {
            continue;
        }
        match net.link(s, r, b) {
            LinkTarget::Router { router, .. } => {
                if !faults.router_dead(s + 1, router) && !next_routers.contains(&router) {
                    next_routers.push(router);
                }
            }
            LinkTarget::Endpoint { endpoint, .. } => {
                if endpoint == dest && results.len() < limit {
                    results.push(prefix.clone());
                }
            }
        }
    }
    for router in next_routers {
        prefix.push(router);
        extend(
            net,
            faults,
            digits,
            dest,
            s + 1,
            router,
            prefix,
            results,
            limit,
        );
        prefix.pop();
    }
}

/// The minimum wire-level path count over every ordered endpoint pair —
/// the network's weakest connectivity.
#[must_use]
pub fn min_path_count(net: &Multibutterfly, faults: &FaultSet) -> usize {
    let mut min = usize::MAX;
    for src in 0..net.endpoints() {
        for dest in 0..net.endpoints() {
            min = min.min(count_paths(net, src, dest, faults));
            if min == 0 {
                return 0;
            }
        }
    }
    min
}

/// All link identifiers of the network (useful for random fault
/// sampling).
#[must_use]
pub fn all_links(net: &Multibutterfly) -> Vec<LinkId> {
    let mut links = Vec::new();
    for s in 0..net.stages() {
        let st = net.stage_spec(s);
        for r in 0..net.routers_in_stage(s) {
            for b in 0..st.backward_ports {
                links.push(LinkId::new(s, r, b));
            }
        }
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multibutterfly::MultibutterflySpec;

    #[test]
    fn fault_free_figure1_has_many_paths() {
        let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
        let faults = FaultSet::new();
        // Paper Figure 1 caption: "there are many paths between each
        // pair of network endpoints" — endpoints 6 and 16 are shown.
        // (The paper numbers endpoints 1-16; we use 0-15.)
        let paths = count_paths(&net, 5, 15, &faults);
        assert!(paths >= 8, "expected ≥8 wire paths, found {paths}");
        assert!(min_path_count(&net, &faults) >= 8);
    }

    #[test]
    fn path_multiplicity_is_dilation_product() {
        // Fault-free: 2 entry ports × 2 × 2 (dilation-2 stages) × 1
        // (dilation-1 final) = 8 wire paths, every pair.
        let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
        let faults = FaultSet::new();
        for src in 0..16 {
            for dest in 0..16 {
                assert_eq!(count_paths(&net, src, dest, &faults), 8, "{src}->{dest}");
            }
        }
    }

    #[test]
    fn enumerated_paths_follow_route_digits() {
        let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
        let faults = FaultSet::new();
        let paths = enumerate_paths(&net, 3, 12, &faults, 64);
        assert!(!paths.is_empty());
        for p in &paths {
            assert_eq!(p.len(), net.stages());
            // Last-stage router must deliver to destination 12.
            let last = *p.last().unwrap();
            let st = net.stage_spec(net.stages() - 1);
            let j = net.route_digits(12)[net.stages() - 1];
            let hits_dest = (0..st.dilation).any(|c| {
                matches!(
                    net.link(net.stages() - 1, last, j * st.dilation + c),
                    LinkTarget::Endpoint { endpoint: 12, .. }
                )
            });
            assert!(hits_dest);
        }
    }

    #[test]
    fn dead_router_reduces_but_does_not_disconnect() {
        let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
        let mut faults = FaultSet::new();
        faults.kill_router(1, 0);
        let min = min_path_count(&net, &faults);
        assert!(
            min >= 1,
            "a single mid-stage router loss must not disconnect"
        );
        assert!(min < 8, "but it must cost some paths somewhere");
    }

    #[test]
    fn dead_link_excluded_from_paths() {
        let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
        let faults = FaultSet::new();
        let baseline = count_paths(&net, 0, 15, &faults);
        let digits = net.route_digits(15);
        // Kill one injection-stage link on the route.
        let (r, _) = net.injection(0, 0);
        let mut f2 = FaultSet::new();
        f2.break_link(
            LinkId::new(0, r, digits[0] * net.stage_spec(0).dilation),
            crate::fault::FaultKind::Dead,
        );
        let reduced = count_paths(&net, 0, 15, &f2);
        assert!(reduced < baseline);
        assert!(reduced > 0);
    }

    #[test]
    fn dead_endpoint_has_no_paths() {
        let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
        let mut faults = FaultSet::new();
        faults.kill_endpoint(7);
        assert_eq!(count_paths(&net, 7, 3, &faults), 0);
        assert_eq!(count_paths(&net, 3, 7, &faults), 0);
        assert!(count_paths(&net, 3, 8, &faults) > 0);
    }

    #[test]
    fn corrupting_link_counts_as_unusable() {
        let net = Multibutterfly::build(&MultibutterflySpec::small8()).unwrap();
        let all = all_links(&net);
        let mut faults = FaultSet::new();
        faults.break_link(all[0], crate::fault::FaultKind::CorruptData { xor: 1 });
        // Some pair's count must drop relative to fault-free.
        let clean = FaultSet::new();
        let dropped = (0..8).any(|src| {
            (0..8).any(|dest| {
                count_paths(&net, src, dest, &faults) < count_paths(&net, src, dest, &clean)
            })
        });
        assert!(dropped);
    }

    #[test]
    fn all_links_counts_every_backward_port() {
        let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
        // 8 routers × 4 ports × 3 stages = 96 links.
        assert_eq!(all_links(&net).len(), 96);
    }
}
