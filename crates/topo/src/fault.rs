//! Fault models for multistage networks.
//!
//! METRO networks tolerate both *static* faults (masked by disabling
//! ports under scan control, paper §5.1) and *dynamic* faults (avoided
//! on retry through stochastic path selection, paper §4). A
//! [`FaultSet`] names the broken elements; the simulator consults it
//! each cycle, and the analysis routines compute the surviving path
//! structure.

use crate::graph::LinkId;
use metro_core::RandomSource;
use std::collections::HashMap;
use std::collections::HashSet;

/// How a faulty element misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The element is dead: wires driven by it read as undriven
    /// ([`Word::Empty`](metro_core::Word::Empty)).
    Dead,
    /// The element corrupts data words passing through it by XORing the
    /// given mask (control words pass unharmed — the insidious case
    /// that only checksums catch).
    CorruptData {
        /// XOR mask applied to data words.
        xor: u16,
    },
    /// A transient (intermittent) fault: every `period`-th data word
    /// crossing the element is corrupted — the marginal-wire /
    /// crosstalk case the paper's *dynamic fault* handling targets:
    /// most retries succeed, so the element stays in service until
    /// diagnosis decides otherwise.
    Intermittent {
        /// XOR mask applied to the affected words.
        xor: u16,
        /// Corrupt one data word in every `period` (>= 1).
        period: u32,
    },
}

/// A set of faulty network elements.
///
/// # Examples
///
/// ```
/// use metro_topo::{FaultSet, FaultKind};
/// use metro_topo::graph::LinkId;
///
/// let mut faults = FaultSet::new();
/// faults.kill_router(1, 3);
/// faults.break_link(LinkId::new(0, 2, 1), FaultKind::CorruptData { xor: 0x01 });
/// assert!(faults.router_dead(1, 3));
/// assert_eq!(faults.total(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSet {
    dead_routers: HashSet<(usize, usize)>,
    links: HashMap<LinkId, FaultKind>,
    dead_endpoints: HashSet<usize>,
}

impl FaultSet {
    /// An empty (fault-free) set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks router `r` of stage `s` completely dead.
    pub fn kill_router(&mut self, s: usize, r: usize) {
        self.dead_routers.insert((s, r));
    }

    /// Marks a link faulty with the given behaviour. A dead link reads
    /// as undriven; a corrupting link flips data bits.
    pub fn break_link(&mut self, link: LinkId, kind: FaultKind) {
        self.links.insert(link, kind);
    }

    /// Marks endpoint `e` dead (it neither injects nor acknowledges).
    pub fn kill_endpoint(&mut self, e: usize) {
        self.dead_endpoints.insert(e);
    }

    /// Whether router `r` of stage `s` is dead.
    #[must_use]
    pub fn router_dead(&self, s: usize, r: usize) -> bool {
        self.dead_routers.contains(&(s, r))
    }

    /// The fault on a link, if any.
    #[must_use]
    pub fn link_fault(&self, link: LinkId) -> Option<FaultKind> {
        self.links.get(&link).copied()
    }

    /// Whether a link is dead (not merely corrupting).
    #[must_use]
    pub fn link_dead(&self, link: LinkId) -> bool {
        matches!(self.links.get(&link), Some(FaultKind::Dead))
    }

    /// Whether endpoint `e` is dead.
    #[must_use]
    pub fn endpoint_dead(&self, e: usize) -> bool {
        self.dead_endpoints.contains(&e)
    }

    /// Total number of faulty elements.
    #[must_use]
    pub fn total(&self) -> usize {
        self.dead_routers.len() + self.links.len() + self.dead_endpoints.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Iterates over the dead routers as `(stage, router)` pairs.
    pub fn dead_routers(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.dead_routers.iter().copied()
    }

    /// Iterates over the faulty links.
    pub fn faulty_links(&self) -> impl Iterator<Item = (LinkId, FaultKind)> + '_ {
        self.links.iter().map(|(l, k)| (*l, *k))
    }

    /// Iterates over the dead endpoints.
    pub fn dead_endpoints(&self) -> impl Iterator<Item = usize> + '_ {
        self.dead_endpoints.iter().copied()
    }

    /// Removes the fault on a link (repair).
    pub fn repair_link(&mut self, link: LinkId) {
        self.links.remove(&link);
    }

    /// Revives a dead router (repair).
    pub fn revive_router(&mut self, s: usize, r: usize) {
        self.dead_routers.remove(&(s, r));
    }

    /// Revives a dead endpoint (repair).
    pub fn revive_endpoint(&mut self, e: usize) {
        self.dead_endpoints.remove(&e);
    }

    /// Merges another fault set into this one (union). Link faults in
    /// `other` override an existing fault on the same link — the newer
    /// diagnosis wins, matching how the simulator's timed fault
    /// injections accumulate.
    pub fn merge(&mut self, other: &FaultSet) {
        self.dead_routers.extend(other.dead_routers.iter().copied());
        for (l, k) in &other.links {
            self.links.insert(*l, *k);
        }
        self.dead_endpoints
            .extend(other.dead_endpoints.iter().copied());
    }

    /// Kills a uniformly random selection of `count` routers drawn from
    /// the per-stage router counts in `routers_per_stage`, avoiding
    /// duplicates. Returns the victims.
    pub fn kill_random_routers(
        &mut self,
        routers_per_stage: &[usize],
        count: usize,
        rng: &mut RandomSource,
    ) -> Vec<(usize, usize)> {
        let mut all: Vec<(usize, usize)> = routers_per_stage
            .iter()
            .enumerate()
            .flat_map(|(s, &n)| (0..n).map(move |r| (s, r)))
            .filter(|k| !self.dead_routers.contains(k))
            .collect();
        let mut victims = Vec::with_capacity(count);
        for _ in 0..count.min(all.len()) {
            let idx = rng.index(all.len());
            let victim = all.swap_remove(idx);
            self.dead_routers.insert(victim);
            victims.push(victim);
        }
        victims
    }

    /// Kills a uniformly random selection of `count` links from the
    /// candidate list. Returns the victims.
    pub fn kill_random_links(
        &mut self,
        candidates: &[LinkId],
        count: usize,
        rng: &mut RandomSource,
    ) -> Vec<LinkId> {
        let mut all: Vec<LinkId> = candidates
            .iter()
            .copied()
            .filter(|l| !self.links.contains_key(l))
            .collect();
        let mut victims = Vec::with_capacity(count);
        for _ in 0..count.min(all.len()) {
            let idx = rng.index(all.len());
            let victim = all.swap_remove(idx);
            self.links.insert(victim, FaultKind::Dead);
            victims.push(victim);
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_reports_nothing() {
        let f = FaultSet::new();
        assert!(f.is_empty());
        assert!(!f.router_dead(0, 0));
        assert!(!f.link_dead(LinkId::new(0, 0, 0)));
        assert_eq!(f.link_fault(LinkId::new(0, 0, 0)), None);
    }

    #[test]
    fn kill_and_revive_router() {
        let mut f = FaultSet::new();
        f.kill_router(2, 5);
        assert!(f.router_dead(2, 5));
        assert!(!f.router_dead(2, 4));
        f.revive_router(2, 5);
        assert!(f.is_empty());
    }

    #[test]
    fn break_and_repair_link() {
        let mut f = FaultSet::new();
        let l = LinkId::new(1, 2, 3);
        f.break_link(l, FaultKind::CorruptData { xor: 0x80 });
        assert_eq!(f.link_fault(l), Some(FaultKind::CorruptData { xor: 0x80 }));
        assert!(!f.link_dead(l), "corrupting is not dead");
        f.break_link(l, FaultKind::Dead);
        assert!(f.link_dead(l));
        f.repair_link(l);
        assert!(f.is_empty());
    }

    #[test]
    fn random_router_kills_are_unique_and_counted() {
        let mut f = FaultSet::new();
        let mut rng = RandomSource::new(3);
        let victims = f.kill_random_routers(&[8, 8, 8], 10, &mut rng);
        assert_eq!(victims.len(), 10);
        let unique: HashSet<_> = victims.iter().collect();
        assert_eq!(unique.len(), 10);
        assert_eq!(f.total(), 10);
        // Cannot kill more than exist.
        let more = f.kill_random_routers(&[8, 8, 8], 100, &mut rng);
        assert_eq!(more.len(), 14);
    }

    #[test]
    fn random_link_kills_respect_candidates() {
        let mut f = FaultSet::new();
        let mut rng = RandomSource::new(4);
        let candidates: Vec<LinkId> = (0..6).map(|p| LinkId::new(0, 0, p)).collect();
        let victims = f.kill_random_links(&candidates, 3, &mut rng);
        assert_eq!(victims.len(), 3);
        for v in &victims {
            assert!(candidates.contains(v));
            assert!(f.link_dead(*v));
        }
    }

    #[test]
    fn merge_unions_and_overrides_links() {
        let mut a = FaultSet::new();
        a.kill_router(0, 1);
        a.break_link(LinkId::new(0, 0, 0), FaultKind::Dead);
        let mut b = FaultSet::new();
        b.kill_router(1, 2);
        b.kill_endpoint(3);
        b.break_link(LinkId::new(0, 0, 0), FaultKind::CorruptData { xor: 0x10 });
        a.merge(&b);
        assert!(a.router_dead(0, 1) && a.router_dead(1, 2));
        assert!(a.endpoint_dead(3));
        assert_eq!(
            a.link_fault(LinkId::new(0, 0, 0)),
            Some(FaultKind::CorruptData { xor: 0x10 }),
            "newer fault wins on merge"
        );
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn endpoint_faults() {
        let mut f = FaultSet::new();
        f.kill_endpoint(9);
        assert!(f.endpoint_dead(9));
        assert!(!f.endpoint_dead(8));
        assert_eq!(f.total(), 1);
        f.revive_endpoint(9);
        assert!(f.is_empty());
        // Reviving a live endpoint is a no-op, not an error.
        f.revive_endpoint(9);
        assert!(f.is_empty());
    }
}
