//! Graphviz DOT export of multibutterfly networks.
//!
//! Renders the port-level structure — endpoints, per-stage routers,
//! every wire — for visual inspection of wirings and fault sets. Faulty
//! elements are drawn dashed/red so a diagnosis session can literally
//! see what it concluded.

use crate::fault::FaultSet;
use crate::graph::{LinkId, LinkTarget};
use crate::multibutterfly::Multibutterfly;
use std::fmt::Write as _;

/// Renders the network as a Graphviz digraph (left-to-right ranks:
/// sources, stages, destinations). Pass an empty [`FaultSet`] for a
/// healthy drawing.
#[must_use]
pub fn to_dot(net: &Multibutterfly, faults: &FaultSet) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph metro {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");

    // Source endpoints.
    let _ = writeln!(out, "  subgraph cluster_src {{ label=\"sources\";");
    for e in 0..net.endpoints() {
        let _ = writeln!(out, "    src{e} [label=\"ep {e}\", shape=ellipse];");
    }
    let _ = writeln!(out, "  }}");

    // Stages.
    for s in 0..net.stages() {
        let st = net.stage_spec(s);
        let _ = writeln!(
            out,
            "  subgraph cluster_s{s} {{ label=\"stage {s} ({}x{} d{})\";",
            st.forward_ports,
            st.radix(),
            st.dilation
        );
        for r in 0..net.routers_in_stage(s) {
            let style = if faults.router_dead(s, r) {
                ", style=filled, fillcolor=\"#ffcccc\", color=red"
            } else {
                ""
            };
            let _ = writeln!(out, "    r{s}_{r} [label=\"r{s}.{r}\"{style}];");
        }
        let _ = writeln!(out, "  }}");
    }

    // Destination endpoints.
    let _ = writeln!(out, "  subgraph cluster_dst {{ label=\"destinations\";");
    for e in 0..net.endpoints() {
        let style = if faults.endpoint_dead(e) {
            ", style=filled, fillcolor=\"#ffcccc\", color=red"
        } else {
            ""
        };
        let _ = writeln!(out, "    dst{e} [label=\"ep {e}\", shape=ellipse{style}];");
    }
    let _ = writeln!(out, "  }}");

    // Injection wires.
    for e in 0..net.endpoints() {
        for p in 0..net.endpoint_ports() {
            let (r, f) = net.injection(e, p);
            let _ = writeln!(out, "  src{e} -> r0_{r} [headlabel=\"{f}\", fontsize=8];");
        }
    }
    // Inter-stage and delivery wires.
    for s in 0..net.stages() {
        for r in 0..net.routers_in_stage(s) {
            for b in 0..net.stage_spec(s).backward_ports {
                let style = match faults.link_fault(LinkId::new(s, r, b)) {
                    Some(crate::fault::FaultKind::Dead) => " [style=dotted, color=red]",
                    Some(_) => " [style=dashed, color=red]",
                    None => "",
                };
                match net.link(s, r, b) {
                    LinkTarget::Router { router, .. } => {
                        let _ = writeln!(out, "  r{s}_{r} -> r{}_{router}{style};", s + 1);
                    }
                    LinkTarget::Endpoint { endpoint, .. } => {
                        let _ = writeln!(out, "  r{s}_{r} -> dst{endpoint}{style};");
                    }
                }
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use crate::multibutterfly::MultibutterflySpec;

    #[test]
    fn healthy_figure1_renders_every_element() {
        let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
        let dot = to_dot(&net, &FaultSet::new());
        assert!(dot.starts_with("digraph metro {"));
        assert!(dot.trim_end().ends_with('}'));
        // 16 sources + 16 destinations + 24 routers.
        assert_eq!(dot.matches("shape=ellipse").count(), 32);
        for s in 0..3 {
            for r in 0..8 {
                assert!(dot.contains(&format!("r{s}_{r} ")), "router r{s}.{r}");
            }
        }
        // 32 injection wires + 96 router-output wires.
        assert_eq!(dot.matches(" -> ").count(), 32 + 96);
        assert!(!dot.contains("color=red"));
    }

    #[test]
    fn faults_are_highlighted() {
        let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
        let mut faults = FaultSet::new();
        faults.kill_router(1, 2);
        faults.break_link(
            crate::graph::LinkId::new(0, 0, 0),
            FaultKind::CorruptData { xor: 1 },
        );
        faults.kill_endpoint(5);
        let dot = to_dot(&net, &faults);
        assert!(dot.contains("r1_2 [label=\"r1.2\", style=filled"));
        assert_eq!(dot.matches("style=dashed, color=red").count(), 1);
        assert!(dot.contains("dst5 [label=\"ep 5\", shape=ellipse, style=filled"));
    }

    #[test]
    fn dot_is_deterministic() {
        let net = Multibutterfly::build(&MultibutterflySpec::small8()).unwrap();
        let f = FaultSet::new();
        assert_eq!(to_dot(&net, &f), to_dot(&net, &f));
    }
}
