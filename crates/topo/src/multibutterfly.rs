//! Multibutterfly network construction.
//!
//! A multibutterfly is a multistage network in which every stage
//! subdivides the set of reachable destinations by the stage's radix,
//! and dilation provides multiple equivalent wires per logical direction
//! (paper §2, Figure 1; \[16\], \[23\]).
//!
//! The builder generalizes the paper's Figure 1: any number of stages,
//! per-stage router shapes and dilations, two endpoint-side port counts,
//! and deterministic or randomized inter-stage wiring. Validation
//! enforces the counting identities that make the construction close:
//! the product of stage radices must equal the endpoint count, and wire
//! counts must balance at every stage boundary.

use crate::graph::LinkTarget;
use crate::wiring;
use core::fmt;
use metro_core::header::HeaderPlan;
use metro_core::RandomSource;

/// The shape of the routers used in one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageSpec {
    /// Forward ports per router, `i`.
    pub forward_ports: usize,
    /// Backward ports per router, `o`.
    pub backward_ports: usize,
    /// Configured dilation `d`; the stage's radix is `o / d`.
    pub dilation: usize,
}

impl StageSpec {
    /// Creates a stage spec.
    #[must_use]
    pub fn new(forward_ports: usize, backward_ports: usize, dilation: usize) -> Self {
        Self {
            forward_ports,
            backward_ports,
            dilation,
        }
    }

    /// The stage's radix, `o / d`.
    #[must_use]
    pub fn radix(&self) -> usize {
        self.backward_ports / self.dilation
    }

    /// Bits of routing information this stage consumes, `log2(radix)`.
    #[must_use]
    pub fn digit_bits(&self) -> usize {
        metro_core::params::log2_exact(self.radix())
    }
}

/// Inter-stage wiring style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WiringStyle {
    /// Regular strided wiring; dilated copies land in distinct
    /// downstream routers.
    Deterministic,
    /// Randomized wiring with the same distinctness guarantee — the
    /// construction behind randomly-wired multibutterflies (\[15\], \[16\]).
    #[default]
    Randomized,
}

/// A validation error from [`Multibutterfly::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// The product of stage radices must equal the endpoint count.
    AddressSpaceMismatch {
        /// Product of the stage radices.
        radix_product: usize,
        /// Declared endpoint count.
        endpoints: usize,
    },
    /// A stage's dilation does not divide its backward port count.
    DilationMismatch {
        /// The offending stage.
        stage: usize,
    },
    /// Wire counts do not balance at a stage boundary.
    UnbalancedBoundary {
        /// The stage whose input boundary is unbalanced (stage count =
        /// endpoint delivery boundary).
        stage: usize,
        /// Wires arriving at the boundary.
        wires: usize,
        /// Ports available at the boundary.
        ports: usize,
    },
    /// Routers cannot be divided evenly among destination groups.
    IndivisibleGroups {
        /// The offending stage.
        stage: usize,
    },
    /// A stage radix or router count is not a power of two (required so
    /// route digits are whole bit fields).
    NotPowerOfTwo {
        /// The offending stage.
        stage: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::AddressSpaceMismatch {
                radix_product,
                endpoints,
            } => write!(
                f,
                "stage radices multiply to {radix_product} but the network has {endpoints} endpoints"
            ),
            Self::DilationMismatch { stage } => {
                write!(f, "stage {stage} dilation does not divide its port count")
            }
            Self::UnbalancedBoundary {
                stage,
                wires,
                ports,
            } => write!(
                f,
                "boundary into stage {stage} has {wires} wires for {ports} ports"
            ),
            Self::IndivisibleGroups { stage } => {
                write!(f, "stage {stage} routers do not divide evenly into groups")
            }
            Self::NotPowerOfTwo { stage } => {
                write!(f, "stage {stage} radix is not a power of two")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Specification of a multibutterfly network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultibutterflySpec {
    /// Number of network endpoints (sources and destinations).
    pub endpoints: usize,
    /// Ports per endpoint, both entering and leaving the network
    /// (2 in Figures 1 and 3).
    pub endpoint_ports: usize,
    /// Stage shapes, injection side first.
    pub stages: Vec<StageSpec>,
    /// Inter-stage wiring style.
    pub wiring: WiringStyle,
    /// Seed for randomized wiring.
    pub seed: u64,
}

impl MultibutterflySpec {
    /// The 16-endpoint network of paper Figure 1: 4×2 (inputs × radix)
    /// dilation-2 routers in the first two stages and 4×4 dilation-1
    /// routers in the final stage; two ports per endpoint.
    #[must_use]
    pub fn figure1() -> Self {
        Self {
            endpoints: 16,
            endpoint_ports: 2,
            stages: vec![
                StageSpec::new(4, 4, 2),
                StageSpec::new(4, 4, 2),
                StageSpec::new(4, 4, 1),
            ],
            wiring: WiringStyle::Randomized,
            seed: 0x1611,
        }
    }

    /// The 64-endpoint network of the paper's Figure 3 simulation:
    /// three stages of radix-4 routers, dilation 2 in the first two
    /// stages (8×8 parts) and dilation 1 in the last (4×4 parts); two
    /// ports per endpoint.
    #[must_use]
    pub fn figure3() -> Self {
        Self {
            endpoints: 64,
            endpoint_ports: 2,
            stages: vec![
                StageSpec::new(8, 8, 2),
                StageSpec::new(8, 8, 2),
                StageSpec::new(4, 4, 1),
            ],
            wiring: WiringStyle::Randomized,
            seed: 0x1994,
        }
    }

    /// The 32-node multibutterfly the `t_20,32` figure of merit of
    /// Tables 3–5 is defined over: four stages "constructed like the
    /// one shown in Figure 1" — three radix-2 dilation-2 stages and a
    /// radix-4 dilation-1 delivery stage, two ports per endpoint.
    #[must_use]
    pub fn paper32() -> Self {
        Self {
            endpoints: 32,
            endpoint_ports: 2,
            stages: vec![
                StageSpec::new(4, 4, 2),
                StageSpec::new(4, 4, 2),
                StageSpec::new(4, 4, 2),
                StageSpec::new(4, 4, 1),
            ],
            wiring: WiringStyle::Randomized,
            seed: 0x2032,
        }
    }

    /// The Figure 3 network with an **extra randomizing stage** in
    /// front: a radix-1, dilation-8 stage that consumes no routing
    /// digits and scatters every connection across all sixteen stage-1
    /// routers — the classic extra-stage construction for fault
    /// tolerance and congestion spreading in MINs (the approach of the
    /// paper's reference \[10\]).
    #[must_use]
    pub fn figure3_extra_stage() -> Self {
        Self {
            endpoints: 64,
            endpoint_ports: 2,
            stages: vec![
                StageSpec::new(8, 8, 8), // radix 1: pure randomizer
                StageSpec::new(8, 8, 2),
                StageSpec::new(8, 8, 2),
                StageSpec::new(4, 4, 1),
            ],
            wiring: WiringStyle::Randomized,
            seed: 0x1995,
        }
    }

    /// A small 8-endpoint network handy for tests: two radix-2
    /// dilation-2 stages and a radix-2 dilation-1 final stage.
    #[must_use]
    pub fn small8() -> Self {
        Self {
            endpoints: 8,
            endpoint_ports: 2,
            stages: vec![
                StageSpec::new(4, 4, 2),
                StageSpec::new(4, 4, 2),
                StageSpec::new(2, 2, 1),
            ],
            wiring: WiringStyle::Randomized,
            seed: 8,
        }
    }

    /// Sets the wiring style (builder-style).
    #[must_use]
    pub fn with_wiring(mut self, wiring: WiringStyle) -> Self {
        self.wiring = wiring;
        self
    }

    /// Sets the wiring seed (builder-style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Where a router's forward port is fed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feeder {
    /// An endpoint's output port.
    Endpoint {
        /// Endpoint index.
        endpoint: usize,
        /// Output port on the endpoint.
        port: usize,
    },
    /// A previous-stage router's backward port.
    Router {
        /// Router index within the previous stage.
        router: usize,
        /// Backward port on that router.
        port: usize,
    },
}

/// A constructed multibutterfly network: routers arranged in stages with
/// explicit port-level wiring, ready to be instantiated by the
/// simulator or analyzed structurally.
#[derive(Debug, Clone)]
pub struct Multibutterfly {
    spec: MultibutterflySpec,
    routers_per_stage: Vec<usize>,
    groups_per_stage: Vec<usize>,
    /// `links[s][r][b]` — where backward port `b` of router `r` in
    /// stage `s` connects.
    links: Vec<Vec<Vec<LinkTarget>>>,
    /// `feeders[s][r][f]` — what drives forward port `f` of router `r`
    /// in stage `s`.
    feeders: Vec<Vec<Vec<Feeder>>>,
    /// `injections[e][p]` — the stage-0 (router, forward port) endpoint
    /// `e`'s output port `p` connects to.
    injections: Vec<Vec<(usize, usize)>>,
    /// `deliveries[e][p]` — the last-stage (router, backward port)
    /// feeding endpoint `e`'s input port `p`.
    deliveries: Vec<Vec<(usize, usize)>>,
}

impl Multibutterfly {
    /// Builds the network described by `spec`.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if the specification's counting
    /// identities do not close (see the module docs).
    pub fn build(spec: &MultibutterflySpec) -> Result<Self, TopologyError> {
        let s_count = spec.stages.len();
        let mut rng = RandomSource::new(spec.seed);

        // --- validation ---
        let mut radix_product = 1usize;
        for (s, st) in spec.stages.iter().enumerate() {
            if st.dilation == 0 || st.backward_ports % st.dilation != 0 {
                return Err(TopologyError::DilationMismatch { stage: s });
            }
            let r = st.radix();
            if !r.is_power_of_two() {
                return Err(TopologyError::NotPowerOfTwo { stage: s });
            }
            radix_product *= r;
        }
        if radix_product != spec.endpoints {
            return Err(TopologyError::AddressSpaceMismatch {
                radix_product,
                endpoints: spec.endpoints,
            });
        }

        let mut wires = spec.endpoints * spec.endpoint_ports;
        let mut groups = 1usize;
        let mut routers_per_stage = Vec::with_capacity(s_count);
        let mut groups_per_stage = Vec::with_capacity(s_count);
        for (s, st) in spec.stages.iter().enumerate() {
            if !wires.is_multiple_of(st.forward_ports) {
                return Err(TopologyError::UnbalancedBoundary {
                    stage: s,
                    wires,
                    ports: st.forward_ports,
                });
            }
            let routers = wires / st.forward_ports;
            if !routers.is_multiple_of(groups) {
                return Err(TopologyError::IndivisibleGroups { stage: s });
            }
            routers_per_stage.push(routers);
            groups_per_stage.push(groups);
            wires = routers * st.backward_ports;
            groups *= st.radix();
        }
        // Delivery boundary: `wires` final wires over `endpoints`
        // destinations must give exactly `endpoint_ports` each.
        if wires != spec.endpoints * spec.endpoint_ports {
            return Err(TopologyError::UnbalancedBoundary {
                stage: s_count,
                wires,
                ports: spec.endpoints * spec.endpoint_ports,
            });
        }

        // --- storage ---
        let mut links: Vec<Vec<Vec<LinkTarget>>> = spec
            .stages
            .iter()
            .enumerate()
            .map(|(s, st)| {
                vec![
                    vec![
                        LinkTarget::Endpoint {
                            endpoint: usize::MAX,
                            port: usize::MAX
                        };
                        st.backward_ports
                    ];
                    routers_per_stage[s]
                ]
            })
            .collect();
        let mut feeders: Vec<Vec<Vec<Feeder>>> = spec
            .stages
            .iter()
            .enumerate()
            .map(|(s, st)| {
                vec![
                    vec![
                        Feeder::Endpoint {
                            endpoint: usize::MAX,
                            port: usize::MAX
                        };
                        st.forward_ports
                    ];
                    routers_per_stage[s]
                ]
            })
            .collect();
        let mut injections =
            vec![vec![(usize::MAX, usize::MAX); spec.endpoint_ports]; spec.endpoints];
        let mut deliveries =
            vec![vec![(usize::MAX, usize::MAX); spec.endpoint_ports]; spec.endpoints];

        // --- injection boundary: endpoints -> stage 0 ---
        {
            let st = spec.stages[0];
            let assignment = match spec.wiring {
                WiringStyle::Deterministic => wiring::deterministic(
                    spec.endpoints,
                    spec.endpoint_ports,
                    routers_per_stage[0],
                    st.forward_ports,
                ),
                WiringStyle::Randomized => wiring::randomized(
                    spec.endpoints,
                    spec.endpoint_ports,
                    routers_per_stage[0],
                    st.forward_ports,
                    &mut rng,
                ),
            };
            for e in 0..spec.endpoints {
                for p in 0..spec.endpoint_ports {
                    let slot = assignment[wiring::wire_index(e, p, spec.endpoints)];
                    let router = slot / st.forward_ports;
                    let port = slot % st.forward_ports;
                    injections[e][p] = (router, port);
                    feeders[0][router][port] = Feeder::Endpoint {
                        endpoint: e,
                        port: p,
                    };
                }
            }
        }

        // --- inter-stage and delivery boundaries ---
        for s in 0..s_count {
            let st = spec.stages[s];
            let rpg = routers_per_stage[s] / groups_per_stage[s];
            let radix = st.radix();
            for g in 0..groups_per_stage[s] {
                for j in 0..radix {
                    // Subgroup (s, g, j): rpg routers × dilation wires.
                    let subgroup_wires = rpg * st.dilation;
                    if s + 1 < s_count {
                        let nst = spec.stages[s + 1];
                        let down_groups = groups_per_stage[s + 1];
                        let down_rpg = routers_per_stage[s + 1] / down_groups;
                        let down_group = g * radix + j;
                        let assignment = match spec.wiring {
                            WiringStyle::Deterministic => {
                                wiring::deterministic(rpg, st.dilation, down_rpg, nst.forward_ports)
                            }
                            WiringStyle::Randomized => wiring::randomized(
                                rpg,
                                st.dilation,
                                down_rpg,
                                nst.forward_ports,
                                &mut rng,
                            ),
                        };
                        for t in 0..rpg {
                            for c in 0..st.dilation {
                                let up_router = g * rpg + t;
                                let bwd = j * st.dilation + c;
                                let slot = assignment[wiring::wire_index(t, c, rpg)];
                                let down_local = slot / nst.forward_ports;
                                let down_port = slot % nst.forward_ports;
                                let down_router = down_group * down_rpg + down_local;
                                links[s][up_router][bwd] = LinkTarget::Router {
                                    router: down_router,
                                    port: down_port,
                                };
                                feeders[s + 1][down_router][down_port] = Feeder::Router {
                                    router: up_router,
                                    port: bwd,
                                };
                            }
                        }
                    } else {
                        // Delivery: subgroup (g, j) is destination g*radix + j.
                        let dest = g * radix + j;
                        debug_assert_eq!(subgroup_wires, spec.endpoint_ports);
                        for t in 0..rpg {
                            for c in 0..st.dilation {
                                let up_router = g * rpg + t;
                                let bwd = j * st.dilation + c;
                                let port = t * st.dilation + c;
                                links[s][up_router][bwd] = LinkTarget::Endpoint {
                                    endpoint: dest,
                                    port,
                                };
                                deliveries[dest][port] = (up_router, bwd);
                            }
                        }
                    }
                }
            }
        }

        Ok(Self {
            spec: spec.clone(),
            routers_per_stage,
            groups_per_stage,
            links,
            feeders,
            injections,
            deliveries,
        })
    }

    /// The specification the network was built from.
    #[must_use]
    pub fn spec(&self) -> &MultibutterflySpec {
        &self.spec
    }

    /// Number of stages.
    #[must_use]
    pub fn stages(&self) -> usize {
        self.spec.stages.len()
    }

    /// Number of endpoints.
    #[must_use]
    pub fn endpoints(&self) -> usize {
        self.spec.endpoints
    }

    /// Ports per endpoint (entering and leaving).
    #[must_use]
    pub fn endpoint_ports(&self) -> usize {
        self.spec.endpoint_ports
    }

    /// The router shape used in stage `s`.
    #[must_use]
    pub fn stage_spec(&self, s: usize) -> StageSpec {
        self.spec.stages[s]
    }

    /// Number of routers in stage `s`.
    #[must_use]
    pub fn routers_in_stage(&self, s: usize) -> usize {
        self.routers_per_stage[s]
    }

    /// Total routers across all stages.
    #[must_use]
    pub fn total_routers(&self) -> usize {
        self.routers_per_stage.iter().sum()
    }

    /// Number of destination groups at the *input* of stage `s`.
    #[must_use]
    pub fn groups_at_stage(&self, s: usize) -> usize {
        self.groups_per_stage[s]
    }

    /// Where backward port `b` of router `r` in stage `s` connects.
    #[must_use]
    pub fn link(&self, s: usize, r: usize, b: usize) -> LinkTarget {
        self.links[s][r][b]
    }

    /// What feeds forward port `f` of router `r` in stage `s`.
    #[must_use]
    pub fn feeder(&self, s: usize, r: usize, f: usize) -> Feeder {
        self.feeders[s][r][f]
    }

    /// The stage-0 (router, forward port) endpoint `e`'s output port `p`
    /// drives.
    #[must_use]
    pub fn injection(&self, e: usize, p: usize) -> (usize, usize) {
        self.injections[e][p]
    }

    /// The last-stage (router, backward port) feeding endpoint `e`'s
    /// input port `p`.
    #[must_use]
    pub fn delivery(&self, e: usize, p: usize) -> (usize, usize) {
        self.deliveries[e][p]
    }

    /// Per-stage route digit widths (bits), injection side first.
    #[must_use]
    pub fn stage_digit_bits(&self) -> Vec<usize> {
        self.spec.stages.iter().map(StageSpec::digit_bits).collect()
    }

    /// The route header plan for messages crossing this network on a
    /// `w`-bit channel with `hw` header words per router.
    #[must_use]
    pub fn header_plan(&self, w: usize, hw: usize) -> HeaderPlan {
        HeaderPlan::new(&self.stage_digit_bits(), w, hw)
    }

    /// The per-stage route digits for destination `dest`.
    #[must_use]
    pub fn route_digits(&self, dest: usize) -> Vec<usize> {
        let mut digits = Vec::with_capacity(self.stages());
        let mut span = self.endpoints();
        let mut rem = dest;
        for st in &self.spec.stages {
            span /= st.radix();
            digits.push(rem / span);
            rem %= span;
        }
        digits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_paper_structure() {
        let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
        assert_eq!(net.endpoints(), 16);
        assert_eq!(net.stages(), 3);
        // 32 wires / 4 inputs = 8 routers per stage.
        assert_eq!(net.routers_in_stage(0), 8);
        assert_eq!(net.routers_in_stage(1), 8);
        assert_eq!(net.routers_in_stage(2), 8);
        assert_eq!(net.total_routers(), 24);
        // Groups refine 1 -> 2 -> 4 -> 16.
        assert_eq!(net.groups_at_stage(0), 1);
        assert_eq!(net.groups_at_stage(1), 2);
        assert_eq!(net.groups_at_stage(2), 4);
        assert_eq!(net.stage_digit_bits(), vec![1, 1, 2]);
    }

    #[test]
    fn figure3_has_paper_structure() {
        let net = Multibutterfly::build(&MultibutterflySpec::figure3()).unwrap();
        assert_eq!(net.endpoints(), 64);
        assert_eq!(net.routers_in_stage(0), 16);
        assert_eq!(net.routers_in_stage(1), 16);
        assert_eq!(net.routers_in_stage(2), 32);
        assert_eq!(net.stage_digit_bits(), vec![2, 2, 2]);
    }

    #[test]
    fn every_wire_lands_exactly_once() {
        for spec in [
            MultibutterflySpec::figure1(),
            MultibutterflySpec::figure3(),
            MultibutterflySpec::small8(),
            MultibutterflySpec::figure1().with_wiring(WiringStyle::Deterministic),
        ] {
            let net = Multibutterfly::build(&spec).unwrap();
            // Every forward port of every stage has a well-defined feeder.
            for s in 0..net.stages() {
                for r in 0..net.routers_in_stage(s) {
                    for f in 0..net.stage_spec(s).forward_ports {
                        match net.feeder(s, r, f) {
                            Feeder::Endpoint { endpoint, .. } => {
                                assert_eq!(s, 0);
                                assert!(endpoint < net.endpoints());
                            }
                            Feeder::Router { router, .. } => {
                                assert!(s > 0);
                                assert!(router < net.routers_in_stage(s - 1));
                            }
                        }
                    }
                }
            }
            // Every endpoint input port has a delivery wire.
            for e in 0..net.endpoints() {
                for p in 0..net.endpoint_ports() {
                    let (r, b) = net.delivery(e, p);
                    assert_eq!(
                        net.link(net.stages() - 1, r, b),
                        LinkTarget::Endpoint {
                            endpoint: e,
                            port: p
                        }
                    );
                }
            }
        }
    }

    #[test]
    fn links_and_feeders_are_inverse() {
        let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
        for s in 0..net.stages() - 1 {
            for r in 0..net.routers_in_stage(s) {
                for b in 0..net.stage_spec(s).backward_ports {
                    if let LinkTarget::Router { router, port } = net.link(s, r, b) {
                        assert_eq!(
                            net.feeder(s + 1, router, port),
                            Feeder::Router { router: r, port: b }
                        );
                    } else {
                        panic!("inter-stage link must target a router");
                    }
                }
            }
        }
    }

    #[test]
    fn links_respect_destination_groups() {
        // A wire in direction j from a stage-s group-g router must land
        // in group g*radix + j of stage s+1.
        let net = Multibutterfly::build(&MultibutterflySpec::figure3()).unwrap();
        for s in 0..net.stages() - 1 {
            let st = net.stage_spec(s);
            let rpg = net.routers_in_stage(s) / net.groups_at_stage(s);
            let down_rpg = net.routers_in_stage(s + 1) / net.groups_at_stage(s + 1);
            for r in 0..net.routers_in_stage(s) {
                let g = r / rpg;
                for b in 0..st.backward_ports {
                    let j = b / st.dilation;
                    let LinkTarget::Router { router, .. } = net.link(s, r, b) else {
                        panic!("expected router target");
                    };
                    assert_eq!(router / down_rpg, g * st.radix() + j);
                }
            }
        }
    }

    #[test]
    fn dilated_copies_reach_distinct_routers() {
        for style in [WiringStyle::Deterministic, WiringStyle::Randomized] {
            let net =
                Multibutterfly::build(&MultibutterflySpec::figure1().with_wiring(style)).unwrap();
            for s in 0..net.stages() - 1 {
                let st = net.stage_spec(s);
                for r in 0..net.routers_in_stage(s) {
                    for j in 0..st.radix() {
                        let mut targets: Vec<usize> = (0..st.dilation)
                            .map(|c| {
                                net.link(s, r, j * st.dilation + c)
                                    .router()
                                    .expect("router target")
                            })
                            .collect();
                        targets.sort_unstable();
                        targets.dedup();
                        assert_eq!(targets.len(), st.dilation, "{style:?} s{s} r{r} j{j}");
                    }
                }
            }
        }
    }

    #[test]
    fn endpoint_output_ports_reach_distinct_routers() {
        let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
        for e in 0..net.endpoints() {
            let (r0, _) = net.injection(e, 0);
            let (r1, _) = net.injection(e, 1);
            assert_ne!(r0, r1, "endpoint {e} ports must hit distinct routers");
        }
    }

    #[test]
    fn route_digits_are_mixed_radix_msb_first() {
        let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
        // Radices 2, 2, 4: dest 13 = 1*8 + 1*4 + 1 -> digits [1, 1, 1].
        assert_eq!(net.route_digits(13), vec![1, 1, 1]);
        assert_eq!(net.route_digits(0), vec![0, 0, 0]);
        assert_eq!(net.route_digits(15), vec![1, 1, 3]);
        // And they agree with the header plan's bit slicing.
        let plan = net.header_plan(8, 0);
        for dest in 0..16 {
            assert_eq!(net.route_digits(dest), plan.digits_for(dest));
        }
    }

    #[test]
    fn extra_stage_network_builds_with_radix_one_front() {
        let net = Multibutterfly::build(&MultibutterflySpec::figure3_extra_stage()).unwrap();
        assert_eq!(net.endpoints(), 64);
        assert_eq!(net.stages(), 4);
        // The randomizer stage consumes no routing bits.
        assert_eq!(net.stage_digit_bits(), vec![0, 2, 2, 2]);
        assert_eq!(net.stage_spec(0).radix(), 1);
        // Every destination's digits still address the space.
        assert_eq!(net.route_digits(63), vec![0, 3, 3, 3]);
        // The groups only start refining after the randomizer.
        assert_eq!(net.groups_at_stage(0), 1);
        assert_eq!(net.groups_at_stage(1), 1);
        assert_eq!(net.groups_at_stage(2), 4);
    }

    #[test]
    fn rejects_mismatched_address_space() {
        let mut spec = MultibutterflySpec::figure1();
        spec.endpoints = 32;
        assert!(matches!(
            Multibutterfly::build(&spec),
            Err(TopologyError::AddressSpaceMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_dilation() {
        let mut spec = MultibutterflySpec::figure1();
        spec.stages[0].dilation = 3;
        assert!(matches!(
            Multibutterfly::build(&spec),
            Err(TopologyError::DilationMismatch { stage: 0 })
                | Err(TopologyError::NotPowerOfTwo { stage: 0 })
        ));
    }

    #[test]
    fn deterministic_wiring_is_reproducible() {
        let spec = MultibutterflySpec::figure1().with_wiring(WiringStyle::Deterministic);
        let a = Multibutterfly::build(&spec).unwrap();
        let b = Multibutterfly::build(&spec).unwrap();
        for s in 0..a.stages() {
            for r in 0..a.routers_in_stage(s) {
                for p in 0..a.stage_spec(s).backward_ports {
                    assert_eq!(a.link(s, r, p), b.link(s, r, p));
                }
            }
        }
    }

    #[test]
    fn randomized_wiring_depends_on_seed() {
        let a = Multibutterfly::build(&MultibutterflySpec::figure1().with_seed(1)).unwrap();
        let b = Multibutterfly::build(&MultibutterflySpec::figure1().with_seed(2)).unwrap();
        let mut differs = false;
        for s in 0..a.stages() {
            for r in 0..a.routers_in_stage(s) {
                for p in 0..a.stage_spec(s).backward_ports {
                    if a.link(s, r, p) != b.link(s, r, p) {
                        differs = true;
                    }
                }
            }
        }
        assert!(differs);
    }
}
