//! Fat-tree topologies.
//!
//! Fat-trees (\[17\], \[14\]) are the second network class the paper names
//! as buildable from METRO routers, with construction details in
//! DeHon's "Practical Schemes for Fat-Tree Network Construction" \[7\].
//! This module models the *structure*: per-level channel capacities, the
//! decomposition of each tree node into fixed-size METRO routers, and
//! the up/down multipath counts between leaves. Cycle-level simulation
//! in this reproduction targets the multibutterfly networks the paper's
//! Figure 3 evaluates; the fat-tree model supports the structural
//! comparisons and router-budget arithmetic of \[7\].
//!
//! The model: a complete `arity`-ary tree with processors at the
//! leaves. The channel between a node at depth `d+1` and its parent at
//! depth `d` has `capacity(d+1)` wires; capacities grow toward the root
//! by `growth` (capped by full bandwidth), the classic "fattening".

use crate::multibutterfly::{MultibutterflySpec, StageSpec, WiringStyle};
use core::fmt;

/// Specification of a fat-tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FatTreeSpec {
    /// Children per internal node.
    pub arity: usize,
    /// Tree depth: leaves sit at depth `levels`, the root at depth 0.
    pub levels: usize,
    /// Wires from each leaf processor into its first routing node.
    pub leaf_capacity: usize,
    /// Capacity growth factor per level toward the root (2 = doubling).
    pub growth: usize,
}

impl FatTreeSpec {
    /// A binary fat-tree with doubling capacities — the Leiserson
    /// universal-network shape.
    #[must_use]
    pub fn binary(levels: usize, leaf_capacity: usize) -> Self {
        Self {
            arity: 2,
            levels,
            leaf_capacity,
            growth: 2,
        }
    }
}

/// An error from [`FatTree::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FatTreeError {
    /// Arity must be at least 2.
    ArityTooSmall,
    /// The tree must have at least one level.
    NoLevels,
    /// Leaf capacity must be nonzero.
    NoLeafCapacity,
    /// Growth must be at least 1.
    NoGrowth,
}

impl fmt::Display for FatTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ArityTooSmall => write!(f, "fat-tree arity must be at least 2"),
            Self::NoLevels => write!(f, "fat-tree must have at least one level"),
            Self::NoLeafCapacity => write!(f, "leaf capacity must be nonzero"),
            Self::NoGrowth => write!(f, "capacity growth must be at least 1"),
        }
    }
}

impl std::error::Error for FatTreeError {}

/// A constructed fat-tree structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FatTree {
    spec: FatTreeSpec,
    /// `capacity[d]` — wires between a node at depth `d` and its parent
    /// (index 0 unused; the root has no parent).
    capacity: Vec<usize>,
}

impl FatTree {
    /// Builds the fat-tree described by `spec`.
    ///
    /// # Errors
    ///
    /// Returns a [`FatTreeError`] for degenerate specifications.
    pub fn build(spec: &FatTreeSpec) -> Result<Self, FatTreeError> {
        if spec.arity < 2 {
            return Err(FatTreeError::ArityTooSmall);
        }
        if spec.levels == 0 {
            return Err(FatTreeError::NoLevels);
        }
        if spec.leaf_capacity == 0 {
            return Err(FatTreeError::NoLeafCapacity);
        }
        if spec.growth == 0 {
            return Err(FatTreeError::NoGrowth);
        }
        // capacity[d]: wires from depth-d node up to its parent.
        // At the leaf boundary (depth = levels) it is leaf_capacity;
        // going up it grows by `growth` but is capped at full
        // bandwidth (arity × child capacity) — beyond that the extra
        // wires could never be used.
        let mut capacity = vec![0usize; spec.levels + 1];
        capacity[spec.levels] = spec.leaf_capacity;
        for d in (1..spec.levels).rev() {
            let below = capacity[d + 1];
            capacity[d] = (below * spec.growth).min(below * spec.arity);
        }
        Ok(Self {
            spec: *spec,
            capacity,
        })
    }

    /// The specification.
    #[must_use]
    pub fn spec(&self) -> &FatTreeSpec {
        &self.spec
    }

    /// Number of leaf processors, `arity^levels`.
    #[must_use]
    pub fn leaves(&self) -> usize {
        self.spec.arity.pow(self.spec.levels as u32)
    }

    /// Wires between a depth-`d` node and its parent (`1 <= d <= levels`).
    ///
    /// # Panics
    ///
    /// Panics for `d == 0` (the root has no parent) or `d > levels`.
    #[must_use]
    pub fn capacity(&self, d: usize) -> usize {
        assert!(
            d >= 1 && d <= self.spec.levels,
            "depth {d} has no up channel"
        );
        self.capacity[d]
    }

    /// Bisection bandwidth in wires: the root's total downward capacity
    /// divided between two halves (binary intuition; for general arity,
    /// the capacity of the root's child channels on one side).
    #[must_use]
    pub fn bisection(&self) -> usize {
        (self.spec.arity / 2) * self.capacity(1)
    }

    /// Depth of the least common ancestor of leaves `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either leaf index is out of range.
    #[must_use]
    pub fn lca_depth(&self, a: usize, b: usize) -> usize {
        let n = self.leaves();
        assert!(a < n && b < n, "leaf index out of range");
        let mut a = a;
        let mut b = b;
        let mut depth = self.spec.levels;
        while a != b {
            a /= self.spec.arity;
            b /= self.spec.arity;
            depth -= 1;
        }
        depth
    }

    /// Number of distinct wire-level up/down paths between leaves `a`
    /// and `b` (full-crossbar switching inside each tree node): the
    /// product of channel capacities up to the LCA and back down.
    #[must_use]
    pub fn path_count(&self, a: usize, b: usize) -> usize {
        if a == b {
            return 1;
        }
        let lca = self.lca_depth(a, b);
        let mut paths = 1usize;
        for d in (lca + 1..=self.spec.levels).rev() {
            paths *= self.capacity(d); // up hop
            paths *= self.capacity(d); // matching down hop
        }
        paths
    }

    /// Unfolds the tree's routing structure into a simulatable
    /// [`MultibutterflySpec`]: one stage per tree level, each of
    /// radix-`arity` dilation-`leaf_capacity` routers
    /// (`arity·leaf_capacity` ports a side), with `leaf_capacity` ports
    /// per leaf endpoint.
    ///
    /// This is the butterfly-equivalent of the *up-path concentrator
    /// column* every leaf climbs — the decomposition of \[7\] builds
    /// both networks from the same parts, and stage `d` here plays the
    /// role of the depth-`levels-d` tree node's switching. Capacity
    /// fattening is not represented (a uniform multibutterfly has
    /// constant per-stage bandwidth), so this models the leaf-local
    /// routing and multipath behavior, not root-channel contention.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is not a power of two — stage radices must
    /// consume whole bits of the destination address.
    #[must_use]
    pub fn to_multibutterfly(&self, wiring: WiringStyle, seed: u64) -> MultibutterflySpec {
        assert!(
            self.spec.arity.is_power_of_two(),
            "fat-tree unfolding requires a power-of-two arity"
        );
        let ports = self.spec.arity * self.spec.leaf_capacity;
        MultibutterflySpec {
            endpoints: self.leaves(),
            endpoint_ports: self.spec.leaf_capacity,
            stages: vec![StageSpec::new(ports, ports, self.spec.leaf_capacity); self.spec.levels],
            wiring,
            seed,
        }
    }

    /// Number of `i_ports × o_ports` METRO routers required to implement
    /// the switching of one node at depth `d` as a full concentrator
    /// between its down-side wires (children + local) and up-side wires,
    /// per the budget arithmetic of \[7\]: `ceil(down/i) · ceil(up/o)`
    /// router positions for the up path plus the mirror for the down
    /// path.
    #[must_use]
    pub fn routers_per_node(&self, d: usize, i_ports: usize, o_ports: usize) -> usize {
        assert!(d >= 1 && d < self.spec.levels, "internal nodes only");
        let down = self.spec.arity * self.capacity(d + 1);
        let up = self.capacity(d);
        let up_routers = down.div_ceil(i_ports) * up.div_ceil(o_ports);
        let down_routers = up.div_ceil(i_ports) * down.div_ceil(o_ports);
        up_routers + down_routers
    }

    /// Total router budget for the whole tree with `i_ports × o_ports`
    /// parts (internal nodes only; leaves connect directly).
    #[must_use]
    pub fn total_routers(&self, i_ports: usize, o_ports: usize) -> usize {
        (1..self.spec.levels)
            .map(|d| self.spec.arity.pow(d as u32) * self.routers_per_node(d, i_ports, o_ports))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_doubling_capacities() {
        let t = FatTree::build(&FatTreeSpec::binary(4, 2)).unwrap();
        assert_eq!(t.leaves(), 16);
        assert_eq!(t.capacity(4), 2);
        assert_eq!(t.capacity(3), 4);
        assert_eq!(t.capacity(2), 8);
        assert_eq!(t.capacity(1), 16);
        assert_eq!(t.bisection(), 16);
    }

    #[test]
    fn growth_is_capped_at_full_bandwidth() {
        let spec = FatTreeSpec {
            arity: 2,
            levels: 3,
            leaf_capacity: 1,
            growth: 8, // absurd growth, must cap at arity
        };
        let t = FatTree::build(&spec).unwrap();
        assert_eq!(t.capacity(3), 1);
        assert_eq!(t.capacity(2), 2);
        assert_eq!(t.capacity(1), 4);
    }

    #[test]
    fn lca_depth_matches_tree_structure() {
        let t = FatTree::build(&FatTreeSpec::binary(3, 1)).unwrap();
        assert_eq!(t.lca_depth(0, 1), 2); // siblings
        assert_eq!(t.lca_depth(0, 2), 1);
        assert_eq!(t.lca_depth(0, 7), 0); // opposite halves -> root
        assert_eq!(t.lca_depth(3, 3), 3); // same leaf
    }

    #[test]
    fn path_count_grows_with_lca_height() {
        let t = FatTree::build(&FatTreeSpec::binary(3, 2)).unwrap();
        // Siblings: up then down through capacity(3) = 2: 2*2 = 4.
        assert_eq!(t.path_count(0, 1), 4);
        // Cousins via depth 1: (2*2) * (4*4) = 64.
        assert_eq!(t.path_count(0, 2), 64);
        // Across the root: (2*2)*(4*4)*(8*8) = 4096.
        assert_eq!(t.path_count(0, 7), 4096);
        assert_eq!(t.path_count(5, 5), 1);
    }

    #[test]
    fn path_count_is_symmetric() {
        let t = FatTree::build(&FatTreeSpec::binary(3, 2)).unwrap();
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(t.path_count(a, b), t.path_count(b, a));
            }
        }
    }

    #[test]
    fn router_budget_is_positive_and_scales() {
        let t = FatTree::build(&FatTreeSpec::binary(4, 2)).unwrap();
        let small = t.total_routers(4, 4);
        let large = t.total_routers(8, 8);
        assert!(small > 0 && large > 0);
        assert!(large <= small, "bigger parts need no more routers");
    }

    #[test]
    fn unfolding_builds_a_valid_multibutterfly() {
        use crate::multibutterfly::Multibutterfly;

        let t = FatTree::build(&FatTreeSpec::binary(3, 2)).unwrap();
        let spec = t.to_multibutterfly(WiringStyle::Randomized, 0xFA7);
        assert_eq!(spec.endpoints, 8);
        assert_eq!(spec.endpoint_ports, 2);
        assert_eq!(spec.stages.len(), 3);
        for s in &spec.stages {
            assert_eq!((s.forward_ports, s.backward_ports, s.dilation), (4, 4, 2));
            assert_eq!(s.radix(), 2);
        }
        // The counting identities close: the builder accepts it.
        let net = Multibutterfly::build(&spec).expect("unfolded spec must validate");
        assert_eq!(net.spec().endpoints, t.leaves());
    }

    #[test]
    #[should_panic(expected = "power-of-two arity")]
    fn unfolding_rejects_non_power_of_two_arity() {
        let t = FatTree::build(&FatTreeSpec {
            arity: 3,
            levels: 2,
            leaf_capacity: 1,
            growth: 2,
        })
        .unwrap();
        let _ = t.to_multibutterfly(WiringStyle::Deterministic, 0);
    }

    #[test]
    fn rejects_degenerate_specs() {
        assert_eq!(
            FatTree::build(&FatTreeSpec {
                arity: 1,
                levels: 2,
                leaf_capacity: 1,
                growth: 2
            }),
            Err(FatTreeError::ArityTooSmall)
        );
        assert_eq!(
            FatTree::build(&FatTreeSpec {
                arity: 2,
                levels: 0,
                leaf_capacity: 1,
                growth: 2
            }),
            Err(FatTreeError::NoLevels)
        );
        assert_eq!(
            FatTree::build(&FatTreeSpec {
                arity: 2,
                levels: 2,
                leaf_capacity: 0,
                growth: 2
            }),
            Err(FatTreeError::NoLeafCapacity)
        );
        assert_eq!(
            FatTree::build(&FatTreeSpec {
                arity: 2,
                levels: 2,
                leaf_capacity: 1,
                growth: 0
            }),
            Err(FatTreeError::NoGrowth)
        );
    }
}
