//! Property-based tests over the topology invariants: every valid
//! specification builds a network whose wiring is a bijection with the
//! dilation-distinctness property, whose route digits address every
//! destination, and whose path counts behave monotonically under
//! faults.

use metro_topo::fault::FaultSet;
use metro_topo::graph::LinkTarget;
use metro_topo::multibutterfly::{Multibutterfly, MultibutterflySpec, StageSpec, WiringStyle};
use metro_topo::paths::{all_links, count_paths};
use proptest::prelude::*;

/// Generates valid small multibutterfly specifications: 2–4 stages of
/// power-of-two radix whose product fixes the endpoint count.
fn specs() -> impl Strategy<Value = MultibutterflySpec> {
    (
        proptest::collection::vec((1usize..=2, 1usize..=2), 2..=4),
        1usize..=2, // endpoint ports
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(stage_shapes, ep, seed, deterministic)| {
            let stages: Vec<StageSpec> = stage_shapes
                .iter()
                .map(|&(radix_log, dil_log)| {
                    let radix = 1 << radix_log;
                    let dilation = 1 << (dil_log - 1);
                    let o = radix * dilation;
                    // Keep i = o so wire counts stay constant between
                    // stages; the endpoint boundary fixes the rest.
                    StageSpec::new(o, o, dilation)
                })
                .collect();
            let endpoints: usize = stages.iter().map(StageSpec::radix).product();
            MultibutterflySpec {
                endpoints,
                endpoint_ports: ep,
                stages,
                wiring: if deterministic {
                    WiringStyle::Deterministic
                } else {
                    WiringStyle::Randomized
                },
                seed,
            }
        })
        .prop_filter("wire counts must balance at every boundary", |spec| {
            Multibutterfly::build(spec).is_ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Links and feeders are mutually inverse for every built network.
    #[test]
    fn links_and_feeders_are_inverse(spec in specs()) {
        let net = Multibutterfly::build(&spec).unwrap();
        for s in 0..net.stages() - 1 {
            for r in 0..net.routers_in_stage(s) {
                for b in 0..net.stage_spec(s).backward_ports {
                    if let LinkTarget::Router { router, port } = net.link(s, r, b) {
                        prop_assert_eq!(
                            net.feeder(s + 1, router, port),
                            metro_topo::multibutterfly::Feeder::Router { router: r, port: b }
                        );
                    } else {
                        prop_assert!(false, "inter-stage link targets a router");
                    }
                }
            }
        }
    }

    /// Dilated copies of any direction reach distinct downstream
    /// routers whenever the downstream group is large enough to allow
    /// it (with fewer downstream routers than the dilation, merging is
    /// forced and the wiring falls back to plain balance).
    #[test]
    fn dilation_distinctness(spec in specs()) {
        let net = Multibutterfly::build(&spec).unwrap();
        for s in 0..net.stages() - 1 {
            let st = net.stage_spec(s);
            let down_rpg = net.routers_in_stage(s + 1) / net.groups_at_stage(s + 1);
            let achievable = st.dilation.min(down_rpg);
            for r in 0..net.routers_in_stage(s) {
                for j in 0..st.radix() {
                    let mut targets: Vec<usize> = (0..st.dilation)
                        .map(|c| net.link(s, r, j * st.dilation + c).router().unwrap())
                        .collect();
                    targets.sort_unstable();
                    targets.dedup();
                    prop_assert!(
                        targets.len() >= achievable,
                        "stage {} router {} dir {}: {} distinct targets, {} achievable",
                        s, r, j, targets.len(), achievable
                    );
                }
            }
        }
    }

    /// Every endpoint pair is connected fault-free, with wire-level
    /// path count exactly `endpoint_ports × Π dilation` (every stage's
    /// dilation multiplies, including the delivery stage's).
    #[test]
    fn fault_free_path_count_is_the_dilation_product(spec in specs()) {
        let net = Multibutterfly::build(&spec).unwrap();
        let expected: usize = spec.endpoint_ports
            * spec
                .stages
                .iter()
                .map(|st| st.dilation)
                .product::<usize>();
        let faults = FaultSet::new();
        // Probe a sample of pairs (all pairs would be slow at 64 cases).
        for src in [0, net.endpoints() / 2] {
            for dest in [0, net.endpoints() - 1] {
                prop_assert_eq!(count_paths(&net, src, dest, &faults), expected);
            }
        }
    }

    /// Killing elements never increases a path count, and repairing
    /// restores it.
    #[test]
    fn faults_are_monotone(spec in specs(), kill_seed in any::<u64>()) {
        let net = Multibutterfly::build(&spec).unwrap();
        let clean = FaultSet::new();
        let baseline = count_paths(&net, 0, net.endpoints() - 1, &clean);
        let mut faults = FaultSet::new();
        let mut rng = metro_core::RandomSource::new(kill_seed);
        let links = all_links(&net);
        faults.kill_random_links(&links, 2, &mut rng);
        let reduced = count_paths(&net, 0, net.endpoints() - 1, &faults);
        prop_assert!(reduced <= baseline);
        for (l, _) in faults.clone().faulty_links() {
            faults.repair_link(l);
        }
        prop_assert_eq!(count_paths(&net, 0, net.endpoints() - 1, &faults), baseline);
    }

    /// Route digits are a bijection onto the destination space.
    #[test]
    fn route_digits_address_every_destination(spec in specs()) {
        let net = Multibutterfly::build(&spec).unwrap();
        let mut seen = std::collections::HashSet::new();
        for dest in 0..net.endpoints() {
            let digits = net.route_digits(dest);
            prop_assert_eq!(digits.len(), net.stages());
            for (s, &d) in digits.iter().enumerate() {
                prop_assert!(d < net.stage_spec(s).radix());
            }
            prop_assert!(seen.insert(digits));
        }
        prop_assert_eq!(seen.len(), net.endpoints());
    }

    /// Deliveries cover every endpoint input port exactly once.
    #[test]
    fn deliveries_are_complete(spec in specs()) {
        let net = Multibutterfly::build(&spec).unwrap();
        let last = net.stages() - 1;
        let mut seen = std::collections::HashSet::new();
        for e in 0..net.endpoints() {
            for p in 0..net.endpoint_ports() {
                let (r, b) = net.delivery(e, p);
                prop_assert_eq!(
                    net.link(last, r, b),
                    LinkTarget::Endpoint { endpoint: e, port: p }
                );
                prop_assert!(seen.insert((r, b)));
            }
        }
    }
}

mod fattree_props {
    use metro_topo::fattree::{FatTree, FatTreeSpec};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Capacities are monotone toward the root and never exceed
        /// full bandwidth.
        #[test]
        fn capacities_monotone_and_bounded(
            arity in 2usize..=4,
            levels in 1usize..=4,
            leaf in 1usize..=4,
            growth in 1usize..=8,
        ) {
            let t = FatTree::build(&FatTreeSpec { arity, levels, leaf_capacity: leaf, growth })
                .unwrap();
            for d in (2..=levels).rev() {
                prop_assert!(t.capacity(d - 1) >= t.capacity(d));
                prop_assert!(t.capacity(d - 1) <= t.capacity(d) * arity);
            }
        }

        /// LCA depth is symmetric, bounded, and equals `levels` only on
        /// the diagonal.
        #[test]
        fn lca_properties(
            levels in 1usize..=3,
            a_seed in any::<usize>(),
            b_seed in any::<usize>(),
        ) {
            let t = FatTree::build(&FatTreeSpec::binary(levels, 1)).unwrap();
            let n = t.leaves();
            let a = a_seed % n;
            let b = b_seed % n;
            prop_assert_eq!(t.lca_depth(a, b), t.lca_depth(b, a));
            prop_assert!(t.lca_depth(a, b) <= levels);
            prop_assert_eq!(t.lca_depth(a, b) == levels, a == b);
        }

        /// Path counts are symmetric and grow (weakly) with LCA height.
        #[test]
        fn path_counts_symmetric_and_monotone(levels in 2usize..=3, leaf in 1usize..=2) {
            let t = FatTree::build(&FatTreeSpec::binary(levels, leaf)).unwrap();
            let n = t.leaves();
            for a in 0..n {
                for b in 0..n {
                    prop_assert_eq!(t.path_count(a, b), t.path_count(b, a));
                    if a != b {
                        // Crossing a higher node can only multiply paths.
                        let sibling = a ^ 1;
                        if sibling != b && t.lca_depth(a, b) < t.lca_depth(a, sibling) {
                            prop_assert!(t.path_count(a, b) >= t.path_count(a, sibling));
                        }
                    }
                }
            }
        }
    }
}
