//! Stochastic backward-port allocation.
//!
//! "When multiple paths are available, the router switches the data to a
//! logically appropriate backward port selected *randomly* from those
//! available. This random path selection is the key to making the
//! protocol robust against dynamic faults while avoiding the need for
//! centralized information about the network state" (paper §4).
//!
//! The allocator is a pure function of the request set, the free/enabled
//! port set, and the random bit stream — the property width cascading
//! relies on ([`CascadeGroup`](crate::CascadeGroup)): identical inputs
//! and shared random bits yield identical allocations on every router of
//! a cascade.

use crate::config::RouterConfig;
use crate::rng::RandomSource;
use metro_telemetry::state::{StateError, StateReader, StateWriter};

/// The `n`-th set bit of `mask` (0-indexed from the least significant
/// end). The caller guarantees `n < mask.count_ones()`.
#[inline]
fn nth_set_bit(mut mask: u64, n: usize) -> usize {
    for _ in 0..n {
        mask &= mask - 1;
    }
    mask.trailing_zeros() as usize
}

/// How a router chooses among multiple free, logically equivalent
/// backward ports.
///
/// The paper's architecture mandates [`SelectionPolicy::Random`]; the
/// alternatives exist for the ablation study (`ablation_selection` in
/// `metro-bench`), quantifying how much the randomization contributes to
/// congestion and fault tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SelectionPolicy {
    /// Uniform random selection among free equivalent ports (the METRO
    /// architecture).
    #[default]
    Random,
    /// Rotate through the equivalent ports (per-direction counter).
    RoundRobin,
    /// Always take the lowest-numbered free port. Deterministic retry
    /// paths — the pathological baseline.
    Fixed,
}

/// The result of one connection request presented to the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocationOutcome {
    /// The request was switched through to the given backward port.
    Granted {
        /// The allocated backward port index.
        bwd: usize,
    },
    /// No free, enabled backward port existed in the requested logical
    /// direction — the connection is *blocked* (paper §3).
    Blocked,
}

impl AllocationOutcome {
    /// The granted backward port, if any.
    #[must_use]
    pub fn port(&self) -> Option<usize> {
        match self {
            Self::Granted { bwd } => Some(*bwd),
            Self::Blocked => None,
        }
    }
}

/// The crosspoint allocator of one METRO router.
///
/// Tracks which backward ports are in use and grants new connection
/// requests. Requests arriving in the same clock cycle are arbitrated in
/// an order derived from the shared random stream, so contention
/// resolution is itself unbiased and cascade-consistent.
///
/// # Examples
///
/// ```
/// use metro_core::{Allocator, ArchParams, RouterConfig, RandomSource};
///
/// let p = ArchParams::rn1();
/// let cfg = RouterConfig::new(&p).with_dilation(2).build().unwrap();
/// let mut alloc = Allocator::new(&cfg, p.backward_ports());
/// let mut rng = RandomSource::new(1);
/// // Request logical direction 3 (ports 6..8 at dilation 2):
/// let out = alloc.request(3, &cfg, &mut rng);
/// let b = out.port().unwrap();
/// assert!(b == 6 || b == 7);
/// ```
#[derive(Debug, Clone)]
pub struct Allocator {
    owner: Vec<Option<usize>>,
    /// Bitplane over backward ports: bit `b` set iff `owner[b]` is
    /// `Some` — the router's IN-USE word. Candidate selection is a
    /// single `!in_use & enabled & group` AND; the wired-AND of the
    /// cascade check reads this word directly.
    in_use: u64,
    policy: SelectionPolicy,
    rr_next: Vec<usize>,
    /// Arbitration-order scratch, reused across ticks so the hot path
    /// never touches the heap.
    arb_order: Vec<usize>,
}

impl Allocator {
    /// Creates an allocator for a router with `o` backward ports.
    #[must_use]
    pub fn new(config: &RouterConfig, o: usize) -> Self {
        assert!(o <= 64, "the IN-USE bitplane holds at most 64 ports");
        Self {
            owner: vec![None; o],
            in_use: 0,
            policy: SelectionPolicy::Random,
            rr_next: vec![0; config.radix()],
            arb_order: Vec::new(),
        }
    }

    /// Creates an allocator with a non-default selection policy (for
    /// ablation experiments).
    #[must_use]
    pub fn with_policy(config: &RouterConfig, o: usize, policy: SelectionPolicy) -> Self {
        Self {
            policy,
            ..Self::new(config, o)
        }
    }

    /// The selection policy in force.
    #[must_use]
    pub fn policy(&self) -> SelectionPolicy {
        self.policy
    }

    /// Whether backward port `b` is currently allocated, and to which
    /// forward port (`None` when free). Unowned allocation (via
    /// [`Allocator::request`]) records owner `usize::MAX`.
    #[must_use]
    pub fn owner(&self, b: usize) -> Option<usize> {
        self.owner[b]
    }

    /// Whether backward port `b` is in use — the `IN-USE` signal each
    /// backward port exposes for the cascade wired-AND check (paper §5.1).
    #[must_use]
    pub fn in_use(&self, b: usize) -> bool {
        self.in_use & (1u64 << b) != 0
    }

    /// The IN-USE word: bit `b` set iff backward port `b` is allocated.
    #[must_use]
    pub fn in_use_mask(&self) -> u64 {
        self.in_use
    }

    /// The full IN-USE vector.
    #[must_use]
    pub fn in_use_vector(&self) -> Vec<bool> {
        (0..self.owner.len()).map(|b| self.in_use(b)).collect()
    }

    /// Number of backward ports currently allocated.
    #[must_use]
    pub fn allocated_count(&self) -> usize {
        self.in_use.count_ones() as usize
    }

    /// Requests a connection in logical direction `dir` with no recorded
    /// owner. See [`Allocator::request_for`] to record the requesting
    /// forward port.
    pub fn request(
        &mut self,
        dir: usize,
        config: &RouterConfig,
        rng: &mut RandomSource,
    ) -> AllocationOutcome {
        self.request_for(usize::MAX, dir, config, rng)
    }

    /// Requests a connection in logical direction `dir` on behalf of
    /// forward port `fwd`.
    ///
    /// Free *and enabled* ports of the direction group are candidates;
    /// one is chosen per the policy. Returns
    /// [`AllocationOutcome::Blocked`] when no candidate exists.
    pub fn request_for(
        &mut self,
        fwd: usize,
        dir: usize,
        config: &RouterConfig,
        rng: &mut RandomSource,
    ) -> AllocationOutcome {
        // The hardware candidate word: free AND enabled AND in the
        // requested direction group — one wired-AND over the bitplanes.
        // `count_ones` replaces the historical double-scan of the port
        // range, but the candidate count (and therefore the number of
        // random indices drawn per grant) is identical, so the shared
        // stream advances exactly as it always has.
        let free = !self.in_use & config.backward_enabled_mask() & config.direction_group_mask(dir);
        let count = free.count_ones() as usize;
        if count == 0 {
            return AllocationOutcome::Blocked;
        }
        let k = match self.policy {
            SelectionPolicy::Random => rng.index(count),
            SelectionPolicy::RoundRobin => {
                let k = self.rr_next[dir] % count;
                self.rr_next[dir] = self.rr_next[dir].wrapping_add(1);
                k
            }
            SelectionPolicy::Fixed => 0,
        };
        let chosen = nth_set_bit(free, k);
        self.owner[chosen] = Some(fwd);
        self.in_use |= 1u64 << chosen;
        AllocationOutcome::Granted { bwd: chosen }
    }

    /// Arbitrates a batch of same-cycle requests `(fwd, dir)` in an
    /// order drawn from the shared random stream, returning one outcome
    /// per request (in the original request order).
    pub fn arbitrate(
        &mut self,
        requests: &[(usize, usize)],
        config: &RouterConfig,
        rng: &mut RandomSource,
    ) -> Vec<AllocationOutcome> {
        let mut outcomes = Vec::with_capacity(requests.len());
        self.arbitrate_into(requests, config, rng, &mut outcomes);
        outcomes
    }

    /// [`Allocator::arbitrate`] into a caller-provided buffer: `outcomes`
    /// is cleared and refilled with one outcome per request (original
    /// request order). Steady-state allocation-free — the arbitration
    /// order lives in a scratch buffer reused across calls.
    pub fn arbitrate_into(
        &mut self,
        requests: &[(usize, usize)],
        config: &RouterConfig,
        rng: &mut RandomSource,
        outcomes: &mut Vec<AllocationOutcome>,
    ) {
        let mut order = std::mem::take(&mut self.arb_order);
        order.clear();
        order.extend(0..requests.len());
        // Fisher-Yates from the shared stream: cascade-deterministic.
        for k in (1..order.len()).rev() {
            order.swap(k, rng.index(k + 1));
        }
        outcomes.clear();
        outcomes.resize(requests.len(), AllocationOutcome::Blocked);
        for &idx in &order {
            let (fwd, dir) = requests[idx];
            outcomes[idx] = self.request_for(fwd, dir, config, rng);
        }
        self.arb_order = order;
    }

    /// Releases backward port `b` (connection closed or torn down).
    pub fn release(&mut self, b: usize) {
        self.owner[b] = None;
        self.in_use &= !(1u64 << b);
    }

    /// Releases every port owned by forward port `fwd`.
    pub fn release_owned_by(&mut self, fwd: usize) {
        for (b, o) in self.owner.iter_mut().enumerate() {
            if *o == Some(fwd) {
                *o = None;
                self.in_use &= !(1u64 << b);
            }
        }
    }

    /// Appends the allocation state (owners, IN-USE word, round-robin
    /// cursors) to a checkpoint stream. The policy and the arbitration
    /// scratch buffer are construction-derived and not written.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.owner.len());
        for o in &self.owner {
            match o {
                Some(fwd) => {
                    w.bool(true);
                    w.usize(*fwd);
                }
                None => w.bool(false),
            }
        }
        w.u64(self.in_use);
        w.usize(self.rr_next.len());
        for &n in &self.rr_next {
            w.usize(n);
        }
    }

    /// Overwrites the allocation state from a checkpoint stream.
    ///
    /// # Errors
    ///
    /// [`StateError::BadValue`] on port-count mismatch or an IN-USE
    /// word inconsistent with the owner table.
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let shape = |detail: String| StateError::BadValue {
            section: String::from("allocator"),
            detail,
        };
        let n = r.usize()?;
        if n != self.owner.len() {
            return Err(shape(format!(
                "saved {n} backward ports, allocator holds {}",
                self.owner.len()
            )));
        }
        for o in &mut self.owner {
            *o = if r.bool()? { Some(r.usize()?) } else { None };
        }
        self.in_use = r.u64()?;
        let expected: u64 = self
            .owner
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(b, _)| 1u64 << b)
            .sum();
        if self.in_use != expected {
            return Err(shape(String::from(
                "IN-USE word disagrees with the owner table",
            )));
        }
        let rr = r.usize()?;
        if rr != self.rr_next.len() {
            return Err(shape(format!(
                "saved {rr} round-robin cursors, allocator holds {}",
                self.rr_next.len()
            )));
        }
        for n in &mut self.rr_next {
            *n = r.usize()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ArchParams;

    fn setup(dilation: usize) -> (RouterConfig, Allocator, RandomSource) {
        let p = ArchParams::rn1();
        let cfg = RouterConfig::new(&p)
            .with_dilation(dilation)
            .build()
            .unwrap();
        let alloc = Allocator::new(&cfg, p.backward_ports());
        (cfg, alloc, RandomSource::new(77))
    }

    #[test]
    fn grants_within_direction_group() {
        let (cfg, mut a, mut rng) = setup(2);
        for _ in 0..32 {
            let out = a.request(1, &cfg, &mut rng);
            if let Some(b) = out.port() {
                assert!((2..4).contains(&b));
                a.release(b);
            }
        }
    }

    #[test]
    fn blocks_when_group_exhausted() {
        let (cfg, mut a, mut rng) = setup(2);
        let first = a.request(0, &cfg, &mut rng).port().unwrap();
        let second = a.request(0, &cfg, &mut rng).port().unwrap();
        assert_ne!(first, second);
        assert_eq!(a.request(0, &cfg, &mut rng), AllocationOutcome::Blocked);
        // Other directions unaffected.
        assert!(a.request(1, &cfg, &mut rng).port().is_some());
    }

    #[test]
    fn never_double_books() {
        let (cfg, mut a, mut rng) = setup(2);
        let mut granted = std::collections::HashSet::new();
        for dir in 0..cfg.radix() {
            for _ in 0..2 {
                if let Some(b) = a.request(dir, &cfg, &mut rng).port() {
                    assert!(granted.insert(b), "port {b} granted twice");
                }
            }
        }
        assert_eq!(granted.len(), 8);
    }

    #[test]
    fn disabled_ports_are_never_selected() {
        let p = ArchParams::rn1();
        let cfg = RouterConfig::new(&p)
            .with_dilation(2)
            .with_backward_port_mode(2, crate::config::PortMode::DisabledDriven)
            .build()
            .unwrap();
        let mut a = Allocator::new(&cfg, 8);
        let mut rng = RandomSource::new(3);
        for _ in 0..16 {
            let b = a.request(1, &cfg, &mut rng).port().unwrap();
            assert_eq!(b, 3, "only enabled port of the group");
            a.release(b);
        }
    }

    #[test]
    fn random_selection_is_roughly_uniform() {
        let (cfg, mut a, mut rng) = setup(2);
        let mut counts = [0usize; 2];
        let trials = 20_000;
        for _ in 0..trials {
            let b = a.request(3, &cfg, &mut rng).port().unwrap();
            counts[b - 6] += 1;
            a.release(b);
        }
        for c in counts {
            assert!(
                (c as i64 - (trials / 2) as i64).abs() < (trials / 20) as i64,
                "selection biased: {counts:?}"
            );
        }
    }

    #[test]
    fn dilation_four_spreads_over_four_ports() {
        let p = ArchParams::new(8, 8, 8, 4, 0, 1).unwrap();
        let cfg = RouterConfig::new(&p).with_dilation(4).build().unwrap();
        let mut a = Allocator::new(&cfg, 8);
        let mut rng = RandomSource::new(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let b = a.request(1, &cfg, &mut rng).port().unwrap();
            seen.insert(b);
            a.release(b);
        }
        assert_eq!(seen, (4..8).collect());
    }

    #[test]
    fn round_robin_rotates() {
        let p = ArchParams::rn1();
        let cfg = RouterConfig::new(&p).with_dilation(2).build().unwrap();
        let mut a = Allocator::with_policy(&cfg, 8, SelectionPolicy::RoundRobin);
        let mut rng = RandomSource::new(1);
        let b1 = a.request(0, &cfg, &mut rng).port().unwrap();
        a.release(b1);
        let b2 = a.request(0, &cfg, &mut rng).port().unwrap();
        assert_ne!(b1, b2);
    }

    #[test]
    fn fixed_always_takes_lowest() {
        let p = ArchParams::rn1();
        let cfg = RouterConfig::new(&p).with_dilation(2).build().unwrap();
        let mut a = Allocator::with_policy(&cfg, 8, SelectionPolicy::Fixed);
        let mut rng = RandomSource::new(1);
        for _ in 0..4 {
            let b = a.request(2, &cfg, &mut rng).port().unwrap();
            assert_eq!(b, 4);
            a.release(b);
        }
    }

    #[test]
    fn arbitration_is_deterministic_under_shared_randomness() {
        let (cfg, a0, _) = setup(2);
        let requests = [(0, 1), (1, 1), (2, 1), (3, 2)];
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        let mut r1 = RandomSource::new(42);
        let mut r2 = RandomSource::new(42);
        assert_eq!(
            a1.arbitrate(&requests, &cfg, &mut r1),
            a2.arbitrate(&requests, &cfg, &mut r2)
        );
        assert_eq!(a1.in_use_vector(), a2.in_use_vector());
    }

    #[test]
    fn arbitration_blocks_excess_requests() {
        let (cfg, mut a, mut rng) = setup(2);
        // Three requests for a direction with two ports: exactly one blocked.
        let outs = a.arbitrate(&[(0, 1), (1, 1), (2, 1)], &cfg, &mut rng);
        let blocked = outs.iter().filter(|o| o.port().is_none()).count();
        assert_eq!(blocked, 1);
    }

    #[test]
    fn release_owned_by_frees_everything() {
        let (cfg, mut a, mut rng) = setup(2);
        a.request_for(5, 0, &cfg, &mut rng);
        a.request_for(5, 1, &cfg, &mut rng);
        a.request_for(6, 2, &cfg, &mut rng);
        assert_eq!(a.allocated_count(), 3);
        a.release_owned_by(5);
        assert_eq!(a.allocated_count(), 1);
    }

    #[test]
    fn in_use_vector_tracks_allocation() {
        let (cfg, mut a, mut rng) = setup(2);
        assert!(a.in_use_vector().iter().all(|&u| !u));
        let b = a.request(0, &cfg, &mut rng).port().unwrap();
        assert!(a.in_use(b));
        assert_eq!(a.in_use_vector().iter().filter(|&&u| u).count(), 1);
    }
}
