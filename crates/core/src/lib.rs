//! # metro-core — the METRO router architecture
//!
//! A from-scratch reproduction of the METRO (Multipath Enhanced Transit
//! Router Organization) routing component described in *METRO: A Router
//! Architecture for High-Performance, Short-Haul Routing Networks*
//! (ISCA 1994).
//!
//! A METRO router is a **dilated crossbar** routing component supporting
//! half-duplex bidirectional, **pipelined, circuit-switched** connections.
//! Routers are self-routing: the leading words of each data stream carry a
//! destination-tag routing specification, and each router consumes one
//! `log2(radix)`-bit digit to select a logical output direction. When
//! several logically equivalent backward ports are free, one is selected
//! **at random** — the key mechanism behind METRO's congestion and fault
//! tolerance, and behind width cascading (identical allocation follows from
//! identical shared random bits).
//!
//! The crate models a router at cycle granularity. [`Router::tick`] consumes
//! one [`Word`] per port per clock cycle and produces the words driven on
//! each port for the next cycle, exactly as the synchronous hardware would.
//!
//! ## Quick example
//!
//! ```
//! use metro_core::{ArchParams, Router, RouterConfig, Word, FwdIn, BwdIn};
//!
//! // METROJR: i = o = w = 4, hw = 0, dp = 1, max_d = 2 (paper §6.1),
//! // configured here in dilation-2 mode (radix 2).
//! let params = ArchParams::metrojr();
//! let config = RouterConfig::new(&params).with_dilation(2).build().unwrap();
//! let mut router = Router::new(params, config, 0xC0FFEE).unwrap();
//!
//! // Open a connection toward logical direction 1 on forward port 0.
//! // With hw = 0 the head word's top bit(s) hold the route digit.
//! let open = FwdIn::idle(4).with(0, Word::Data(0b1000)); // direction 1
//! router.tick(&open, &BwdIn::idle(4));
//! // One cycle later (dp = 1) the stream emerges on a backward port in
//! // group 1 (ports 2 or 3), chosen at random.
//! let cont = FwdIn::idle(4).with(0, Word::Data(0b0101));
//! let out = router.tick(&cont, &BwdIn::idle(4));
//! assert!(out.bwd[2].is_active() || out.bwd[3].is_active());
//! ```
//!
//! ## Module map
//!
//! | module | contents |
//! |--------|----------|
//! | [`params`] | [`ArchParams`] — Table 1 architectural parameters |
//! | [`config`] | [`RouterConfig`] — Table 2 configuration options |
//! | [`word`] | [`Word`] — the channel alphabet (DATA-IDLE, TURN, DROP, …) |
//! | [`status`] | [`StatusWord`] — per-router connection status, injected at turn |
//! | [`checksum`] | [`StreamChecksum`] — running checksum over forwarded words |
//! | [`rng`] | [`RandomSource`] — shared-randomness bit streams |
//! | [`allocator`] | [`Allocator`] — stochastic backward-port selection |
//! | [`router`] | [`Router`] — the cycle-accurate routing component |
//! | [`cascade`] | [`CascadeGroup`] — width cascading with wired-AND checks |
//! | [`header`] | route header construction/consumption helpers |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allocator;
pub mod cascade;
pub mod checksum;
pub mod config;
pub mod error;
pub mod header;
pub mod params;
pub mod rng;
pub mod router;
pub mod status;
pub mod word;

pub use allocator::{AllocationOutcome, Allocator, SelectionPolicy};
pub use cascade::{CascadeError, CascadeGroup};
pub use checksum::StreamChecksum;
pub use config::{ConfigBuilder, PortMode, RouterConfig};
pub use error::{ConfigError, ParamError};
pub use header::RouteHeader;
pub use params::ArchParams;
pub use rng::RandomSource;
pub use router::{BwdIn, FwdIn, PortStatus, Router, TickOutput};
pub use status::{ConnectionState, StatusWord};
pub use word::Word;
