//! Architectural parameters — Table 1 of the paper.
//!
//! The METRO architecture describes a *family* of routers. A concrete
//! implementation is pinned down by the parameters in [`ArchParams`],
//! validated against the constraints Table 1 lists:
//!
//! | variable | function | constraint |
//! |----------|----------|------------|
//! | `sp` | number of scan paths | `sp >= 1` |
//! | `w`  | bit width of data channel | `w >= log2(o)` |
//! | `max_d` | maximum dilation | power of two, `max_d <= o` |
//! | `i`  | number of forward ports | power of two |
//! | `o`  | number of backward ports | power of two, `o >= max_d` |
//! | `ri` | number of random inputs | `ri >= 1` |
//! | `hw` | header words consumed per router | `hw >= 0` |
//! | `dp` | data pipestages inside router | `dp >= 1` |
//! | `max_vtd` | maximum variable-turn-delay slots | `max_vtd >= 0` |

use crate::error::ParamError;

/// The architectural parameters of a METRO router implementation
/// (paper Table 1).
///
/// Construct via [`ArchParams::new`] (which validates every Table 1
/// constraint) or one of the named presets such as
/// [`ArchParams::metrojr`] for the fabricated METROJR-ORBIT part.
///
/// # Examples
///
/// ```
/// use metro_core::ArchParams;
///
/// let p = ArchParams::new(8, 8, 8, 4, 0, 1)?;
/// assert_eq!(p.radix_at_dilation(2), 4);
/// # Ok::<(), metro_core::ParamError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArchParams {
    i: usize,
    o: usize,
    w: usize,
    max_d: usize,
    hw: usize,
    dp: usize,
    ri: usize,
    sp: usize,
    max_vtd: usize,
}

impl ArchParams {
    /// Creates a parameter set with the given forward ports `i`, backward
    /// ports `o`, channel width `w`, maximum dilation `max_d`, header
    /// words consumed per router `hw`, and internal data pipestages `dp`.
    ///
    /// The number of random inputs defaults to `ri = 2`, scan paths to
    /// `sp = 2`, and the variable-turn-delay limit to `max_vtd = 7`;
    /// adjust them with [`with_random_inputs`](Self::with_random_inputs),
    /// [`with_scan_paths`](Self::with_scan_paths), and
    /// [`with_max_turn_delay`](Self::with_max_turn_delay).
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if any Table 1 constraint is violated:
    /// `i`/`o`/`max_d` not powers of two, `max_d > o`, `w < log2(o)`,
    /// `w > 16` (the model's word limit), or `dp == 0`.
    pub fn new(
        i: usize,
        o: usize,
        w: usize,
        max_d: usize,
        hw: usize,
        dp: usize,
    ) -> Result<Self, ParamError> {
        let params = Self {
            i,
            o,
            w,
            max_d,
            hw,
            dp,
            ri: 2,
            sp: 2,
            max_vtd: 7,
        };
        params.validate()?;
        Ok(params)
    }

    /// METROJR, the minimal METRO instance the paper fabricated through
    /// Orbit Semiconductor: `i = o = w = 4`, `hw = 0`, `dp = 1`,
    /// `max_d = 2` (paper §6.1).
    #[must_use]
    pub fn metrojr() -> Self {
        Self::new(4, 4, 4, 2, 0, 1).expect("METROJR parameters are valid")
    }

    /// RN1, METRO's direct ancestor: 8 forward and backward ports,
    /// byte-wide datapaths, dilation-1 and dilation-2 routing
    /// (paper §6.1).
    #[must_use]
    pub fn rn1() -> Self {
        Self::new(8, 8, 8, 2, 0, 1).expect("RN1 parameters are valid")
    }

    /// The `METRO i = o = 8, w = 4` configuration from Table 3.
    #[must_use]
    pub fn metro8() -> Self {
        Self::new(8, 8, 4, 2, 0, 1).expect("METRO-8 parameters are valid")
    }

    /// An 8-bit-wide radix-4-capable router like those in the Figure 3
    /// aggregate-performance simulation (8 forward ports, 8 backward
    /// ports, 8-bit channel, dilation up to 2).
    #[must_use]
    pub fn fig3_router() -> Self {
        Self::new(8, 8, 8, 2, 0, 1).expect("figure 3 parameters are valid")
    }

    /// Sets the number of random input bit streams (`ri >= 1`).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError::NoRandomInputs`] when `ri == 0`.
    pub fn with_random_inputs(mut self, ri: usize) -> Result<Self, ParamError> {
        self.ri = ri;
        self.validate()?;
        Ok(self)
    }

    /// Sets the number of scan paths (`sp >= 1`).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError::NoScanPaths`] when `sp == 0`.
    pub fn with_scan_paths(mut self, sp: usize) -> Result<Self, ParamError> {
        self.sp = sp;
        self.validate()?;
        Ok(self)
    }

    /// Sets the maximum number of delay slots available for variable turn
    /// delay (`max_vtd >= 0`).
    ///
    /// # Errors
    ///
    /// This constraint alone cannot fail, but revalidates the whole
    /// parameter set for uniformity.
    pub fn with_max_turn_delay(mut self, max_vtd: usize) -> Result<Self, ParamError> {
        self.max_vtd = max_vtd;
        self.validate()?;
        Ok(self)
    }

    /// Sets the number of header words consumed per router (`hw >= 0`);
    /// `hw > 0` enables pipelined connection setup (paper §5.1).
    ///
    /// # Errors
    ///
    /// This constraint alone cannot fail, but revalidates the whole
    /// parameter set for uniformity.
    pub fn with_header_words(mut self, hw: usize) -> Result<Self, ParamError> {
        self.hw = hw;
        self.validate()?;
        Ok(self)
    }

    /// Sets the number of internal data pipeline stages (`dp >= 1`).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError::NoPipelineStages`] when `dp == 0`.
    pub fn with_pipestages(mut self, dp: usize) -> Result<Self, ParamError> {
        self.dp = dp;
        self.validate()?;
        Ok(self)
    }

    fn validate(&self) -> Result<(), ParamError> {
        if self.i == 0 || !self.i.is_power_of_two() {
            return Err(ParamError::ForwardPortsNotPowerOfTwo { i: self.i });
        }
        if self.o == 0 || !self.o.is_power_of_two() {
            return Err(ParamError::BackwardPortsNotPowerOfTwo { o: self.o });
        }
        if self.max_d == 0 || !self.max_d.is_power_of_two() {
            return Err(ParamError::MaxDilationNotPowerOfTwo { max_d: self.max_d });
        }
        if self.max_d > self.o {
            return Err(ParamError::MaxDilationExceedsPorts {
                max_d: self.max_d,
                o: self.o,
            });
        }
        if self.w < log2_exact(self.o) {
            return Err(ParamError::WidthTooNarrow {
                w: self.w,
                o: self.o,
            });
        }
        if self.w > 16 {
            return Err(ParamError::WidthTooWide { w: self.w });
        }
        if self.ri == 0 {
            return Err(ParamError::NoRandomInputs);
        }
        if self.sp == 0 {
            return Err(ParamError::NoScanPaths);
        }
        if self.dp == 0 {
            return Err(ParamError::NoPipelineStages);
        }
        Ok(())
    }

    /// Number of forward ports, `i`.
    #[must_use]
    pub fn forward_ports(&self) -> usize {
        self.i
    }

    /// Number of backward ports, `o`.
    #[must_use]
    pub fn backward_ports(&self) -> usize {
        self.o
    }

    /// Bit width of the data channel, `w`.
    #[must_use]
    pub fn width(&self) -> usize {
        self.w
    }

    /// Maximum dilation the implementation supports, `max_d`.
    #[must_use]
    pub fn max_dilation(&self) -> usize {
        self.max_d
    }

    /// Header words consumed per router, `hw`. Zero means route digits
    /// are taken from the head word in-place (RN1-style bit consumption
    /// with the *swallow* option); positive values enable pipelined
    /// connection setup.
    #[must_use]
    pub fn header_words(&self) -> usize {
        self.hw
    }

    /// Internal data pipeline stages, `dp`.
    #[must_use]
    pub fn pipestages(&self) -> usize {
        self.dp
    }

    /// Number of random input bit streams, `ri`.
    #[must_use]
    pub fn random_inputs(&self) -> usize {
        self.ri
    }

    /// Number of scan paths, `sp`.
    #[must_use]
    pub fn scan_paths(&self) -> usize {
        self.sp
    }

    /// Maximum delay slots available for variable turn delay, `max_vtd`.
    #[must_use]
    pub fn max_turn_delay(&self) -> usize {
        self.max_vtd
    }

    /// The radix (number of logically distinct output directions) when
    /// the router is configured at dilation `d`: `r = o / d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` does not divide `o`; use a validated
    /// [`RouterConfig`](crate::RouterConfig) to avoid this.
    #[must_use]
    pub fn radix_at_dilation(&self, d: usize) -> usize {
        assert!(
            d > 0 && self.o.is_multiple_of(d),
            "dilation {d} does not divide backward port count {}",
            self.o
        );
        self.o / d
    }

    /// Bits of routing information consumed per stage at dilation `d`:
    /// `log2(radix)`.
    #[must_use]
    pub fn digit_bits_at_dilation(&self, d: usize) -> usize {
        log2_exact(self.radix_at_dilation(d))
    }

    /// The mask selecting the low `w` bits of a word.
    #[must_use]
    pub fn word_mask(&self) -> u16 {
        if self.w == 16 {
            u16::MAX
        } else {
            (1u16 << self.w) - 1
        }
    }
}

impl Default for ArchParams {
    /// Defaults to [`ArchParams::metrojr`], the fabricated minimal
    /// instance.
    fn default() -> Self {
        Self::metrojr()
    }
}

/// `log2` of a power of two (rounds down for other values).
#[must_use]
pub fn log2_exact(v: usize) -> usize {
    (usize::BITS - 1 - v.leading_zeros().min(usize::BITS - 1)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrojr_matches_paper_section_6_1() {
        let p = ArchParams::metrojr();
        assert_eq!(p.forward_ports(), 4);
        assert_eq!(p.backward_ports(), 4);
        assert_eq!(p.width(), 4);
        assert_eq!(p.header_words(), 0);
        assert_eq!(p.pipestages(), 1);
        assert_eq!(p.max_dilation(), 2);
    }

    #[test]
    fn rn1_matches_paper_section_6_1() {
        let p = ArchParams::rn1();
        assert_eq!(p.forward_ports(), 8);
        assert_eq!(p.backward_ports(), 8);
        assert_eq!(p.width(), 8);
        assert_eq!(p.max_dilation(), 2);
    }

    #[test]
    fn radix_is_ports_over_dilation() {
        let p = ArchParams::rn1();
        assert_eq!(p.radix_at_dilation(1), 8);
        assert_eq!(p.radix_at_dilation(2), 4);
        assert_eq!(p.digit_bits_at_dilation(1), 3);
        assert_eq!(p.digit_bits_at_dilation(2), 2);
    }

    #[test]
    fn rejects_non_power_of_two_ports() {
        assert_eq!(
            ArchParams::new(3, 4, 4, 2, 0, 1),
            Err(ParamError::ForwardPortsNotPowerOfTwo { i: 3 })
        );
        assert_eq!(
            ArchParams::new(4, 6, 4, 2, 0, 1),
            Err(ParamError::BackwardPortsNotPowerOfTwo { o: 6 })
        );
        assert_eq!(
            ArchParams::new(0, 4, 4, 2, 0, 1),
            Err(ParamError::ForwardPortsNotPowerOfTwo { i: 0 })
        );
    }

    #[test]
    fn rejects_narrow_channel() {
        // Table 1: w >= log2(o). o = 16 needs w >= 4.
        assert_eq!(
            ArchParams::new(16, 16, 3, 2, 0, 1),
            Err(ParamError::WidthTooNarrow { w: 3, o: 16 })
        );
        assert!(ArchParams::new(16, 16, 4, 2, 0, 1).is_ok());
    }

    #[test]
    fn rejects_dilation_above_ports() {
        assert_eq!(
            ArchParams::new(4, 4, 4, 8, 0, 1),
            Err(ParamError::MaxDilationExceedsPorts { max_d: 8, o: 4 })
        );
        assert_eq!(
            ArchParams::new(4, 4, 4, 3, 0, 1),
            Err(ParamError::MaxDilationNotPowerOfTwo { max_d: 3 })
        );
    }

    #[test]
    fn rejects_zero_pipestages_and_random_inputs() {
        assert_eq!(
            ArchParams::new(4, 4, 4, 2, 0, 0),
            Err(ParamError::NoPipelineStages)
        );
        assert_eq!(
            ArchParams::metrojr().with_random_inputs(0),
            Err(ParamError::NoRandomInputs)
        );
        assert_eq!(
            ArchParams::metrojr().with_scan_paths(0),
            Err(ParamError::NoScanPaths)
        );
    }

    #[test]
    fn rejects_width_above_model_limit() {
        assert_eq!(
            ArchParams::new(4, 4, 17, 2, 0, 1),
            Err(ParamError::WidthTooWide { w: 17 })
        );
        assert!(ArchParams::new(4, 4, 16, 2, 0, 1).is_ok());
    }

    #[test]
    fn word_mask_covers_exactly_w_bits() {
        assert_eq!(ArchParams::metrojr().word_mask(), 0x000F);
        assert_eq!(ArchParams::rn1().word_mask(), 0x00FF);
        let p = ArchParams::new(4, 4, 16, 2, 0, 1).unwrap();
        assert_eq!(p.word_mask(), 0xFFFF);
    }

    #[test]
    fn builder_style_adjustments() {
        let p = ArchParams::metrojr()
            .with_header_words(1)
            .unwrap()
            .with_pipestages(2)
            .unwrap()
            .with_max_turn_delay(3)
            .unwrap()
            .with_random_inputs(4)
            .unwrap();
        assert_eq!(p.header_words(), 1);
        assert_eq!(p.pipestages(), 2);
        assert_eq!(p.max_turn_delay(), 3);
        assert_eq!(p.random_inputs(), 4);
    }

    #[test]
    fn log2_exact_on_powers_of_two() {
        assert_eq!(log2_exact(1), 0);
        assert_eq!(log2_exact(2), 1);
        assert_eq!(log2_exact(4), 2);
        assert_eq!(log2_exact(256), 8);
    }

    #[test]
    fn default_is_metrojr() {
        assert_eq!(ArchParams::default(), ArchParams::metrojr());
    }
}
