//! Router width cascading.
//!
//! "To allow wide routers to be built from routing components with
//! narrow datapaths, METRO provides features to facilitate *cascading*
//! routers" (paper §5.1). `c` routers run in parallel, each carrying a
//! `w`-bit slice of a `c·w`-bit logical channel. Two hooks keep the
//! slices consistent:
//!
//! 1. **Shared randomness** — all routers of a cascade receive identical
//!    random bits, so identical connection requests produce identical
//!    allocations.
//! 2. **Wired-AND `IN-USE` pull-up** — each backward port exposes an
//!    IN-USE signal; the cascade wires the signals together, and any
//!    disagreement (necessarily a fault) shuts the connection down on
//!    every router so the fault is contained.
//!
//! The route header is **replicated on every slice** (which is why
//! Table 4 multiplies `hbits` by the cascade factor `c`), so all slices
//! decode identical connection requests; only the payload is split
//! across the slices.

use crate::config::RouterConfig;
use crate::params::ArchParams;
use crate::rng::RandomSource;
use crate::router::{BwdIn, FwdIn, Router, TickOutput};
use crate::word::Word;
use core::fmt;

/// An inconsistency detected by the cascade's wired-AND IN-USE check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadeError {
    /// The backward port whose IN-USE signals disagreed.
    pub backward_port: usize,
    /// Which slices asserted IN-USE.
    pub asserting_slices: Vec<usize>,
}

impl fmt::Display for CascadeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cascade IN-USE disagreement on backward port {} (asserted by slices {:?})",
            self.backward_port, self.asserting_slices
        )
    }
}

impl std::error::Error for CascadeError {}

/// A group of `c` width-cascaded METRO routers acting as one logical
/// router with a `c·w`-bit datapath.
///
/// # Examples
///
/// ```
/// use metro_core::{ArchParams, CascadeGroup, RouterConfig, Word, FwdIn, BwdIn};
///
/// let params = ArchParams::metrojr();
/// let config = RouterConfig::new(&params).with_dilation(2).build().unwrap();
/// // Two cascaded METROJR parts: an 8-bit logical datapath from 4-bit slices.
/// let mut cascade = CascadeGroup::new(params, config, 2, 7).unwrap();
/// assert_eq!(cascade.logical_width(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct CascadeGroup {
    slices: Vec<Router>,
    params: ArchParams,
    faults: Vec<CascadeError>,
}

impl CascadeGroup {
    /// Builds a cascade of `c >= 1` identical routers sharing one random
    /// stream seeded from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates any router construction error.
    pub fn new(
        params: ArchParams,
        config: RouterConfig,
        c: usize,
        seed: u64,
    ) -> Result<Self, crate::error::ConfigError> {
        assert!(c >= 1, "a cascade needs at least one slice");
        let shared = RandomSource::new(seed);
        let mut slices = Vec::with_capacity(c);
        for _ in 0..c {
            let mut r = Router::new(params, config.clone(), seed)?;
            // Identical stream state on every slice: shared randomness.
            r.set_random_source(shared.clone());
            slices.push(r);
        }
        Ok(Self {
            slices,
            params,
            faults: Vec::new(),
        })
    }

    /// Number of cascaded slices, `c`.
    #[must_use]
    pub fn width_factor(&self) -> usize {
        self.slices.len()
    }

    /// The logical channel width, `c · w` bits.
    #[must_use]
    pub fn logical_width(&self) -> usize {
        self.slices.len() * self.params.width()
    }

    /// Access to an individual slice (for fault injection in tests and
    /// for the scan subsystem, which addresses physical components).
    #[must_use]
    pub fn slice(&self, k: usize) -> &Router {
        &self.slices[k]
    }

    /// Mutable access to an individual slice.
    pub fn slice_mut(&mut self, k: usize) -> &mut Router {
        &mut self.slices[k]
    }

    /// IN-USE disagreements detected so far.
    #[must_use]
    pub fn faults(&self) -> &[CascadeError] {
        &self.faults
    }

    /// Advances every slice one clock cycle with per-slice inputs, then
    /// applies the wired-AND IN-USE consistency check: if any backward
    /// port's IN-USE signals disagree across slices, the connection is
    /// shut down on all of them (paper §5.1).
    ///
    /// Returns the per-slice outputs.
    ///
    /// # Panics
    ///
    /// Panics if the input slices do not match the cascade width.
    pub fn tick(&mut self, fwd_in: &[FwdIn], bwd_in: &[BwdIn]) -> Vec<TickOutput> {
        assert_eq!(fwd_in.len(), self.slices.len(), "one FwdIn per slice");
        assert_eq!(bwd_in.len(), self.slices.len(), "one BwdIn per slice");
        let outs: Vec<TickOutput> = self
            .slices
            .iter_mut()
            .zip(fwd_in.iter().zip(bwd_in))
            .map(|(r, (f, b))| r.tick(f, b))
            .collect();
        self.check_in_use();
        outs
    }

    /// Convenience for the common fault-free case: identical control
    /// flow on every slice, so one logical input is replicated.
    pub fn tick_replicated(&mut self, fwd_in: &FwdIn, bwd_in: &BwdIn) -> Vec<TickOutput> {
        let f: Vec<FwdIn> = (0..self.slices.len()).map(|_| fwd_in.clone()).collect();
        let b: Vec<BwdIn> = (0..self.slices.len()).map(|_| bwd_in.clone()).collect();
        self.tick(&f, &b)
    }

    #[allow(clippy::needless_range_loop)] // index used for error reporting
    fn check_in_use(&mut self) {
        let o = self.params.backward_ports();
        let vectors: Vec<Vec<bool>> = self.slices.iter().map(Router::in_use_vector).collect();
        for b in 0..o {
            let asserting: Vec<usize> = (0..self.slices.len()).filter(|&k| vectors[k][b]).collect();
            if !asserting.is_empty() && asserting.len() != self.slices.len() {
                // Disagreement: necessarily an error — contain it by
                // shutting the connection down on every slice.
                for r in &mut self.slices {
                    r.force_release(b);
                }
                self.faults.push(CascadeError {
                    backward_port: b,
                    asserting_slices: asserting,
                });
            }
        }
    }
}

/// Splits a wide logical data value into `c` per-slice `w`-bit words,
/// slice 0 carrying the most significant bits (where route digits live).
#[must_use]
pub fn split_word(value: u64, w: usize, c: usize) -> Vec<Word> {
    (0..c)
        .map(|k| {
            let shift = (c - 1 - k) * w;
            let mask = if w >= 16 { 0xFFFF } else { (1u64 << w) - 1 };
            Word::Data(((value >> shift) & mask) as u16)
        })
        .collect()
}

/// Reassembles per-slice words into the wide logical value; `None` if
/// any slice word is not data.
#[must_use]
pub fn join_words(words: &[Word], w: usize) -> Option<u64> {
    let mut value = 0u64;
    for word in words {
        value = (value << w) | u64::from(word.data()?);
    }
    Some(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cascade(c: usize) -> CascadeGroup {
        let params = ArchParams::metrojr();
        let config = RouterConfig::new(&params)
            .with_dilation(2)
            .with_swallow_all(true)
            .build()
            .unwrap();
        CascadeGroup::new(params, config, c, 1234).unwrap()
    }

    #[test]
    fn logical_width_scales_with_slices() {
        assert_eq!(cascade(1).logical_width(), 4);
        assert_eq!(cascade(2).logical_width(), 8);
        assert_eq!(cascade(4).logical_width(), 16);
    }

    #[test]
    fn slices_allocate_identically_under_shared_randomness() {
        let mut g = cascade(4);
        // Open connections on two forward ports simultaneously; all
        // slices see the same requests.
        let fwd = FwdIn::idle(4)
            .with(0, Word::Data(0b1000))
            .with(1, Word::Data(0b1000));
        g.tick_replicated(&fwd, &BwdIn::idle(4));
        let reference = g.slice(0).in_use_vector();
        for k in 1..4 {
            assert_eq!(g.slice(k).in_use_vector(), reference, "slice {k} diverged");
        }
        assert!(g.faults().is_empty());
        // Both requests landed in direction-1 ports (2..4).
        assert_eq!(reference, vec![false, false, true, true]);
    }

    #[test]
    fn identical_over_many_random_cycles() {
        let mut g = cascade(2);
        let mut rng = RandomSource::new(5);
        for _ in 0..200 {
            let mut fwd = FwdIn::idle(4);
            for f in 0..4 {
                if rng.bit() {
                    fwd = fwd.with(f, Word::Data(rng.bits(4) as u16));
                } else {
                    fwd = fwd.with(f, Word::Empty);
                }
            }
            g.tick_replicated(&fwd, &BwdIn::idle(4));
            assert_eq!(g.slice(0).in_use_vector(), g.slice(1).in_use_vector());
        }
        assert!(g.faults().is_empty());
    }

    #[test]
    fn corrupted_slice_header_is_detected_and_contained() {
        let mut g = cascade(2);
        // Slice 0 sees direction 1; slice 1 sees a corrupted header
        // requesting direction 0 — a fault in flight.
        let f0 = FwdIn::idle(4).with(0, Word::Data(0b1000));
        let f1 = FwdIn::idle(4).with(0, Word::Data(0b0000));
        g.tick(&[f0, f1], &[BwdIn::idle(4), BwdIn::idle(4)]);
        assert!(!g.faults().is_empty(), "wired-AND must catch disagreement");
        // Containment: every slice's connection was shut down.
        for k in 0..2 {
            assert!(
                g.slice(k).in_use_vector().iter().all(|&u| !u),
                "slice {k} still holds a connection"
            );
        }
    }

    #[test]
    fn split_join_roundtrip() {
        let words = split_word(0xBEEF, 4, 4);
        assert_eq!(
            words,
            vec![
                Word::Data(0xB),
                Word::Data(0xE),
                Word::Data(0xE),
                Word::Data(0xF)
            ]
        );
        assert_eq!(join_words(&words, 4), Some(0xBEEF));
    }

    #[test]
    fn join_fails_on_control_word() {
        assert_eq!(join_words(&[Word::Data(1), Word::Turn], 4), None);
    }

    #[test]
    fn cascade_error_display_names_port_and_slices() {
        let e = CascadeError {
            backward_port: 3,
            asserting_slices: vec![0],
        };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains("[0]"));
    }
}
