//! The METRO routing component, modeled at clock-cycle granularity.
//!
//! A [`Router`] has `i` forward ports and `o` backward ports. Data
//! initially flows from forward to backward ports; an open connection can
//! be *turned* any number of times (paper §4). Internally each connection
//! traverses `dp` pipeline stages in whichever direction it currently
//! flows.
//!
//! ## Channel model
//!
//! Every port pair is connected by two logical lanes plus a backward
//! control bit (BCB):
//!
//! * the **forward lane** carries words toward the destination,
//! * the **reverse lane** carries words toward the source,
//! * the **BCB** carries fast path-reclamation requests toward the
//!   source (paper §5.1).
//!
//! Half-duplex operation means only one lane carries the live stream at a
//! time; the other lane is held at [`Word::DataIdle`] while the
//! connection is open (a real implementation shares one set of wires —
//! the two-lane model is the standard simulator idiom for it). A lane
//! showing [`Word::Empty`] carries no connection.
//!
//! ## Per-cycle operation
//!
//! [`Router::tick`] consumes the words arriving on every forward-lane
//! input (one per forward port) and reverse-lane input (one per backward
//! port, plus BCB), and produces the words driven on every output for
//! that cycle. New connection requests arriving in the same cycle are
//! arbitrated in an order drawn from the shared random stream, then each
//! port's state machine advances one step.

use crate::allocator::{AllocationOutcome, Allocator, SelectionPolicy};
use crate::checksum::StreamChecksum;
use crate::config::{PortMode, RouterConfig};
use crate::header::consume_digit;
use crate::params::ArchParams;
use crate::rng::RandomSource;
use crate::status::StatusWord;
use crate::word::{phit, Word};
use metro_telemetry::state::{StateError, StateReader, StateWriter};
use metro_telemetry::{CounterCell, RouterCounter};
use std::collections::VecDeque;

/// Forward-lane inputs to one [`Router::tick`] call: the word arriving
/// on each forward port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FwdIn {
    words: Vec<Word>,
}

impl FwdIn {
    /// Inputs from an explicit word per forward port.
    #[must_use]
    pub fn data(words: &[Word]) -> Self {
        Self {
            words: words.to_vec(),
        }
    }

    /// All-idle (undriven) inputs for a router with `i` forward ports.
    #[must_use]
    pub fn idle(i: usize) -> Self {
        Self {
            words: vec![Word::Empty; i],
        }
    }

    /// The word arriving on forward port `f`.
    #[must_use]
    pub fn word(&self, f: usize) -> Word {
        self.words[f]
    }

    /// Replaces the word on forward port `f` (builder-style).
    #[must_use]
    pub fn with(mut self, f: usize, w: Word) -> Self {
        self.words[f] = w;
        self
    }
}

/// Reverse-lane inputs to one [`Router::tick`] call: the word and BCB
/// arriving on each backward port (from the downstream neighbor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BwdIn {
    words: Vec<Word>,
    bcb: Vec<bool>,
}

impl BwdIn {
    /// Inputs from explicit words and BCB lines.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[must_use]
    pub fn new(words: &[Word], bcb: &[bool]) -> Self {
        assert_eq!(words.len(), bcb.len(), "word and BCB lanes must match");
        Self {
            words: words.to_vec(),
            bcb: bcb.to_vec(),
        }
    }

    /// All-idle inputs for a router with `o` backward ports.
    #[must_use]
    pub fn idle(o: usize) -> Self {
        Self {
            words: vec![Word::Empty; o],
            bcb: vec![false; o],
        }
    }

    /// The word arriving on backward port `b`.
    #[must_use]
    pub fn word(&self, b: usize) -> Word {
        self.words[b]
    }

    /// Replaces the word on backward port `b` (builder-style).
    #[must_use]
    pub fn with(mut self, b: usize, w: Word) -> Self {
        self.words[b] = w;
        self
    }

    /// Asserts the BCB on backward port `b` (builder-style).
    #[must_use]
    pub fn with_bcb(mut self, b: usize) -> Self {
        self.bcb[b] = true;
        self
    }
}

/// The outputs driven by a router during one clock cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickOutput {
    /// Forward-lane outputs: the word driven out of each backward port,
    /// toward downstream.
    pub bwd: Vec<Word>,
    /// Reverse-lane outputs: the word driven out of each forward port,
    /// toward upstream.
    pub fwd: Vec<Word>,
    /// BCB asserted toward upstream, per forward port.
    pub bcb: Vec<bool>,
}

/// A summary of one forward port's connection state, for introspection
/// and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortStatus {
    /// No connection.
    Idle,
    /// Consuming header words during pipelined connection setup.
    Setup,
    /// Connected; data flowing forward.
    Forward,
    /// Connected; data flowing in reverse (toward the source).
    Reverse,
    /// Blocked in detailed mode, awaiting the turn.
    Blocked,
    /// Discarding residual words after a teardown.
    Draining,
}

/// Event counters a router accumulates across its lifetime.
///
/// This is a named *view* over the router's internal
/// [`CounterCell`] — the telemetry registry reads the cell directly;
/// this struct exists for ergonomic field access in tests and
/// experiment code. Counters are `u64` so snapshots are
/// platform-independent and match the simulator's cycle types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterStats {
    /// Connection requests that arrived at forward ports.
    pub opens: u64,
    /// Requests switched through to a backward port.
    pub grants: u64,
    /// Requests blocked for lack of a free equivalent backward port.
    pub blocks: u64,
    /// Blocked connections torn down via fast path reclamation (BCB).
    pub fast_reclaims: u64,
    /// Connection reversals (forward → reverse) completed.
    pub turns: u64,
    /// Connections closed by a DROP passing through.
    pub drops: u64,
    /// Data words forwarded downstream.
    pub words_forwarded: u64,
}

impl RouterStats {
    /// Builds the view from a raw counter cell.
    #[must_use]
    pub fn from_cell(cell: &CounterCell) -> Self {
        RouterStats {
            opens: cell.get(RouterCounter::Opens),
            grants: cell.get(RouterCounter::Grants),
            blocks: cell.get(RouterCounter::Blocks),
            fast_reclaims: cell.get(RouterCounter::FastReclaims),
            turns: cell.get(RouterCounter::Turns),
            drops: cell.get(RouterCounter::Drops),
            words_forwarded: cell.get(RouterCounter::WordsForwarded),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum State {
    Idle,
    Setup {
        bwd: usize,
        remaining: usize,
    },
    /// Connected, data flowing forward. `settle` is nonzero right after
    /// a reverse→forward turn: the upstream's forward data is still in
    /// flight across the wire pipeline (one round trip of the port's
    /// variable turn delay), so an undriven input is not yet a
    /// teardown (paper §5.1, Variable Turn Delay).
    Forward {
        bwd: usize,
        settle: usize,
    },
    /// Connected, data flowing in reverse. `settle` covers the wire
    /// round trip after a forward→reverse turn, during which the
    /// downstream's hold has not yet arrived.
    Reverse {
        bwd: usize,
        settle: usize,
    },
    BlockedDetailed,
    BlockedReply,
    ClosingFwd {
        bwd: usize,
    },
    Draining,
}

#[derive(Debug, Clone)]
struct Port {
    state: State,
    fpipe: VecDeque<Word>,
    rpipe: VecDeque<Word>,
    rq: VecDeque<Word>,
    cksum: StreamChecksum,
}

impl Port {
    fn new(dp: usize) -> Self {
        Self {
            state: State::Idle,
            fpipe: VecDeque::with_capacity(dp + 1),
            rpipe: VecDeque::with_capacity(dp + 1),
            rq: VecDeque::new(),
            cksum: StreamChecksum::new(),
        }
    }

    fn reset(&mut self) {
        self.state = State::Idle;
        self.fpipe.clear();
        self.rpipe.clear();
        self.rq.clear();
        self.cksum.reset();
    }

    /// (Re)fills the forward pipeline. The pipe holds `dp - 1` words:
    /// the final pipeline stage is the output register, whose one-cycle
    /// propagation to the neighboring component the network model
    /// accounts for at the transfer boundary, so total router transit is
    /// exactly `dp` cycles.
    fn fill_fpipe(&mut self, dp: usize, with: Word) {
        self.fpipe.clear();
        self.fpipe.extend(std::iter::repeat_n(with, dp - 1));
    }

    /// (Re)fills the reverse pipeline; see [`Port::fill_fpipe`].
    fn fill_rpipe(&mut self, dp: usize, with: Word) {
        self.rpipe.clear();
        self.rpipe.extend(std::iter::repeat_n(with, dp - 1));
    }
}

/// Decode-side error helper for the router's checkpoint section.
fn bad(detail: String) -> StateError {
    StateError::BadValue {
        section: String::from("router"),
        detail,
    }
}

/// Reads one packed channel word from a checkpoint stream.
fn read_word(r: &mut StateReader<'_>) -> Result<Word, StateError> {
    let cell = r.u64()?;
    phit::unpack(cell).ok_or_else(|| bad(format!("{cell:#x} is not a packed channel word")))
}

/// Appends a word queue (pipeline or reply queue) to a checkpoint
/// stream via the phit packing.
fn save_word_queue(w: &mut StateWriter, q: &VecDeque<Word>) {
    w.usize(q.len());
    for &word in q {
        w.u64(phit::pack(word));
    }
}

/// Refills a word queue from a checkpoint stream.
fn restore_word_queue(r: &mut StateReader<'_>, q: &mut VecDeque<Word>) -> Result<(), StateError> {
    let n = r.usize()?;
    if n > r.remaining() {
        return Err(bad(format!("queue length {n} exceeds remaining stream")));
    }
    q.clear();
    for _ in 0..n {
        q.push_back(read_word(r)?);
    }
    Ok(())
}

/// Checkpoint code for a port mode (the one piece of [`RouterConfig`]
/// the self-healing layer mutates at runtime).
fn mode_code(mode: PortMode) -> u64 {
    match mode {
        PortMode::Enabled => 0,
        PortMode::DisabledDriven => 1,
        PortMode::DisabledTristate => 2,
    }
}

/// Inverts [`mode_code`].
fn mode_from_code(code: u64) -> Result<PortMode, StateError> {
    Ok(match code {
        0 => PortMode::Enabled,
        1 => PortMode::DisabledDriven,
        2 => PortMode::DisabledTristate,
        other => return Err(bad(format!("{other} is not a port mode"))),
    })
}

/// Advances a `dp - 1`-deep pipeline by one word: pushes `word` in and
/// returns the word that falls out. At `dp == 1` (the common
/// single-pipestage configuration) the pipe holds zero words and the
/// input passes straight through without touching the deque.
#[inline]
fn pipe_advance(pipe: &mut VecDeque<Word>, word: Word) -> Word {
    if pipe.is_empty() {
        return word;
    }
    pipe.push_back(word);
    pipe.pop_front().expect("pipe just received a word")
}

/// Per-tick scratch buffers, reused across calls so the steady-state
/// tick path never allocates.
#[derive(Debug, Clone, Default)]
struct TickScratch {
    requests: Vec<(usize, usize)>,
    outcomes: Vec<AllocationOutcome>,
}

/// A cycle-accurate METRO router.
///
/// See the [module documentation](self) for the channel model. The
/// router owns its allocator, random stream, and per-port state; calling
/// [`Router::tick`] once per clock cycle drives everything.
#[derive(Debug, Clone)]
pub struct Router {
    params: ArchParams,
    config: RouterConfig,
    rng: RandomSource,
    alloc: Allocator,
    ports: Vec<Port>,
    /// Bitplane over forward ports: bit `f` set iff `ports[f]` is in any
    /// non-`Idle` state. Ports become active only through the `Idle` arm
    /// of `step_port` (or a forced teardown) and return to idle only
    /// through the `Draining` arm, so those choke points keep this word
    /// exact. The tick loop selects request candidates with
    /// `!active & fwd_enabled_mask` and steps only `active | requested`
    /// ports — quiescent ports cost nothing.
    active: u64,
    counters: CounterCell,
    scratch: TickScratch,
}

impl Router {
    /// Creates a router with the given parameters and configuration,
    /// seeding its shared-randomness stream with `seed`.
    ///
    /// # Errors
    ///
    /// Currently infallible for validated inputs; returns `Result` for
    /// forward compatibility with cross-validation of `params` and
    /// `config`.
    pub fn new(
        params: ArchParams,
        config: RouterConfig,
        seed: u64,
    ) -> Result<Self, crate::error::ConfigError> {
        let dp = params.pipestages();
        assert!(
            params.forward_ports() <= 64,
            "port bitplanes hold at most 64 ports per side"
        );
        Ok(Self {
            alloc: Allocator::new(&config, params.backward_ports()),
            ports: (0..params.forward_ports()).map(|_| Port::new(dp)).collect(),
            rng: RandomSource::new(seed),
            params,
            config,
            active: 0,
            counters: CounterCell::new(),
            scratch: TickScratch::default(),
        })
    }

    /// Creates a router with a non-default selection policy (ablation
    /// experiments; the METRO architecture itself mandates random
    /// selection).
    ///
    /// # Errors
    ///
    /// See [`Router::new`].
    pub fn with_policy(
        params: ArchParams,
        config: RouterConfig,
        seed: u64,
        policy: SelectionPolicy,
    ) -> Result<Self, crate::error::ConfigError> {
        let mut r = Self::new(params, config, seed)?;
        r.alloc = Allocator::with_policy(&r.config, r.params.backward_ports(), policy);
        Ok(r)
    }

    /// The router's architectural parameters.
    #[must_use]
    pub fn params(&self) -> &ArchParams {
        &self.params
    }

    /// The router's current configuration.
    #[must_use]
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Applies a new configuration, as a scan operation would
    /// (paper §5.3: port enables and fast reclamation may change during
    /// operation). Connections in flight are unaffected except that
    /// newly disabled backward ports are no longer granted. Every port
    /// flipped enabled → disabled counts as one applied mask in the
    /// telemetry ([`RouterCounter::MasksApplied`]).
    pub fn apply_config(&mut self, config: RouterConfig) {
        for f in 0..self.params.forward_ports() {
            if self.config.forward_enabled(f) && !config.forward_enabled(f) {
                self.counters.inc(RouterCounter::MasksApplied);
            }
        }
        for b in 0..self.params.backward_ports() {
            if self.config.backward_enabled(b) && !config.backward_enabled(b) {
                self.counters.inc(RouterCounter::MasksApplied);
            }
        }
        self.config = config;
    }

    /// Records an externally observed event against this router's
    /// counter cell — the self-healing layer attributes checksum
    /// mismatches and post-mask retries to the routers they implicate.
    pub fn note_event(&mut self, counter: RouterCounter) {
        self.counters.inc(counter);
    }

    /// Replaces the router's random stream — used by
    /// [`CascadeGroup`](crate::CascadeGroup) to share randomness across
    /// cascaded routers.
    pub fn set_random_source(&mut self, rng: RandomSource) {
        self.rng = rng;
    }

    /// Event counters accumulated so far, as a named view.
    #[must_use]
    pub fn stats(&self) -> RouterStats {
        RouterStats::from_cell(&self.counters)
    }

    /// The raw counter cell — what the telemetry registry syncs from.
    #[must_use]
    pub fn counters(&self) -> &CounterCell {
        &self.counters
    }

    /// Resets the event counters.
    pub fn reset_stats(&mut self) {
        self.counters.reset();
    }

    /// The IN-USE signal of each backward port (the wired-AND input for
    /// width cascading, paper §5.1).
    #[must_use]
    pub fn in_use_vector(&self) -> Vec<bool> {
        self.alloc.in_use_vector()
    }

    /// A summary of forward port `f`'s state.
    #[must_use]
    pub fn port_status(&self, f: usize) -> PortStatus {
        match self.ports[f].state {
            State::Idle => PortStatus::Idle,
            State::Setup { .. } => PortStatus::Setup,
            State::Forward { .. } => PortStatus::Forward,
            State::Reverse { .. } => PortStatus::Reverse,
            State::BlockedDetailed | State::BlockedReply => PortStatus::Blocked,
            State::ClosingFwd { .. } | State::Draining => PortStatus::Draining,
        }
    }

    /// The backward port forward port `f` is connected through, if any.
    #[must_use]
    pub fn connected_backward_port(&self, f: usize) -> Option<usize> {
        match self.ports[f].state {
            State::Setup { bwd, .. }
            | State::Forward { bwd, .. }
            | State::Reverse { bwd, .. }
            | State::ClosingFwd { bwd } => Some(bwd),
            _ => None,
        }
    }

    /// The post-reversal settle window for a connection through
    /// backward port `b`: one round trip across the attached wire's
    /// pipeline registers, plus one cycle of turnaround at the far
    /// component.
    fn reverse_settle(&self, b: usize) -> usize {
        2 * (self.config.backward_turn_delay(b) + 1) + 1
    }

    /// The settle window after a reverse→forward turn on forward port
    /// `f` (the upstream wire's round trip).
    fn forward_settle(&self, f: usize) -> usize {
        2 * (self.config.forward_turn_delay(f) + 1) + 1
    }

    /// Forcibly shuts down the connection using backward port `b`, as
    /// the cascade consistency check does when the wired-AND detects
    /// disagreement (paper §5.1). The owning forward port asserts BCB
    /// toward the source on the next tick.
    pub fn force_release(&mut self, b: usize) -> bool {
        let Some(owner) = self.alloc.owner(b) else {
            return false;
        };
        self.alloc.release(b);
        if owner < self.ports.len() {
            self.ports[owner].reset();
            self.ports[owner].state = State::Draining;
            self.active |= 1u64 << owner;
        }
        true
    }

    /// Appends the router's complete mutable state — random stream,
    /// allocator, per-port FSMs and pipelines, activity bitplane,
    /// counters, and the runtime-maskable port modes — to a checkpoint
    /// stream. Everything else (`params`, the rest of the config, tick
    /// scratch) is construction-derived and rebuilt on restore.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.section("router");
        w.u64(self.rng.state_bits());
        self.alloc.save_state(w);
        w.u64(self.active);
        self.counters.save_state(w);
        w.usize(self.params.forward_ports());
        for f in 0..self.params.forward_ports() {
            w.u64(mode_code(self.config.forward_mode(f)));
        }
        w.usize(self.params.backward_ports());
        for b in 0..self.params.backward_ports() {
            w.u64(mode_code(self.config.backward_mode(b)));
        }
        w.usize(self.ports.len());
        for port in &self.ports {
            match port.state {
                State::Idle => w.u64(0),
                State::Setup { bwd, remaining } => {
                    w.u64(1);
                    w.usize(bwd);
                    w.usize(remaining);
                }
                State::Forward { bwd, settle } => {
                    w.u64(2);
                    w.usize(bwd);
                    w.usize(settle);
                }
                State::Reverse { bwd, settle } => {
                    w.u64(3);
                    w.usize(bwd);
                    w.usize(settle);
                }
                State::BlockedDetailed => w.u64(4),
                State::BlockedReply => w.u64(5),
                State::ClosingFwd { bwd } => {
                    w.u64(6);
                    w.usize(bwd);
                }
                State::Draining => w.u64(7),
            }
            save_word_queue(w, &port.fpipe);
            save_word_queue(w, &port.rpipe);
            save_word_queue(w, &port.rq);
            w.u64(u64::from(port.cksum.value()));
        }
    }

    /// Overwrites the router's mutable state from a checkpoint stream.
    ///
    /// Port modes are restored through
    /// [`RouterConfig::set_forward_mode`] /
    /// [`RouterConfig::set_backward_mode`] directly — deliberately not
    /// via [`Router::apply_config`], whose `MasksApplied` accounting
    /// would double-count healing masks already folded into the saved
    /// counter cell.
    ///
    /// # Errors
    ///
    /// [`StateError`] on shape mismatch, an out-of-range backward port
    /// in a saved FSM state, or an activity bitplane inconsistent with
    /// the restored states.
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        r.section("router")?;
        self.rng = RandomSource::from_state_bits(r.u64()?);
        self.alloc.restore_state(r)?;
        let active = r.u64()?;
        self.counters.restore_state(r)?;
        let i = self.params.forward_ports();
        let o = self.params.backward_ports();
        if r.usize()? != i {
            return Err(bad(String::from("forward port count mismatch")));
        }
        for f in 0..i {
            let mode = mode_from_code(r.u64()?)?;
            self.config.set_forward_mode(f, mode);
        }
        if r.usize()? != o {
            return Err(bad(String::from("backward port count mismatch")));
        }
        for b in 0..o {
            let mode = mode_from_code(r.u64()?)?;
            self.config.set_backward_mode(b, mode);
        }
        if r.usize()? != self.ports.len() {
            return Err(bad(String::from("port count mismatch")));
        }
        let check_bwd = |bwd: usize| {
            if bwd < o {
                Ok(bwd)
            } else {
                Err(bad(format!("backward port {bwd} out of range (o = {o})")))
            }
        };
        for port in &mut self.ports {
            port.state = match r.u64()? {
                0 => State::Idle,
                1 => State::Setup {
                    bwd: check_bwd(r.usize()?)?,
                    remaining: r.usize()?,
                },
                2 => State::Forward {
                    bwd: check_bwd(r.usize()?)?,
                    settle: r.usize()?,
                },
                3 => State::Reverse {
                    bwd: check_bwd(r.usize()?)?,
                    settle: r.usize()?,
                },
                4 => State::BlockedDetailed,
                5 => State::BlockedReply,
                6 => State::ClosingFwd {
                    bwd: check_bwd(r.usize()?)?,
                },
                7 => State::Draining,
                other => return Err(bad(format!("{other} is not a port FSM state"))),
            };
            restore_word_queue(r, &mut port.fpipe)?;
            restore_word_queue(r, &mut port.rpipe)?;
            restore_word_queue(r, &mut port.rq)?;
            let cksum = r.u64()?;
            let cksum =
                u16::try_from(cksum).map_err(|_| bad(format!("{cksum} overflows a checksum")))?;
            port.cksum = StreamChecksum::from_value(cksum);
        }
        let mut expected = 0u64;
        for (f, p) in self.ports.iter().enumerate() {
            if !matches!(p.state, State::Idle) {
                expected |= 1u64 << f;
            }
        }
        if active != expected {
            return Err(bad(String::from(
                "activity bitplane disagrees with the restored FSM states",
            )));
        }
        self.active = active;
        Ok(())
    }

    /// Advances the router one clock cycle.
    ///
    /// `fwd_in` carries the forward-lane word arriving on each forward
    /// port; `bwd_in` carries the reverse-lane word and BCB arriving on
    /// each backward port. Returns the outputs driven during this cycle.
    ///
    /// # Panics
    ///
    /// Panics if the input sizes do not match the router's port counts.
    pub fn tick(&mut self, fwd_in: &FwdIn, bwd_in: &BwdIn) -> TickOutput {
        let i = self.params.forward_ports();
        let o = self.params.backward_ports();
        let mut out = TickOutput {
            bwd: vec![Word::Empty; o],
            fwd: vec![Word::Empty; i],
            bcb: vec![false; i],
        };
        self.tick_into(
            &fwd_in.words,
            &bwd_in.words,
            &bwd_in.bcb,
            &mut out.bwd,
            &mut out.fwd,
            &mut out.bcb,
        );
        out
    }

    /// Advances the router one clock cycle, reading inputs from and
    /// writing outputs into caller-provided slices — the zero-allocation
    /// tick API the flat channel fabric drives.
    ///
    /// `fwd_in[f]` is the forward-lane word arriving on forward port
    /// `f`; `rev_in[b]`/`bcb_in[b]` are the reverse-lane word and BCB
    /// arriving on backward port `b`. `out_bwd[b]` receives the word
    /// driven downstream out of backward port `b`; `out_fwd[f]` and
    /// `out_bcb[f]` receive the reverse-lane word and BCB driven
    /// upstream out of forward port `f`. Output slices are fully
    /// overwritten. Semantically identical to [`Router::tick`].
    ///
    /// # Panics
    ///
    /// Panics if any slice length does not match the router's port
    /// counts.
    pub fn tick_into(
        &mut self,
        fwd_in: &[Word],
        rev_in: &[Word],
        bcb_in: &[bool],
        out_bwd: &mut [Word],
        out_fwd: &mut [Word],
        out_bcb: &mut [bool],
    ) {
        let i = self.params.forward_ports();
        let o = self.params.backward_ports();
        assert_eq!(fwd_in.len(), i, "forward input size mismatch");
        assert_eq!(rev_in.len(), o, "backward input size mismatch");
        assert_eq!(bcb_in.len(), o, "BCB input size mismatch");
        assert_eq!(out_bwd.len(), o, "backward output size mismatch");
        assert_eq!(out_fwd.len(), i, "forward output size mismatch");
        assert_eq!(out_bcb.len(), i, "BCB output size mismatch");
        out_bwd.fill(Word::Empty);
        out_fwd.fill(Word::Empty);
        out_bcb.fill(false);
        debug_assert!(
            {
                let mut m = 0u64;
                for (f, p) in self.ports.iter().enumerate() {
                    if !matches!(p.state, State::Idle) {
                        m |= 1u64 << f;
                    }
                }
                m == self.active
            },
            "activity bitplane out of sync with port FSM states"
        );

        // Fully quiescent fast path: no port mid-connection, no
        // backward port allocated, and no header word arriving. Nothing
        // below could fire — no BCB release (nothing owned), no request
        // (no DATA on an idle port), no FSM step, no counter change,
        // and, critically, no random draw (empty arbitration consumes
        // none) — so the stream stays in lockstep with the slow path.
        if self.active == 0
            && self.alloc.in_use_mask() == 0
            && !fwd_in.iter().any(|w| matches!(w, Word::Data(_)))
        {
            return;
        }

        // Phase 0: BCB arrivals tear down connections immediately. A
        // BCB only has effect on an *owned* backward port, so the scan
        // is skipped outright when nothing is allocated.
        if self.alloc.in_use_mask() != 0 {
            for (b, &bcb) in bcb_in.iter().enumerate() {
                if bcb {
                    if let Some(owner) = self.alloc.owner(b) {
                        self.alloc.release(b);
                        if owner < i {
                            self.ports[owner].reset();
                            self.ports[owner].state = State::Draining;
                            self.active |= 1u64 << owner;
                            out_bcb[owner] = true;
                        }
                    }
                }
            }
        }

        // Phase 1: collect new connection requests from idle, enabled
        // ports — one AND over the activity and enabled bitplanes picks
        // the candidates; the bit scan visits them in the same ascending
        // port order as the historical full scan.
        let digit_bits = self.config.digit_bits();
        let w = self.params.width();
        let mut requests = std::mem::take(&mut self.scratch.requests);
        let mut outcomes = std::mem::take(&mut self.scratch.outcomes);
        requests.clear();
        let mut req_mask = 0u64;
        let mut idle = !self.active & self.config.forward_enabled_mask();
        while idle != 0 {
            let f = idle.trailing_zeros() as usize;
            idle &= idle - 1;
            if let Word::Data(v) = fwd_in[f] {
                let dir = if digit_bits == 0 {
                    0
                } else {
                    (v >> (w - digit_bits)) as usize & ((1 << digit_bits) - 1)
                };
                requests.push((f, dir));
                req_mask |= 1u64 << f;
            }
        }
        // All randomness for the tick is consumed here, in one batch:
        // the arbitration shuffle plus one draw per granted request.
        if requests.is_empty() {
            outcomes.clear();
        } else {
            self.alloc
                .arbitrate_into(&requests, &self.config, &mut self.rng, &mut outcomes);
            // Opens/Grants/Blocks fall straight out of the arbitration
            // batch — counted with batch adds instead of per-port
            // increments (identical totals at every tick boundary).
            let opens = requests.len() as u64;
            let grants = outcomes.iter().filter(|o| o.port().is_some()).count() as u64;
            self.counters.add(RouterCounter::Opens, opens);
            self.counters.add(RouterCounter::Grants, grants);
            self.counters.add(RouterCounter::Blocks, opens - grants);
        }

        // Phase 2: advance every active or newly requesting port one
        // step. Idle ports without a request are provable no-ops (their
        // outputs are pre-filled and `step_port` would return
        // immediately), so the bit scan skips them. Requests were pushed
        // in ascending port order in phase 1 and this scan ascends too,
        // so a single cursor pairs each requesting port with its
        // outcome — no per-tick grant table to clear and refill.
        let mut cursor = 0usize;
        let mut step = self.active | req_mask;
        while step != 0 {
            let f = step.trailing_zeros() as usize;
            step &= step - 1;
            let grant = if req_mask & (1u64 << f) != 0 {
                let g = outcomes[cursor];
                cursor += 1;
                Some(g)
            } else {
                None
            };
            self.step_port(f, fwd_in[f], rev_in, grant, out_bwd, out_fwd, out_bcb);
        }
        self.scratch.requests = requests;
        self.scratch.outcomes = outcomes;
    }

    #[allow(clippy::too_many_arguments)]
    fn step_port(
        &mut self,
        f: usize,
        in_w: Word,
        rev_in: &[Word],
        open_outcome: Option<AllocationOutcome>,
        out_bwd: &mut [Word],
        out_fwd: &mut [Word],
        out_bcb: &mut [bool],
    ) {
        let dp = self.params.pipestages();
        let hw = self.params.header_words();
        let mask = self.params.word_mask();
        let state = self.ports[f].state;
        match state {
            State::Idle => {
                let Some(outcome) = open_outcome else {
                    // No request this cycle (input empty, disabled, or a
                    // stray control word after teardown) — stay idle.
                    return;
                };
                // Opens/Grants/Blocks were batch-counted at arbitration;
                // every outcome below leaves the port non-idle.
                self.active |= 1u64 << f;
                let Word::Data(v) = in_w else { unreachable!() };
                match outcome {
                    AllocationOutcome::Granted { bwd } => {
                        let port = &mut self.ports[f];
                        port.cksum.reset();
                        port.cksum.absorb_value(v);
                        if hw == 0 {
                            let (_, forwarded) = consume_digit(
                                v,
                                self.config.digit_bits(),
                                self.params.width(),
                                self.config.swallow(f),
                            );
                            port.fill_fpipe(dp, Word::Empty);
                            let push = match forwarded {
                                Some(head) => Word::Data(head & mask),
                                None => Word::Empty,
                            };
                            let popped = pipe_advance(&mut port.fpipe, push);
                            if matches!(push, Word::Data(_)) {
                                self.counters.inc(RouterCounter::WordsForwarded);
                            }
                            port.state = State::Forward { bwd, settle: 0 };
                            out_bwd[bwd] = popped;
                            out_fwd[f] = Word::DataIdle;
                        } else {
                            // Pipelined setup: this and the next hw-1
                            // words are consumed, not forwarded.
                            let port = &mut self.ports[f];
                            port.fill_fpipe(dp, Word::Empty);
                            if hw == 1 {
                                port.state = State::Forward { bwd, settle: 0 };
                            } else {
                                port.state = State::Setup {
                                    bwd,
                                    remaining: hw - 1,
                                };
                            }
                            out_fwd[f] = Word::DataIdle;
                        }
                    }
                    AllocationOutcome::Blocked => {
                        let port = &mut self.ports[f];
                        port.cksum.reset();
                        port.cksum.absorb_value(v);
                        if self.config.fast_reclaim(f) {
                            self.counters.inc(RouterCounter::FastReclaims);
                            port.state = State::Draining;
                            out_bcb[f] = true;
                        } else {
                            port.state = State::BlockedDetailed;
                            out_fwd[f] = Word::DataIdle;
                        }
                    }
                }
            }

            State::Setup { bwd, remaining } => {
                out_fwd[f] = Word::DataIdle;
                match in_w {
                    Word::Data(v) => {
                        let port = &mut self.ports[f];
                        port.cksum.absorb_value(v);
                        if remaining <= 1 {
                            port.state = State::Forward { bwd, settle: 0 };
                        } else {
                            port.state = State::Setup {
                                bwd,
                                remaining: remaining - 1,
                            };
                        }
                    }
                    Word::Empty | Word::Drop => {
                        // Source released mid-setup.
                        self.alloc.release(bwd);
                        self.ports[f].reset();
                        self.ports[f].state = State::Draining;
                        out_fwd[f] = Word::Empty;
                    }
                    _ => {
                        // Corrupt header stream: tear down; the
                        // source-responsible protocol will retry.
                        self.alloc.release(bwd);
                        self.ports[f].reset();
                        self.ports[f].state = State::Draining;
                        out_fwd[f] = Word::Empty;
                    }
                }
            }

            State::Forward { bwd, settle } => {
                out_fwd[f] = Word::DataIdle;
                let rev_settle = self.reverse_settle(bwd);
                let port = &mut self.ports[f];
                let mut closing = false;
                let mut settle = settle;
                let push = match in_w {
                    Word::Empty if settle > 0 => {
                        // Right after a reverse->forward turn the
                        // upstream's data is still crossing the wire
                        // pipeline; an undriven input is not yet a
                        // teardown (variable turn delay, paper §5.1).
                        settle -= 1;
                        Word::DataIdle
                    }
                    Word::Empty | Word::Drop => {
                        closing = true;
                        Word::Drop
                    }
                    Word::Data(v) => {
                        settle = 0;
                        port.cksum.absorb_value(v);
                        self.counters.inc(RouterCounter::WordsForwarded);
                        Word::Data(v & mask)
                    }
                    other => {
                        settle = 0;
                        other
                    }
                };
                let popped = pipe_advance(&mut port.fpipe, push);
                out_bwd[bwd] = popped;
                port.state = if closing {
                    State::ClosingFwd { bwd }
                } else {
                    State::Forward { bwd, settle }
                };
                match popped {
                    Word::Turn => {
                        // The reversal request has flushed through our
                        // forward pipeline; reverse the connection and
                        // queue our status report (paper §4, §5.1).
                        self.counters.inc(RouterCounter::Turns);
                        let cksum = port.cksum.value();
                        port.fill_rpipe(dp, Word::DataIdle);
                        port.rq.clear();
                        port.rq.push_back(Word::Status(StatusWord::connected(bwd)));
                        port.rq.push_back(Word::Checksum(cksum));
                        port.state = State::Reverse {
                            bwd,
                            settle: rev_settle,
                        };
                    }
                    Word::Drop => {
                        // Drop fully propagated downstream; free the path.
                        self.counters.inc(RouterCounter::Drops);
                        self.alloc.release(bwd);
                        port.reset();
                        port.state = State::Draining;
                        out_fwd[f] = Word::Empty;
                    }
                    _ => {}
                }
            }

            State::Reverse { bwd, settle } => {
                out_bwd[bwd] = Word::DataIdle;
                let fwd_settle = self.forward_settle(f);
                let port = &mut self.ports[f];
                let mut settle = settle;
                match rev_in[bwd] {
                    Word::Empty if settle > 0 => {
                        // The downstream's hold is still in flight
                        // across the wire pipeline (variable turn
                        // delay); not a teardown yet.
                        settle -= 1;
                    }
                    Word::Empty => {
                        // Downstream released; convert to a drop toward
                        // the source unless one is already queued.
                        if !port.rq.contains(&Word::Drop) {
                            port.rq.push_back(Word::Drop);
                        }
                    }
                    Word::DataIdle => settle = 0,
                    other => {
                        settle = 0;
                        port.rq.push_back(other);
                    }
                }
                port.state = State::Reverse { bwd, settle };
                let inject = port.rq.pop_front().unwrap_or(Word::DataIdle);
                let popped = pipe_advance(&mut port.rpipe, inject);
                out_fwd[f] = popped;
                match popped {
                    Word::Turn => {
                        // Turned back toward the forward direction.
                        port.fill_fpipe(dp, Word::DataIdle);
                        port.state = State::Forward {
                            bwd,
                            settle: fwd_settle,
                        };
                    }
                    Word::Drop => {
                        self.counters.inc(RouterCounter::Drops);
                        self.alloc.release(bwd);
                        port.reset();
                        port.state = State::Draining;
                    }
                    _ => {}
                }
            }

            State::BlockedDetailed => {
                out_fwd[f] = Word::DataIdle;
                let port = &mut self.ports[f];
                match in_w {
                    Word::Turn => {
                        let cksum = port.cksum.value();
                        port.fill_rpipe(dp, Word::DataIdle);
                        port.rq.clear();
                        port.rq.push_back(Word::Status(StatusWord::blocked()));
                        port.rq.push_back(Word::Checksum(cksum));
                        port.rq.push_back(Word::Drop);
                        port.state = State::BlockedReply;
                    }
                    Word::Empty | Word::Drop => {
                        port.reset();
                        port.state = State::Draining;
                        out_fwd[f] = Word::Empty;
                    }
                    Word::Data(v) => {
                        port.cksum.absorb_value(v);
                    }
                    _ => {}
                }
            }

            State::BlockedReply => {
                let port = &mut self.ports[f];
                let inject = port.rq.pop_front().unwrap_or(Word::DataIdle);
                let popped = pipe_advance(&mut port.rpipe, inject);
                out_fwd[f] = popped;
                if popped == Word::Drop {
                    port.reset();
                    port.state = State::Draining;
                }
            }

            State::ClosingFwd { bwd } => {
                // Drain the forward pipeline until the DROP exits.
                let port = &mut self.ports[f];
                let popped = pipe_advance(&mut port.fpipe, Word::Empty);
                out_bwd[bwd] = popped;
                if popped == Word::Drop {
                    self.counters.inc(RouterCounter::Drops);
                    self.alloc.release(bwd);
                    port.reset();
                    port.state = State::Draining;
                }
            }

            State::Draining => {
                if in_w == Word::Empty {
                    self.ports[f].reset();
                    self.active &= !(1u64 << f);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PortMode;

    /// An RN1-like router at dilation 2 (radix 4, 2-bit digits, w = 8),
    /// swallow enabled so payload comes out clean after one stage.
    fn router(dp: usize) -> Router {
        let params = ArchParams::rn1().with_pipestages(dp).unwrap();
        let config = RouterConfig::new(&params)
            .with_dilation(2)
            .with_swallow_all(true)
            .build()
            .unwrap();
        Router::new(params, config, 99).unwrap()
    }

    fn idle8() -> BwdIn {
        BwdIn::idle(8)
    }

    /// Drives a full message through forward port 0 and returns
    /// (words seen on each backward port, words seen on fwd port 0's
    /// reverse lane, bcb history).
    fn drive(
        r: &mut Router,
        stream: &[Word],
        cycles_after: usize,
        bwd_feed: impl Fn(usize, &TickOutput) -> BwdIn,
    ) -> (Vec<Vec<Word>>, Vec<Word>) {
        let o = r.params().backward_ports();
        let mut bwd_hist = vec![Vec::new(); o];
        let mut rev_hist = Vec::new();
        let mut last = TickOutput {
            bwd: vec![Word::Empty; o],
            fwd: vec![Word::Empty; r.params().forward_ports()],
            bcb: vec![false; r.params().forward_ports()],
        };
        for cycle in 0..stream.len() + cycles_after {
            let w = stream.get(cycle).copied().unwrap_or(Word::Empty);
            let fwd = FwdIn::idle(8).with(0, w);
            let bwd = bwd_feed(cycle, &last);
            last = r.tick(&fwd, &bwd);
            for (b, word) in last.bwd.iter().enumerate() {
                bwd_hist[b].push(*word);
            }
            rev_hist.push(last.fwd[0]);
        }
        (bwd_hist, rev_hist)
    }

    #[test]
    fn routes_to_requested_direction_group() {
        let mut r = router(1);
        // Direction 2 (binary 10) in top bits of the 8-bit head word.
        let stream = [Word::Data(0b1000_0000), Word::Data(0xAB), Word::Data(0xCD)];
        let (bwd_hist, _) = drive(&mut r, &stream, 4, |_, _| idle8());
        // Direction 2 group at dilation 2 = ports 4..6.
        let active: Vec<usize> = (0..8)
            .filter(|&b| bwd_hist[b].iter().any(|w| w.is_payload()))
            .collect();
        assert_eq!(active.len(), 1);
        assert!(active[0] == 4 || active[0] == 5);
    }

    #[test]
    fn swallow_strips_head_word() {
        let mut r = router(1);
        let stream = [Word::Data(0b0100_0000), Word::Data(0x11), Word::Data(0x22)];
        let (bwd_hist, _) = drive(&mut r, &stream, 4, |_, _| idle8());
        let data: Vec<u16> = (0..8)
            .flat_map(|b| bwd_hist[b].iter().filter_map(Word::data))
            .collect();
        assert_eq!(data, vec![0x11, 0x22], "head word must be swallowed");
    }

    #[test]
    fn without_swallow_forwards_shifted_head() {
        let params = ArchParams::rn1();
        let config = RouterConfig::new(&params).with_dilation(2).build().unwrap();
        let mut r = Router::new(params, config, 1).unwrap();
        let stream = [Word::Data(0b0111_0100), Word::Data(0x11)];
        let (bwd_hist, _) = drive(&mut r, &stream, 4, |_, _| idle8());
        let data: Vec<u16> = (0..8)
            .flat_map(|b| bwd_hist[b].iter().filter_map(Word::data))
            .collect();
        // Head shifted left 2: 0b0111_0100 -> 0b1101_0000.
        assert_eq!(data, vec![0b1101_0000, 0x11]);
    }

    #[test]
    fn dp_delay_matches_pipestages() {
        for dp in 1..=3 {
            let mut r = router(dp);
            let stream = [Word::Data(0), Word::Data(0x55)];
            let (bwd_hist, _) = drive(&mut r, &stream, 6, |_, _| idle8());
            let first_active = bwd_hist
                .iter()
                .flat_map(|h| h.iter().enumerate())
                .find(|(_, w)| w.is_payload())
                .map(|(c, _)| c)
                .unwrap();
            // Head word swallowed; 0x55 enters at cycle 1 and exits the
            // router's output register dp - 1 cycles later (the final
            // register-to-wire transfer is the dp-th stage).
            assert_eq!(first_active, dp, "dp = {dp}");
        }
    }

    #[test]
    fn turn_reverses_and_injects_status_then_checksum() {
        let mut r = router(1);
        let stream = [
            Word::Data(0),
            Word::Data(0x0A),
            Word::Data(0x0B),
            Word::Turn,
        ];
        let (_, rev_hist) = drive(&mut r, &stream, 10, |_, _| idle8());
        let significant: Vec<Word> = rev_hist
            .iter()
            .copied()
            .filter(|w| !matches!(w, Word::Empty | Word::DataIdle))
            .collect();
        assert!(matches!(significant[0], Word::Status(s) if !s.is_blocked()));
        let expected = StreamChecksum::over_values([0, 0x0A, 0x0B]);
        assert_eq!(significant[1], Word::Checksum(expected));
    }

    #[test]
    fn reverse_data_flows_back_after_statuses() {
        let mut r = router(1);
        let stream = [Word::Data(0), Word::Data(0x0A), Word::Turn];
        // After the Turn exits downstream, feed reply data in on the
        // connected backward port.
        let (bwd_hist, rev_hist) = drive(&mut r, &stream, 12, |_, last| {
            let mut bwd = idle8();
            for b in 0..8 {
                // A healthy downstream always holds its lane with
                // DATA-IDLE; once the router reverses (DataIdle on its
                // backward output), the downstream replies with data.
                bwd = bwd.with(
                    b,
                    if last.bwd[b] == Word::DataIdle {
                        Word::Data(0x3C)
                    } else {
                        Word::DataIdle
                    },
                );
            }
            bwd
        });
        let _ = bwd_hist;
        let replies: Vec<u16> = rev_hist.iter().filter_map(Word::data).collect();
        assert!(
            replies.iter().all(|&v| v == 0x3C) && !replies.is_empty(),
            "reply data must flow to the source: {rev_hist:?}"
        );
    }

    #[test]
    fn blocked_fast_reclaim_asserts_bcb() {
        let params = ArchParams::rn1();
        let config = RouterConfig::new(&params)
            .with_dilation(2)
            .with_fast_reclaim_all(true)
            .build()
            .unwrap();
        let mut r = Router::new(params, config, 7).unwrap();
        // Saturate direction 0 (ports 0..2) from fwd ports 0 and 1.
        let open = FwdIn::idle(8).with(0, Word::Data(0)).with(1, Word::Data(0));
        r.tick(&open, &idle8());
        // Third request for direction 0 must block and assert BCB.
        let open2 = FwdIn::idle(8)
            .with(2, Word::Data(0))
            .with(0, Word::Data(0x99).masked(0xFF)) // continuation on port 0
            .with(1, Word::DataIdle);
        let out = r.tick(&open2, &idle8());
        assert!(out.bcb[2], "blocked port must assert BCB upstream");
        assert_eq!(r.stats().blocks, 1);
        assert_eq!(r.stats().fast_reclaims, 1);
    }

    #[test]
    fn blocked_detailed_replies_status_checksum_drop_on_turn() {
        let params = ArchParams::rn1();
        let config = RouterConfig::new(&params)
            .with_dilation(2)
            .with_fast_reclaim_all(false)
            .with_swallow_all(true)
            .build()
            .unwrap();
        let mut r = Router::new(params, config, 7).unwrap();
        // Fill direction 0.
        let open = FwdIn::idle(8).with(0, Word::Data(0)).with(1, Word::Data(0));
        r.tick(&open, &idle8());
        // Blocked stream on port 2: header, one data word, then turn.
        let mut seen = Vec::new();
        let streams = [
            Word::Data(0),
            Word::Data(0x42),
            Word::Turn,
            Word::DataIdle,
            Word::DataIdle,
            Word::DataIdle,
            Word::DataIdle,
        ];
        for w in streams {
            let fwd = FwdIn::idle(8)
                .with(2, w)
                .with(0, Word::DataIdle)
                .with(1, Word::DataIdle);
            let out = r.tick(&fwd, &idle8());
            seen.push(out.fwd[2]);
        }
        let significant: Vec<Word> = seen
            .into_iter()
            .filter(|w| !matches!(w, Word::Empty | Word::DataIdle))
            .collect();
        assert!(matches!(significant[0], Word::Status(s) if s.is_blocked()));
        let expected = StreamChecksum::over_values([0, 0x42]);
        assert_eq!(significant[1], Word::Checksum(expected));
        assert_eq!(significant[2], Word::Drop);
    }

    #[test]
    fn drop_releases_the_backward_port() {
        let mut r = router(1);
        let stream = [Word::Data(0), Word::Data(1), Word::Drop];
        drive(&mut r, &stream, 6, |_, _| idle8());
        assert_eq!(r.in_use_vector(), vec![false; 8]);
        assert_eq!(r.stats().drops, 1);
        assert_eq!(r.port_status(0), PortStatus::Idle);
    }

    #[test]
    fn bcb_arrival_tears_down_and_propagates() {
        let mut r = router(1);
        // Open a connection on port 0 toward direction 0.
        r.tick(&FwdIn::idle(8).with(0, Word::Data(0)), &idle8());
        let bwd = r.connected_backward_port(0).unwrap();
        // Downstream asserts BCB.
        let out = r.tick(
            &FwdIn::idle(8).with(0, Word::Data(1)),
            &idle8().with_bcb(bwd),
        );
        assert!(out.bcb[0], "BCB must propagate toward the source");
        assert!(!r.in_use_vector()[bwd]);
        assert_eq!(r.port_status(0), PortStatus::Draining);
        // After the source goes quiet the port returns to idle.
        r.tick(&FwdIn::idle(8), &idle8());
        assert_eq!(r.port_status(0), PortStatus::Idle);
    }

    #[test]
    fn disabled_forward_port_ignores_traffic() {
        let params = ArchParams::rn1();
        let config = RouterConfig::new(&params)
            .with_dilation(2)
            .with_forward_port_mode(0, PortMode::DisabledDriven)
            .build()
            .unwrap();
        let mut r = Router::new(params, config, 3).unwrap();
        let out = r.tick(&FwdIn::idle(8).with(0, Word::Data(0)), &idle8());
        assert!(out.bwd.iter().all(|w| *w == Word::Empty));
        assert_eq!(r.stats().opens, 0);
    }

    #[test]
    fn contending_requests_one_blocks() {
        let mut r = router(1);
        // Three simultaneous requests for direction 0 (2 ports).
        let fwd = FwdIn::idle(8)
            .with(0, Word::Data(0))
            .with(1, Word::Data(0))
            .with(2, Word::Data(0));
        r.tick(&fwd, &idle8());
        assert_eq!(r.stats().grants, 2);
        assert_eq!(r.stats().blocks, 1);
        let in_use = r.in_use_vector();
        assert!(in_use[0] && in_use[1]);
    }

    #[test]
    fn hw1_consumes_one_header_word_per_stage() {
        let params = ArchParams::rn1().with_header_words(1).unwrap();
        let config = RouterConfig::new(&params).with_dilation(2).build().unwrap();
        let mut r = Router::new(params, config, 5).unwrap();
        let stream = [Word::Data(0b0100_0000), Word::Data(0x77)];
        let (bwd_hist, _) = drive(&mut r, &stream, 4, |_, _| idle8());
        let data: Vec<u16> = (0..8)
            .flat_map(|b| bwd_hist[b].iter().filter_map(Word::data))
            .collect();
        assert_eq!(
            data,
            vec![0x77],
            "header word must be consumed, not forwarded"
        );
    }

    #[test]
    fn hw2_consumes_two_words() {
        let params = ArchParams::rn1().with_header_words(2).unwrap();
        let config = RouterConfig::new(&params).with_dilation(2).build().unwrap();
        let mut r = Router::new(params, config, 5).unwrap();
        let stream = [
            Word::Data(0b0100_0000),
            Word::Data(0x00), // setup padding
            Word::Data(0x77),
        ];
        let (bwd_hist, _) = drive(&mut r, &stream, 5, |_, _| idle8());
        let data: Vec<u16> = (0..8)
            .flat_map(|b| bwd_hist[b].iter().filter_map(Word::data))
            .collect();
        assert_eq!(data, vec![0x77]);
    }

    #[test]
    fn force_release_frees_and_drains() {
        let mut r = router(1);
        r.tick(&FwdIn::idle(8).with(0, Word::Data(0)), &idle8());
        let bwd = r.connected_backward_port(0).unwrap();
        assert!(r.force_release(bwd));
        assert!(!r.in_use_vector()[bwd]);
        assert_eq!(r.port_status(0), PortStatus::Draining);
        assert!(!r.force_release(bwd), "already free");
    }

    #[test]
    fn upstream_release_propagates_drop_downstream() {
        let mut r = router(1);
        let stream = [Word::Data(0), Word::Data(1)];
        // After the stream, input goes Empty (upstream vanished).
        let (bwd_hist, _) = drive(&mut r, &stream, 5, |_, _| idle8());
        let dropped = bwd_hist.iter().any(|h| h.contains(&Word::Drop));
        assert!(
            dropped,
            "drop must propagate downstream on upstream release"
        );
        assert_eq!(r.in_use_vector(), vec![false; 8]);
    }

    #[test]
    fn turn_then_turn_back_restores_forward_flow() {
        let mut r = router(1);
        // Open, turn, let downstream turn it back, then source data again.
        // A healthy downstream always holds its reverse lane at DataIdle.
        let held = |bwd: usize, w: Word| idle8().with(bwd, w);
        r.tick(&FwdIn::idle(8).with(0, Word::Data(0)), &idle8());
        let bwd = r.connected_backward_port(0).unwrap();
        r.tick(
            &FwdIn::idle(8).with(0, Word::Turn),
            &held(bwd, Word::DataIdle),
        );
        // Turn has flushed through; the port reverses.
        r.tick(
            &FwdIn::idle(8).with(0, Word::DataIdle),
            &held(bwd, Word::DataIdle),
        );
        assert_eq!(r.port_status(0), PortStatus::Reverse);
        // Downstream sends a reply word then turns it back forward.
        r.tick(
            &FwdIn::idle(8).with(0, Word::DataIdle),
            &idle8().with(bwd, Word::Data(0x5A)),
        );
        r.tick(
            &FwdIn::idle(8).with(0, Word::DataIdle),
            &idle8().with(bwd, Word::Turn),
        );
        // Let the turn flush through the reverse pipeline and queue.
        for _ in 0..4 {
            r.tick(
                &FwdIn::idle(8).with(0, Word::DataIdle),
                &idle8().with(bwd, Word::DataIdle),
            );
            if r.port_status(0) == PortStatus::Forward {
                break;
            }
        }
        assert_eq!(r.port_status(0), PortStatus::Forward);
        // Forward data flows again.
        let before = r.stats().words_forwarded;
        let out = r.tick(
            &FwdIn::idle(8).with(0, Word::Data(0x66)),
            &held(bwd, Word::DataIdle),
        );
        assert!(out.bwd[bwd] == Word::Data(0x66) || r.stats().words_forwarded > before);
    }

    #[test]
    fn reverse_tolerates_empty_during_settle_window() {
        // After a turn, the downstream hold takes one wire round trip to
        // arrive; Empty during that window must not tear the connection
        // down (paper §5.1, variable turn delay).
        let params = ArchParams::rn1();
        let config = RouterConfig::new(&params)
            .with_dilation(2)
            .with_swallow_all(true)
            .with_backward_turn_delay(0, 2)
            .with_backward_turn_delay(1, 2)
            .build()
            .unwrap();
        let mut r = Router::new(params, config, 3).unwrap();
        r.tick(&FwdIn::idle(8).with(0, Word::Data(0)), &idle8());
        let bwd = r.connected_backward_port(0).unwrap();
        r.tick(&FwdIn::idle(8).with(0, Word::Turn), &idle8());
        assert_eq!(r.port_status(0), PortStatus::Reverse);
        // Empty on the backward input for the whole settle window
        // (2·(vtd+1)+1 = 7 cycles): connection must survive.
        for _ in 0..7 {
            r.tick(&FwdIn::idle(8).with(0, Word::DataIdle), &idle8());
            assert_eq!(r.port_status(0), PortStatus::Reverse);
        }
        // After the window, persistent Empty is a teardown.
        let mut released = false;
        for _ in 0..6 {
            r.tick(&FwdIn::idle(8).with(0, Word::DataIdle), &idle8());
            if !r.in_use_vector()[bwd] {
                released = true;
                break;
            }
        }
        assert!(released, "post-settle Empty must tear the connection down");
    }

    #[test]
    fn settle_cancels_on_first_real_word() {
        let params = ArchParams::rn1();
        let config = RouterConfig::new(&params)
            .with_dilation(2)
            .with_swallow_all(true)
            .with_backward_turn_delay(0, 3)
            .with_backward_turn_delay(1, 3)
            .build()
            .unwrap();
        let mut r = Router::new(params, config, 3).unwrap();
        r.tick(&FwdIn::idle(8).with(0, Word::Data(0)), &idle8());
        let bwd = r.connected_backward_port(0).unwrap();
        r.tick(&FwdIn::idle(8).with(0, Word::Turn), &idle8());
        // DataIdle arrives: the hold is established, settle cancels.
        r.tick(
            &FwdIn::idle(8).with(0, Word::DataIdle),
            &idle8().with(bwd, Word::DataIdle),
        );
        // Now Empty means teardown immediately (within a few cycles for
        // the drop to flush through the queue and pipe).
        let mut released = false;
        for _ in 0..5 {
            r.tick(&FwdIn::idle(8).with(0, Word::DataIdle), &idle8());
            if !r.in_use_vector()[bwd] {
                released = true;
                break;
            }
        }
        assert!(released);
    }

    #[test]
    fn bcb_during_setup_releases_the_allocation() {
        let params = ArchParams::rn1().with_header_words(2).unwrap();
        let config = RouterConfig::new(&params).with_dilation(2).build().unwrap();
        let mut r = Router::new(params, config, 5).unwrap();
        r.tick(&FwdIn::idle(8).with(0, Word::Data(0)), &idle8());
        let bwd = r.connected_backward_port(0).unwrap();
        assert_eq!(r.port_status(0), PortStatus::Setup);
        let out = r.tick(
            &FwdIn::idle(8).with(0, Word::Data(0)),
            &idle8().with_bcb(bwd),
        );
        assert!(out.bcb[0], "BCB propagates even during setup");
        assert!(!r.in_use_vector()[bwd]);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut r = router(1);
        r.tick(&FwdIn::idle(8).with(0, Word::Data(0)), &idle8());
        assert_eq!(r.stats().opens, 1);
        r.reset_stats();
        assert_eq!(r.stats(), RouterStats::default());
    }

    /// Runs a mixed traffic pattern, checkpoints mid-connection, and
    /// proves the restored router ticks bit-identically to the
    /// original for many further cycles.
    #[test]
    fn save_restore_resumes_bit_identically_mid_connection() {
        use metro_telemetry::state::{StateReader, StateWriter};
        for dp in [1usize, 3] {
            let mut live = router(dp);
            // Open two connections, block a third, and turn one —
            // leaves ports in Forward, Reverse/Blocked, and Draining
            // flavors with non-trivial pipes and checksums.
            let open = FwdIn::idle(8)
                .with(0, Word::Data(0))
                .with(1, Word::Data(0))
                .with(2, Word::Data(0b0100_0000));
            live.tick(&open, &idle8());
            let follow = FwdIn::idle(8)
                .with(0, Word::Data(0x31))
                .with(1, Word::Turn)
                .with(2, Word::Data(0x17));
            live.tick(&follow, &idle8());

            let mut w = StateWriter::new();
            live.save_state(&mut w);
            let words = w.into_words();

            // A fresh router built identically, then restored.
            let mut resumed = router(dp);
            let mut r = StateReader::new(&words);
            resumed.restore_state(&mut r).unwrap();
            r.finish().unwrap();

            for cycle in 0..64u16 {
                let fwd = FwdIn::idle(8)
                    .with(0, Word::Data(cycle & 0xFF))
                    .with(2, Word::DataIdle);
                let bwd = idle8();
                assert_eq!(
                    live.tick(&fwd, &bwd),
                    resumed.tick(&fwd, &bwd),
                    "outputs diverged at post-restore cycle {cycle} (dp {dp})"
                );
            }
            assert_eq!(live.stats(), resumed.stats());
            assert_eq!(live.in_use_vector(), resumed.in_use_vector());
        }
    }

    #[test]
    fn restore_rejects_a_corrupt_activity_bitplane() {
        use metro_telemetry::state::{StateReader, StateWriter};
        let mut r = router(1);
        r.tick(&FwdIn::idle(8).with(0, Word::Data(0)), &idle8());
        let mut w = StateWriter::new();
        r.save_state(&mut w);
        let mut words = w.into_words();
        // Word 0 is the section tag, word 1 the RNG state; the activity
        // bitplane sits after the allocator block. Flip a state
        // discriminant instead: corrupt the last checksum word's high
        // bits to verify *some* typed rejection fires.
        let last = words.len() - 1;
        words[last] = u64::MAX;
        let mut fresh = router(1);
        let mut rd = StateReader::new(&words);
        assert!(fresh.restore_state(&mut rd).is_err());
    }
}
