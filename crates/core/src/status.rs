//! Router status words.
//!
//! When a connection is reversed (TURN), each router along the path
//! injects information about the open connection into the return stream:
//! a [`StatusWord`] describing the connection's state at that router,
//! followed by a checksum of the data the router forwarded. The source
//! uses the sequence of status words — which arrive ordered
//! nearest-router-first — to determine exactly where a connection blocked
//! and whether the data stream was corrupted in transit (paper §4, §5.1).

use core::fmt;

/// The state of a connection as reported by one router at turn time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnectionState {
    /// The connection was switched through to a backward port; data was
    /// forwarded downstream.
    Connected,
    /// No logically appropriate backward port was available; the stream
    /// was discarded at this router (paper §3, "blocked").
    Blocked,
}

/// One router's connection report, injected into the reverse stream
/// during connection reversal.
///
/// In hardware the status occupies a `w`-bit word; this model keeps the
/// fields symbolic and provides [`StatusWord::encode`]/
/// [`StatusWord::decode`] for the packed form used by width cascading
/// tests and the scan registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatusWord {
    state: ConnectionState,
    /// The backward port the connection used (meaningful when
    /// `state == Connected`), as a small integer.
    port: u8,
}

impl StatusWord {
    /// Creates a status word reporting `state` via backward port `port`.
    #[must_use]
    pub fn new(state: ConnectionState, port: u8) -> Self {
        Self { state, port }
    }

    /// A status word reporting a successfully switched connection
    /// through backward port `port`.
    #[must_use]
    pub fn connected(port: usize) -> Self {
        Self::new(ConnectionState::Connected, port as u8)
    }

    /// A status word reporting a blocked connection.
    #[must_use]
    pub fn blocked() -> Self {
        Self::new(ConnectionState::Blocked, 0)
    }

    /// The reported connection state.
    #[must_use]
    pub fn state(&self) -> ConnectionState {
        self.state
    }

    /// Whether the router reports the connection as blocked.
    #[must_use]
    pub fn is_blocked(&self) -> bool {
        self.state == ConnectionState::Blocked
    }

    /// The backward port the connection used, when connected.
    #[must_use]
    pub fn port(&self) -> Option<usize> {
        match self.state {
            ConnectionState::Connected => Some(self.port as usize),
            ConnectionState::Blocked => None,
        }
    }

    /// Packs the status into a word: bit 7 = blocked flag, low bits =
    /// backward port index.
    #[must_use]
    pub fn encode(&self) -> u16 {
        let blocked = match self.state {
            ConnectionState::Blocked => 0x80,
            ConnectionState::Connected => 0,
        };
        blocked | u16::from(self.port & 0x7F)
    }

    /// Unpacks a status word encoded by [`StatusWord::encode`].
    #[must_use]
    pub fn decode(bits: u16) -> Self {
        let state = if bits & 0x80 != 0 {
            ConnectionState::Blocked
        } else {
            ConnectionState::Connected
        };
        Self {
            state,
            port: (bits & 0x7F) as u8,
        }
    }
}

impl fmt::Display for StatusWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.state {
            ConnectionState::Connected => write!(f, "ok@{}", self.port),
            ConnectionState::Blocked => write!(f, "BLOCKED"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connected_reports_port() {
        let s = StatusWord::connected(5);
        assert_eq!(s.state(), ConnectionState::Connected);
        assert_eq!(s.port(), Some(5));
        assert!(!s.is_blocked());
    }

    #[test]
    fn blocked_has_no_port() {
        let s = StatusWord::blocked();
        assert!(s.is_blocked());
        assert_eq!(s.port(), None);
    }

    #[test]
    fn encode_decode_roundtrip() {
        for port in 0..64usize {
            let s = StatusWord::connected(port);
            assert_eq!(StatusWord::decode(s.encode()), s);
        }
        let b = StatusWord::blocked();
        assert_eq!(StatusWord::decode(b.encode()), b);
    }

    #[test]
    fn encoding_separates_blocked_bit() {
        assert_eq!(StatusWord::connected(3).encode(), 0x03);
        assert_eq!(StatusWord::blocked().encode(), 0x80);
    }

    #[test]
    fn display_shows_state() {
        assert_eq!(StatusWord::connected(2).to_string(), "ok@2");
        assert_eq!(StatusWord::blocked().to_string(), "BLOCKED");
    }
}
