//! Stream checksums.
//!
//! METRO relies on end-to-end checksums for reliable delivery (paper §4),
//! and each router additionally reports a checksum of the words it
//! forwarded when the connection is turned, letting the source localize
//! where corruption entered the stream (paper §5.1, "Connection
//! Reversal").
//!
//! The model uses a CRC-16 (XMODEM polynomial `0x1021`) over the
//! `w`-bit data words of a stream. Position sensitivity matters: a
//! plain sum would miss word-swap faults. A Fletcher-16 (mod 255) sum
//! is not enough either — it is linear in the byte deltas, so a stuck
//! link XORing the *same* bit into every word aliases whenever the
//! flip directions balance: corrupting `[0x9C, 0x4E, 0xEB, 0xF0]`
//! with `xor = 0x10` yields deltas −16, +16, +16, −16, which cancel
//! in both Fletcher sums and deliver silently (chaos campaign seed
//! `0x57b0` found exactly this). The CRC's polynomial division spreads
//! each delta across the register, so constant-XOR patterns cannot
//! cancel positionally.

use crate::word::Word;

/// A running checksum over the data words of a connection stream.
///
/// Feed every forwarded word with [`StreamChecksum::absorb`]; only
/// payload-bearing words ([`Word::Data`]) affect the sum, so routers and
/// endpoints converge on the same value regardless of how many
/// DATA-IDLE fill words the pipeline inserted.
///
/// # Examples
///
/// ```
/// use metro_core::{StreamChecksum, Word};
///
/// let mut a = StreamChecksum::new();
/// let mut b = StreamChecksum::new();
/// for w in [Word::Data(1), Word::DataIdle, Word::Data(2)] {
///     a.absorb(&w);
/// }
/// for w in [Word::Data(1), Word::Data(2), Word::DataIdle] {
///     b.absorb(&w);
/// }
/// assert_eq!(a.value(), b.value()); // DATA-IDLE is transparent
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StreamChecksum {
    crc: u16,
}

/// The CRC-16/XMODEM polynomial (x¹⁶ + x¹² + x⁵ + 1).
const POLY: u16 = 0x1021;

/// Per-byte CRC step table, built at compile time. This runs once per
/// forwarded data word in every router — the single most frequent
/// arithmetic in the simulator — so the division is precomputed.
const CRC_TABLE: [u16; 256] = {
    let mut table = [0u16; 256];
    let mut byte = 0usize;
    while byte < 256 {
        let mut crc = (byte as u16) << 8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ POLY
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[byte] = crc;
        byte += 1;
    }
    table
};

impl StreamChecksum {
    /// Creates an empty checksum.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one channel word. Only [`Word::Data`] words contribute;
    /// control words (DATA-IDLE, TURN, status, …) are transparent.
    #[inline]
    pub fn absorb(&mut self, word: &Word) {
        if let Word::Data(v) = word {
            self.absorb_value(*v);
        }
    }

    /// Absorbs a raw data value (low byte first, then high byte).
    #[inline]
    pub fn absorb_value(&mut self, v: u16) {
        for byte in [(v & 0xFF) as u8, (v >> 8) as u8] {
            self.crc = (self.crc << 8) ^ CRC_TABLE[usize::from((self.crc >> 8) as u8 ^ byte)];
        }
    }

    /// The current checksum value.
    #[must_use]
    pub fn value(&self) -> u16 {
        self.crc
    }

    /// Checksums an entire slice of words in one call.
    #[must_use]
    pub fn over<'a, I: IntoIterator<Item = &'a Word>>(words: I) -> u16 {
        let mut c = Self::new();
        for w in words {
            c.absorb(w);
        }
        c.value()
    }

    /// Checksums a slice of raw data values.
    #[must_use]
    pub fn over_values<I: IntoIterator<Item = u16>>(values: I) -> u16 {
        let mut c = Self::new();
        for v in values {
            c.absorb_value(v);
        }
        c.value()
    }

    /// Resets the checksum to its initial state.
    pub fn reset(&mut self) {
        *self = Self::new();
    }

    /// Rebuilds the running state from a [`Self::value`] reading.
    ///
    /// The CRC register *is* the whole state, so this inversion is
    /// exact: `StreamChecksum::from_value(c.value()) == c` for any
    /// reachable checksum state. Checkpoint restore depends on that
    /// property.
    #[must_use]
    pub fn from_value(value: u16) -> Self {
        Self { crc: value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stream_checksums_to_zero() {
        assert_eq!(StreamChecksum::new().value(), 0);
    }

    #[test]
    fn table_crc_matches_bitwise_reference() {
        // The table-driven step must compute the same CRC-16/XMODEM
        // remainder as the straightforward bit-at-a-time division, over
        // a stride of the word space and across accumulated state.
        fn bitwise(crc: u16, byte: u8) -> u16 {
            let mut crc = crc ^ (u16::from(byte) << 8);
            for _ in 0..8 {
                crc = if crc & 0x8000 != 0 {
                    (crc << 1) ^ POLY
                } else {
                    crc << 1
                };
            }
            crc
        }
        let mut table_driven = StreamChecksum::new();
        let mut reference = 0u16;
        for v in (0..=u16::MAX).step_by(97) {
            table_driven.absorb_value(v);
            reference = bitwise(reference, (v & 0xFF) as u8);
            reference = bitwise(reference, (v >> 8) as u8);
            assert_eq!(table_driven.value(), reference, "diverged at word {v}");
        }
    }

    #[test]
    fn detects_balanced_constant_xor_corruption() {
        // Chaos seed 0x57b0: a stuck link XORed 0x10 into every word of
        // this payload. The bit-4 flip directions balance (−16, +16,
        // +16, −16), which cancels in a Fletcher-16 (mod 255) sum — the
        // corruption delivered silently. The CRC must tell them apart.
        let clean = StreamChecksum::over_values([0x9C, 0x4E, 0xEB, 0xF0]);
        let corrupted = StreamChecksum::over_values([0x8C, 0x5E, 0xFB, 0xE0]);
        assert_ne!(clean, corrupted, "balanced constant-XOR pattern aliased");
    }

    #[test]
    fn detects_single_word_corruption() {
        let clean = StreamChecksum::over_values([1, 2, 3, 4]);
        let dirty = StreamChecksum::over_values([1, 2, 7, 4]);
        assert_ne!(clean, dirty);
    }

    #[test]
    fn detects_word_swap() {
        let clean = StreamChecksum::over_values([0xA, 0xB]);
        let swapped = StreamChecksum::over_values([0xB, 0xA]);
        assert_ne!(clean, swapped, "checksum must be position sensitive");
    }

    #[test]
    fn control_words_are_transparent() {
        let with_idle = StreamChecksum::over(&[
            Word::Data(9),
            Word::DataIdle,
            Word::Turn,
            Word::Data(4),
            Word::Checksum(0xFFFF),
        ]);
        let without = StreamChecksum::over(&[Word::Data(9), Word::Data(4)]);
        assert_eq!(with_idle, without);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut c = StreamChecksum::new();
        c.absorb_value(42);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn incremental_equals_batch() {
        let values = [3u16, 1, 4, 1, 5, 9, 2, 6];
        let mut inc = StreamChecksum::new();
        for v in values {
            inc.absorb_value(v);
        }
        assert_eq!(inc.value(), StreamChecksum::over_values(values));
    }

    #[test]
    fn detects_dropped_word() {
        let full = StreamChecksum::over_values([5, 5, 5]);
        let short = StreamChecksum::over_values([5, 5]);
        assert_ne!(full, short);
    }

    #[test]
    fn from_value_inverts_value_exactly() {
        // Walk a long absorb sequence; at every prefix the packed value
        // must reconstruct the identical running state.
        let mut c = StreamChecksum::new();
        for v in (0..=u16::MAX).step_by(251) {
            c.absorb_value(v);
            let rebuilt = StreamChecksum::from_value(c.value());
            assert_eq!(rebuilt, c, "reconstruction diverged after word {v}");
            // And the rebuilt state keeps absorbing identically.
            let mut a = c;
            let mut b = rebuilt;
            a.absorb_value(0x1234);
            b.absorb_value(0x1234);
            assert_eq!(a, b);
        }
    }
}
