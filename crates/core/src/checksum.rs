//! Stream checksums.
//!
//! METRO relies on end-to-end checksums for reliable delivery (paper §4),
//! and each router additionally reports a checksum of the words it
//! forwarded when the connection is turned, letting the source localize
//! where corruption entered the stream (paper §5.1, "Connection
//! Reversal").
//!
//! The model uses a Fletcher-16-style position-sensitive checksum over
//! the `w`-bit data words of a stream. Position sensitivity matters: a
//! plain sum would miss word-swap faults.

use crate::word::Word;

/// A running checksum over the data words of a connection stream.
///
/// Feed every forwarded word with [`StreamChecksum::absorb`]; only
/// payload-bearing words ([`Word::Data`]) affect the sum, so routers and
/// endpoints converge on the same value regardless of how many
/// DATA-IDLE fill words the pipeline inserted.
///
/// # Examples
///
/// ```
/// use metro_core::{StreamChecksum, Word};
///
/// let mut a = StreamChecksum::new();
/// let mut b = StreamChecksum::new();
/// for w in [Word::Data(1), Word::DataIdle, Word::Data(2)] {
///     a.absorb(&w);
/// }
/// for w in [Word::Data(1), Word::Data(2), Word::DataIdle] {
///     b.absorb(&w);
/// }
/// assert_eq!(a.value(), b.value()); // DATA-IDLE is transparent
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StreamChecksum {
    sum1: u16,
    sum2: u16,
}

const MOD: u32 = 255;

impl StreamChecksum {
    /// Creates an empty checksum.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one channel word. Only [`Word::Data`] words contribute;
    /// control words (DATA-IDLE, TURN, status, …) are transparent.
    #[inline]
    pub fn absorb(&mut self, word: &Word) {
        if let Word::Data(v) = word {
            self.absorb_value(*v);
        }
    }

    /// Absorbs a raw data value.
    #[inline]
    pub fn absorb_value(&mut self, v: u16) {
        // Fletcher over the two bytes of the (≤16-bit) word. Since
        // 256 ≡ 1 (mod 255), folding the high byte into the low byte
        // plus one conditional subtract computes the residue exactly
        // for the ≤ 509 intermediate sums that arise here — the same
        // value the division produced, without the division. This runs
        // once per forwarded data word in every router, the single most
        // frequent arithmetic in the simulator.
        #[inline]
        fn mod255(x: u32) -> u16 {
            let folded = (x >> 8) + (x & 0xFF);
            (if folded >= MOD { folded - MOD } else { folded }) as u16
        }
        for byte in [(v & 0xFF) as u32, (v >> 8) as u32] {
            self.sum1 = mod255(u32::from(self.sum1) + byte);
            self.sum2 = mod255(u32::from(self.sum2) + u32::from(self.sum1));
        }
    }

    /// The current checksum value.
    #[must_use]
    pub fn value(&self) -> u16 {
        (self.sum2 << 8) | self.sum1
    }

    /// Checksums an entire slice of words in one call.
    #[must_use]
    pub fn over<'a, I: IntoIterator<Item = &'a Word>>(words: I) -> u16 {
        let mut c = Self::new();
        for w in words {
            c.absorb(w);
        }
        c.value()
    }

    /// Checksums a slice of raw data values.
    #[must_use]
    pub fn over_values<I: IntoIterator<Item = u16>>(values: I) -> u16 {
        let mut c = Self::new();
        for v in values {
            c.absorb_value(v);
        }
        c.value()
    }

    /// Resets the checksum to its initial state.
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stream_checksums_to_zero() {
        assert_eq!(StreamChecksum::new().value(), 0);
    }

    #[test]
    fn folded_residue_matches_division() {
        // `absorb_value` computes `% 255` by byte-folding; pin it to the
        // straightforward division it replaced, over a stride of the
        // word space and across accumulated state.
        let mut folded = StreamChecksum::new();
        let (mut s1, mut s2) = (0u32, 0u32);
        for v in (0..=u16::MAX).step_by(97) {
            folded.absorb_value(v);
            for byte in [u32::from(v & 0xFF), u32::from(v >> 8)] {
                s1 = (s1 + byte) % 255;
                s2 = (s2 + s1) % 255;
            }
            let expected = ((s2 as u16) << 8) | s1 as u16;
            assert_eq!(folded.value(), expected, "diverged at word {v}");
        }
    }

    #[test]
    fn detects_single_word_corruption() {
        let clean = StreamChecksum::over_values([1, 2, 3, 4]);
        let dirty = StreamChecksum::over_values([1, 2, 7, 4]);
        assert_ne!(clean, dirty);
    }

    #[test]
    fn detects_word_swap() {
        let clean = StreamChecksum::over_values([0xA, 0xB]);
        let swapped = StreamChecksum::over_values([0xB, 0xA]);
        assert_ne!(clean, swapped, "checksum must be position sensitive");
    }

    #[test]
    fn control_words_are_transparent() {
        let with_idle = StreamChecksum::over(&[
            Word::Data(9),
            Word::DataIdle,
            Word::Turn,
            Word::Data(4),
            Word::Checksum(0xFFFF),
        ]);
        let without = StreamChecksum::over(&[Word::Data(9), Word::Data(4)]);
        assert_eq!(with_idle, without);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut c = StreamChecksum::new();
        c.absorb_value(42);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn incremental_equals_batch() {
        let values = [3u16, 1, 4, 1, 5, 9, 2, 6];
        let mut inc = StreamChecksum::new();
        for v in values {
            inc.absorb_value(v);
        }
        assert_eq!(inc.value(), StreamChecksum::over_values(values));
    }

    #[test]
    fn detects_dropped_word() {
        let full = StreamChecksum::over_values([5, 5, 5]);
        let short = StreamChecksum::over_values([5, 5]);
        assert_ne!(full, short);
    }
}
