//! Route header construction and consumption.
//!
//! METRO routers are self-routing: the first words of each stream carry a
//! destination-tag routing specification. Each router consumes
//! `log2(radix)` bits per stage. Two regimes exist (paper §5.1, Table 4):
//!
//! * **`hw = 0`** — route digits are packed into words and each router
//!   examines the top bits of the *head* word, shifting them out before
//!   forwarding (RN1-style). When the head word is exhausted, the router
//!   configured with the *swallow* option strips it so the next stage
//!   sees a fresh head word. Header bits:
//!   `ceil((sum of log2 r_s) / w) * w * c`.
//! * **`hw >= 1`** — pipelined connection setup: each router consumes
//!   `hw` whole words from the stream head; the route digit sits in the
//!   top bits of the first consumed word. Header bits:
//!   `hw * w * c * stages`.
//!
//! [`HeaderPlan`] computes, for a sequence of stage radices, how the
//! header packs into words and which stages must be configured to
//! swallow; [`RouteHeader`] packs a concrete digit sequence.

use crate::params::log2_exact;

/// The per-stage layout of a route header for one path through a
/// multistage network.
///
/// A plan is a function of the per-stage digit widths (in bits), the
/// channel width `w`, and the setup regime `hw`. The network builder
/// derives router *swallow* configuration from the plan, and endpoints
/// use it to pack headers.
///
/// # Examples
///
/// ```
/// use metro_core::header::HeaderPlan;
///
/// // Figure 3 network: three radix-4 stages, 8-bit channel, hw = 0.
/// let plan = HeaderPlan::new(&[2, 2, 2], 8, 0);
/// assert_eq!(plan.header_words(), 1); // 6 bits fit one byte
/// // Only the final stage exhausts the head word:
/// assert_eq!(plan.swallow(), &[false, false, true]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeaderPlan {
    digit_bits: Vec<usize>,
    w: usize,
    hw: usize,
    /// For `hw = 0`: which word each stage's digit lives in and the bit
    /// offset (from the MSB of the `w`-bit word) where it starts.
    placement: Vec<(usize, usize)>,
    swallow: Vec<bool>,
    header_words: usize,
}

impl HeaderPlan {
    /// Builds a plan for stages with the given digit widths (bits per
    /// stage, i.e. `log2(radix)` of each stage), channel width `w`, and
    /// header-words-per-router `hw`.
    ///
    /// # Panics
    ///
    /// Panics if any stage's digit is wider than the channel.
    #[must_use]
    pub fn new(stage_digit_bits: &[usize], w: usize, hw: usize) -> Self {
        assert!(
            stage_digit_bits.iter().all(|&b| b <= w),
            "a route digit must fit in one {w}-bit word"
        );
        let stages = stage_digit_bits.len();
        let mut placement = Vec::with_capacity(stages);
        let mut swallow = vec![false; stages];
        let header_words;
        if hw == 0 {
            // Pack digits MSB-first; a digit never straddles a word
            // boundary (the packer pads instead), so each router finds
            // its digit at the top of the head word after the upstream
            // routers shifted theirs out.
            let mut word = 0usize;
            let mut offset = 0usize; // bits already consumed in `word`
            for (s, &bits) in stage_digit_bits.iter().enumerate() {
                if bits == 0 {
                    // Radix-1 stage consumes no routing information.
                    placement.push((word, offset));
                    continue;
                }
                if offset + bits > w {
                    // Digit will not fit: the previous stage must strip
                    // the exhausted word so this stage sees the next one.
                    if s > 0 {
                        swallow[s - 1] = true;
                    }
                    word += 1;
                    offset = 0;
                }
                placement.push((word, offset));
                offset += bits;
                if offset == w && s + 1 < stages {
                    swallow[s] = true;
                    word += 1;
                    offset = 0;
                }
            }
            // The final stage always strips the (possibly partially
            // used) head word so the destination sees clean payload.
            if stages > 0 {
                swallow[stages - 1] = true;
            }
            header_words = if stages == 0 { 0 } else { word + 1 };
        } else {
            // Pipelined setup: every router strips hw whole words.
            for s in 0..stages {
                placement.push((s * hw, 0));
            }
            header_words = stages * hw;
        }
        Self {
            digit_bits: stage_digit_bits.to_vec(),
            w,
            hw,
            placement,
            swallow,
            header_words,
        }
    }

    /// Number of header words an endpoint must prepend to each message.
    #[must_use]
    pub fn header_words(&self) -> usize {
        self.header_words
    }

    /// Total header bits — the `hbits` quantity of Table 4 (for a
    /// single, non-cascaded router column, `c = 1`).
    #[must_use]
    pub fn header_bits(&self) -> usize {
        self.header_words * self.w
    }

    /// Which stages must be configured with the *swallow* option
    /// (`hw = 0` regime only; all-false otherwise).
    #[must_use]
    pub fn swallow(&self) -> &[bool] {
        &self.swallow
    }

    /// Number of stages the plan covers.
    #[must_use]
    pub fn stages(&self) -> usize {
        self.digit_bits.len()
    }

    /// The digit widths the plan was built from.
    #[must_use]
    pub fn stage_digit_bits(&self) -> &[usize] {
        &self.digit_bits
    }

    /// Packs a sequence of per-stage route digits into header words.
    ///
    /// # Panics
    ///
    /// Panics if `digits` does not match the plan's stage count or if a
    /// digit exceeds its stage's width.
    #[must_use]
    pub fn pack(&self, digits: &[usize]) -> Vec<u16> {
        assert_eq!(
            digits.len(),
            self.digit_bits.len(),
            "digit count must match plan stages"
        );
        let mut words = vec![0u16; self.header_words];
        for (s, (&digit, &bits)) in digits.iter().zip(&self.digit_bits).enumerate() {
            if bits == 0 {
                assert_eq!(digit, 0, "radix-1 stage digit must be zero");
                continue;
            }
            assert!(
                digit < (1usize << bits),
                "digit {digit} exceeds {bits} bits at stage {s}"
            );
            let (word, offset) = self.placement[s];
            let shift = self.w - offset - bits;
            words[word] |= (digit as u16) << shift;
        }
        words
    }

    /// Computes the per-stage digits for destination `dest` in a network
    /// whose stage radices are `2^bits` for each entry of the plan
    /// (most-significant digit routed first).
    ///
    /// # Panics
    ///
    /// Panics if `dest` is outside the address space the stages span.
    #[must_use]
    pub fn digits_for(&self, dest: usize) -> Vec<usize> {
        let total_bits: usize = self.digit_bits.iter().sum();
        assert!(
            total_bits >= usize::BITS as usize || dest < (1usize << total_bits),
            "destination {dest} outside {total_bits}-bit address space"
        );
        let mut digits = Vec::with_capacity(self.digit_bits.len());
        let mut remaining = total_bits;
        for &bits in &self.digit_bits {
            remaining -= bits;
            digits.push((dest >> remaining) & ((1usize << bits) - 1));
        }
        digits
    }
}

/// A packed route header plus the payload layout for one message — the
/// complete word stream an endpoint feeds into the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteHeader {
    words: Vec<u16>,
}

impl RouteHeader {
    /// Packs the header for `dest` under `plan`.
    #[must_use]
    pub fn for_destination(plan: &HeaderPlan, dest: usize) -> Self {
        Self {
            words: plan.pack(&plan.digits_for(dest)),
        }
    }

    /// The packed header words.
    #[must_use]
    pub fn words(&self) -> &[u16] {
        &self.words
    }

    /// Number of header words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the header is empty (a zero-stage network).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Simulates the head-word consumption a router at stage `s` performs,
/// for testing and for the destination-side view: returns
/// `(digit, forwarded_head)` where `forwarded_head` is `None` when the
/// word is swallowed.
#[must_use]
pub fn consume_digit(
    head: u16,
    digit_bits: usize,
    w: usize,
    swallow: bool,
) -> (usize, Option<u16>) {
    let digit = (head >> (w - digit_bits)) as usize & ((1 << digit_bits) - 1);
    let mask = if w == 16 { u16::MAX } else { (1u16 << w) - 1 };
    let shifted = (head << digit_bits) & mask;
    (digit, if swallow { None } else { Some(shifted) })
}

/// `log2(radix)` helper re-exported for plan construction from radices.
#[must_use]
pub fn digit_bits_of_radix(radix: usize) -> usize {
    log2_exact(radix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_plan_packs_six_bits_in_one_byte() {
        let plan = HeaderPlan::new(&[2, 2, 2], 8, 0);
        assert_eq!(plan.header_words(), 1);
        assert_eq!(plan.header_bits(), 8);
        assert_eq!(plan.swallow(), &[false, false, true]);
    }

    #[test]
    fn metrojr_plan_needs_two_nibbles_for_five_stages() {
        // 5 radix-2 stages on a 4-bit channel: 5 bits -> 2 words.
        let plan = HeaderPlan::new(&[1, 1, 1, 1, 1], 4, 0);
        assert_eq!(plan.header_words(), 2);
        // Word 0 exhausted after stage 3; stage 4 uses word 1.
        assert_eq!(plan.swallow(), &[false, false, false, true, true]);
    }

    #[test]
    fn digits_never_straddle_words() {
        // 3-bit digits on a 4-bit channel: each word holds one digit.
        let plan = HeaderPlan::new(&[3, 3], 4, 0);
        assert_eq!(plan.header_words(), 2);
        assert_eq!(plan.swallow(), &[true, true]);
        let words = plan.pack(&[0b101, 0b011]);
        assert_eq!(words, vec![0b1010, 0b0110]);
    }

    #[test]
    fn hw_regime_consumes_whole_words_per_stage() {
        let plan = HeaderPlan::new(&[2, 2, 2], 8, 2);
        assert_eq!(plan.header_words(), 6);
        assert_eq!(plan.header_bits(), 48); // hw*w*stages = 2*8*3
        assert!(plan.swallow().iter().all(|&s| !s));
    }

    #[test]
    fn pack_and_consume_roundtrip() {
        let plan = HeaderPlan::new(&[2, 2, 2], 8, 0);
        let words = plan.pack(&[3, 1, 2]);
        let mut head = words[0];
        let mut digits = Vec::new();
        for (s, &sw) in plan.swallow().iter().enumerate() {
            let (d, next) = consume_digit(head, plan.stage_digit_bits()[s], 8, sw);
            digits.push(d);
            if let Some(n) = next {
                head = n;
            }
        }
        assert_eq!(digits, vec![3, 1, 2]);
    }

    #[test]
    fn digits_for_is_msb_first() {
        let plan = HeaderPlan::new(&[2, 2, 2], 8, 0);
        // dest 0b11_01_10 = 54 -> digits [3, 1, 2]
        assert_eq!(plan.digits_for(54), vec![3, 1, 2]);
        assert_eq!(plan.digits_for(0), vec![0, 0, 0]);
        assert_eq!(plan.digits_for(63), vec![3, 3, 3]);
    }

    #[test]
    fn heterogeneous_stage_widths() {
        // Figure 1 style: two radix-2 stages then one radix-4 stage.
        let plan = HeaderPlan::new(&[1, 1, 2], 4, 0);
        assert_eq!(plan.header_words(), 1);
        assert_eq!(plan.digits_for(0b1011), vec![1, 0, 3]);
        let words = plan.pack(&[1, 0, 3]);
        assert_eq!(words, vec![0b1011]);
    }

    #[test]
    fn radix_one_stage_consumes_nothing() {
        let plan = HeaderPlan::new(&[2, 0, 2], 8, 0);
        assert_eq!(plan.digits_for(0b11_01), vec![3, 0, 1]);
        assert_eq!(plan.header_words(), 1);
    }

    #[test]
    fn route_header_for_destination() {
        let plan = HeaderPlan::new(&[2, 2, 2], 8, 0);
        let h = RouteHeader::for_destination(&plan, 54);
        assert_eq!(h.words(), &[0b1101_1000]);
        assert_eq!(h.len(), 1);
        assert!(!h.is_empty());
    }

    #[test]
    fn consume_digit_swallow_strips_word() {
        let (d, fwd) = consume_digit(0b1100_0000, 2, 8, true);
        assert_eq!(d, 3);
        assert_eq!(fwd, None);
        let (d, fwd) = consume_digit(0b1100_0000, 2, 8, false);
        assert_eq!(d, 3);
        assert_eq!(fwd, Some(0b0000_0000));
    }

    #[test]
    #[should_panic(expected = "must match plan stages")]
    fn pack_rejects_wrong_digit_count() {
        let _ = HeaderPlan::new(&[2, 2], 8, 0).pack(&[1]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn pack_rejects_oversized_digit() {
        let _ = HeaderPlan::new(&[2, 2], 8, 0).pack(&[4, 0]);
    }
}
