//! Shared-randomness bit streams.
//!
//! METRO's stochastic path selection draws on random bit streams. To make
//! width cascading work, "the routers receive their random bits from off
//! chip … As long as the connection requests and shared random bits are
//! identical for the set of cascaded routers, the cascaded routers will
//! allocate identically" (paper §5.1). To avoid extra components, each
//! router also *generates* one random output bit stream, and consumes
//! `ri >= 1` input streams.
//!
//! This model uses a seeded xorshift64\* generator per stream: cheap,
//! deterministic, and adequate for selection among a handful of
//! equivalent ports. Determinism is a feature — an entire network
//! simulation replays exactly from its seed.

/// A deterministic source of random bits, standing in for the `ri`
/// random input streams wired into a METRO router.
///
/// Cloning the source clones its state: two clones produce identical
/// streams, which is exactly how width cascading shares randomness
/// across routers (see [`CascadeGroup`](crate::CascadeGroup)).
///
/// # Examples
///
/// ```
/// use metro_core::RandomSource;
///
/// let mut a = RandomSource::new(42);
/// let mut b = a.clone();
/// assert_eq!(a.bits(8), b.bits(8)); // shared randomness
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RandomSource {
    state: u64,
}

impl RandomSource {
    /// Creates a stream seeded with `seed`. A zero seed is remapped to a
    /// fixed nonzero constant (xorshift has a zero fixed point).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Derives an independent stream for subcomponent `index`, e.g. one
    /// per router of a network built from a single master seed.
    #[must_use]
    pub fn derive(&self, index: u64) -> Self {
        // SplitMix-style mix of the base state and index.
        let mut z = self
            .state
            .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self::new(z ^ (z >> 31))
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Draws the next `n <= 64` random bits as an integer.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    #[inline]
    pub fn bits(&mut self, n: u32) -> u64 {
        assert!(n <= 64, "cannot draw more than 64 bits at once");
        if n == 0 {
            return 0;
        }
        self.next_u64() >> (64 - n)
    }

    /// Draws a uniformly distributed index in `0..bound`.
    ///
    /// Hardware would use a handful of shared random bits; the model uses
    /// rejection sampling for exact uniformity (the distinction is
    /// invisible to allocation behaviour, and both are deterministic
    /// functions of the stream).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot draw an index from an empty range");
        if bound == 1 {
            return 0;
        }
        let bound = bound as u64;
        // Rejection sampling over the smallest covering power of two.
        let bits = 64 - (bound - 1).leading_zeros();
        loop {
            let v = self.bits(bits);
            if v < bound {
                return v as usize;
            }
        }
    }

    /// Draws a single random bit — the "one random output bit stream"
    /// every METRO component contributes (paper §5.1).
    pub fn bit(&mut self) -> bool {
        self.bits(1) == 1
    }

    /// The raw generator state, for checkpointing. Always nonzero.
    #[must_use]
    pub fn state_bits(&self) -> u64 {
        self.state
    }

    /// Rebuilds a source from a checkpointed [`Self::state_bits`]
    /// value, bypassing the zero-seed remap so a restored stream
    /// continues *exactly* where the saved one left off.
    ///
    /// A zero state (which a healthy source can never reach) is
    /// remapped as in [`Self::new`] rather than poisoning the stream.
    #[must_use]
    pub fn from_state_bits(state: u64) -> Self {
        Self::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = RandomSource::new(7);
        let mut b = RandomSource::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = RandomSource::new(1);
        let mut b = RandomSource::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = RandomSource::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn index_is_in_bounds() {
        let mut r = RandomSource::new(99);
        for bound in 1..=9 {
            for _ in 0..200 {
                assert!(r.index(bound) < bound);
            }
        }
    }

    #[test]
    fn index_distribution_is_roughly_uniform() {
        let mut r = RandomSource::new(1234);
        let mut counts = [0usize; 4];
        let draws = 40_000;
        for _ in 0..draws {
            counts[r.index(4)] += 1;
        }
        for &c in &counts {
            let expected = draws / 4;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "count {c} too far from expected {expected}"
            );
        }
    }

    #[test]
    fn derive_produces_distinct_streams() {
        let base = RandomSource::new(5);
        let mut a = base.derive(0);
        let mut b = base.derive(1);
        assert_ne!(a.next_u64(), b.next_u64());
        // And deterministic:
        let mut a2 = RandomSource::new(5).derive(0);
        assert_eq!(RandomSource::new(5).derive(0), base.derive(0));
        let _ = a2.next_u64();
    }

    #[test]
    fn clone_shares_the_stream() {
        let mut a = RandomSource::new(11);
        let mut b = a.clone();
        for _ in 0..32 {
            assert_eq!(a.bit(), b.bit());
        }
    }

    #[test]
    fn bits_zero_is_zero() {
        let mut r = RandomSource::new(3);
        assert_eq!(r.bits(0), 0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn index_zero_bound_panics() {
        RandomSource::new(3).index(0);
    }
}
