//! Error types for parameter and configuration validation.

use core::fmt;

/// An error produced while validating [`ArchParams`](crate::ArchParams)
/// against the constraints of Table 1 of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParamError {
    /// `i` (number of forward ports) must be a power of two and nonzero.
    ForwardPortsNotPowerOfTwo {
        /// The rejected value of `i`.
        i: usize,
    },
    /// `o` (number of backward ports) must be a power of two and nonzero.
    BackwardPortsNotPowerOfTwo {
        /// The rejected value of `o`.
        o: usize,
    },
    /// `max_d` must be a power of two.
    MaxDilationNotPowerOfTwo {
        /// The rejected value of `max_d`.
        max_d: usize,
    },
    /// `max_d` must not exceed `o`.
    MaxDilationExceedsPorts {
        /// The rejected value of `max_d`.
        max_d: usize,
        /// The number of backward ports.
        o: usize,
    },
    /// The data channel must be wide enough to address every backward
    /// port: `w >= log2(o)`.
    WidthTooNarrow {
        /// The rejected channel width.
        w: usize,
        /// The number of backward ports it must be able to address.
        o: usize,
    },
    /// The channel width exceeds what this model can carry in a word
    /// (16 bits).
    WidthTooWide {
        /// The rejected channel width.
        w: usize,
    },
    /// At least one random input stream is required (`ri >= 1`).
    NoRandomInputs,
    /// At least one scan path is required (`sp >= 1`).
    NoScanPaths,
    /// The router must contain at least one internal data pipeline stage
    /// (`dp >= 1`).
    NoPipelineStages,
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ForwardPortsNotPowerOfTwo { i } => {
                write!(f, "forward port count {i} is not a nonzero power of two")
            }
            Self::BackwardPortsNotPowerOfTwo { o } => {
                write!(f, "backward port count {o} is not a nonzero power of two")
            }
            Self::MaxDilationNotPowerOfTwo { max_d } => {
                write!(f, "maximum dilation {max_d} is not a nonzero power of two")
            }
            Self::MaxDilationExceedsPorts { max_d, o } => {
                write!(
                    f,
                    "maximum dilation {max_d} exceeds backward port count {o}"
                )
            }
            Self::WidthTooNarrow { w, o } => {
                write!(f, "channel width {w} cannot address {o} backward ports")
            }
            Self::WidthTooWide { w } => {
                write!(f, "channel width {w} exceeds the 16-bit model limit")
            }
            Self::NoRandomInputs => write!(f, "at least one random input stream is required"),
            Self::NoScanPaths => write!(f, "at least one scan path is required"),
            Self::NoPipelineStages => {
                write!(f, "at least one internal data pipeline stage is required")
            }
        }
    }
}

impl std::error::Error for ParamError {}

/// An error produced while validating a
/// [`RouterConfig`](crate::RouterConfig) against its
/// [`ArchParams`](crate::ArchParams).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The requested dilation is not a power of two.
    DilationNotPowerOfTwo {
        /// The rejected dilation.
        d: usize,
    },
    /// The requested dilation exceeds the implementation limit `max_d`.
    DilationExceedsMax {
        /// The rejected dilation.
        d: usize,
        /// The implementation limit.
        max_d: usize,
    },
    /// A per-port option referenced a port index outside the router.
    PortOutOfRange {
        /// The rejected port index.
        port: usize,
        /// The number of ports of that kind.
        count: usize,
    },
    /// A turn delay exceeded the implementation limit `max_vtd`.
    TurnDelayExceedsMax {
        /// The rejected delay, in clock cycles.
        vtd: usize,
        /// The implementation limit.
        max_vtd: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DilationNotPowerOfTwo { d } => {
                write!(f, "dilation {d} is not a nonzero power of two")
            }
            Self::DilationExceedsMax { d, max_d } => {
                write!(f, "dilation {d} exceeds implementation limit {max_d}")
            }
            Self::PortOutOfRange { port, count } => {
                write!(f, "port index {port} out of range for {count} ports")
            }
            Self::TurnDelayExceedsMax { vtd, max_vtd } => {
                write!(f, "turn delay {vtd} exceeds implementation limit {max_vtd}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_error_messages_are_lowercase_and_informative() {
        let e = ParamError::WidthTooNarrow { w: 1, o: 8 };
        let msg = e.to_string();
        assert!(msg.contains('1') && msg.contains('8'));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn config_error_messages_mention_values() {
        let e = ConfigError::DilationExceedsMax { d: 4, max_d: 2 };
        assert_eq!(e.to_string(), "dilation 4 exceeds implementation limit 2");
        let e = ConfigError::PortOutOfRange { port: 9, count: 8 };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn errors_implement_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(ParamError::NoRandomInputs);
        takes_error(ConfigError::DilationNotPowerOfTwo { d: 3 });
    }
}
