//! Router configuration options — Table 2 of the paper.
//!
//! Every option is settable under scan control from a TAP (see the
//! `metro-scan` crate). Per Table 2 the options are:
//!
//! | option | instances | bits per instance |
//! |--------|-----------|-------------------|
//! | port on/off | `i + o` | 1/port |
//! | off-port drive output | `i + o` | 1/port |
//! | turn delay | `i + o` | `ceil(log2(max_vtd))`/port |
//! | fast reclaim | `i + o` | 1/port |
//! | swallow | `i` | 1/forward port |
//! | dilation `d` | 1 | `log2(max_d)`/router |
//!
//! Port enables and fast reclamation may be reconfigured while the router
//! is carrying traffic; dilation, turn delay, and swallow typically remain
//! constant during operation (paper §5.3).

use crate::error::ConfigError;
use crate::params::{log2_exact, ArchParams};

/// A mask with the low `n` bits set — the all-enabled bitplane for a
/// side with `n` ports.
#[inline]
#[must_use]
pub(crate) fn low_mask(n: usize) -> u64 {
    debug_assert!(n <= 64, "port bitplanes hold at most 64 ports");
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Whether a disabled port actively drives its output pins (the
/// "Off Port Drive Output" option of Table 2).
///
/// A disabled port that still drives its output keeps the attached wire
/// at a defined level — useful when the far end is healthy; tri-stating
/// is used when the attached wire itself is suspect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PortMode {
    /// Port participates in routing.
    #[default]
    Enabled,
    /// Port disabled; output driven to the idle level.
    DisabledDriven,
    /// Port disabled; output tri-stated.
    DisabledTristate,
}

impl PortMode {
    /// Whether the port participates in routing.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        matches!(self, PortMode::Enabled)
    }
}

/// A complete, validated configuration for one METRO router
/// (paper Table 2).
///
/// Build with [`RouterConfig::new`], which starts from the all-enabled,
/// dilation-`max_d`, zero-turn-delay, fast-reclaim-on defaults and is
/// adjusted through the returned [`ConfigBuilder`].
///
/// # Examples
///
/// ```
/// use metro_core::{ArchParams, RouterConfig};
///
/// let p = ArchParams::rn1();
/// let cfg = RouterConfig::new(&p)
///     .with_dilation(2)
///     .with_fast_reclaim_all(false)
///     .with_forward_port_mode(3, metro_core::PortMode::DisabledDriven)
///     .build()?;
/// assert_eq!(cfg.dilation(), 2);
/// assert_eq!(cfg.radix(), 4);
/// assert!(!cfg.forward_enabled(3));
/// # Ok::<(), metro_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterConfig {
    dilation: usize,
    radix: usize,
    digit_bits: usize,
    fwd_mode: Vec<PortMode>,
    bwd_mode: Vec<PortMode>,
    /// Bitplane over forward ports: bit `f` set iff port `f` is
    /// enabled. Kept in lockstep with `fwd_mode` by every setter so the
    /// allocator and router hot paths test membership with one AND
    /// instead of scanning `PortMode` enums.
    fwd_enabled_mask: u64,
    /// Bitplane over backward ports; see `fwd_enabled_mask`.
    bwd_enabled_mask: u64,
    fwd_turn_delay: Vec<usize>,
    bwd_turn_delay: Vec<usize>,
    fwd_fast_reclaim: Vec<bool>,
    bwd_fast_reclaim: Vec<bool>,
    swallow: Vec<bool>,
}

impl RouterConfig {
    /// Starts building a configuration for a router with parameters
    /// `params`. Defaults: dilation = `max_d`, all ports enabled, all
    /// turn delays 0, fast reclamation enabled everywhere, swallow off.
    #[must_use]
    #[allow(clippy::new_ret_no_self)] // the builder is the entry point
    pub fn new(params: &ArchParams) -> ConfigBuilder {
        assert!(
            params.forward_ports() <= 64 && params.backward_ports() <= 64,
            "port bitplanes hold at most 64 ports per side"
        );
        ConfigBuilder {
            params: *params,
            config: RouterConfig {
                dilation: params.max_dilation(),
                radix: params.radix_at_dilation(params.max_dilation()),
                digit_bits: params.digit_bits_at_dilation(params.max_dilation()),
                fwd_mode: vec![PortMode::Enabled; params.forward_ports()],
                bwd_mode: vec![PortMode::Enabled; params.backward_ports()],
                fwd_enabled_mask: low_mask(params.forward_ports()),
                bwd_enabled_mask: low_mask(params.backward_ports()),
                fwd_turn_delay: vec![0; params.forward_ports()],
                bwd_turn_delay: vec![0; params.backward_ports()],
                fwd_fast_reclaim: vec![true; params.forward_ports()],
                bwd_fast_reclaim: vec![true; params.backward_ports()],
                swallow: vec![false; params.forward_ports()],
            },
            error: None,
        }
    }

    /// The configured dilation `d`.
    #[must_use]
    pub fn dilation(&self) -> usize {
        self.dilation
    }

    /// The effective radix `r = o / d` at the configured dilation.
    #[must_use]
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// Bits of routing information consumed per stage, `log2(r)`.
    #[must_use]
    pub fn digit_bits(&self) -> usize {
        self.digit_bits
    }

    /// The mode of forward port `f`.
    #[must_use]
    pub fn forward_mode(&self, f: usize) -> PortMode {
        self.fwd_mode[f]
    }

    /// The mode of backward port `b`.
    #[must_use]
    pub fn backward_mode(&self, b: usize) -> PortMode {
        self.bwd_mode[b]
    }

    /// Whether forward port `f` is enabled.
    #[must_use]
    pub fn forward_enabled(&self, f: usize) -> bool {
        self.fwd_mode[f].is_enabled()
    }

    /// Whether backward port `b` is enabled.
    #[must_use]
    pub fn backward_enabled(&self, b: usize) -> bool {
        self.bwd_mode[b].is_enabled()
    }

    /// Bitplane over forward ports: bit `f` set iff forward port `f`
    /// is enabled. Precomputed — every mode setter keeps it in sync —
    /// so hot paths select candidate ports with single AND/popcount
    /// operations instead of scanning `PortMode` values.
    #[inline]
    #[must_use]
    pub fn forward_enabled_mask(&self) -> u64 {
        self.fwd_enabled_mask
    }

    /// Bitplane over backward ports: bit `b` set iff backward port `b`
    /// is enabled. See [`RouterConfig::forward_enabled_mask`].
    #[inline]
    #[must_use]
    pub fn backward_enabled_mask(&self) -> u64 {
        self.bwd_enabled_mask
    }

    /// Bitplane of the backward ports making up logical direction
    /// `dir` — bits `dir*d .. (dir+1)*d` set.
    ///
    /// # Panics
    ///
    /// Panics if `dir >= radix`.
    #[inline]
    #[must_use]
    pub fn direction_group_mask(&self, dir: usize) -> u64 {
        assert!(dir < self.radix, "direction {dir} out of range");
        low_mask(self.dilation) << (dir * self.dilation)
    }

    /// Sets the mode of forward port `f` in place. Port enables "may
    /// change during operation" (paper §5.3) — this is the runtime
    /// masking entry the self-healing layer uses, bypassing the
    /// builder because the rest of the configuration is already
    /// validated.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn set_forward_mode(&mut self, f: usize, mode: PortMode) {
        assert!(f < self.fwd_mode.len(), "forward port {f} out of range");
        self.fwd_mode[f] = mode;
        if mode.is_enabled() {
            self.fwd_enabled_mask |= 1u64 << f;
        } else {
            self.fwd_enabled_mask &= !(1u64 << f);
        }
    }

    /// Sets the mode of backward port `b` in place (runtime masking;
    /// see [`RouterConfig::set_forward_mode`]).
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn set_backward_mode(&mut self, b: usize, mode: PortMode) {
        assert!(b < self.bwd_mode.len(), "backward port {b} out of range");
        self.bwd_mode[b] = mode;
        if mode.is_enabled() {
            self.bwd_enabled_mask |= 1u64 << b;
        } else {
            self.bwd_enabled_mask &= !(1u64 << b);
        }
    }

    /// Whether forward port `f` uses fast path reclamation on blocking
    /// (`true`) or holds the connection for a detailed turn-time reply
    /// (`false`). Paper §5.1, "Path Reclamation — Fast and Detailed".
    #[must_use]
    pub fn fast_reclaim(&self, f: usize) -> bool {
        self.fwd_fast_reclaim[f]
    }

    /// Whether backward port `b` participates in fast path reclamation
    /// (propagating BCBs; Table 2 allocates the option per port on both
    /// sides).
    #[must_use]
    pub fn backward_fast_reclaim(&self, b: usize) -> bool {
        self.bwd_fast_reclaim[b]
    }

    /// The variable turn delay configured on forward port `f`, in delay
    /// slots (pipeline registers modeled on the attached wire).
    #[must_use]
    pub fn forward_turn_delay(&self, f: usize) -> usize {
        self.fwd_turn_delay[f]
    }

    /// The variable turn delay configured on backward port `b`.
    #[must_use]
    pub fn backward_turn_delay(&self, b: usize) -> usize {
        self.bwd_turn_delay[b]
    }

    /// Whether forward port `f` strips the exhausted head word after
    /// consuming its route digit (only meaningful when `hw = 0`).
    #[must_use]
    pub fn swallow(&self, f: usize) -> bool {
        self.swallow[f]
    }

    /// The backward ports making up logical direction `dir`:
    /// `dir*d .. (dir+1)*d`.
    ///
    /// # Panics
    ///
    /// Panics if `dir >= radix`.
    #[must_use]
    pub fn direction_group(&self, dir: usize) -> std::ops::Range<usize> {
        assert!(dir < self.radix, "direction {dir} out of range");
        dir * self.dilation..(dir + 1) * self.dilation
    }

    /// The logical direction that backward port `b` belongs to.
    #[must_use]
    pub fn direction_of_port(&self, b: usize) -> usize {
        b / self.dilation
    }

    /// Total configuration bits this router exposes through its scan
    /// registers, per the Table 2 accounting.
    #[must_use]
    pub fn scan_bits(&self, params: &ArchParams) -> usize {
        let ports = params.forward_ports() + params.backward_ports();
        let vtd_bits = if params.max_turn_delay() <= 1 {
            1
        } else {
            (usize::BITS - (params.max_turn_delay() - 1).leading_zeros()) as usize
        };
        // on/off + off-drive + turn delay + fast reclaim, per port;
        // swallow per forward port; dilation select per router.
        ports * (1 + 1 + vtd_bits + 1)
            + params.forward_ports()
            + log2_exact(params.max_dilation()).max(1)
    }
}

/// Builder for [`RouterConfig`]; created by [`RouterConfig::new`].
///
/// Errors are latched: the first invalid setting is reported by
/// [`ConfigBuilder::build`], so chains remain ergonomic.
#[derive(Debug, Clone)]
pub struct ConfigBuilder {
    params: ArchParams,
    config: RouterConfig,
    error: Option<ConfigError>,
}

impl ConfigBuilder {
    /// Sets the effective dilation (any power of two up to `max_d`,
    /// paper §5.1 "Configurable Dilation").
    #[must_use]
    pub fn with_dilation(mut self, d: usize) -> Self {
        if self.error.is_some() {
            return self;
        }
        if d == 0 || !d.is_power_of_two() {
            self.error = Some(ConfigError::DilationNotPowerOfTwo { d });
        } else if d > self.params.max_dilation() {
            self.error = Some(ConfigError::DilationExceedsMax {
                d,
                max_d: self.params.max_dilation(),
            });
        } else {
            self.config.dilation = d;
            self.config.radix = self.params.radix_at_dilation(d);
            self.config.digit_bits = self.params.digit_bits_at_dilation(d);
        }
        self
    }

    /// Sets the mode of forward port `f`.
    #[must_use]
    pub fn with_forward_port_mode(mut self, f: usize, mode: PortMode) -> Self {
        if self.error.is_some() {
            return self;
        }
        if f >= self.config.fwd_mode.len() {
            self.error = Some(ConfigError::PortOutOfRange {
                port: f,
                count: self.config.fwd_mode.len(),
            });
        } else {
            self.config.set_forward_mode(f, mode);
        }
        self
    }

    /// Sets the mode of backward port `b`.
    #[must_use]
    pub fn with_backward_port_mode(mut self, b: usize, mode: PortMode) -> Self {
        if self.error.is_some() {
            return self;
        }
        if b >= self.config.bwd_mode.len() {
            self.error = Some(ConfigError::PortOutOfRange {
                port: b,
                count: self.config.bwd_mode.len(),
            });
        } else {
            self.config.set_backward_mode(b, mode);
        }
        self
    }

    /// Sets fast path reclamation on forward port `f`.
    #[must_use]
    pub fn with_fast_reclaim(mut self, f: usize, fast: bool) -> Self {
        if self.error.is_some() {
            return self;
        }
        if f >= self.config.fwd_fast_reclaim.len() {
            self.error = Some(ConfigError::PortOutOfRange {
                port: f,
                count: self.config.fwd_fast_reclaim.len(),
            });
        } else {
            self.config.fwd_fast_reclaim[f] = fast;
        }
        self
    }

    /// Sets fast path reclamation on backward port `b`.
    #[must_use]
    pub fn with_backward_fast_reclaim(mut self, b: usize, fast: bool) -> Self {
        if self.error.is_some() {
            return self;
        }
        if b >= self.config.bwd_fast_reclaim.len() {
            self.error = Some(ConfigError::PortOutOfRange {
                port: b,
                count: self.config.bwd_fast_reclaim.len(),
            });
        } else {
            self.config.bwd_fast_reclaim[b] = fast;
        }
        self
    }

    /// Sets fast path reclamation on every forward port at once.
    #[must_use]
    pub fn with_fast_reclaim_all(mut self, fast: bool) -> Self {
        if self.error.is_none() {
            self.config.fwd_fast_reclaim.fill(fast);
        }
        self
    }

    /// Sets the variable turn delay on forward port `f`.
    #[must_use]
    pub fn with_forward_turn_delay(mut self, f: usize, vtd: usize) -> Self {
        if self.error.is_some() {
            return self;
        }
        if f >= self.config.fwd_turn_delay.len() {
            self.error = Some(ConfigError::PortOutOfRange {
                port: f,
                count: self.config.fwd_turn_delay.len(),
            });
        } else if vtd > self.params.max_turn_delay() {
            self.error = Some(ConfigError::TurnDelayExceedsMax {
                vtd,
                max_vtd: self.params.max_turn_delay(),
            });
        } else {
            self.config.fwd_turn_delay[f] = vtd;
        }
        self
    }

    /// Sets the variable turn delay on backward port `b`.
    #[must_use]
    pub fn with_backward_turn_delay(mut self, b: usize, vtd: usize) -> Self {
        if self.error.is_some() {
            return self;
        }
        if b >= self.config.bwd_turn_delay.len() {
            self.error = Some(ConfigError::PortOutOfRange {
                port: b,
                count: self.config.bwd_turn_delay.len(),
            });
        } else if vtd > self.params.max_turn_delay() {
            self.error = Some(ConfigError::TurnDelayExceedsMax {
                vtd,
                max_vtd: self.params.max_turn_delay(),
            });
        } else {
            self.config.bwd_turn_delay[b] = vtd;
        }
        self
    }

    /// Sets the swallow option on forward port `f` (strip the exhausted
    /// head word; only meaningful when `hw = 0`).
    #[must_use]
    pub fn with_swallow(mut self, f: usize, swallow: bool) -> Self {
        if self.error.is_some() {
            return self;
        }
        if f >= self.config.swallow.len() {
            self.error = Some(ConfigError::PortOutOfRange {
                port: f,
                count: self.config.swallow.len(),
            });
        } else {
            self.config.swallow[f] = swallow;
        }
        self
    }

    /// Sets the swallow option on every forward port at once.
    #[must_use]
    pub fn with_swallow_all(mut self, swallow: bool) -> Self {
        if self.error.is_none() {
            self.config.swallow.fill(swallow);
        }
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] encountered while building.
    pub fn build(self) -> Result<RouterConfig, ConfigError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.config),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ArchParams {
        ArchParams::rn1()
    }

    #[test]
    fn defaults_enable_everything_at_max_dilation() {
        let cfg = RouterConfig::new(&params()).build().unwrap();
        assert_eq!(cfg.dilation(), 2);
        assert_eq!(cfg.radix(), 4);
        assert_eq!(cfg.digit_bits(), 2);
        for f in 0..8 {
            assert!(cfg.forward_enabled(f));
            assert!(cfg.fast_reclaim(f));
            assert!(!cfg.swallow(f));
        }
        for b in 0..8 {
            assert!(cfg.backward_enabled(b));
        }
    }

    #[test]
    fn dilation_one_gives_full_radix() {
        let cfg = RouterConfig::new(&params())
            .with_dilation(1)
            .build()
            .unwrap();
        assert_eq!(cfg.radix(), 8);
        assert_eq!(cfg.digit_bits(), 3);
        assert_eq!(cfg.direction_group(5), 5..6);
    }

    #[test]
    fn direction_groups_partition_ports() {
        let cfg = RouterConfig::new(&params())
            .with_dilation(2)
            .build()
            .unwrap();
        let mut seen = [false; 8];
        for dir in 0..cfg.radix() {
            for b in cfg.direction_group(dir) {
                assert!(!seen[b], "port {b} in two groups");
                seen[b] = true;
                assert_eq!(cfg.direction_of_port(b), dir);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rejects_invalid_dilation() {
        assert_eq!(
            RouterConfig::new(&params()).with_dilation(3).build(),
            Err(ConfigError::DilationNotPowerOfTwo { d: 3 })
        );
        assert_eq!(
            RouterConfig::new(&params()).with_dilation(4).build(),
            Err(ConfigError::DilationExceedsMax { d: 4, max_d: 2 })
        );
    }

    #[test]
    fn rejects_out_of_range_port() {
        let r = RouterConfig::new(&params())
            .with_forward_port_mode(8, PortMode::DisabledDriven)
            .build();
        assert_eq!(r, Err(ConfigError::PortOutOfRange { port: 8, count: 8 }));
    }

    #[test]
    fn rejects_excessive_turn_delay() {
        let r = RouterConfig::new(&params())
            .with_forward_turn_delay(0, 100)
            .build();
        assert_eq!(
            r,
            Err(ConfigError::TurnDelayExceedsMax {
                vtd: 100,
                max_vtd: 7
            })
        );
    }

    #[test]
    fn first_error_wins() {
        let r = RouterConfig::new(&params())
            .with_dilation(3)
            .with_forward_port_mode(99, PortMode::Enabled)
            .build();
        assert_eq!(r, Err(ConfigError::DilationNotPowerOfTwo { d: 3 }));
    }

    #[test]
    fn per_port_options_stick() {
        let cfg = RouterConfig::new(&params())
            .with_fast_reclaim(2, false)
            .with_swallow(1, true)
            .with_forward_turn_delay(0, 3)
            .with_backward_turn_delay(7, 2)
            .with_backward_port_mode(4, PortMode::DisabledTristate)
            .build()
            .unwrap();
        assert!(!cfg.fast_reclaim(2));
        assert!(cfg.fast_reclaim(3));
        assert!(cfg.swallow(1));
        assert_eq!(cfg.forward_turn_delay(0), 3);
        assert_eq!(cfg.backward_turn_delay(7), 2);
        assert_eq!(cfg.backward_mode(4), PortMode::DisabledTristate);
        assert!(!cfg.backward_enabled(4));
    }

    #[test]
    fn scan_bits_match_table2_accounting() {
        // RN1-like: i + o = 16 ports, max_vtd = 7 -> 3 bits, max_d = 2 -> 1 bit.
        let p = params();
        let cfg = RouterConfig::new(&p).build().unwrap();
        // 16*(1+1+3+1) + 8 (swallow) + 1 (dilation) = 96 + 9 = 105
        assert_eq!(cfg.scan_bits(&p), 105);
    }

    #[test]
    fn enabled_masks_mirror_port_modes() {
        let mut cfg = RouterConfig::new(&params())
            .with_forward_port_mode(1, PortMode::DisabledDriven)
            .with_backward_port_mode(6, PortMode::DisabledTristate)
            .build()
            .unwrap();
        assert_eq!(cfg.forward_enabled_mask(), 0b1111_1101);
        assert_eq!(cfg.backward_enabled_mask(), 0b1011_1111);
        // Runtime masking keeps the bitplanes in lockstep.
        cfg.set_forward_mode(1, PortMode::Enabled);
        cfg.set_backward_mode(0, PortMode::DisabledDriven);
        for f in 0..8 {
            assert_eq!(
                cfg.forward_enabled_mask() >> f & 1 == 1,
                cfg.forward_enabled(f)
            );
            assert_eq!(
                cfg.backward_enabled_mask() >> f & 1 == 1,
                cfg.backward_enabled(f)
            );
        }
    }

    #[test]
    fn direction_group_mask_matches_range() {
        for d in [1, 2] {
            let cfg = RouterConfig::new(&params())
                .with_dilation(d)
                .build()
                .unwrap();
            for dir in 0..cfg.radix() {
                let mut expect = 0u64;
                for b in cfg.direction_group(dir) {
                    expect |= 1 << b;
                }
                assert_eq!(cfg.direction_group_mask(dir), expect);
            }
        }
    }

    #[test]
    fn bulk_setters_apply_everywhere() {
        let cfg = RouterConfig::new(&params())
            .with_fast_reclaim_all(false)
            .with_swallow_all(true)
            .build()
            .unwrap();
        for f in 0..8 {
            assert!(!cfg.fast_reclaim(f));
            assert!(cfg.swallow(f));
        }
    }
}
