//! The channel alphabet.
//!
//! A METRO channel transfers one word per clock cycle. Besides ordinary
//! `w`-bit data, the protocol needs a handful of out-of-band control
//! tokens — DATA-IDLE, TURN, DROP, and the status/checksum words routers
//! inject at connection reversal. Real METRO implementations encode these
//! with extra control lines alongside the data lines; this model carries
//! them as enum variants.

use crate::status::StatusWord;
use core::fmt;

/// One symbol on a METRO channel during one clock cycle.
///
/// `Empty` means the channel is not driven — no connection is open (or the
/// connection was just torn down). Every other variant holds a connection
/// open. Mid-stream gaps are filled with [`Word::DataIdle`], never
/// `Empty`; the router state machines treat an unexpected `Empty` on a
/// live connection as the upstream having released the path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Word {
    /// Channel not driven; no connection.
    #[default]
    Empty,
    /// A `w`-bit data (or route header) word.
    Data(u16),
    /// DATA-IDLE: hold the connection open with nothing to say
    /// (paper §5.1). Used by endpoints awaiting slow replies and by the
    /// routers themselves to fill pipeline delays around turns.
    DataIdle,
    /// TURN: reverse the direction of data transmission over the open
    /// connection (paper §5.1, "Connection Reversal").
    Turn,
    /// DROP: tear the connection down; propagates in the current
    /// direction of flow, releasing each router as it passes.
    Drop,
    /// Connection status injected by a router during reversal.
    Status(StatusWord),
    /// A stream checksum — either a router's transit checksum (follows
    /// its [`Word::Status`]) or an endpoint's end-to-end checksum.
    Checksum(u16),
}

impl Word {
    /// Whether this word holds a connection open (anything but `Empty`).
    #[must_use]
    pub fn is_active(&self) -> bool {
        !matches!(self, Word::Empty)
    }

    /// Whether this word carries payload content an endpoint would
    /// deliver (data or checksum; not idle/control).
    #[must_use]
    pub fn is_payload(&self) -> bool {
        matches!(self, Word::Data(_) | Word::Checksum(_))
    }

    /// The data value if this is a [`Word::Data`].
    #[must_use]
    pub fn data(&self) -> Option<u16> {
        match self {
            Word::Data(v) => Some(*v),
            _ => None,
        }
    }

    /// Masks a data word to `w` bits, leaving other variants untouched.
    #[must_use]
    pub fn masked(self, word_mask: u16) -> Self {
        match self {
            Word::Data(v) => Word::Data(v & word_mask),
            other => other,
        }
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Word::Empty => write!(f, "·"),
            Word::Data(v) => write!(f, "D:{v:04x}"),
            Word::DataIdle => write!(f, "IDLE"),
            Word::Turn => write!(f, "TURN"),
            Word::Drop => write!(f, "DROP"),
            Word::Status(s) => write!(f, "STAT:{s}"),
            Word::Checksum(c) => write!(f, "CKSM:{c:04x}"),
        }
    }
}

impl From<u16> for Word {
    fn from(v: u16) -> Self {
        Word::Data(v)
    }
}

/// Physical phit encoding: how the [`Word`] alphabet maps onto real
/// wires — `w` data lines plus a 3-bit control field, the "extra
/// control lines" a METRO implementation runs alongside the datapath.
///
/// | control | meaning | data lines |
/// |---------|---------|------------|
/// | `0b000` | not driven (Empty) | — |
/// | `0b001` | data word | payload |
/// | `0b010` | DATA-IDLE | — |
/// | `0b011` | TURN | — |
/// | `0b100` | DROP | — |
/// | `0b101` | STATUS | packed [`StatusWord`] |
/// | `0b110` | checksum | checksum value |
pub mod phit {
    use super::Word;
    use crate::status::StatusWord;

    /// Encodes a word as `(control, data)` line values. Data is masked
    /// to `word_mask` for the `Data` variant (checksum and status use
    /// the full field, as a real implementation would widen or split
    /// them over multiple transfers).
    #[must_use]
    pub fn encode(word: Word, word_mask: u16) -> (u8, u16) {
        match word {
            Word::Empty => (0b000, 0),
            Word::Data(v) => (0b001, v & word_mask),
            Word::DataIdle => (0b010, 0),
            Word::Turn => (0b011, 0),
            Word::Drop => (0b100, 0),
            Word::Status(s) => (0b101, s.encode()),
            Word::Checksum(c) => (0b110, c),
        }
    }

    /// Decodes control + data line values back into a [`Word`];
    /// `None` for the reserved control code `0b111`.
    #[must_use]
    pub fn decode(control: u8, data: u16) -> Option<Word> {
        Some(match control & 0b111 {
            0b000 => Word::Empty,
            0b001 => Word::Data(data),
            0b010 => Word::DataIdle,
            0b011 => Word::Turn,
            0b100 => Word::Drop,
            0b101 => Word::Status(StatusWord::decode(data)),
            0b110 => Word::Checksum(data),
            _ => return None,
        })
    }

    /// Packs a word into one checkpoint cell: the control field in bits
    /// 16..19 above the full 16-bit data field. Unlike [`encode`], the
    /// data is not masked — a checkpoint must preserve the word exactly
    /// as it sits in a pipeline register.
    #[must_use]
    pub fn pack(word: Word) -> u64 {
        let (c, d) = encode(word, 0xFFFF);
        (u64::from(c) << 16) | u64::from(d)
    }

    /// Inverts [`pack`]; `None` for cells with stray high bits or the
    /// reserved control code.
    #[must_use]
    pub fn unpack(cell: u64) -> Option<Word> {
        if cell >> 19 != 0 {
            return None;
        }
        decode((cell >> 16) as u8, cell as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::{ConnectionState, StatusWord};

    #[test]
    fn empty_is_inactive_everything_else_active() {
        assert!(!Word::Empty.is_active());
        for w in [
            Word::Data(3),
            Word::DataIdle,
            Word::Turn,
            Word::Drop,
            Word::Checksum(9),
            Word::Status(StatusWord::new(ConnectionState::Connected, 0)),
        ] {
            assert!(w.is_active(), "{w} should be active");
        }
    }

    #[test]
    fn payload_distinguishes_data_from_control() {
        assert!(Word::Data(1).is_payload());
        assert!(Word::Checksum(1).is_payload());
        assert!(!Word::DataIdle.is_payload());
        assert!(!Word::Turn.is_payload());
        assert!(!Word::Empty.is_payload());
    }

    #[test]
    fn masking_truncates_data_only() {
        assert_eq!(Word::Data(0x1F).masked(0x0F), Word::Data(0x0F));
        assert_eq!(Word::Checksum(0x1F).masked(0x0F), Word::Checksum(0x1F));
        assert_eq!(Word::Turn.masked(0x0F), Word::Turn);
    }

    #[test]
    fn default_is_empty() {
        assert_eq!(Word::default(), Word::Empty);
    }

    #[test]
    fn from_u16_builds_data() {
        assert_eq!(Word::from(7u16), Word::Data(7));
    }

    #[test]
    fn phit_roundtrip_for_every_variant() {
        use crate::status::StatusWord;
        for w in [
            Word::Empty,
            Word::Data(0x5A),
            Word::DataIdle,
            Word::Turn,
            Word::Drop,
            Word::Status(StatusWord::connected(3)),
            Word::Status(StatusWord::blocked()),
            Word::Checksum(0x1234),
        ] {
            let (c, d) = phit::encode(w, 0xFF);
            assert_eq!(phit::decode(c, d), Some(w), "{w}");
        }
    }

    #[test]
    fn phit_reserved_code_is_rejected() {
        assert_eq!(phit::decode(0b111, 0), None);
    }

    #[test]
    fn pack_roundtrip_preserves_full_width_data() {
        for w in [
            Word::Empty,
            Word::Data(0xFFFF),
            Word::DataIdle,
            Word::Turn,
            Word::Drop,
            Word::Status(StatusWord::connected(5)),
            Word::Checksum(0xBEEF),
        ] {
            assert_eq!(phit::unpack(phit::pack(w)), Some(w), "{w}");
        }
    }

    #[test]
    fn unpack_rejects_stray_high_bits() {
        assert_eq!(phit::unpack(1u64 << 19), None);
        assert_eq!(phit::unpack(0b111 << 16), None);
    }

    #[test]
    fn phit_masks_data_to_channel_width() {
        let (c, d) = phit::encode(Word::Data(0x1FF), 0x0F);
        assert_eq!((c, d), (0b001, 0x0F));
    }

    #[test]
    fn display_is_nonempty_for_all_variants() {
        for w in [
            Word::Empty,
            Word::Data(3),
            Word::DataIdle,
            Word::Turn,
            Word::Drop,
            Word::Checksum(9),
        ] {
            assert!(!w.to_string().is_empty());
        }
    }
}
