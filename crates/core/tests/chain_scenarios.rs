//! Two METRO routers wired back to back, driven cycle by cycle —
//! cross-router protocol scenarios at the core level, independent of
//! the network simulator: status ordering at turns, BCB propagation
//! through a stage, and detailed blocked replies traversing an upstream
//! router.

use metro_core::{
    ArchParams, BwdIn, FwdIn, PortStatus, Router, RouterConfig, StatusWord, StreamChecksum,
    TickOutput, Word,
};

/// Two RN1-class routers (dilation 2, radix 4) with router A's backward
/// ports feeding router B's forward ports 1:1 (a single "stage
/// boundary" with zero-delay wires plus the standard one-cycle register
/// transfer).
struct Chain {
    a: Router,
    b: Router,
    /// Last outputs (for the transfer boundary).
    a_out: TickOutput,
    b_out: TickOutput,
}

impl Chain {
    fn new(fast_reclaim: bool, b_disabled_group: Option<usize>) -> Self {
        let params = ArchParams::rn1();
        let config_a = RouterConfig::new(&params)
            .with_dilation(2)
            .with_fast_reclaim_all(fast_reclaim)
            .build()
            .unwrap();
        let mut config_b = RouterConfig::new(&params)
            .with_dilation(2)
            .with_fast_reclaim_all(fast_reclaim)
            .with_swallow_all(true);
        if let Some(dir) = b_disabled_group {
            // Disable the whole direction group on B so any request
            // there blocks.
            for b in dir * 2..(dir + 1) * 2 {
                config_b =
                    config_b.with_backward_port_mode(b, metro_core::PortMode::DisabledDriven);
            }
        }
        let a = Router::new(params, config_a, 11).unwrap();
        let b = Router::new(params, config_b.build().unwrap(), 22).unwrap();
        let empty = TickOutput {
            bwd: vec![Word::Empty; 8],
            fwd: vec![Word::Empty; 8],
            bcb: vec![false; 8],
        };
        Self {
            a,
            b,
            a_out: empty.clone(),
            b_out: empty,
        }
    }

    /// One synchronous cycle: feed `src_word` into A's forward port 0,
    /// feed `dest_rev` into B's backward ports (the far endpoint), and
    /// return `(reverse word to source, BCB to source, B's backward
    /// outputs)`.
    fn tick(&mut self, src_word: Word, dest_rev: Word) -> (Word, bool, Vec<Word>) {
        // A's forward inputs: the source on port 0.
        let a_fwd = FwdIn::idle(8).with(0, src_word);
        // A's backward inputs: B's reverse-lane outputs (1:1 wiring).
        let a_bwd = BwdIn::new(&self.b_out.fwd, &self.b_out.bcb);
        // B's forward inputs: A's backward outputs.
        let b_fwd = FwdIn::data(&self.a_out.bwd);
        // B's backward inputs: the destination endpoint's reverse lane
        // on every port (it only answers on the connected one).
        let words = vec![dest_rev; 8];
        let b_bwd = BwdIn::new(&words, &[false; 8]);

        let a_out = self.a.tick(&a_fwd, &a_bwd);
        let b_out = self.b.tick(&b_fwd, &b_bwd);
        self.a_out = a_out;
        self.b_out = b_out;
        (self.a_out.fwd[0], self.a_out.bcb[0], self.b_out.bwd.clone())
    }
}

/// Header for direction 1 at A then direction 2 at B, packed for w = 8
/// radix-4 stages: digits in the top bits.
fn header() -> u16 {
    0b0110_0000 // digit 1 (01), then digit 2 (10)
}

#[test]
fn stream_crosses_both_routers_and_statuses_return_in_path_order() {
    let mut chain = Chain::new(true, None);
    let script = [
        Word::Data(header()),
        Word::Data(0x11),
        Word::Data(0x22),
        Word::Turn,
    ];
    let mut to_source = Vec::new();
    let mut delivered = Vec::new();
    for cycle in 0..24 {
        let w = script.get(cycle).copied().unwrap_or(Word::DataIdle);
        let (rev, _bcb, b_out) = chain.tick(w, Word::DataIdle);
        to_source.push(rev);
        for word in b_out {
            if word.is_payload() {
                delivered.push(word);
            }
        }
    }
    // B swallowed the (shifted) header: only payload emerges.
    assert_eq!(delivered, vec![Word::Data(0x11), Word::Data(0x22)]);
    // Statuses arrive nearest-router-first: A's then B's.
    let significant: Vec<Word> = to_source
        .into_iter()
        .filter(|w| matches!(w, Word::Status(_) | Word::Checksum(_)))
        .collect();
    assert!(
        significant.len() >= 4,
        "two status/checksum pairs: {significant:?}"
    );
    assert!(matches!(significant[0], Word::Status(s) if !s.is_blocked()));
    assert!(matches!(significant[1], Word::Checksum(_)));
    assert!(matches!(significant[2], Word::Status(s) if !s.is_blocked()));
    // A's transit checksum covers what it received (header + payload).
    let expected_a = StreamChecksum::over_values([header(), 0x11, 0x22]);
    assert_eq!(significant[1], Word::Checksum(expected_a));
    // B received the shifted header (digit 1 consumed).
    let shifted = (header() << 2) & 0xFF;
    let expected_b = StreamChecksum::over_values([shifted, 0x11, 0x22]);
    assert_eq!(significant[3], Word::Checksum(expected_b));
}

#[test]
fn blocked_at_downstream_asserts_bcb_through_to_source() {
    // B's direction-2 group is disabled, so the connection blocks at B;
    // fast reclamation must BCB back through A to the source.
    let mut chain = Chain::new(true, Some(2));
    let script = [Word::Data(header()), Word::Data(0x33)];
    let mut saw_bcb = false;
    for cycle in 0..10 {
        let w = script.get(cycle).copied().unwrap_or(Word::DataIdle);
        let (_, bcb, _) = chain.tick(w, Word::DataIdle);
        saw_bcb |= bcb;
    }
    assert!(saw_bcb, "BCB must propagate across the stage boundary");
    assert_eq!(chain.b.stats().blocks, 1);
    assert_eq!(chain.a.stats().grants, 1);
    // A's connection was torn down and its port drained.
    let mut freed = false;
    for _ in 0..6 {
        chain.tick(Word::Empty, Word::DataIdle);
        freed = chain.a.in_use_vector().iter().all(|&u| !u);
        if freed {
            break;
        }
    }
    assert!(freed, "A must release its backward port after the BCB");
}

#[test]
fn blocked_detailed_reply_reports_a_ok_then_b_blocked() {
    let mut chain = Chain::new(false, Some(2));
    let script = [Word::Data(header()), Word::Data(0x44), Word::Turn];
    let mut to_source = Vec::new();
    for cycle in 0..20 {
        let w = script.get(cycle).copied().unwrap_or(Word::DataIdle);
        let (rev, _, _) = chain.tick(w, Word::DataIdle);
        to_source.push(rev);
    }
    let statuses: Vec<StatusWord> = to_source
        .iter()
        .filter_map(|w| match w {
            Word::Status(s) => Some(*s),
            _ => None,
        })
        .collect();
    assert_eq!(statuses.len(), 2, "{statuses:?}");
    assert!(!statuses[0].is_blocked(), "A switched the connection");
    assert!(statuses[1].is_blocked(), "B reports the block");
    // The detailed reply ends with a drop releasing the path.
    assert!(to_source.contains(&Word::Drop));
}

#[test]
fn reply_data_flows_source_ward_after_both_statuses() {
    let mut chain = Chain::new(true, None);
    let script = [Word::Data(header()), Word::Data(0x55), Word::Turn];
    let mut reply_data = Vec::new();
    for cycle in 0..24 {
        let w = script.get(cycle).copied().unwrap_or(Word::DataIdle);
        // Once B reverses (drives DataIdle on its backward port), the
        // destination endpoint answers with data.
        let dest_word = if chain.b_out.bwd.contains(&Word::DataIdle) {
            Word::Data(0x7E)
        } else {
            Word::DataIdle
        };
        let (rev, _, _) = chain.tick(w, dest_word);
        if let Word::Data(v) = rev {
            reply_data.push(v);
        }
    }
    assert!(
        !reply_data.is_empty(),
        "destination data must reach the source"
    );
    assert!(reply_data.iter().all(|&v| v == 0x7E));
}

#[test]
fn drop_releases_both_routers() {
    let mut chain = Chain::new(true, None);
    let script = [Word::Data(header()), Word::Data(0x66), Word::Drop];
    for cycle in 0..12 {
        let w = script.get(cycle).copied().unwrap_or(Word::Empty);
        chain.tick(w, Word::DataIdle);
    }
    assert!(chain.a.in_use_vector().iter().all(|&u| !u));
    assert!(chain.b.in_use_vector().iter().all(|&u| !u));
    assert_eq!(chain.a.port_status(0), PortStatus::Idle);
    assert_eq!(chain.a.stats().drops, 1);
    assert_eq!(chain.b.stats().drops, 1);
}

#[test]
fn back_to_back_messages_reuse_the_chain() {
    let mut chain = Chain::new(true, None);
    for round in 0..3 {
        let payload = 0x10 + round;
        let script = [Word::Data(header()), Word::Data(payload), Word::Drop];
        let mut delivered = Vec::new();
        for cycle in 0..12 {
            let w = script.get(cycle).copied().unwrap_or(Word::Empty);
            let (_, _, b_out) = chain.tick(w, Word::DataIdle);
            delivered.extend(b_out.into_iter().filter(Word::is_payload));
        }
        assert_eq!(delivered, vec![Word::Data(payload)], "round {round}");
    }
    assert_eq!(chain.a.stats().grants, 3);
    assert_eq!(chain.b.stats().grants, 3);
}

mod cascaded_chain {
    //! Two width-cascade groups wired in series: an 8-bit logical
    //! datapath (two 4-bit METROJR slices) crossing two routing stages,
    //! with the header replicated per slice and the payload split.

    use metro_core::cascade::{join_words, split_word};
    use metro_core::{ArchParams, BwdIn, CascadeGroup, FwdIn, RouterConfig, Word};

    #[test]
    fn wide_stream_crosses_two_cascaded_stages() {
        let params = ArchParams::metrojr(); // w = 4
        let config = RouterConfig::new(&params)
            .with_dilation(2)
            .with_swallow_all(true)
            .build()
            .unwrap();
        let mut stage_a = CascadeGroup::new(params, config.clone(), 2, 0xA).unwrap();
        let mut stage_b = CascadeGroup::new(params, config, 2, 0xB).unwrap();

        // Direction 1 at both stages: header nibble 0b1100 gives digit 1
        // at stage A (top bit), shifted to 0b1000 -> digit 1 at stage B.
        // Swallow-all strips the nibble at A... so B needs its own
        // header word: send two header nibbles (one per stage), each
        // replicated on both slices.
        let headers = [Word::Data(0b1000), Word::Data(0b1000)];
        let payload: [u64; 2] = [0xAB, 0x3C]; // 8-bit logical words

        // Transfer registers between the stages (1:1 wiring, 4 ports).
        let mut a_out = vec![Word::Empty; 4];
        let mut a_out2 = vec![Word::Empty; 4];
        let idle = [BwdIn::idle(4), BwdIn::idle(4)];
        let mut delivered: Vec<u64> = Vec::new();

        for cycle in 0..12 {
            // Source word for this cycle, per slice.
            let slice_words: Vec<Word> = if cycle < 2 {
                vec![headers[cycle], headers[cycle]]
            } else if cycle - 2 < payload.len() {
                split_word(payload[cycle - 2], 4, 2)
            } else {
                vec![Word::DataIdle, Word::DataIdle]
            };
            let a_fwd: Vec<FwdIn> = slice_words
                .iter()
                .map(|w| FwdIn::idle(4).with(0, *w))
                .collect();
            let outs_a = stage_a.tick(&a_fwd, &idle);

            // Stage B's forward inputs are stage A's backward outputs.
            let b_fwd: Vec<FwdIn> = [&a_out, &a_out2]
                .iter()
                .map(|prev| FwdIn::data(prev))
                .collect();
            let outs_b = stage_b.tick(&b_fwd, &idle);

            a_out = outs_a[0].bwd.clone();
            a_out2 = outs_a[1].bwd.clone();

            // Collect wide words emerging from stage B (both slices must
            // agree on the port thanks to shared randomness).
            for port in 0..4 {
                let pair = [outs_b[0].bwd[port], outs_b[1].bwd[port]];
                if pair.iter().all(|w| matches!(w, Word::Data(_))) {
                    delivered.push(join_words(&pair, 4).unwrap());
                }
            }
            assert_eq!(
                stage_a.slice(0).in_use_vector(),
                stage_a.slice(1).in_use_vector(),
                "stage A slices in lockstep (cycle {cycle})"
            );
            assert_eq!(
                stage_b.slice(0).in_use_vector(),
                stage_b.slice(1).in_use_vector(),
                "stage B slices in lockstep (cycle {cycle})"
            );
        }
        assert!(stage_a.faults().is_empty());
        assert!(stage_b.faults().is_empty());
        assert_eq!(
            delivered,
            vec![0xAB, 0x3C],
            "wide payload intact across stages"
        );
    }
}
