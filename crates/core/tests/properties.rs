//! Property-based tests over the core invariants of the METRO
//! architecture: allocation safety, cascade determinism, header
//! round-tripping, and checksum sensitivity.

use metro_core::{
    header::{consume_digit, HeaderPlan},
    Allocator, ArchParams, BwdIn, CascadeGroup, FwdIn, PortMode, RandomSource, RouterConfig,
    StreamChecksum, Word,
};
use proptest::prelude::*;

fn arch_params() -> impl Strategy<Value = ArchParams> {
    (1usize..=3, 1usize..=3, 0usize..=2, 1usize..=2).prop_map(|(li, lo, hw, dp)| {
        let i = 1 << li;
        let o = 1 << lo;
        let w = 8;
        let max_d = o.min(2);
        ArchParams::new(i, o, w, max_d, hw, dp).expect("generated parameters are valid")
    })
}

proptest! {
    /// The allocator never double-books a backward port, for any request
    /// pattern.
    #[test]
    fn allocator_never_double_books(
        seed in any::<u64>(),
        requests in proptest::collection::vec((0usize..8, 0usize..4), 0..64),
    ) {
        let p = ArchParams::rn1();
        let cfg = RouterConfig::new(&p).with_dilation(2).build().unwrap();
        let mut alloc = Allocator::new(&cfg, 8);
        let mut rng = RandomSource::new(seed);
        let outcomes = alloc.arbitrate(&requests, &cfg, &mut rng);
        let granted: Vec<usize> = outcomes.iter().filter_map(|o| o.port()).collect();
        let mut unique = granted.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(granted.len(), unique.len(), "double-booked port");
        // Every grant lands inside its requested direction group.
        for ((_, dir), out) in requests.iter().zip(&outcomes) {
            if let Some(b) = out.port() {
                prop_assert!(cfg.direction_group(*dir).contains(&b));
            }
        }
    }

    /// Granting is monotone: a request is only blocked when its whole
    /// direction group is busy or disabled.
    #[test]
    fn blocked_only_when_group_full(
        seed in any::<u64>(),
        dirs in proptest::collection::vec(0usize..4, 1..32),
    ) {
        let p = ArchParams::rn1();
        let cfg = RouterConfig::new(&p).with_dilation(2).build().unwrap();
        let mut alloc = Allocator::new(&cfg, 8);
        let mut rng = RandomSource::new(seed);
        for &dir in &dirs {
            let before: Vec<bool> = cfg
                .direction_group(dir)
                .map(|b| alloc.in_use(b))
                .collect();
            let out = alloc.request(dir, &cfg, &mut rng);
            if out.port().is_none() {
                prop_assert!(before.iter().all(|&u| u), "blocked with a free port");
            }
        }
    }

    /// Width-cascaded routers remain in lockstep for arbitrary fault-free
    /// traffic (shared randomness, identical requests).
    #[test]
    fn cascade_lockstep(seed in any::<u64>(), cycles in 1usize..60) {
        let params = ArchParams::metrojr();
        let config = RouterConfig::new(&params)
            .with_dilation(2)
            .with_swallow_all(true)
            .build()
            .unwrap();
        let mut g = CascadeGroup::new(params, config, 3, seed).unwrap();
        let mut traffic = RandomSource::new(seed ^ 0xDEAD_BEEF);
        for _ in 0..cycles {
            let mut fwd = FwdIn::idle(4);
            for f in 0..4 {
                fwd = fwd.with(
                    f,
                    match traffic.index(4) {
                        0 => Word::Empty,
                        1 => Word::Data(traffic.bits(4) as u16),
                        2 => Word::DataIdle,
                        _ => Word::Turn,
                    },
                );
            }
            g.tick_replicated(&fwd, &BwdIn::idle(4));
            let reference = g.slice(0).in_use_vector();
            for k in 1..3 {
                prop_assert_eq!(g.slice(k).in_use_vector(), reference.clone());
            }
        }
        prop_assert!(g.faults().is_empty());
    }

    /// Header pack/consume round-trips for arbitrary stage structures.
    #[test]
    fn header_roundtrip(
        stage_bits in proptest::collection::vec(1usize..=3, 1..8),
        dest_seed in any::<u64>(),
    ) {
        let w = 8;
        let plan = HeaderPlan::new(&stage_bits, w, 0);
        let total: usize = stage_bits.iter().sum();
        let dest = (dest_seed as usize) & ((1usize << total) - 1);
        let digits = plan.digits_for(dest);
        let words = plan.pack(&digits);
        // Replay the routers' consumption.
        let mut word_idx = 0;
        let mut head = words[0];
        let mut recovered = Vec::new();
        for (s, &bits) in stage_bits.iter().enumerate() {
            let (d, next) = consume_digit(head, bits, w, plan.swallow()[s]);
            recovered.push(d);
            match next {
                Some(h) => head = h,
                None => {
                    word_idx += 1;
                    if word_idx < words.len() {
                        head = words[word_idx];
                    }
                }
            }
        }
        prop_assert_eq!(recovered, digits);
    }

    /// hbits accounting: the packed header always covers the digit bits.
    #[test]
    fn header_words_cover_digit_bits(
        stage_bits in proptest::collection::vec(0usize..=3, 1..10),
        hw in 0usize..=2,
    ) {
        let w = 8;
        let plan = HeaderPlan::new(&stage_bits, w, hw);
        let total: usize = stage_bits.iter().sum();
        if hw == 0 {
            prop_assert!(plan.header_bits() >= total);
            // Never more than one word of padding waste per stage
            // boundary in the worst case.
            prop_assert!(plan.header_words() <= stage_bits.len().max(1));
        } else {
            prop_assert_eq!(plan.header_words(), hw * stage_bits.len());
        }
    }

    /// The stream checksum detects any single-word corruption.
    #[test]
    fn checksum_detects_any_single_corruption(
        words in proptest::collection::vec(0u16..256, 1..64),
        pos_seed in any::<usize>(),
        delta in 1u16..255,
    ) {
        let pos = pos_seed % words.len();
        let clean = StreamChecksum::over_values(words.iter().copied());
        let mut corrupt = words.clone();
        corrupt[pos] = (corrupt[pos] ^ delta) & 0xFF;
        if corrupt[pos] != words[pos] {
            let dirty = StreamChecksum::over_values(corrupt.iter().copied());
            prop_assert_ne!(clean, dirty);
        }
    }

    /// A single router delivers exactly the payload it was fed, for any
    /// message length and parameters — no loss, duplication, or
    /// reordering (hw = 0, swallow on).
    #[test]
    fn router_delivers_payload_intact(
        params in arch_params(),
        payload in proptest::collection::vec(0u16..256, 0..32),
        seed in any::<u64>(),
        dir_seed in any::<usize>(),
    ) {
        let params = match params.header_words() {
            0 => params,
            hw => params.with_header_words(hw).unwrap(),
        };
        let config = RouterConfig::new(&params)
            .with_swallow_all(true)
            .build()
            .unwrap();
        let mask = params.word_mask();
        let digit_bits = config.digit_bits();
        let dir = dir_seed % config.radix();
        let hw = params.header_words();
        let mut router = metro_core::Router::new(params, config, seed).unwrap();

        // Build the stream: header then payload.
        let mut stream = Vec::new();
        let head = (dir as u16) << (params.width() - digit_bits.max(1)).min(15);
        if digit_bits == 0 {
            stream.push(Word::Data(0));
        } else {
            stream.push(Word::Data(head));
        }
        for _ in 1..hw.max(1) {
            stream.push(Word::Data(0)); // setup padding
        }
        for &v in &payload {
            stream.push(Word::Data(v & mask));
        }
        stream.push(Word::Drop);

        let i = params.forward_ports();
        let o = params.backward_ports();
        let mut delivered = Vec::new();
        for cycle in 0..stream.len() + params.pipestages() + 4 {
            let w = stream.get(cycle).copied().unwrap_or(Word::Empty);
            let fwd = FwdIn::idle(i).with(0, w);
            let out = router.tick(&fwd, &BwdIn::idle(o));
            for b in 0..o {
                if let Word::Data(v) = out.bwd[b] {
                    delivered.push(v);
                }
            }
        }
        let expected: Vec<u16> = payload.iter().map(|&v| v & mask).collect();
        prop_assert_eq!(delivered, expected);
    }

    /// The bitplane allocator is indistinguishable from the historical
    /// scalar double-scan for ANY combination of `DisabledDriven` /
    /// `DisabledTristate` backward-port masks: identical outcomes per
    /// request AND identical random-stream consumption (checked by
    /// comparing post-run draws from both streams).
    #[test]
    fn bitplane_alloc_matches_scalar_oracle(
        seed in any::<u64>(),
        modes in proptest::collection::vec(0usize..3, 8),
        requests in proptest::collection::vec((0usize..8, 0usize..4), 0..64),
    ) {
        let p = ArchParams::rn1();
        let mut builder = RouterConfig::new(&p).with_dilation(2);
        for (b, &m) in modes.iter().enumerate() {
            let mode = match m {
                0 => PortMode::Enabled,
                1 => PortMode::DisabledDriven,
                _ => PortMode::DisabledTristate,
            };
            builder = builder.with_backward_port_mode(b, mode);
        }
        let cfg = builder.build().unwrap();

        let mut alloc = Allocator::new(&cfg, 8);
        let mut rng = RandomSource::new(seed);
        let mut oracle_rng = RandomSource::new(seed);
        let outcomes = alloc.arbitrate(&requests, &cfg, &mut rng);
        let expected = scalar_oracle_arbitrate(&requests, &cfg, &mut oracle_rng);
        prop_assert_eq!(&outcomes, &expected);
        // Identical stream consumption: both streams must now be at the
        // same point.
        for _ in 0..4 {
            prop_assert_eq!(rng.index(1 << 16), oracle_rng.index(1 << 16));
        }
    }

    /// Runtime re-masking (`set_backward_mode`, as the chaos healer
    /// applies it) keeps the bitplane and scalar paths in lockstep.
    #[test]
    fn bitplane_alloc_matches_oracle_under_runtime_masking(
        seed in any::<u64>(),
        flips in proptest::collection::vec((0usize..8, 0usize..3), 0..12),
        requests in proptest::collection::vec((0usize..8, 0usize..4), 0..32),
    ) {
        let p = ArchParams::rn1();
        let mut cfg = RouterConfig::new(&p).with_dilation(2).build().unwrap();
        for &(b, m) in &flips {
            cfg.set_backward_mode(b, match m {
                0 => PortMode::Enabled,
                1 => PortMode::DisabledDriven,
                _ => PortMode::DisabledTristate,
            });
        }
        let mut alloc = Allocator::new(&cfg, 8);
        let mut rng = RandomSource::new(seed);
        let mut oracle_rng = RandomSource::new(seed);
        let outcomes = alloc.arbitrate(&requests, &cfg, &mut rng);
        let expected = scalar_oracle_arbitrate(&requests, &cfg, &mut oracle_rng);
        prop_assert_eq!(&outcomes, &expected);
        for _ in 0..4 {
            prop_assert_eq!(rng.index(1 << 16), oracle_rng.index(1 << 16));
        }
    }
}

/// The historical scalar allocator, kept verbatim as the oracle for the
/// bitplane rewrite: per-request double scan of the direction group with
/// `Vec<Option<usize>>` ownership, Fisher-Yates arbitration order from
/// the shared stream.
fn scalar_oracle_arbitrate(
    requests: &[(usize, usize)],
    cfg: &RouterConfig,
    rng: &mut RandomSource,
) -> Vec<metro_core::AllocationOutcome> {
    use metro_core::AllocationOutcome;
    let mut owner: Vec<Option<usize>> = vec![None; 8];
    let mut order: Vec<usize> = (0..requests.len()).collect();
    for k in (1..order.len()).rev() {
        order.swap(k, rng.index(k + 1));
    }
    let mut outcomes = vec![AllocationOutcome::Blocked; requests.len()];
    for &idx in &order {
        let (fwd, dir) = requests[idx];
        let group = cfg.direction_group(dir);
        let count = group
            .clone()
            .filter(|&b| owner[b].is_none() && cfg.backward_enabled(b))
            .count();
        if count == 0 {
            continue;
        }
        let k = rng.index(count);
        let chosen = group
            .filter(|&b| owner[b].is_none() && cfg.backward_enabled(b))
            .nth(k)
            .expect("k < candidate count");
        owner[chosen] = Some(fwd);
        outcomes[idx] = AllocationOutcome::Granted { bwd: chosen };
    }
    outcomes
}

/// The degenerate case: every backward port masked. The bitplane path
/// must block every request without consuming any randomness beyond the
/// arbitration shuffle — exactly like the scalar oracle.
#[test]
fn all_ports_masked_blocks_everything() {
    let p = ArchParams::rn1();
    let mut cfg = RouterConfig::new(&p).with_dilation(2).build().unwrap();
    for b in 0..8 {
        cfg.set_backward_mode(b, PortMode::DisabledDriven);
    }
    assert_eq!(cfg.backward_enabled_mask(), 0);
    let requests: Vec<(usize, usize)> = (0..8).map(|f| (f, f % 4)).collect();
    let mut alloc = Allocator::new(&cfg, 8);
    let mut rng = RandomSource::new(9);
    let mut oracle_rng = RandomSource::new(9);
    let outcomes = alloc.arbitrate(&requests, &cfg, &mut rng);
    assert!(outcomes.iter().all(|o| o.port().is_none()));
    assert_eq!(alloc.allocated_count(), 0);
    assert_eq!(alloc.in_use_mask(), 0);
    let expected = scalar_oracle_arbitrate(&requests, &cfg, &mut oracle_rng);
    assert_eq!(outcomes, expected);
    for _ in 0..4 {
        assert_eq!(rng.index(1 << 16), oracle_rng.index(1 << 16));
    }
}
