//! Word-stream codec primitives shared by every checkpointable layer.
//!
//! A checkpoint is ultimately a flat sequence of `u64` words. Each
//! subsystem (router, endpoint, engine, telemetry registry, …) appends
//! its mutable state behind an 8-byte ASCII section tag via
//! [`StateWriter`] and reads it back — tag-checked, in the same order —
//! via [`StateReader`]. Keeping the primitives here, at the bottom of
//! the crate graph, lets `metro_core` components serialize themselves
//! without the sim layer having to reach into private fields.
//!
//! The format is deliberately dumb: no varints, no alignment games,
//! just tagged spans of words. Byte-stability falls out of the fact
//! that every encoder walks its state in a fixed order, and mismatches
//! fail loudly with the section name in the error.

use std::collections::VecDeque;
use std::fmt;

/// A typed decode failure naming the offending section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The stream ended before the expected word.
    UnexpectedEnd {
        /// Section being decoded when the stream ran out.
        section: String,
    },
    /// A section tag did not match what the decoder expected.
    TagMismatch {
        /// Section tag the decoder expected.
        expected: String,
        /// Tag actually found in the stream.
        found: String,
    },
    /// A word decoded to a value that is out of range for its field.
    BadValue {
        /// Section being decoded.
        section: String,
        /// What was wrong with the value.
        detail: String,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEnd { section } => {
                write!(f, "state stream ended inside section `{section}`")
            }
            Self::TagMismatch { expected, found } => {
                write!(f, "expected section `{expected}`, found `{found}`")
            }
            Self::BadValue { section, detail } => {
                write!(f, "bad value in section `{section}`: {detail}")
            }
        }
    }
}

impl std::error::Error for StateError {}

/// Packs an up-to-8-byte ASCII tag into one word (zero-padded).
fn tag_word(tag: &str) -> u64 {
    debug_assert!(tag.len() <= 8, "section tags are at most 8 bytes");
    let mut bytes = [0u8; 8];
    bytes[..tag.len()].copy_from_slice(tag.as_bytes());
    u64::from_le_bytes(bytes)
}

/// Unpacks a tag word back to its ASCII form (for error messages).
fn tag_name(word: u64) -> String {
    let bytes = word.to_le_bytes();
    let end = bytes.iter().position(|&b| b == 0).unwrap_or(8);
    match std::str::from_utf8(&bytes[..end]) {
        Ok(s) if !s.is_empty() => s.to_string(),
        _ => format!("{word:#018x}"),
    }
}

/// Appends state as a flat word stream with tagged sections.
#[derive(Debug, Default, Clone)]
pub struct StateWriter {
    words: Vec<u64>,
}

impl StateWriter {
    /// A fresh, empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a tagged section (tags are at most 8 ASCII bytes).
    pub fn section(&mut self, tag: &str) {
        self.words.push(tag_word(tag));
    }

    /// Appends one raw word.
    pub fn u64(&mut self, v: u64) {
        self.words.push(v);
    }

    /// Appends a `usize` (always encoded as a full word).
    pub fn usize(&mut self, v: usize) {
        self.words.push(v as u64);
    }

    /// Appends a bool as 0/1.
    pub fn bool(&mut self, v: bool) {
        self.words.push(u64::from(v));
    }

    /// Appends an `f64` via its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.words.push(v.to_bits());
    }

    /// Appends `Some`/`None` as a presence word followed by the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.words.push(1);
                self.words.push(x);
            }
            None => self.words.push(0),
        }
    }

    /// Appends a length-prefixed slice of words.
    pub fn u64_slice(&mut self, vs: &[u64]) {
        self.usize(vs.len());
        self.words.extend_from_slice(vs);
    }

    /// Appends a length-prefixed string (bytes packed 8 per word).
    pub fn str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        self.usize(bytes.len());
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.words.push(u64::from_le_bytes(w));
        }
    }

    /// The accumulated words.
    #[must_use]
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }

    /// Number of words written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Reads a word stream back, validating section tags as it goes.
#[derive(Debug)]
pub struct StateReader<'a> {
    words: &'a [u64],
    pos: usize,
    /// Most recently opened section, for error context.
    current: String,
}

impl<'a> StateReader<'a> {
    /// A reader over `words`, positioned at the start.
    #[must_use]
    pub fn new(words: &'a [u64]) -> Self {
        Self {
            words,
            pos: 0,
            current: String::from("<start>"),
        }
    }

    fn next_word(&mut self) -> Result<u64, StateError> {
        let w = self
            .words
            .get(self.pos)
            .copied()
            .ok_or_else(|| StateError::UnexpectedEnd {
                section: self.current.clone(),
            })?;
        self.pos += 1;
        Ok(w)
    }

    /// Consumes and checks a section tag.
    ///
    /// # Errors
    ///
    /// [`StateError::TagMismatch`] when the stream holds a different
    /// tag, [`StateError::UnexpectedEnd`] when it holds nothing.
    pub fn section(&mut self, tag: &str) -> Result<(), StateError> {
        let w = self.next_word()?;
        if w != tag_word(tag) {
            return Err(StateError::TagMismatch {
                expected: tag.to_string(),
                found: tag_name(w),
            });
        }
        self.current = tag.to_string();
        Ok(())
    }

    /// Reads one raw word.
    ///
    /// # Errors
    ///
    /// [`StateError::UnexpectedEnd`] at end of stream.
    pub fn u64(&mut self) -> Result<u64, StateError> {
        self.next_word()
    }

    /// Reads a `usize`, rejecting values that overflow the platform.
    ///
    /// # Errors
    ///
    /// [`StateError::BadValue`] when the word exceeds `usize::MAX`.
    pub fn usize(&mut self) -> Result<usize, StateError> {
        let w = self.next_word()?;
        usize::try_from(w).map_err(|_| self.bad(format!("{w} overflows usize")))
    }

    /// Reads a bool, rejecting anything but 0/1.
    ///
    /// # Errors
    ///
    /// [`StateError::BadValue`] for words other than 0 or 1.
    pub fn bool(&mut self) -> Result<bool, StateError> {
        match self.next_word()? {
            0 => Ok(false),
            1 => Ok(true),
            w => Err(self.bad(format!("{w} is not a bool"))),
        }
    }

    /// Reads an `f64` from its bit pattern.
    ///
    /// # Errors
    ///
    /// [`StateError::UnexpectedEnd`] at end of stream.
    pub fn f64(&mut self) -> Result<f64, StateError> {
        Ok(f64::from_bits(self.next_word()?))
    }

    /// Reads an optional word written by [`StateWriter::opt_u64`].
    ///
    /// # Errors
    ///
    /// [`StateError::BadValue`] for a presence word other than 0/1.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, StateError> {
        if self.bool()? {
            Ok(Some(self.next_word()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed word slice, bounding the length by the
    /// words remaining (so a corrupt length cannot trigger a huge
    /// allocation).
    ///
    /// # Errors
    ///
    /// [`StateError::BadValue`] when the prefix exceeds the remaining
    /// stream.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, StateError> {
        let n = self.usize()?;
        if n > self.words.len() - self.pos {
            return Err(self.bad(format!("length {n} exceeds remaining stream")));
        }
        let out = self.words[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Ok(out)
    }

    /// Reads a length-prefixed string written by [`StateWriter::str`].
    ///
    /// # Errors
    ///
    /// [`StateError::BadValue`] for invalid UTF-8 or an oversized
    /// length prefix.
    pub fn str(&mut self) -> Result<String, StateError> {
        let n = self.usize()?;
        let word_count = n.div_ceil(8);
        if word_count > self.words.len() - self.pos {
            return Err(self.bad(format!("string length {n} exceeds remaining stream")));
        }
        let mut bytes = Vec::with_capacity(n);
        for _ in 0..word_count {
            bytes.extend_from_slice(&self.next_word()?.to_le_bytes());
        }
        bytes.truncate(n);
        String::from_utf8(bytes).map_err(|_| self.bad("string is not UTF-8".to_string()))
    }

    /// Checks that the stream has been fully consumed.
    ///
    /// # Errors
    ///
    /// [`StateError::BadValue`] when trailing words remain.
    pub fn finish(&self) -> Result<(), StateError> {
        if self.pos != self.words.len() {
            return Err(StateError::BadValue {
                section: self.current.clone(),
                detail: format!("{} trailing words", self.words.len() - self.pos),
            });
        }
        Ok(())
    }

    /// Words remaining in the stream.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.words.len() - self.pos
    }

    fn bad(&self, detail: String) -> StateError {
        StateError::BadValue {
            section: self.current.clone(),
            detail,
        }
    }
}

/// Writes a `VecDeque<u64>` as a length-prefixed run (helper used by
/// pipeline/queue snapshots all over the core).
pub fn write_deque(w: &mut StateWriter, q: &VecDeque<u64>) {
    w.usize(q.len());
    for &v in q {
        w.u64(v);
    }
}

/// Reads back a deque written by [`write_deque`].
///
/// # Errors
///
/// Propagates reader errors (truncated stream, oversized length).
pub fn read_deque(r: &mut StateReader<'_>) -> Result<VecDeque<u64>, StateError> {
    let n = r.usize()?;
    if n > r.remaining() {
        return Err(StateError::BadValue {
            section: String::from("deque"),
            detail: format!("length {n} exceeds remaining stream"),
        });
    }
    let mut q = VecDeque::with_capacity(n);
    for _ in 0..n {
        q.push_back(r.u64()?);
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = StateWriter::new();
        w.section("hdr");
        w.u64(u64::MAX);
        w.usize(42);
        w.bool(true);
        w.bool(false);
        w.f64(-0.5);
        w.opt_u64(Some(7));
        w.opt_u64(None);
        w.u64_slice(&[1, 2, 3]);
        w.str("checkpoint §17");
        let words = w.into_words();

        let mut r = StateReader::new(&words);
        r.section("hdr").unwrap();
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.usize().unwrap(), 42);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.f64().unwrap(), -0.5);
        assert_eq!(r.opt_u64().unwrap(), Some(7));
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.u64_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.str().unwrap(), "checkpoint §17");
        r.finish().unwrap();
    }

    #[test]
    fn tag_mismatch_names_both_sections() {
        let mut w = StateWriter::new();
        w.section("alpha");
        let words = w.into_words();
        let mut r = StateReader::new(&words);
        match r.section("beta") {
            Err(StateError::TagMismatch { expected, found }) => {
                assert_eq!(expected, "beta");
                assert_eq!(found, "alpha");
            }
            other => panic!("expected tag mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_stream_names_the_section() {
        let mut w = StateWriter::new();
        w.section("routers");
        let words = w.into_words();
        let mut r = StateReader::new(&words);
        r.section("routers").unwrap();
        match r.u64() {
            Err(StateError::UnexpectedEnd { section }) => assert_eq!(section, "routers"),
            other => panic!("expected unexpected-end, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_length_is_rejected_not_allocated() {
        let words = vec![u64::MAX];
        let mut r = StateReader::new(&words);
        assert!(matches!(r.u64_vec(), Err(StateError::BadValue { .. })));
    }

    #[test]
    fn non_bool_word_is_rejected() {
        let words = vec![2];
        let mut r = StateReader::new(&words);
        assert!(matches!(r.bool(), Err(StateError::BadValue { .. })));
    }

    #[test]
    fn trailing_words_fail_finish() {
        let words = vec![1, 2];
        let mut r = StateReader::new(&words);
        r.u64().unwrap();
        assert!(matches!(r.finish(), Err(StateError::BadValue { .. })));
    }

    #[test]
    fn deque_round_trips() {
        let mut w = StateWriter::new();
        let q: VecDeque<u64> = [9, 8, 7].into_iter().collect();
        write_deque(&mut w, &q);
        let words = w.into_words();
        let mut r = StateReader::new(&words);
        assert_eq!(read_deque(&mut r).unwrap(), q);
        r.finish().unwrap();
    }
}
