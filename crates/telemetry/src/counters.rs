//! Flat, zero-alloc counter storage.
//!
//! [`CounterCell`] is one router's worth of counters — a fixed `[u64]`
//! array indexed by [`RouterCounter`] discriminant, `Copy`, and
//! incremented with a single add on the hot path. The bitplane router
//! tick feeds the arbitration counters (`Opens`/`Grants`/`Blocks`) as
//! popcount-derived batch [`CounterCell::add`]s once per tick rather
//! than per-port `inc`s; both paths land in the same cells, so every
//! reading at a tick boundary is exact either way. [`CounterBlock`] is a
//! whole network's worth: one flat `Vec<CounterCell>` slot-indexed by
//! (stage, router), allocated once at construction and never resized,
//! so per-tick synchronization is pure index arithmetic.

use crate::metric::RouterCounter;
use crate::state::{StateError, StateReader, StateWriter};

/// One router's counters: a fixed array indexed by [`RouterCounter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterCell {
    counts: [u64; RouterCounter::COUNT],
}

impl CounterCell {
    /// A zeroed cell.
    #[must_use]
    pub const fn new() -> Self {
        CounterCell {
            counts: [0; RouterCounter::COUNT],
        }
    }

    /// Increments one counter by 1.
    #[inline]
    pub fn inc(&mut self, c: RouterCounter) {
        self.counts[c as usize] += 1;
    }

    /// Adds `n` to one counter.
    #[inline]
    pub fn add(&mut self, c: RouterCounter, n: u64) {
        self.counts[c as usize] += n;
    }

    /// Reads one counter.
    #[inline]
    #[must_use]
    pub fn get(&self, c: RouterCounter) -> u64 {
        self.counts[c as usize]
    }

    /// The raw counts, in [`RouterCounter::ALL`] slot order.
    #[must_use]
    pub const fn counts(&self) -> &[u64; RouterCounter::COUNT] {
        &self.counts
    }

    /// Zeroes every counter.
    #[inline]
    pub fn reset(&mut self) {
        self.counts = [0; RouterCounter::COUNT];
    }

    /// Element-wise `self + other`.
    #[inline]
    #[must_use]
    pub fn plus(&self, other: &CounterCell) -> CounterCell {
        let mut out = *self;
        for i in 0..RouterCounter::COUNT {
            out.counts[i] += other.counts[i];
        }
        out
    }

    /// Element-wise saturating `self - other`; the delta between two
    /// cumulative readings of the same cell.
    #[inline]
    #[must_use]
    pub fn saturating_delta(&self, earlier: &CounterCell) -> CounterCell {
        let mut out = CounterCell::new();
        for i in 0..RouterCounter::COUNT {
            out.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        out
    }

    /// True when every counter is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&v| v == 0)
    }

    /// Appends every counter, in slot order, to a checkpoint stream.
    pub fn save_state(&self, w: &mut StateWriter) {
        for &v in &self.counts {
            w.u64(v);
        }
    }

    /// Overwrites every counter from a checkpoint stream.
    ///
    /// # Errors
    ///
    /// Propagates reader errors (truncated stream).
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        for v in &mut self.counts {
            *v = r.u64()?;
        }
        Ok(())
    }
}

/// A whole network's counters: one [`CounterCell`] per router, stored
/// flat and slot-indexed by (stage, router). Stages may have different
/// router counts (width-cascaded final stages do), so slot lookup goes
/// through a per-stage offset table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterBlock {
    /// `offsets[s]..offsets[s + 1]` is stage `s`'s slot range.
    offsets: Vec<usize>,
    cells: Vec<CounterCell>,
}

impl CounterBlock {
    /// Builds a zeroed block with `routers_per_stage[s]` cells in stage
    /// `s`.
    #[must_use]
    pub fn new(routers_per_stage: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(routers_per_stage.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for &n in routers_per_stage {
            total += n;
            offsets.push(total);
        }
        CounterBlock {
            offsets,
            cells: vec![CounterCell::new(); total],
        }
    }

    /// Number of stages.
    #[must_use]
    pub fn stages(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of routers in stage `s`.
    #[must_use]
    pub fn routers_in_stage(&self, s: usize) -> usize {
        self.offsets[s + 1] - self.offsets[s]
    }

    /// Total number of cells across all stages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the block has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The flat slot index of router `r` in stage `s`.
    #[inline]
    #[must_use]
    pub fn slot(&self, s: usize, r: usize) -> usize {
        debug_assert!(r < self.routers_in_stage(s));
        self.offsets[s] + r
    }

    /// The cell for router `r` in stage `s`.
    #[inline]
    #[must_use]
    pub fn cell(&self, s: usize, r: usize) -> &CounterCell {
        &self.cells[self.slot(s, r)]
    }

    /// Mutable access to the cell for router `r` in stage `s`.
    #[inline]
    pub fn cell_mut(&mut self, s: usize, r: usize) -> &mut CounterCell {
        let i = self.slot(s, r);
        &mut self.cells[i]
    }

    /// Every cell, flat, in slot order.
    #[must_use]
    pub fn cells(&self) -> &[CounterCell] {
        &self.cells
    }

    /// Zeroes every cell without reallocating.
    pub fn zero(&mut self) {
        for c in &mut self.cells {
            c.reset();
        }
    }

    /// Sum of one counter across stage `s`.
    #[must_use]
    pub fn stage_total(&self, s: usize, c: RouterCounter) -> u64 {
        self.cells[self.offsets[s]..self.offsets[s + 1]]
            .iter()
            .map(|cell| cell.get(c))
            .sum()
    }

    /// Sum of one counter across the whole network.
    #[must_use]
    pub fn total(&self, c: RouterCounter) -> u64 {
        self.cells.iter().map(|cell| cell.get(c)).sum()
    }

    /// Appends every cell, in slot order, to a checkpoint stream. The
    /// offset table is construction-derived and not written.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.cells.len());
        for cell in &self.cells {
            cell.save_state(w);
        }
    }

    /// Overwrites every cell from a checkpoint stream. The block must
    /// already have the shape it was saved with.
    ///
    /// # Errors
    ///
    /// [`StateError::BadValue`] when the saved cell count does not
    /// match this block's shape.
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let n = r.usize()?;
        if n != self.cells.len() {
            return Err(StateError::BadValue {
                section: String::from("counter-block"),
                detail: format!("saved {n} cells, block holds {}", self.cells.len()),
            });
        }
        for cell in &mut self.cells {
            cell.restore_state(r)?;
        }
        Ok(())
    }

    /// Iterates `((stage, router), &cell)` in slot order.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), &CounterCell)> {
        (0..self.stages()).flat_map(move |s| {
            (0..self.routers_in_stage(s)).map(move |r| ((s, r), self.cell(s, r)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_arithmetic_is_elementwise() {
        let mut a = CounterCell::new();
        a.inc(RouterCounter::Grants);
        a.add(RouterCounter::WordsForwarded, 10);
        let mut b = a;
        b.inc(RouterCounter::Grants);
        b.add(RouterCounter::Blocks, 3);

        let d = b.saturating_delta(&a);
        assert_eq!(d.get(RouterCounter::Grants), 1);
        assert_eq!(d.get(RouterCounter::Blocks), 3);
        assert_eq!(d.get(RouterCounter::WordsForwarded), 0);

        let sum = a.plus(&d);
        assert_eq!(sum, b);

        // Deltas saturate rather than wrapping when the earlier reading
        // is ahead (a rebased registry against a stale cell).
        assert!(a.saturating_delta(&b).get(RouterCounter::Blocks) == 0);
        assert!(!a.is_zero());
        let mut z = a;
        z.reset();
        assert!(z.is_zero());
    }

    #[test]
    fn block_slots_are_dense_and_ragged_stages_work() {
        let mut b = CounterBlock::new(&[2, 3, 1]);
        assert_eq!(b.stages(), 3);
        assert_eq!(b.len(), 6);
        assert_eq!(b.routers_in_stage(1), 3);
        assert_eq!(b.slot(0, 0), 0);
        assert_eq!(b.slot(1, 0), 2);
        assert_eq!(b.slot(2, 0), 5);

        b.cell_mut(1, 2).add(RouterCounter::Grants, 7);
        b.cell_mut(1, 0).add(RouterCounter::Grants, 1);
        b.cell_mut(2, 0).add(RouterCounter::Grants, 2);
        assert_eq!(b.stage_total(1, RouterCounter::Grants), 8);
        assert_eq!(b.total(RouterCounter::Grants), 10);

        let slots: Vec<(usize, usize)> = b.iter().map(|(sr, _)| sr).collect();
        assert_eq!(slots, [(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (2, 0)]);

        b.zero();
        assert!(b.cells().iter().all(CounterCell::is_zero));
        assert_eq!(b.len(), 6, "zeroing must not resize");
    }
}
