//! The per-simulation telemetry registry.
//!
//! A [`TelemetryRegistry`] is owned by the simulator. At every
//! telemetry interval the sim copies each router's raw [`CounterCell`]
//! in with [`TelemetryRegistry::sync_slot`]; the registry maintains
//! rebased cumulative counts (so a stats reset genuinely zeroes every
//! slot without touching the routers), per-slot deltas since the
//! previous sync (the trace log's food), and decimated network-wide
//! time series per counter. All storage is allocated at construction;
//! the sync path is index arithmetic and fixed-size copies only.

use crate::counters::{CounterBlock, CounterCell};
use crate::metric::RouterCounter;
use crate::series::TimeSeries;
use crate::state::{StateError, StateReader, StateWriter};

/// Rebased counter registry + per-sync deltas + time series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryRegistry {
    /// Raw router readings at the last stats reset; subtracted from
    /// every sync so the registry reads zero after a reset.
    baseline: CounterBlock,
    /// Rebased cumulative counts as of the last sync.
    current: CounterBlock,
    /// Per-slot change between the last two syncs.
    deltas: CounterBlock,
    /// Network-total delta series, one per [`RouterCounter`].
    series: Vec<TimeSeries>,
    /// Cycles between syncs (≥ 1).
    interval: u64,
    /// Number of syncs folded in since the last reset.
    syncs: u64,
    /// Network-total delta accumulated by the current sync pass —
    /// [`TelemetryRegistry::sync_slot`] folds each slot's delta in as
    /// it is computed, so [`TelemetryRegistry::finish_sync`] never
    /// rescans the whole block.
    pending: CounterCell,
}

impl TelemetryRegistry {
    /// A zeroed registry for a network with `routers_per_stage[s]`
    /// routers in stage `s`, synced every `interval` cycles.
    #[must_use]
    pub fn new(routers_per_stage: &[usize], interval: u64) -> Self {
        let block = CounterBlock::new(routers_per_stage);
        TelemetryRegistry {
            baseline: block.clone(),
            current: block.clone(),
            deltas: block,
            series: (0..RouterCounter::COUNT)
                .map(|_| TimeSeries::standard())
                .collect(),
            interval: interval.max(1),
            syncs: 0,
            pending: CounterCell::new(),
        }
    }

    /// Cycles between syncs.
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Sets the sync interval (clamped to ≥ 1).
    pub fn set_interval(&mut self, every: u64) {
        self.interval = every.max(1);
    }

    /// Copies one router's raw cumulative cell in, updating the rebased
    /// count and the per-slot delta. Call for every slot, then
    /// [`TelemetryRegistry::finish_sync`] once.
    #[inline]
    pub fn sync_slot(&mut self, s: usize, r: usize, raw: &CounterCell) {
        let i = self.current.slot(s, r);
        let rebased = raw.saturating_delta(&self.baseline.cells()[i]);
        let prev = self.current.cells()[i];
        let delta = rebased.saturating_delta(&prev);
        self.pending = self.pending.plus(&delta);
        *self.deltas.cell_mut(s, r) = delta;
        *self.current.cell_mut(s, r) = rebased;
    }

    /// Folds the just-written deltas into the per-counter time series.
    pub fn finish_sync(&mut self) {
        for c in RouterCounter::ALL {
            self.series[c as usize].push(self.pending.get(c));
        }
        self.pending.reset();
        self.syncs += 1;
    }

    /// Rebased cumulative counts as of the last sync.
    #[must_use]
    pub fn counters(&self) -> &CounterBlock {
        &self.current
    }

    /// Per-slot change between the last two syncs.
    #[must_use]
    pub fn deltas(&self) -> &CounterBlock {
        &self.deltas
    }

    /// The network-total delta series for one counter.
    #[must_use]
    pub fn series(&self, c: RouterCounter) -> &TimeSeries {
        &self.series[c as usize]
    }

    /// Number of syncs since the last reset.
    #[must_use]
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Zeroes every registry slot by folding the current readings into
    /// the baseline. Routers keep their cumulative counters; the next
    /// sync measures only post-reset activity.
    pub fn rebase(&mut self) {
        let stages = self.current.stages();
        for s in 0..stages {
            for r in 0..self.current.routers_in_stage(s) {
                let i = self.current.slot(s, r);
                let cur = self.current.cells()[i];
                let base = self.baseline.cells()[i];
                *self.baseline.cell_mut(s, r) = base.plus(&cur);
            }
        }
        self.current.zero();
        self.deltas.zero();
        for s in &mut self.series {
            s.clear();
        }
        self.syncs = 0;
    }

    /// Appends the whole registry (baseline, rebased counts, deltas,
    /// series, sync bookkeeping) to a checkpoint stream.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.section("telreg");
        w.u64(self.interval);
        w.u64(self.syncs);
        self.pending.save_state(w);
        self.baseline.save_state(w);
        self.current.save_state(w);
        self.deltas.save_state(w);
        w.usize(self.series.len());
        for s in &self.series {
            s.save_state(w);
        }
    }

    /// Overwrites the registry from a checkpoint stream. The registry
    /// must already have the network shape it was saved with.
    ///
    /// # Errors
    ///
    /// [`StateError`] on shape mismatch or a corrupt stream.
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        r.section("telreg")?;
        self.interval = r.u64()?.max(1);
        self.syncs = r.u64()?;
        self.pending.restore_state(r)?;
        self.baseline.restore_state(r)?;
        self.current.restore_state(r)?;
        self.deltas.restore_state(r)?;
        let n = r.usize()?;
        if n != self.series.len() {
            return Err(StateError::BadValue {
                section: String::from("telreg"),
                detail: format!("saved {n} series, registry holds {}", self.series.len()),
            });
        }
        for s in &mut self.series {
            s.restore_state(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(grants: u64, blocks: u64) -> CounterCell {
        let mut c = CounterCell::new();
        c.add(RouterCounter::Grants, grants);
        c.add(RouterCounter::Blocks, blocks);
        c
    }

    #[test]
    fn sync_tracks_cumulative_and_delta() {
        let mut reg = TelemetryRegistry::new(&[1, 2], 4);
        reg.sync_slot(0, 0, &raw(3, 1));
        reg.sync_slot(1, 0, &raw(2, 0));
        reg.sync_slot(1, 1, &raw(0, 0));
        reg.finish_sync();
        assert_eq!(reg.counters().cell(0, 0).get(RouterCounter::Grants), 3);
        assert_eq!(reg.deltas().cell(0, 0).get(RouterCounter::Grants), 3);
        assert_eq!(reg.series(RouterCounter::Grants).samples(), [5]);

        reg.sync_slot(0, 0, &raw(7, 1));
        reg.sync_slot(1, 0, &raw(2, 2));
        reg.sync_slot(1, 1, &raw(1, 0));
        reg.finish_sync();
        assert_eq!(reg.counters().cell(0, 0).get(RouterCounter::Grants), 7);
        assert_eq!(reg.deltas().cell(0, 0).get(RouterCounter::Grants), 4);
        assert_eq!(reg.deltas().cell(1, 0).get(RouterCounter::Blocks), 2);
        assert_eq!(reg.series(RouterCounter::Grants).samples(), [5, 5]);
        assert_eq!(reg.syncs(), 2);
    }

    #[test]
    fn rebase_zeroes_every_slot_but_keeps_measuring() {
        let mut reg = TelemetryRegistry::new(&[2], 1);
        reg.sync_slot(0, 0, &raw(10, 4));
        reg.sync_slot(0, 1, &raw(6, 0));
        reg.finish_sync();

        reg.rebase();
        for cell in reg.counters().cells() {
            assert!(cell.is_zero(), "rebase must zero every registry slot");
        }
        for cell in reg.deltas().cells() {
            assert!(cell.is_zero());
        }
        assert!(reg.series(RouterCounter::Grants).samples().is_empty());
        assert_eq!(reg.syncs(), 0);

        // Routers kept counting from 10/6; the registry sees only the
        // post-reset activity.
        reg.sync_slot(0, 0, &raw(12, 4));
        reg.sync_slot(0, 1, &raw(6, 1));
        reg.finish_sync();
        assert_eq!(reg.counters().cell(0, 0).get(RouterCounter::Grants), 2);
        assert_eq!(reg.counters().cell(0, 1).get(RouterCounter::Blocks), 1);
        assert_eq!(reg.deltas().cell(0, 0).get(RouterCounter::Grants), 2);
    }

    #[test]
    fn interval_is_clamped() {
        let mut reg = TelemetryRegistry::new(&[1], 0);
        assert_eq!(reg.interval(), 1);
        reg.set_interval(0);
        assert_eq!(reg.interval(), 1);
        reg.set_interval(64);
        assert_eq!(reg.interval(), 64);
    }
}
