//! Latency histograms with percentile queries.
//!
//! This is the simulator's former `LatencyStats` type, folded into the
//! telemetry crate so every layer shares one sample collector;
//! `metro_sim` re-exports it under the old name.

use crate::state::{StateError, StateReader, StateWriter};

/// An online collector of latency samples with percentile queries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: u64) {
        self.samples.push(latency);
        self.sorted = false;
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or 0 with no samples.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// The `p`-th percentile (0–100, nearest-rank), or 0 with no
    /// samples.
    pub fn percentile(&mut self, p: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        self.samples[rank.clamp(1, self.samples.len()) - 1]
    }

    /// Buckets the samples into a histogram of the given bucket width:
    /// `(bucket_start, count)` pairs covering min..=max, empty buckets
    /// included.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width == 0`.
    #[must_use]
    pub fn histogram(&self, bucket_width: u64) -> Vec<(u64, usize)> {
        assert!(bucket_width > 0, "bucket width must be nonzero");
        if self.samples.is_empty() {
            return Vec::new();
        }
        let lo = self.min() / bucket_width * bucket_width;
        let hi = self.max();
        let buckets = ((hi - lo) / bucket_width + 1) as usize;
        let mut hist = vec![0usize; buckets];
        for &s in &self.samples {
            hist[((s - lo) / bucket_width) as usize] += 1;
        }
        hist.into_iter()
            .enumerate()
            .map(|(k, c)| (lo + k as u64 * bucket_width, c))
            .collect()
    }

    /// Minimum sample, or 0.
    #[must_use]
    pub fn min(&self) -> u64 {
        self.samples.iter().copied().min().unwrap_or(0)
    }

    /// Maximum sample, or 0.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Appends the samples (in their current, possibly-sorted order)
    /// and the sorted flag to a checkpoint stream. Preserving sample
    /// order — not just the multiset — keeps a restored histogram's
    /// behavior identical under any future query sequence.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.u64_slice(&self.samples);
        w.bool(self.sorted);
    }

    /// Overwrites the collector from a checkpoint stream.
    ///
    /// # Errors
    ///
    /// Propagates reader errors (truncated stream, oversized length).
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.samples = r.u64_vec()?;
        self.sorted = r.bool()?;
        Ok(())
    }

    /// Condenses the distribution to the fixed summary a
    /// [`crate::TelemetrySnapshot`] carries.
    pub fn summary(&mut self) -> HistogramSummary {
        HistogramSummary {
            count: self.count() as u64,
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.percentile(50.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
        }
    }
}

/// The fixed latency summary embedded in snapshots: sample count, mean,
/// extrema, and the three percentiles the paper's tables quote.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of samples folded in.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum sample.
    pub min: u64,
    /// Maximum sample.
    pub max: u64,
    /// Median (nearest-rank).
    pub p50: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_condenses_the_distribution() {
        let mut h = Histogram::new();
        for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 10);
        assert!((s.mean - 55.0).abs() < 1e-9);
        assert_eq!((s.min, s.max), (10, 100));
        assert_eq!((s.p50, s.p95, s.p99), (50, 100, 100));
    }

    #[test]
    fn empty_summary_is_zero() {
        assert_eq!(Histogram::new().summary(), HistogramSummary::default());
    }
}
