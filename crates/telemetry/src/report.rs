//! Human-readable per-stage tables from a [`TelemetrySnapshot`].
//!
//! This is the rendering engine behind the `metro report` CLI verb:
//! given a snapshot (typically re-read from a `.telemetry.json`
//! sidecar), it produces a per-stage utilization / block-rate table
//! plus the latency summary. The output format is pinned by
//! integration tests — change it deliberately.

use crate::metric::RouterCounter;
use crate::snapshot::TelemetrySnapshot;

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        return 0.0;
    }
    num as f64 / den as f64 * 100.0
}

fn table_row(
    label: &str,
    routers: usize,
    totals: &[u64; RouterCounter::COUNT],
    cycles: u64,
) -> String {
    let opens = totals[RouterCounter::Opens as usize];
    let grants = totals[RouterCounter::Grants as usize];
    let blocks = totals[RouterCounter::Blocks as usize];
    let reclaims = totals[RouterCounter::FastReclaims as usize];
    let turns = totals[RouterCounter::Turns as usize];
    let drops = totals[RouterCounter::Drops as usize];
    let words = totals[RouterCounter::WordsForwarded as usize];
    // Block rate over decided opens; utilization as the fraction of
    // router-cycles that forwarded a payload word.
    let block_pct = pct(blocks, grants + blocks);
    let util_pct = pct(words, cycles * routers as u64);
    format!(
        "{label:>5} {routers:>7} {opens:>9} {grants:>9} {blocks:>9} {block_pct:>6.1}% \
         {reclaims:>8} {turns:>8} {drops:>8} {words:>10} {util_pct:>6.2}%\n"
    )
}

/// Renders the per-stage table and latency summary for one snapshot.
#[must_use]
pub fn render(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== {} :: {} engine, {} cycles, telemetry interval {} ==\n",
        snap.name, snap.engine, snap.cycles, snap.interval
    ));
    out.push_str(&format!(
        "{:>5} {:>7} {:>9} {:>9} {:>9} {:>7} {:>8} {:>8} {:>8} {:>10} {:>7}\n",
        "stage",
        "routers",
        "opens",
        "grants",
        "blocks",
        "block%",
        "reclaims",
        "turns",
        "drops",
        "words",
        "util%"
    ));
    let mut grand = [0u64; RouterCounter::COUNT];
    let mut all_routers = 0usize;
    for s in 0..snap.counters.stages() {
        let mut totals = [0u64; RouterCounter::COUNT];
        for c in RouterCounter::ALL {
            totals[c as usize] = snap.counters.stage_total(s, c);
            grand[c as usize] += totals[c as usize];
        }
        let routers = snap.counters.routers_in_stage(s);
        all_routers += routers;
        out.push_str(&table_row(&s.to_string(), routers, &totals, snap.cycles));
    }
    out.push_str(&table_row("total", all_routers, &grand, snap.cycles));
    let mismatches = grand[RouterCounter::ChecksumMismatches as usize];
    let masks = grand[RouterCounter::MasksApplied as usize];
    let masked_retries = grand[RouterCounter::RetriesAfterMask as usize];
    // The healing line only appears when the self-healing layer acted,
    // so fault-free reports keep their pinned pre-healing format.
    if mismatches + masks + masked_retries > 0 {
        out.push_str(&format!(
            "healing: checksum_mismatches {mismatches}  masks_applied {masks}  \
             retries_after_mask {masked_retries}\n"
        ));
    }
    let l = &snap.latency;
    out.push_str(&format!(
        "latency: count {}  mean {:.1}  p50 {}  p95 {}  p99 {}  min {}  max {}\n",
        l.count, l.mean, l.p50, l.p95, l.p99, l.min, l.max
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterCell;
    use crate::histogram::HistogramSummary;
    use crate::registry::TelemetryRegistry;

    #[test]
    fn report_pins_its_table_format() {
        let mut reg = TelemetryRegistry::new(&[2, 1], 16);
        let mut a = CounterCell::new();
        a.add(RouterCounter::Opens, 10);
        a.add(RouterCounter::Grants, 8);
        a.add(RouterCounter::Blocks, 2);
        a.add(RouterCounter::Turns, 8);
        a.add(RouterCounter::Drops, 8);
        a.add(RouterCounter::WordsForwarded, 200);
        reg.sync_slot(0, 0, &a);
        reg.sync_slot(0, 1, &CounterCell::new());
        let mut b = CounterCell::new();
        b.add(RouterCounter::Opens, 8);
        b.add(RouterCounter::Grants, 8);
        b.add(RouterCounter::FastReclaims, 1);
        b.add(RouterCounter::WordsForwarded, 100);
        reg.sync_slot(1, 0, &b);
        reg.finish_sync();
        let snap = TelemetrySnapshot::from_registry(
            "unit",
            "flat",
            1000,
            &reg,
            HistogramSummary {
                count: 8,
                mean: 41.5,
                min: 30,
                max: 60,
                p50: 40,
                p95: 60,
                p99: 60,
            },
        );
        let text = render(&snap);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "== unit :: flat engine, 1000 cycles, telemetry interval 16 =="
        );
        assert_eq!(
            lines[1],
            "stage routers     opens    grants    blocks  block% reclaims    turns    drops      words   util%"
        );
        assert_eq!(
            lines[2],
            "    0       2        10         8         2   20.0%        0        8        8        200  10.00%"
        );
        assert_eq!(
            lines[3],
            "    1       1         8         8         0    0.0%        1        0        0        100  10.00%"
        );
        assert_eq!(
            lines[4],
            "total       3        18        16         2   11.1%        1        8        8        300  10.00%"
        );
        assert_eq!(
            lines[5],
            "latency: count 8  mean 41.5  p50 40  p95 60  p99 60  min 30  max 60"
        );
    }

    #[test]
    fn healing_line_appears_only_when_the_healer_acted() {
        let mut reg = TelemetryRegistry::new(&[1], 1);
        let mut a = CounterCell::new();
        a.add(RouterCounter::ChecksumMismatches, 3);
        a.add(RouterCounter::MasksApplied, 2);
        a.add(RouterCounter::RetriesAfterMask, 5);
        reg.sync_slot(0, 0, &a);
        reg.finish_sync();
        let snap = TelemetrySnapshot::from_registry(
            "healed",
            "flat",
            100,
            &reg,
            HistogramSummary::default(),
        );
        let text = render(&snap);
        assert!(text
            .contains("healing: checksum_mismatches 3  masks_applied 2  retries_after_mask 5\n"));

        // A quiet network renders no healing line at all.
        let quiet = TelemetryRegistry::new(&[1], 1);
        let snap = TelemetrySnapshot::from_registry(
            "quiet",
            "flat",
            100,
            &quiet,
            HistogramSummary::default(),
        );
        assert!(!render(&snap).contains("healing:"));
    }

    #[test]
    fn zero_cycles_and_empty_stages_render_without_dividing() {
        let reg = TelemetryRegistry::new(&[1], 1);
        let snap = TelemetrySnapshot::from_registry(
            "empty",
            "reference",
            0,
            &reg,
            HistogramSummary::default(),
        );
        let text = render(&snap);
        assert!(text.contains("0.00%"));
        assert!(text.contains("latency: count 0"));
    }
}
