//! Schema-versioned, byte-stable telemetry snapshots.
//!
//! A [`TelemetrySnapshot`] freezes one simulation's telemetry — per
//! (stage, router) counter cells, a latency summary, and the decimated
//! network-total series — into a value with a canonical JSON form on
//! the harness [`Json`] model. The codec follows the scenario codec's
//! rules: `telemetry_schema` is checked before any field parsing,
//! unknown fields are rejected at every object level with dotted
//! paths, and encode∘decode∘encode is the identity on bytes (the
//! `.telemetry.json` sidecar contract).

use crate::counters::{CounterBlock, CounterCell};
use crate::histogram::HistogramSummary;
use crate::metric::RouterCounter;
use crate::registry::TelemetryRegistry;
use metro_harness::Json;

/// Telemetry schema version written into (and required of) every
/// document.
pub const TELEMETRY_SCHEMA: u64 = 1;

/// A telemetry decode failure: where in the document and what went
/// wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    /// Dotted path to the offending field (e.g. `"series[2].stride"`).
    pub path: String,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "telemetry decode error at {}: {}",
            self.path, self.message
        )
    }
}

impl std::error::Error for SnapshotError {}

/// One counter's decimated network-total series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesSnapshot {
    /// The [`RouterCounter::name`] this series tracks.
    pub metric: String,
    /// Syncs aggregated per bucket.
    pub stride: u64,
    /// Bucket sums, oldest first.
    pub samples: Vec<u64>,
}

/// A frozen view of one simulation's telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// The run this snapshot describes (artifact or scenario name).
    pub name: String,
    /// Engine that produced it (`"flat"` or `"reference"`).
    pub engine: String,
    /// Simulated cycles covered.
    pub cycles: u64,
    /// Telemetry sync interval in cycles.
    pub interval: u64,
    /// Per (stage, router) counters, in [`RouterCounter::ALL`] slot
    /// order inside each cell.
    pub counters: CounterBlock,
    /// Total-latency distribution summary.
    pub latency: HistogramSummary,
    /// Decimated network-total delta series, one per counter.
    pub series: Vec<SeriesSnapshot>,
}

impl TelemetrySnapshot {
    /// Freezes a registry (plus a latency summary) into a snapshot.
    #[must_use]
    pub fn from_registry(
        name: &str,
        engine: &str,
        cycles: u64,
        registry: &TelemetryRegistry,
        latency: HistogramSummary,
    ) -> Self {
        TelemetrySnapshot {
            name: name.to_string(),
            engine: engine.to_string(),
            cycles,
            interval: registry.interval(),
            counters: registry.counters().clone(),
            latency,
            series: RouterCounter::ALL
                .into_iter()
                .map(|c| SeriesSnapshot {
                    metric: c.name().to_string(),
                    stride: registry.series(c).stride(),
                    samples: registry.series(c).samples().to_vec(),
                })
                .collect(),
        }
    }

    /// The canonical JSON document — [`encode`] as a method.
    #[must_use]
    pub fn to_json(&self) -> Json {
        encode(self)
    }

    /// Decodes a document — [`decode`] as a constructor.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on schema mismatch, unknown or missing
    /// fields, or malformed values.
    pub fn from_json(doc: &Json) -> Result<Self, SnapshotError> {
        decode(doc)
    }
}

fn err<T>(path: &str, message: impl Into<String>) -> Result<T, SnapshotError> {
    Err(SnapshotError {
        path: path.to_string(),
        message: message.into(),
    })
}

fn check_fields(doc: &Json, allowed: &[&str], path: &str) -> Result<(), SnapshotError> {
    let Json::Obj(pairs) = doc else {
        return err(path, "expected an object");
    };
    for (k, _) in pairs {
        if !allowed.contains(&k.as_str()) {
            return err(path, format!("unknown field {k:?}"));
        }
    }
    Ok(())
}

fn get<'a>(doc: &'a Json, key: &str, path: &str) -> Result<&'a Json, SnapshotError> {
    match doc.get(key) {
        Some(v) => Ok(v),
        None => err(path, format!("missing field {key:?}")),
    }
}

fn dec_f64(doc: &Json, path: &str) -> Result<f64, SnapshotError> {
    doc.as_f64()
        .ok_or(())
        .or_else(|()| err(path, "expected a number"))
}

fn dec_u64(doc: &Json, path: &str) -> Result<u64, SnapshotError> {
    let v = dec_f64(doc, path)?;
    if v.fract() != 0.0 || !(0.0..9.0e15).contains(&v) {
        return err(path, format!("expected a non-negative integer, got {v}"));
    }
    Ok(v as u64)
}

fn dec_str<'a>(doc: &'a Json, path: &str) -> Result<&'a str, SnapshotError> {
    doc.as_str()
        .ok_or(())
        .or_else(|()| err(path, "expected a string"))
}

fn dec_arr<'a>(doc: &'a Json, path: &str) -> Result<&'a [Json], SnapshotError> {
    doc.as_arr()
        .ok_or(())
        .or_else(|()| err(path, "expected an array"))
}

fn enc_latency(l: &HistogramSummary) -> Json {
    Json::obj([
        ("count", Json::from(l.count)),
        ("mean", Json::from(l.mean)),
        ("min", Json::from(l.min)),
        ("max", Json::from(l.max)),
        ("p50", Json::from(l.p50)),
        ("p95", Json::from(l.p95)),
        ("p99", Json::from(l.p99)),
    ])
}

fn dec_latency(doc: &Json, path: &str) -> Result<HistogramSummary, SnapshotError> {
    check_fields(
        doc,
        &["count", "mean", "min", "max", "p50", "p95", "p99"],
        path,
    )?;
    let f = |key: &str| -> Result<u64, SnapshotError> {
        dec_u64(get(doc, key, path)?, &format!("{path}.{key}"))
    };
    Ok(HistogramSummary {
        count: f("count")?,
        mean: dec_f64(get(doc, "mean", path)?, &format!("{path}.mean"))?,
        min: f("min")?,
        max: f("max")?,
        p50: f("p50")?,
        p95: f("p95")?,
        p99: f("p99")?,
    })
}

/// Encodes a snapshot to its canonical JSON document. Counter cells are
/// arrays in [`RouterCounter::ALL`] slot order; the `counters` field is
/// stage-major, router-minor.
#[must_use]
pub fn encode(s: &TelemetrySnapshot) -> Json {
    Json::obj([
        ("telemetry_schema", Json::from(TELEMETRY_SCHEMA)),
        ("name", Json::from(s.name.as_str())),
        ("engine", Json::from(s.engine.as_str())),
        ("cycles", Json::from(s.cycles)),
        ("interval", Json::from(s.interval)),
        (
            "counter_names",
            Json::arr(RouterCounter::ALL.into_iter().map(|c| Json::from(c.name()))),
        ),
        (
            "counters",
            Json::arr((0..s.counters.stages()).map(|st| {
                Json::arr((0..s.counters.routers_in_stage(st)).map(|r| {
                    Json::arr(
                        s.counters
                            .cell(st, r)
                            .counts()
                            .iter()
                            .map(|&v| Json::from(v)),
                    )
                }))
            })),
        ),
        ("latency", enc_latency(&s.latency)),
        (
            "series",
            Json::arr(s.series.iter().map(|ser| {
                Json::obj([
                    ("metric", Json::from(ser.metric.as_str())),
                    ("stride", Json::from(ser.stride)),
                    (
                        "samples",
                        Json::arr(ser.samples.iter().map(|&v| Json::from(v))),
                    ),
                ])
            })),
        ),
    ])
}

/// Decodes a canonical snapshot document.
///
/// # Errors
///
/// Returns a [`SnapshotError`] naming the offending field on schema
/// mismatch, unknown or missing fields, or type errors.
pub fn decode(doc: &Json) -> Result<TelemetrySnapshot, SnapshotError> {
    // Schema first: reject foreign documents before parsing fields.
    let schema = dec_u64(get(doc, "telemetry_schema", "")?, "telemetry_schema")?;
    if schema != TELEMETRY_SCHEMA {
        return err(
            "telemetry_schema",
            format!("unsupported schema {schema} (this build reads {TELEMETRY_SCHEMA})"),
        );
    }
    check_fields(
        doc,
        &[
            "telemetry_schema",
            "name",
            "engine",
            "cycles",
            "interval",
            "counter_names",
            "counters",
            "latency",
            "series",
        ],
        "",
    )?;

    // The counter-name vector is self-describing redundancy: it must
    // match this build's slot order exactly.
    let names = dec_arr(get(doc, "counter_names", "")?, "counter_names")?;
    if names.len() != RouterCounter::COUNT {
        return err("counter_names", "wrong number of counters");
    }
    for (i, (n, c)) in names.iter().zip(RouterCounter::ALL).enumerate() {
        let p = format!("counter_names[{i}]");
        if dec_str(n, &p)? != c.name() {
            return err(&p, format!("expected {:?}", c.name()));
        }
    }

    let stages_doc = dec_arr(get(doc, "counters", "")?, "counters")?;
    let mut per_stage = Vec::with_capacity(stages_doc.len());
    for (st, stage) in stages_doc.iter().enumerate() {
        per_stage.push(dec_arr(stage, &format!("counters[{st}]"))?.len());
    }
    let mut counters = CounterBlock::new(&per_stage);
    for (st, stage) in stages_doc.iter().enumerate() {
        for (r, cell_doc) in dec_arr(stage, "counters")?.iter().enumerate() {
            let p = format!("counters[{st}][{r}]");
            let vals = dec_arr(cell_doc, &p)?;
            if vals.len() != RouterCounter::COUNT {
                return err(&p, format!("expected {} counters", RouterCounter::COUNT));
            }
            let mut cell = CounterCell::new();
            for (c, v) in RouterCounter::ALL.into_iter().zip(vals) {
                cell.add(c, dec_u64(v, &format!("{p}[{}]", c as usize))?);
            }
            *counters.cell_mut(st, r) = cell;
        }
    }

    let series_doc = dec_arr(get(doc, "series", "")?, "series")?;
    let mut series = Vec::with_capacity(series_doc.len());
    for (i, s) in series_doc.iter().enumerate() {
        let p = format!("series[{i}]");
        check_fields(s, &["metric", "stride", "samples"], &p)?;
        let samples_doc = dec_arr(get(s, "samples", &p)?, &format!("{p}.samples"))?;
        let mut samples = Vec::with_capacity(samples_doc.len());
        for (k, v) in samples_doc.iter().enumerate() {
            samples.push(dec_u64(v, &format!("{p}.samples[{k}]"))?);
        }
        series.push(SeriesSnapshot {
            metric: dec_str(get(s, "metric", &p)?, &format!("{p}.metric"))?.to_string(),
            stride: dec_u64(get(s, "stride", &p)?, &format!("{p}.stride"))?,
            samples,
        });
    }

    Ok(TelemetrySnapshot {
        name: dec_str(get(doc, "name", "")?, "name")?.to_string(),
        engine: dec_str(get(doc, "engine", "")?, "engine")?.to_string(),
        cycles: dec_u64(get(doc, "cycles", "")?, "cycles")?,
        interval: dec_u64(get(doc, "interval", "")?, "interval")?,
        counters,
        latency: dec_latency(get(doc, "latency", "")?, "latency")?,
        series,
    })
}

/// Parses snapshot text (a `.telemetry.json` sidecar) and decodes it.
///
/// # Errors
///
/// Returns a [`SnapshotError`] for both parse and decode failures.
pub fn from_text(text: &str) -> Result<TelemetrySnapshot, SnapshotError> {
    let doc = Json::parse(text).map_err(|e| SnapshotError {
        path: String::new(),
        message: format!("invalid JSON: {e}"),
    })?;
    decode(&doc)
}

/// The canonical content hash recorded in `manifest.json`:
/// `0x`-prefixed FNV-1a over the compact rendering of the canonical
/// encoding.
#[must_use]
pub fn telemetry_hash(s: &TelemetrySnapshot) -> String {
    format!("{:#018x}", encode(s).canonical_hash())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::TelemetryRegistry;

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut reg = TelemetryRegistry::new(&[2, 1], 8);
        let mut raw = CounterCell::new();
        raw.add(RouterCounter::Opens, 9);
        raw.add(RouterCounter::Grants, 7);
        raw.add(RouterCounter::Blocks, 2);
        raw.add(RouterCounter::WordsForwarded, 140);
        reg.sync_slot(0, 0, &raw);
        raw.add(RouterCounter::Turns, 3);
        reg.sync_slot(0, 1, &raw);
        reg.sync_slot(1, 0, &CounterCell::new());
        reg.finish_sync();
        let latency = HistogramSummary {
            count: 12,
            mean: 55.25,
            min: 30,
            max: 101,
            p50: 52,
            p95: 98,
            p99: 101,
        };
        TelemetrySnapshot::from_registry("unit", "flat", 4096, &reg, latency)
    }

    #[test]
    fn snapshot_round_trips_byte_stably() {
        let s = sample_snapshot();
        let doc = encode(&s);
        let text = doc.render();
        let decoded = from_text(&text).expect("canonical text decodes");
        assert_eq!(decoded, s, "value round-trip");
        assert_eq!(
            encode(&decoded).render(),
            text,
            "encode∘decode∘encode must be the byte identity"
        );
        // And through the compact form used for hashing.
        assert_eq!(encode(&decoded).render_compact(), doc.render_compact());
    }

    #[test]
    fn wrong_schema_is_rejected_before_field_parsing() {
        let mut doc = encode(&sample_snapshot());
        doc.set("telemetry_schema", Json::from(2u64));
        // Also plant an unknown field: the schema error must win.
        doc.set("future_field", Json::from(1u64));
        let e = decode(&doc).unwrap_err();
        assert_eq!(e.path, "telemetry_schema");
        assert!(e.message.contains("unsupported schema 2"));
    }

    fn arr_mut<'a>(doc: &'a mut Json, key: &str) -> &'a mut Vec<Json> {
        let Json::Obj(pairs) = doc else {
            panic!("expected an object")
        };
        pairs
            .iter_mut()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_arr_mut())
            .expect("array field")
    }

    #[test]
    fn unknown_fields_are_rejected_with_paths() {
        let mut doc = encode(&sample_snapshot());
        doc.set("surprise", Json::from(true));
        let e = decode(&doc).unwrap_err();
        assert!(e.message.contains("surprise"));

        let mut doc = encode(&sample_snapshot());
        arr_mut(&mut doc, "series")[0].set("extra", Json::from(1u64));
        let e = decode(&doc).unwrap_err();
        assert_eq!(e.path, "series[0]");
        assert!(e.message.contains("extra"));
    }

    #[test]
    fn counter_name_drift_is_rejected() {
        let mut doc = encode(&sample_snapshot());
        doc.set(
            "counter_names",
            Json::arr(
                [
                    "opens",
                    "grants",
                    "blocks",
                    "fast_reclaims",
                    "turns",
                    "drops",
                    "words_forwarded",
                    "checksum_mismatches",
                    "masks_applied",
                    "renamed",
                ]
                .into_iter()
                .map(Json::from),
            ),
        );
        let e = decode(&doc).unwrap_err();
        assert_eq!(e.path, "counter_names[9]");
    }

    #[test]
    fn hash_is_stable_and_discriminating() {
        let s = sample_snapshot();
        let h = telemetry_hash(&s);
        assert!(h.starts_with("0x") && h.len() == 18);
        assert_eq!(h, telemetry_hash(&s));
        let mut other = s.clone();
        other.cycles += 1;
        assert_ne!(h, telemetry_hash(&other));
    }
}
