//! Telemetry spine for the METRO reproduction.
//!
//! Every layer of the repo observes the network through this crate:
//!
//! * [`RouterCounter`] — typed metric IDs; the discriminants are slot
//!   indices, so registries and snapshots share one layout.
//! * [`CounterCell`] / [`CounterBlock`] — fixed-size per-router cells
//!   and flat (stage × router) registries, zero-alloc on the hot path.
//!   `metro_core::Router` increments a `CounterCell` directly.
//! * [`Histogram`] — latency samples with nearest-rank percentiles
//!   (the simulator's former `LatencyStats`, re-exported there).
//! * [`TimeSeries`] — decimated ring buffers: bounded memory over
//!   unbounded runs, conserving counter totals.
//! * [`TelemetryRegistry`] — owned by the simulator; rebased cumulative
//!   counts, per-sync deltas (the trace log's input), and per-counter
//!   series.
//! * [`TelemetrySnapshot`] + [`snapshot`] codec — schema-versioned,
//!   byte-stable JSON on the harness [`metro_harness::Json`] model; the
//!   `results/<name>.telemetry.json` sidecar format.
//! * [`report`] — per-stage utilization / block-rate / latency tables,
//!   the engine behind `metro report`.
//! * [`StateWriter`] / [`StateReader`] — the tagged word-stream codec
//!   every checkpointable component serializes its mutable state
//!   through (`metro_sim::checkpoint` assembles the full snapshot).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod histogram;
pub mod metric;
pub mod registry;
pub mod report;
pub mod series;
pub mod snapshot;
pub mod state;

pub use counters::{CounterBlock, CounterCell};
pub use histogram::{Histogram, HistogramSummary};
pub use metric::RouterCounter;
pub use registry::TelemetryRegistry;
pub use series::TimeSeries;
pub use snapshot::{telemetry_hash, TelemetrySnapshot, TELEMETRY_SCHEMA};
pub use state::{StateError, StateReader, StateWriter};
