//! Decimated ring-buffer time series.
//!
//! A [`TimeSeries`] holds a bounded number of samples over an unbounded
//! run: pushes accumulate into buckets of `stride` consecutive values,
//! and when the buffer fills, adjacent buckets are pairwise-summed and
//! the stride doubles. The series therefore always covers the *entire*
//! run at progressively coarser resolution, and (for counter deltas)
//! conserves the total: `sum(samples) + pending == sum(pushed)`.

use crate::state::{StateError, StateReader, StateWriter};

/// A fixed-capacity, self-decimating series of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    capacity: usize,
    stride: u64,
    /// Sum of pushes not yet folded into a full bucket.
    pending_sum: u64,
    /// Number of pushes accumulated toward the current bucket.
    pending_n: u64,
    samples: Vec<u64>,
}

impl TimeSeries {
    /// A series holding at most `capacity` buckets (clamped to ≥ 2 so
    /// decimation always halves into a usable buffer).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        TimeSeries {
            capacity,
            stride: 1,
            pending_sum: 0,
            pending_n: 0,
            samples: Vec::with_capacity(capacity),
        }
    }

    /// The default snapshot resolution: 256 buckets.
    #[must_use]
    pub fn standard() -> Self {
        TimeSeries::new(256)
    }

    /// Pushes one sample, decimating when the buffer is full.
    pub fn push(&mut self, v: u64) {
        self.pending_sum += v;
        self.pending_n += 1;
        if self.pending_n < self.stride {
            return;
        }
        if self.samples.len() == self.capacity {
            // Pairwise-sum adjacent buckets; the stride doubles and the
            // buffer halves, so the series still spans the whole run.
            let halved: Vec<u64> = self.samples.chunks(2).map(|c| c.iter().sum()).collect();
            self.samples = halved;
            self.stride *= 2;
            // The bucket under construction may no longer be full at
            // the new stride.
            if self.pending_n < self.stride {
                return;
            }
        }
        self.samples.push(self.pending_sum);
        self.pending_sum = 0;
        self.pending_n = 0;
    }

    /// Completed buckets, oldest first.
    #[must_use]
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Number of pushes each completed bucket aggregates.
    #[must_use]
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Maximum number of buckets held before decimation.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of raw pushes folded in so far.
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.samples.len() as u64 * self.stride + self.pending_n
    }

    /// Sum of every value ever pushed (buckets plus the partial one).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.samples.iter().sum::<u64>() + self.pending_sum
    }

    /// Clears the series back to stride 1 without reallocating.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.stride = 1;
        self.pending_sum = 0;
        self.pending_n = 0;
    }

    /// Appends the full decimation state to a checkpoint stream
    /// (capacity is construction-fixed and not written).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.u64(self.stride);
        w.u64(self.pending_sum);
        w.u64(self.pending_n);
        w.u64_slice(&self.samples);
    }

    /// Overwrites the decimation state from a checkpoint stream.
    ///
    /// # Errors
    ///
    /// [`StateError::BadValue`] when the saved buffer exceeds this
    /// series' capacity or the stride is zero.
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let stride = r.u64()?;
        let pending_sum = r.u64()?;
        let pending_n = r.u64()?;
        let samples = r.u64_vec()?;
        if stride == 0 {
            return Err(StateError::BadValue {
                section: String::from("time-series"),
                detail: String::from("stride must be nonzero"),
            });
        }
        if samples.len() > self.capacity {
            return Err(StateError::BadValue {
                section: String::from("time-series"),
                detail: format!(
                    "saved {} buckets, capacity is {}",
                    samples.len(),
                    self.capacity
                ),
            });
        }
        self.stride = stride;
        self.pending_sum = pending_sum;
        self.pending_n = pending_n;
        self.samples = samples;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_one_records_every_push() {
        let mut s = TimeSeries::new(8);
        for v in [3, 1, 4, 1, 5] {
            s.push(v);
        }
        assert_eq!(s.samples(), [3, 1, 4, 1, 5]);
        assert_eq!(s.stride(), 1);
        assert_eq!(s.pushes(), 5);
    }

    #[test]
    fn overflow_decimates_pairwise_and_conserves_the_total() {
        let mut s = TimeSeries::new(4);
        for v in 1..=4u64 {
            s.push(v);
        }
        assert_eq!(s.samples(), [1, 2, 3, 4]);
        // The 5th push overflows: buckets halve to [3, 7], stride 2,
        // and the new push starts a stride-2 bucket.
        s.push(5);
        assert_eq!(s.samples(), [3, 7]);
        assert_eq!(s.stride(), 2);
        s.push(6);
        assert_eq!(s.samples(), [3, 7, 11]);
        assert_eq!(s.total(), 21);
        assert_eq!(s.pushes(), 6);

        // Run it long: the total is always conserved and the buffer
        // never exceeds capacity.
        for v in 7..=1000u64 {
            s.push(v);
        }
        assert_eq!(s.total(), (1..=1000u64).sum::<u64>());
        assert!(s.samples().len() <= 4);
        assert_eq!(s.pushes(), 1000);
    }

    #[test]
    fn capacity_is_clamped_to_two() {
        let mut s = TimeSeries::new(0);
        assert_eq!(s.capacity(), 2);
        for v in 0..100u64 {
            s.push(v);
        }
        assert!(s.samples().len() <= 2);
        assert_eq!(s.total(), (0..100u64).sum::<u64>());
    }

    #[test]
    fn clear_resets_to_stride_one() {
        let mut s = TimeSeries::new(2);
        for v in 0..9u64 {
            s.push(v);
        }
        assert!(s.stride() > 1);
        s.clear();
        assert_eq!(s.stride(), 1);
        assert_eq!(s.pushes(), 0);
        s.push(42);
        assert_eq!(s.samples(), [42]);
    }
}
