//! Typed metric identifiers.
//!
//! Every per-router observable the simulator exports is named here,
//! once. The enum discriminants are the slot indices inside a
//! [`crate::CounterCell`], so adding a metric is a one-line change that
//! automatically flows through registries, snapshots, and reports.

/// The per-router event counters a METRO router maintains.
///
/// The discriminant order is load-bearing: it is the in-memory slot
/// order of [`crate::CounterCell`] *and* the array order of the
/// snapshot JSON schema, so it must never be reordered — append only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum RouterCounter {
    /// Connection-open requests that arrived at the router.
    Opens = 0,
    /// Open requests granted a forward port.
    Grants = 1,
    /// Open requests blocked (all candidate ports busy).
    Blocks = 2,
    /// Blocked channels reclaimed by the fast BCB path.
    FastReclaims = 3,
    /// TURN reversals executed.
    Turns = 4,
    /// Connections dropped (teardown completed).
    Drops = 5,
    /// Payload words forwarded through the crossbar.
    WordsForwarded = 6,
    /// Return-stream checksum mismatches the self-healing layer
    /// attributed to this router's downstream side.
    ChecksumMismatches = 7,
    /// Port-mask applications: enabled ports flipped to disabled by a
    /// live reconfiguration ([`Router::apply_config`]-level diff).
    MasksApplied = 8,
    /// Retries routed through this router's stage-0 entry after at
    /// least one mask was in effect for the sending endpoint.
    RetriesAfterMask = 9,
}

impl RouterCounter {
    /// Number of counters — the width of a [`crate::CounterCell`].
    pub const COUNT: usize = 10;

    /// Every counter, in slot order.
    pub const ALL: [RouterCounter; RouterCounter::COUNT] = [
        RouterCounter::Opens,
        RouterCounter::Grants,
        RouterCounter::Blocks,
        RouterCounter::FastReclaims,
        RouterCounter::Turns,
        RouterCounter::Drops,
        RouterCounter::WordsForwarded,
        RouterCounter::ChecksumMismatches,
        RouterCounter::MasksApplied,
        RouterCounter::RetriesAfterMask,
    ];

    /// The stable snake_case name used in snapshot JSON and reports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            RouterCounter::Opens => "opens",
            RouterCounter::Grants => "grants",
            RouterCounter::Blocks => "blocks",
            RouterCounter::FastReclaims => "fast_reclaims",
            RouterCounter::Turns => "turns",
            RouterCounter::Drops => "drops",
            RouterCounter::WordsForwarded => "words_forwarded",
            RouterCounter::ChecksumMismatches => "checksum_mismatches",
            RouterCounter::MasksApplied => "masks_applied",
            RouterCounter::RetriesAfterMask => "retries_after_mask",
        }
    }

    /// Inverse of [`RouterCounter::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<RouterCounter> {
        RouterCounter::ALL.into_iter().find(|c| c.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discriminants_are_dense_slot_indices() {
        for (i, c) in RouterCounter::ALL.into_iter().enumerate() {
            assert_eq!(c as usize, i);
        }
        assert_eq!(RouterCounter::ALL.len(), RouterCounter::COUNT);
    }

    #[test]
    fn names_round_trip() {
        for c in RouterCounter::ALL {
            assert_eq!(RouterCounter::from_name(c.name()), Some(c));
        }
        assert_eq!(RouterCounter::from_name("no_such_metric"), None);
    }
}
