//! Latency, throughput, and retry statistics.
//!
//! The latency collector is the telemetry crate's
//! [`Histogram`](metro_telemetry::Histogram), re-exported under its
//! historical name: one sample type flows from the simulator through
//! snapshots to `metro report`.

use crate::message::{FailureKind, MessageOutcome};
use metro_telemetry::{StateError, StateReader, StateWriter};

/// An online collector of latency samples with percentile queries —
/// the telemetry histogram under its historical simulator name.
pub type LatencyStats = metro_telemetry::Histogram;

/// Aggregate statistics over a simulation window. Counters are `u64`
/// (platform-independent, matching cycle types and telemetry cells).
#[derive(Debug, Clone, Default)]
pub struct NetworkStats {
    /// Total-latency samples (request → acknowledgment), the Figure 3
    /// metric.
    pub total_latency: LatencyStats,
    /// Network-latency samples (first injection → acknowledgment).
    pub network_latency: LatencyStats,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages abandoned (max-retry exhaustion).
    pub abandoned: u64,
    /// Total retries across delivered messages.
    pub retries: u64,
    /// Failed attempts by kind: `(blocked, fast_reclaimed, corrupt,
    /// no_ack, timeout)`.
    pub failure_counts: [u64; 5],
    /// Payload words carried by delivered messages.
    pub payload_words: u64,
    /// Blocked-attempt counts per stage (detailed-reclamation mode
    /// reports the exact stage in the turn-time STATUS reply; fast
    /// reclamation counts under `failure_counts` only).
    pub blocked_by_stage: Vec<u64>,
}

impl NetworkStats {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one completed outcome in. `payload_words` is the payload
    /// size of the message (for throughput accounting).
    pub fn record(&mut self, outcome: &MessageOutcome, payload_words: usize) {
        self.total_latency.record(outcome.total_latency());
        self.network_latency.record(outcome.network_latency());
        self.delivered += 1;
        self.retries += outcome.retries as u64;
        self.payload_words += payload_words as u64;
        for f in &outcome.failures {
            if let FailureKind::Blocked { stage } = f {
                if self.blocked_by_stage.len() <= *stage {
                    self.blocked_by_stage.resize(stage + 1, 0);
                }
                self.blocked_by_stage[*stage] += 1;
            }
            let slot = match f {
                FailureKind::Blocked { .. } => 0,
                FailureKind::FastReclaimed => 1,
                FailureKind::Corrupt => 2,
                FailureKind::NoAck => 3,
                FailureKind::Timeout => 4,
            };
            self.failure_counts[slot] += 1;
        }
    }

    /// Records an abandoned message.
    pub fn record_abandoned(&mut self, outcome: &MessageOutcome) {
        self.abandoned += 1;
        self.retries += outcome.retries as u64;
    }

    /// Mean retries per delivered message.
    #[must_use]
    pub fn retries_per_message(&self) -> f64 {
        if self.delivered == 0 {
            return 0.0;
        }
        self.retries as f64 / self.delivered as f64
    }

    /// Delivered payload words per cycle per endpoint — the accepted
    /// throughput.
    #[must_use]
    pub fn accepted_words_per_cycle(&self, cycles: u64, endpoints: usize) -> f64 {
        if cycles == 0 || endpoints == 0 {
            return 0.0;
        }
        self.payload_words as f64 / cycles as f64 / endpoints as f64
    }

    /// Appends the collector to a checkpoint stream (histogram sample
    /// order included, so restored percentile queries behave
    /// identically).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.section("netstats");
        self.total_latency.save_state(w);
        self.network_latency.save_state(w);
        w.u64(self.delivered);
        w.u64(self.abandoned);
        w.u64(self.retries);
        w.u64_slice(&self.failure_counts);
        w.u64(self.payload_words);
        w.u64_slice(&self.blocked_by_stage);
    }

    /// Overwrites the collector from a checkpoint stream.
    ///
    /// # Errors
    ///
    /// [`StateError`] on a corrupt stream.
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        r.section("netstats")?;
        self.total_latency.restore_state(r)?;
        self.network_latency.restore_state(r)?;
        self.delivered = r.u64()?;
        self.abandoned = r.u64()?;
        self.retries = r.u64()?;
        let counts = r.u64_vec()?;
        self.failure_counts = counts
            .try_into()
            .map_err(|v: Vec<u64>| StateError::BadValue {
                section: String::from("netstats"),
                detail: format!("{} failure counters, expected 5", v.len()),
            })?;
        self.payload_words = r.u64()?;
        self.blocked_by_stage = r.u64_vec()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut s = LatencyStats::new();
        for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            s.record(v);
        }
        assert_eq!(s.percentile(50.0), 50);
        assert_eq!(s.percentile(95.0), 100);
        assert_eq!(s.percentile(100.0), 100);
        assert_eq!(s.min(), 10);
        assert_eq!(s.max(), 100);
        assert!((s.mean() - 55.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_cover_the_range() {
        let mut s = LatencyStats::new();
        for v in [10, 11, 25, 26, 26, 40] {
            s.record(v);
        }
        let h = s.histogram(10);
        assert_eq!(h, vec![(10, 2), (20, 3), (30, 0), (40, 1)]);
        assert_eq!(h.iter().map(|(_, c)| c).sum::<usize>(), 6);
    }

    #[test]
    fn histogram_of_empty_is_empty() {
        assert!(LatencyStats::new().histogram(5).is_empty());
    }

    #[test]
    fn empty_stats_are_zero() {
        let mut s = LatencyStats::new();
        assert_eq!(s.percentile(50.0), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn empty_percentiles_are_zero_at_every_rank() {
        let mut s = LatencyStats::new();
        for p in [0.0, 0.1, 50.0, 99.9, 100.0] {
            assert_eq!(s.percentile(p), 0);
        }
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut s = LatencyStats::new();
        s.record(42);
        for p in [0.0, 1.0, 50.0, 95.0, 100.0] {
            assert_eq!(s.percentile(p), 42, "p{p}");
        }
        assert_eq!(s.mean(), 42.0);
        assert_eq!((s.min(), s.max(), s.count()), (42, 42, 1));
    }

    #[test]
    fn p0_and_p100_clamp_to_min_and_max() {
        let mut s = LatencyStats::new();
        for v in [30, 10, 20] {
            s.record(v);
        }
        // Nearest-rank with rank clamped into 1..=n: p0 → the minimum,
        // p100 → the maximum, never out of bounds.
        assert_eq!(s.percentile(0.0), 10);
        assert_eq!(s.percentile(100.0), 30);
        // A tiny positive p also lands on the first order statistic.
        assert_eq!(s.percentile(0.001), 10);
    }

    #[test]
    fn duplicate_heavy_distribution_percentiles() {
        // 97 copies of 5 and 3 copies of 1000: the heavy value owns
        // every rank up to p97; the tail appears only above it.
        let mut s = LatencyStats::new();
        for _ in 0..97 {
            s.record(5);
        }
        for _ in 0..3 {
            s.record(1000);
        }
        assert_eq!(s.percentile(50.0), 5);
        assert_eq!(s.percentile(90.0), 5);
        assert_eq!(s.percentile(97.0), 5);
        assert_eq!(s.percentile(98.0), 1000);
        assert_eq!(s.percentile(100.0), 1000);
        // Recording after a percentile query re-sorts correctly.
        s.record(1);
        assert_eq!(s.percentile(0.0), 1);
        assert_eq!(s.percentile(100.0), 1000);
    }

    #[test]
    fn network_stats_fold_outcomes() {
        use crate::message::MessageOutcome;
        let mut n = NetworkStats::new();
        let o = MessageOutcome {
            src: 0,
            dest: 1,
            requested_at: 0,
            first_injection_at: 2,
            completed_at: 30,
            retries: 2,
            failures: vec![
                FailureKind::FastReclaimed,
                FailureKind::Blocked { stage: 1 },
            ],
            payload_words: 20,
            payload_delivered: vec![],
            reply_received: vec![],
            failure_records: vec![],
            status: crate::message::DeliveryStatus::Delivered,
        };
        n.record(&o, 20);
        assert_eq!(n.delivered, 1);
        assert_eq!(n.retries, 2);
        assert_eq!(n.failure_counts[0], 1);
        assert_eq!(n.failure_counts[1], 1);
        assert_eq!(n.blocked_by_stage, vec![0, 1]);
        assert_eq!(n.payload_words, 20);
        assert_eq!(n.retries_per_message(), 2.0);
        assert!((n.accepted_words_per_cycle(100, 2) - 0.1).abs() < 1e-9);
    }
}
