//! Deterministic partitioning of a flat fabric into tick shards.
//!
//! The flat engine's cycle (see `network::tick_flat`) is three phases
//! over disjoint slot ranges: components drive the bus, wires consume
//! the bus into the next arena, and staged forward-lane words are
//! gathered to their (possibly remote) target slots. Because the slot
//! scheme of [`FlatLinks`] is stage-major and contiguous per router, a
//! partition of the flat *router* order induces contiguous cuts of the
//! forward-slot, backward-slot, and endpoint-slot arrays — so each
//! shard owns plain subslices of every arena and bus array, and the
//! sharded tick needs no locks on the hot path.
//!
//! A [`ShardPlan`] is pure topology: built once per simulation from
//! the link table, never consulted per-slot during a tick. Cuts are
//! placed by cumulative port weight (a router costs `fports + bports`
//! channel slots of work), each boundary landing on the prefix-weight
//! point nearest its ideal `k·W/N` target, which bounds every shard's
//! weight within one maximum router weight of the ideal share.

use metro_topo::flatlinks::{FlatLinks, FlatTarget};

/// A deterministic assignment of routers, endpoints, and wires to `N`
/// shards, with the precomputed gather lists the sharded tick's third
/// phase walks. Built by [`ShardPlan::build`]; identical inputs yield
/// identical plans (no randomness, no host dependence).
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Shard count `N` (as requested; shards may own empty ranges).
    shards: usize,
    /// Flat-router-index cuts, `N + 1` entries: shard `k` owns routers
    /// `router_cut[k]..router_cut[k + 1]`.
    pub(crate) router_cut: Vec<usize>,
    /// Endpoint-index cuts, `N + 1` entries.
    pub(crate) ep_cut: Vec<usize>,
    /// Forward-slot cuts induced by `router_cut`.
    pub(crate) f_cut: Vec<usize>,
    /// Backward-slot cuts induced by `router_cut`.
    pub(crate) b_cut: Vec<usize>,
    /// Endpoint-slot cuts induced by `ep_cut` (`ep_cut[k] · ep_ports`).
    pub(crate) eps_cut: Vec<usize>,
    /// Per-shard router port weight (`Σ fports + bports`), for balance
    /// inspection and tests.
    weights: Vec<u64>,
    /// Per target-owner shard: `(fslot, ep_slot)` pairs — stage-0
    /// forward slots fed by injection wires, with the staging index the
    /// wire's forward output was parked at.
    pub(crate) fwd_from_inj: Vec<Vec<(u32, u32)>>,
    /// Per target-owner shard: `(fslot, bslot)` pairs — forward slots
    /// fed by inter-stage wires.
    pub(crate) fwd_from_bwd: Vec<Vec<(u32, u32)>>,
    /// Per target-owner shard: `(ep_slot, bslot)` pairs — endpoint
    /// input slots fed by delivery-boundary wires.
    pub(crate) ep_in_from_bwd: Vec<Vec<(u32, u32)>>,
}

/// Splits `[0, total_weight]` into `n` nearest-boundary cuts over the
/// prefix-weight array, returning item-index cuts (`n + 1` entries).
/// `prefix` has `items + 1` entries with `prefix[0] == 0`.
fn weighted_cuts(prefix: &[u64], n: usize) -> Vec<usize> {
    let items = prefix.len() - 1;
    let total = u128::from(prefix[items]);
    let mut cuts = Vec::with_capacity(n + 1);
    cuts.push(0usize);
    let mut i = 0usize;
    for k in 1..n {
        // Ideal boundary k·W/N; advance to the first prefix at or past
        // it, then keep whichever neighbour is nearer (ties go high,
        // i.e. the first index whose prefix reaches the target).
        let target = u128::from(k as u64) * total;
        while i < items && u128::from(prefix[i]) * (n as u128) < target {
            i += 1;
        }
        let cut = if i > 0 {
            let above = u128::from(prefix[i]) * (n as u128) - target;
            let below = target - u128::from(prefix[i - 1]) * (n as u128);
            if below < above {
                i - 1
            } else {
                i
            }
        } else {
            i
        };
        // Nearest-boundary picks are nondecreasing for increasing
        // targets, but clamp defensively so the plan is always valid.
        cuts.push(cut.max(*cuts.last().expect("cuts never empty")));
    }
    cuts.push(items);
    cuts
}

/// The owning shard of item `idx` under `cuts` (binary search over the
/// `n + 1` cut array).
fn owner_of(cuts: &[usize], idx: usize) -> usize {
    debug_assert!(idx < *cuts.last().expect("cuts never empty"));
    // partition_point: first k with cuts[k] > idx; its predecessor's
    // range contains idx.
    cuts.partition_point(|&c| c <= idx) - 1
}

impl ShardPlan {
    /// Builds the partition of `links` into `shards` shards.
    ///
    /// Any `shards ≥ 1` is accepted — shards beyond the router count
    /// simply own empty ranges (callers that want useful parallelism
    /// cap the count themselves). The plan is a pure function of
    /// `(links, shards)`.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn build(links: &FlatLinks, shards: usize) -> Self {
        assert!(shards >= 1, "a shard plan needs at least one shard");
        let n_routers = links.n_routers();

        // Prefix port weights over the flat router order.
        let mut prefix = Vec::with_capacity(n_routers + 1);
        prefix.push(0u64);
        for s in 0..links.stages() {
            let w = (links.forward_ports(s) + links.backward_ports(s)) as u64;
            for _ in 0..links.routers_in_stage(s) {
                let last = *prefix.last().expect("prefix never empty");
                prefix.push(last + w);
            }
        }
        let router_cut = weighted_cuts(&prefix, shards);
        let weights = (0..shards)
            .map(|k| prefix[router_cut[k + 1]] - prefix[router_cut[k]])
            .collect();

        // Endpoints carry uniform weight: plain even cuts.
        let ep_prefix: Vec<u64> = (0..=links.endpoints()).map(|e| e as u64).collect();
        let ep_cut = weighted_cuts(&ep_prefix, shards);

        // A router cut induces slot cuts: the first forward/backward
        // slot of the cut router (slots are stage-major, contiguous
        // per router, in flat router order).
        let slot_at = |flat: usize, fwd: bool| -> usize {
            let mut base = 0usize;
            for s in 0..links.stages() {
                let n = links.routers_in_stage(s);
                if flat < base + n {
                    let r = flat - base;
                    return if fwd {
                        links.fslot(s, r, 0)
                    } else {
                        links.bslot(s, r, 0)
                    };
                }
                base += n;
            }
            if fwd {
                links.n_fwd_slots()
            } else {
                links.n_bwd_slots()
            }
        };
        let f_cut: Vec<usize> = router_cut.iter().map(|&c| slot_at(c, true)).collect();
        let b_cut: Vec<usize> = router_cut.iter().map(|&c| slot_at(c, false)).collect();
        let eps_cut: Vec<usize> = ep_cut.iter().map(|&c| c * links.ep_ports()).collect();

        // Gather lists: every wire's forward-lane output, grouped by
        // the shard owning the *target* slot. Iteration order (and so
        // per-shard list order) is the flat wire order — deterministic.
        let mut fwd_from_inj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); shards];
        let mut fwd_from_bwd: Vec<Vec<(u32, u32)>> = vec![Vec::new(); shards];
        let mut ep_in_from_bwd: Vec<Vec<(u32, u32)>> = vec![Vec::new(); shards];
        for i in 0..links.n_ep_slots() {
            let t = links.inj_target(i);
            fwd_from_inj[owner_of(&f_cut, t)].push((t as u32, i as u32));
        }
        for j in 0..links.n_bwd_slots() {
            match links.bwd_target(j) {
                FlatTarget::Fwd(t) => {
                    fwd_from_bwd[owner_of(&f_cut, t as usize)].push((t, j as u32));
                }
                FlatTarget::Endpoint(i) => {
                    ep_in_from_bwd[owner_of(&eps_cut, i as usize)].push((i, j as u32));
                }
            }
        }

        Self {
            shards,
            router_cut,
            ep_cut,
            f_cut,
            b_cut,
            eps_cut,
            weights,
            fwd_from_inj,
            fwd_from_bwd,
            ep_in_from_bwd,
        }
    }

    /// Shard count `N`.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Shard `k`'s flat-router range.
    #[must_use]
    pub fn router_range(&self, k: usize) -> std::ops::Range<usize> {
        self.router_cut[k]..self.router_cut[k + 1]
    }

    /// Shard `k`'s endpoint range.
    #[must_use]
    pub fn endpoint_range(&self, k: usize) -> std::ops::Range<usize> {
        self.ep_cut[k]..self.ep_cut[k + 1]
    }

    /// Shard `k`'s router port weight (`Σ fports + bports` over its
    /// routers).
    #[must_use]
    pub fn weight(&self, k: usize) -> u64 {
        self.weights[k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metro_topo::{Multibutterfly, MultibutterflySpec, StageSpec, WiringStyle};

    fn links_for(spec: &MultibutterflySpec) -> FlatLinks {
        FlatLinks::build(&Multibutterfly::build(spec).expect("valid spec"))
    }

    /// Builds links for a generated spec, or `None` when the walk
    /// produced an invalid topology (the generator favours but cannot
    /// guarantee validity; the property holds over valid fabrics).
    fn try_links_for(spec: &MultibutterflySpec) -> Option<FlatLinks> {
        Multibutterfly::build(spec)
            .ok()
            .map(|t| FlatLinks::build(&t))
    }

    /// The invariants every plan must satisfy regardless of balance:
    /// cuts cover and tile the index spaces, slot cuts agree with the
    /// router cuts, and the gather lists cover every wire exactly once.
    fn check_plan_invariants(links: &FlatLinks, plan: &ShardPlan) {
        let n = plan.shards();
        assert_eq!(plan.router_cut.len(), n + 1);
        assert_eq!(plan.router_cut[0], 0);
        assert_eq!(plan.router_cut[n], links.n_routers());
        assert_eq!(plan.ep_cut[0], 0);
        assert_eq!(plan.ep_cut[n], links.endpoints());
        assert_eq!(plan.f_cut[0], 0);
        assert_eq!(plan.f_cut[n], links.n_fwd_slots());
        assert_eq!(plan.b_cut[0], 0);
        assert_eq!(plan.b_cut[n], links.n_bwd_slots());
        assert_eq!(plan.eps_cut[0], 0);
        assert_eq!(plan.eps_cut[n], links.n_ep_slots());
        for k in 0..n {
            assert!(plan.router_cut[k] <= plan.router_cut[k + 1]);
            assert!(plan.ep_cut[k] <= plan.ep_cut[k + 1]);
            assert!(plan.f_cut[k] <= plan.f_cut[k + 1]);
            assert!(plan.b_cut[k] <= plan.b_cut[k + 1]);
            assert!(plan.eps_cut[k] <= plan.eps_cut[k + 1]);
        }
        // Every forward slot gathered at most once, every wire's
        // forward output gathered exactly once, and always by the
        // shard owning the target slot.
        let mut fwd_seen = vec![false; links.n_fwd_slots()];
        let mut ep_in_seen = vec![false; links.n_ep_slots()];
        let mut inj_wires = 0usize;
        let mut stage_wires = 0usize;
        for k in 0..n {
            for &(t, i) in &plan.fwd_from_inj[k] {
                let (t, i) = (t as usize, i as usize);
                assert!(!fwd_seen[t], "fslot {t} fed twice");
                fwd_seen[t] = true;
                assert!((plan.f_cut[k]..plan.f_cut[k + 1]).contains(&t));
                assert_eq!(links.inj_target(i), t);
                inj_wires += 1;
            }
            for &(t, j) in &plan.fwd_from_bwd[k] {
                let (t, j) = (t as usize, j as usize);
                assert!(!fwd_seen[t], "fslot {t} fed twice");
                fwd_seen[t] = true;
                assert!((plan.f_cut[k]..plan.f_cut[k + 1]).contains(&t));
                assert_eq!(links.bwd_target(j), FlatTarget::Fwd(t as u32));
                stage_wires += 1;
            }
            for &(i, j) in &plan.ep_in_from_bwd[k] {
                let (i, j) = (i as usize, j as usize);
                assert!(!ep_in_seen[i], "ep slot {i} fed twice");
                ep_in_seen[i] = true;
                assert!((plan.eps_cut[k]..plan.eps_cut[k + 1]).contains(&i));
                assert_eq!(links.bwd_target(j), FlatTarget::Endpoint(i as u32));
                stage_wires += 1;
            }
        }
        assert_eq!(inj_wires, links.n_ep_slots());
        assert_eq!(stage_wires, links.n_bwd_slots());
        // Weight accounting: shard weights sum to the total.
        let total: u64 = (0..links.stages())
            .map(|s| {
                (links.routers_in_stage(s) * (links.forward_ports(s) + links.backward_ports(s)))
                    as u64
            })
            .sum();
        assert_eq!((0..n).map(|k| plan.weight(k)).sum::<u64>(), total);
    }

    /// A deterministic pseudo-random walk over small valid specs:
    /// power-of-two radixes, 1–4 stages, endpoint counts matching the
    /// address space. (Hand-rolled — the workspace vendors no proptest
    /// for the sim crate.)
    fn spec_from_seed(seed: u64) -> MultibutterflySpec {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut bits = move |n: u32| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x & ((1 << n) - 1)
        };
        let stages = 1 + (bits(2) as usize % 3); // 1..=3
        let mut dirs = Vec::with_capacity(stages);
        let mut stage_specs = Vec::with_capacity(stages);
        for _ in 0..stages {
            let dir = 1usize << (1 + bits(1)); // 2 or 4 logical dirs
            let dilation = 1usize << bits(1); // 1 or 2
            dirs.push(dir);
            stage_specs.push(StageSpec {
                forward_ports: dir * dilation,
                backward_ports: dir * dilation,
                dilation,
            });
        }
        let endpoints = dirs.iter().product::<usize>();
        MultibutterflySpec {
            endpoints,
            endpoint_ports: 1 + (bits(1) as usize),
            stages: stage_specs,
            wiring: WiringStyle::Randomized,
            seed: 0x1994 ^ seed,
        }
    }

    #[test]
    fn property_cuts_and_gather_lists_hold_across_random_specs() {
        let mut valid = 0usize;
        for seed in 0..60u64 {
            let spec = spec_from_seed(seed);
            let Some(links) = try_links_for(&spec) else {
                continue;
            };
            valid += 1;
            for shards in [1usize, 2, 3, 4, 7] {
                let plan = ShardPlan::build(&links, shards);
                check_plan_invariants(&links, &plan);
            }
        }
        assert!(valid >= 10, "generator exercised only {valid} valid specs");
    }

    #[test]
    fn shards_beyond_router_count_leave_trailing_shards_empty_but_valid() {
        // figure1: three stages of 8 routers each = 24 routers total.
        let links = links_for(&MultibutterflySpec::figure1());
        let n = links.n_routers();
        let plan = ShardPlan::build(&links, n + 5);
        check_plan_invariants(&links, &plan);
        let empty = (0..plan.shards())
            .filter(|&k| plan.router_range(k).is_empty())
            .count();
        assert!(empty >= 5, "expected at least 5 empty shards, got {empty}");
        // Empty shards carry zero weight and empty gather ownership is
        // still possible (targets follow slot cuts) — the invariant
        // check above already proved coverage.
        for k in 0..plan.shards() {
            if plan.router_range(k).is_empty() {
                assert_eq!(plan.weight(k), 0);
            }
        }
    }

    #[test]
    fn single_stage_topology_partitions_cleanly() {
        // One stage of 4×4 dilation-1 routers delivering 4 endpoints
        // through 2 ports each: 8 wires / 4 forward ports = 2 routers.
        let spec = MultibutterflySpec {
            endpoints: 4,
            endpoint_ports: 2,
            stages: vec![StageSpec {
                forward_ports: 4,
                backward_ports: 4,
                dilation: 1,
            }],
            wiring: WiringStyle::Randomized,
            seed: 0x5151,
        };
        let links = links_for(&spec);
        for shards in [1usize, 2, 3, 4] {
            let plan = ShardPlan::build(&links, shards);
            check_plan_invariants(&links, &plan);
        }
        let plan = ShardPlan::build(&links, 2);
        assert_eq!(plan.router_range(0), 0..1);
        assert_eq!(plan.router_range(1), 1..2);
    }

    #[test]
    fn property_weight_balance_within_bound() {
        // Balance bound: when the ideal share W/N is at least three
        // times the heaviest single router, nearest-boundary cuts keep
        // max/min shard weight ≤ 2. (Each boundary lands within one
        // max router weight of ideal, so weights live in
        // [W/N − max_w, W/N + max_w] and the ratio is bounded by
        // (3+1)/(3−1) = 2.)
        for seed in 0..60u64 {
            let spec = spec_from_seed(seed);
            let Some(links) = try_links_for(&spec) else {
                continue;
            };
            let max_w = (0..links.stages())
                .map(|s| (links.forward_ports(s) + links.backward_ports(s)) as u64)
                .max()
                .expect("at least one stage");
            let total: u64 = (0..links.stages())
                .map(|s| {
                    (links.routers_in_stage(s) * (links.forward_ports(s) + links.backward_ports(s)))
                        as u64
                })
                .sum();
            for shards in 2..=4usize {
                if total / (shards as u64) < 3 * max_w {
                    continue; // bound only claimed when shares dominate routers
                }
                let plan = ShardPlan::build(&links, shards);
                let weights: Vec<u64> = (0..shards).map(|k| plan.weight(k)).collect();
                let max = *weights.iter().max().expect("nonempty");
                let min = *weights.iter().min().expect("nonempty");
                assert!(min > 0, "empty shard under a dominating share: {weights:?}");
                assert!(
                    max <= 2 * min,
                    "imbalance {weights:?} (max {max} / min {min}) for seed {seed}, \
                     {shards} shards"
                );
            }
        }
    }

    #[test]
    fn plans_are_deterministic() {
        let links = links_for(&MultibutterflySpec::figure3());
        let a = ShardPlan::build(&links, 4);
        let b = ShardPlan::build(&links, 4);
        assert_eq!(a.router_cut, b.router_cut);
        assert_eq!(a.ep_cut, b.ep_cut);
        assert_eq!(a.fwd_from_inj, b.fwd_from_inj);
        assert_eq!(a.fwd_from_bwd, b.fwd_from_bwd);
        assert_eq!(a.ep_in_from_bwd, b.ep_in_from_bwd);
    }
}
