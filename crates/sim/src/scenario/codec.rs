//! The scenario JSON codec: schema-versioned, unknown-field-rejecting,
//! byte-stable encode/decode on the harness's hand-rolled
//! [`Json`] document model.
//!
//! Design rules:
//!
//! * **Seeds are hex strings** (`"0xc0ffee"`). JSON numbers travel as
//!   `f64`, which silently corrupts integers above 2^53 — and seeds are
//!   arbitrary `u64`s.
//! * **Fault sets encode sorted** (routers by `(stage, router)`, links
//!   by `(stage, router, port)`, endpoints ascending): `FaultSet`
//!   iterates hash containers in arbitrary order, and the corpus
//!   round-trip contract is *byte* equality.
//! * **Unknown fields are errors** at every object level, so schema
//!   drift (a typo'd key, a field from a future schema) fails loudly
//!   instead of silently running a different experiment.
//! * **`scenario_schema` is checked first**; documents from a different
//!   schema version are rejected before any field parsing.

use super::{FaultInjection, RepairSet, Scenario, SendSpec, WorkloadSpec};
use crate::endpoint::{EndpointConfig, ReplyPolicy};
use crate::network::{EngineKind, SimConfig};
use crate::traffic::TrafficPattern;
use crate::workload::{ArrivalProcess, RateMap, TraceEntry};
use metro_core::SelectionPolicy;
use metro_harness::Json;
use metro_topo::fault::{FaultKind, FaultSet};
use metro_topo::graph::LinkId;
use metro_topo::multibutterfly::{MultibutterflySpec, StageSpec, WiringStyle};

/// The newest scenario schema version this build writes and reads.
/// Decode accepts `1..=SCENARIO_SCHEMA`; encode emits the *oldest*
/// version that can express the scenario ([`schema_for`]), so corpus
/// files using only schema-1 features keep their canonical bytes — and
/// their `scenario_hash` — across the bump.
///
/// Version history:
/// * **1** — original schema: Bernoulli-only `load` workloads.
/// * **2** — workload subsystem: `arrival` processes (`on_off`,
///   `trace`) and per-endpoint `rates` on `load` workloads.
pub const SCENARIO_SCHEMA: u64 = 2;

/// The oldest schema version that can express `scenario` — what
/// [`encode`] stamps into the document.
#[must_use]
fn schema_for(scenario: &Scenario) -> u64 {
    match &scenario.workload {
        WorkloadSpec::Load { arrival, rates, .. }
            if *arrival != ArrivalProcess::Bernoulli || *rates != RateMap::Uniform =>
        {
            2
        }
        _ => 1,
    }
}

/// A scenario decode failure: where in the document and what went
/// wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Dotted path to the offending field (e.g. `"sim.endpoint.reply"`).
    pub path: String,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scenario decode error at {}: {}",
            self.path, self.message
        )
    }
}

impl std::error::Error for CodecError {}

pub(crate) fn err<T>(path: &str, message: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError {
        path: path.to_string(),
        message: message.into(),
    })
}

/// Rejects keys outside the allowed set — the schema-drift tripwire.
pub(crate) fn check_fields(doc: &Json, allowed: &[&str], path: &str) -> Result<(), CodecError> {
    let Json::Obj(pairs) = doc else {
        return err(path, "expected an object");
    };
    for (k, _) in pairs {
        if !allowed.contains(&k.as_str()) {
            return err(path, format!("unknown field {k:?}"));
        }
    }
    Ok(())
}

pub(crate) fn get<'a>(doc: &'a Json, key: &str, path: &str) -> Result<&'a Json, CodecError> {
    match doc.get(key) {
        Some(v) => Ok(v),
        None => err(path, format!("missing field {key:?}")),
    }
}

fn dec_bool(doc: &Json, path: &str) -> Result<bool, CodecError> {
    match doc {
        Json::Bool(b) => Ok(*b),
        _ => err(path, "expected a boolean"),
    }
}

fn dec_f64(doc: &Json, path: &str) -> Result<f64, CodecError> {
    doc.as_f64()
        .ok_or(())
        .or_else(|()| err(path, "expected a number"))
}

pub(crate) fn dec_u64(doc: &Json, path: &str) -> Result<u64, CodecError> {
    let v = dec_f64(doc, path)?;
    if v.fract() != 0.0 || !(0.0..9.0e15).contains(&v) {
        return err(path, format!("expected a non-negative integer, got {v}"));
    }
    Ok(v as u64)
}

fn dec_usize(doc: &Json, path: &str) -> Result<usize, CodecError> {
    Ok(dec_u64(doc, path)? as usize)
}

fn dec_u16(doc: &Json, path: &str) -> Result<u16, CodecError> {
    let v = dec_u64(doc, path)?;
    u16::try_from(v)
        .ok()
        .ok_or(())
        .or_else(|()| err(path, format!("{v} does not fit in 16 bits")))
}

pub(crate) fn dec_str<'a>(doc: &'a Json, path: &str) -> Result<&'a str, CodecError> {
    doc.as_str()
        .ok_or(())
        .or_else(|()| err(path, "expected a string"))
}

pub(crate) fn dec_arr<'a>(doc: &'a Json, path: &str) -> Result<&'a [Json], CodecError> {
    doc.as_arr()
        .ok_or(())
        .or_else(|()| err(path, "expected an array"))
}

fn enc_seed(seed: u64) -> Json {
    Json::from(format!("{seed:#x}"))
}

/// Seeds are written as hex strings; decimal strings and exact small
/// integers are also accepted on input (hand-written files).
fn dec_seed(doc: &Json, path: &str) -> Result<u64, CodecError> {
    match doc {
        Json::Str(s) => {
            let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse::<u64>()
            };
            parsed
                .ok()
                .ok_or(())
                .or_else(|()| err(path, format!("invalid seed string {s:?}")))
        }
        Json::Num(_) => dec_u64(doc, path),
        _ => err(path, "expected a seed (hex string or integer)"),
    }
}

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

fn enc_topology(spec: &MultibutterflySpec) -> Json {
    Json::obj([
        ("endpoints", Json::from(spec.endpoints)),
        ("endpoint_ports", Json::from(spec.endpoint_ports)),
        (
            "stages",
            Json::arr(spec.stages.iter().map(|s| {
                Json::obj([
                    ("forward_ports", Json::from(s.forward_ports)),
                    ("backward_ports", Json::from(s.backward_ports)),
                    ("dilation", Json::from(s.dilation)),
                ])
            })),
        ),
        (
            "wiring",
            Json::from(match spec.wiring {
                WiringStyle::Deterministic => "deterministic",
                WiringStyle::Randomized => "randomized",
            }),
        ),
        ("seed", enc_seed(spec.seed)),
    ])
}

fn dec_topology(doc: &Json, path: &str) -> Result<MultibutterflySpec, CodecError> {
    check_fields(
        doc,
        &["endpoints", "endpoint_ports", "stages", "wiring", "seed"],
        path,
    )?;
    let stages_doc = dec_arr(get(doc, "stages", path)?, &format!("{path}.stages"))?;
    let mut stages = Vec::with_capacity(stages_doc.len());
    for (i, s) in stages_doc.iter().enumerate() {
        let sp = format!("{path}.stages[{i}]");
        check_fields(s, &["forward_ports", "backward_ports", "dilation"], &sp)?;
        stages.push(StageSpec {
            forward_ports: dec_usize(get(s, "forward_ports", &sp)?, &sp)?,
            backward_ports: dec_usize(get(s, "backward_ports", &sp)?, &sp)?,
            dilation: dec_usize(get(s, "dilation", &sp)?, &sp)?,
        });
    }
    let wiring_path = format!("{path}.wiring");
    let wiring = match dec_str(get(doc, "wiring", path)?, &wiring_path)? {
        "deterministic" => WiringStyle::Deterministic,
        "randomized" => WiringStyle::Randomized,
        other => return err(&wiring_path, format!("unknown wiring style {other:?}")),
    };
    Ok(MultibutterflySpec {
        endpoints: dec_usize(get(doc, "endpoints", path)?, &format!("{path}.endpoints"))?,
        endpoint_ports: dec_usize(
            get(doc, "endpoint_ports", path)?,
            &format!("{path}.endpoint_ports"),
        )?,
        stages,
        wiring,
        seed: dec_seed(get(doc, "seed", path)?, &format!("{path}.seed"))?,
    })
}

// ---------------------------------------------------------------------------
// Sim / endpoint config
// ---------------------------------------------------------------------------

fn enc_reply(reply: &ReplyPolicy) -> Json {
    match reply {
        ReplyPolicy::Ack => Json::obj([("kind", Json::from("ack"))]),
        ReplyPolicy::ReadReply { latency, words } => Json::obj([
            ("kind", Json::from("read_reply")),
            ("latency", Json::from(*latency)),
            ("words", Json::from(*words)),
        ]),
        ReplyPolicy::Conversation => Json::obj([("kind", Json::from("conversation"))]),
    }
}

fn dec_reply(doc: &Json, path: &str) -> Result<ReplyPolicy, CodecError> {
    let kind_path = format!("{path}.kind");
    match dec_str(get(doc, "kind", path)?, &kind_path)? {
        "ack" => {
            check_fields(doc, &["kind"], path)?;
            Ok(ReplyPolicy::Ack)
        }
        "read_reply" => {
            check_fields(doc, &["kind", "latency", "words"], path)?;
            Ok(ReplyPolicy::ReadReply {
                latency: dec_usize(get(doc, "latency", path)?, &format!("{path}.latency"))?,
                words: dec_usize(get(doc, "words", path)?, &format!("{path}.words"))?,
            })
        }
        "conversation" => {
            check_fields(doc, &["kind"], path)?;
            Ok(ReplyPolicy::Conversation)
        }
        other => err(&kind_path, format!("unknown reply policy {other:?}")),
    }
}

fn enc_endpoint(ep: &EndpointConfig) -> Json {
    Json::obj([
        ("reply", enc_reply(&ep.reply)),
        ("timeout", Json::from(ep.timeout)),
        ("open_timeout", Json::from(ep.open_timeout)),
        ("retry_backoff_max", Json::from(ep.retry_backoff_max)),
        ("max_retries", Json::from(ep.max_retries)),
        ("max_concurrent", Json::from(ep.max_concurrent)),
        (
            "capture_failure_records",
            Json::from(ep.capture_failure_records),
        ),
    ])
}

fn dec_endpoint(doc: &Json, path: &str) -> Result<EndpointConfig, CodecError> {
    check_fields(
        doc,
        &[
            "reply",
            "timeout",
            "open_timeout",
            "retry_backoff_max",
            "max_retries",
            "max_concurrent",
            "capture_failure_records",
        ],
        path,
    )?;
    Ok(EndpointConfig {
        reply: dec_reply(get(doc, "reply", path)?, &format!("{path}.reply"))?,
        timeout: dec_usize(get(doc, "timeout", path)?, &format!("{path}.timeout"))?,
        open_timeout: dec_usize(
            get(doc, "open_timeout", path)?,
            &format!("{path}.open_timeout"),
        )?,
        retry_backoff_max: dec_usize(
            get(doc, "retry_backoff_max", path)?,
            &format!("{path}.retry_backoff_max"),
        )?,
        max_retries: dec_usize(
            get(doc, "max_retries", path)?,
            &format!("{path}.max_retries"),
        )?,
        max_concurrent: dec_usize(
            get(doc, "max_concurrent", path)?,
            &format!("{path}.max_concurrent"),
        )?,
        capture_failure_records: dec_bool(
            get(doc, "capture_failure_records", path)?,
            &format!("{path}.capture_failure_records"),
        )?,
    })
}

fn enc_sim(sim: &SimConfig) -> Json {
    let mut fields = vec![
        ("width", Json::from(sim.width)),
        ("header_words", Json::from(sim.header_words)),
        ("pipestages", Json::from(sim.pipestages)),
        ("wire_delay", Json::from(sim.wire_delay)),
        (
            "stage_wire_delays",
            match &sim.stage_wire_delays {
                Some(ds) => Json::arr(ds.iter().map(|&d| Json::from(d))),
                None => Json::Null,
            },
        ),
        ("fast_reclaim", Json::from(sim.fast_reclaim)),
        (
            "selection",
            Json::from(match sim.selection {
                SelectionPolicy::Random => "random",
                SelectionPolicy::RoundRobin => "round_robin",
                SelectionPolicy::Fixed => "fixed",
            }),
        ),
        ("endpoint", enc_endpoint(&sim.endpoint)),
        ("seed", enc_seed(sim.seed)),
        ("engine", Json::from(sim.engine.name())),
        ("telemetry_every", Json::from(sim.telemetry_every)),
    ];
    // Conditional emission keeps pre-healing scenario files byte-stable.
    if sim.self_heal {
        fields.push(("self_heal", Json::from(true)));
    }
    // Likewise for pre-sharding files: 1 (single-threaded) is the
    // default and is never written out.
    if sim.shards != 1 {
        fields.push(("shards", Json::from(sim.shards)));
    }
    Json::obj(fields)
}

fn dec_sim(doc: &Json, path: &str) -> Result<SimConfig, CodecError> {
    check_fields(
        doc,
        &[
            "width",
            "header_words",
            "pipestages",
            "wire_delay",
            "stage_wire_delays",
            "fast_reclaim",
            "selection",
            "endpoint",
            "seed",
            "engine",
            "telemetry_every",
            "self_heal",
            "shards",
        ],
        path,
    )?;
    let delays_path = format!("{path}.stage_wire_delays");
    let stage_wire_delays = match get(doc, "stage_wire_delays", path)? {
        Json::Null => None,
        arr => {
            let items = dec_arr(arr, &delays_path)?;
            let mut ds = Vec::with_capacity(items.len());
            for (i, d) in items.iter().enumerate() {
                ds.push(dec_usize(d, &format!("{delays_path}[{i}]"))?);
            }
            Some(ds)
        }
    };
    let sel_path = format!("{path}.selection");
    let selection = match dec_str(get(doc, "selection", path)?, &sel_path)? {
        "random" => SelectionPolicy::Random,
        "round_robin" => SelectionPolicy::RoundRobin,
        "fixed" => SelectionPolicy::Fixed,
        other => return err(&sel_path, format!("unknown selection policy {other:?}")),
    };
    let engine_path = format!("{path}.engine");
    let engine_name = dec_str(get(doc, "engine", path)?, &engine_path)?;
    // One canonical spelling per kind (`EngineKind::name`); "analytic"
    // decodes like any other — cycle-accuracy is enforced where it
    // matters (NetworkSim construction, chaos campaigns), not here.
    let engine = match EngineKind::from_name(engine_name) {
        Some(k) => k,
        None => return err(&engine_path, format!("unknown engine {engine_name:?}")),
    };
    Ok(SimConfig {
        width: dec_usize(get(doc, "width", path)?, &format!("{path}.width"))?,
        header_words: dec_usize(
            get(doc, "header_words", path)?,
            &format!("{path}.header_words"),
        )?,
        pipestages: dec_usize(get(doc, "pipestages", path)?, &format!("{path}.pipestages"))?,
        wire_delay: dec_usize(get(doc, "wire_delay", path)?, &format!("{path}.wire_delay"))?,
        stage_wire_delays,
        fast_reclaim: dec_bool(
            get(doc, "fast_reclaim", path)?,
            &format!("{path}.fast_reclaim"),
        )?,
        selection,
        endpoint: dec_endpoint(get(doc, "endpoint", path)?, &format!("{path}.endpoint"))?,
        seed: dec_seed(get(doc, "seed", path)?, &format!("{path}.seed"))?,
        engine,
        // Absent in pre-telemetry scenario files; default matches
        // `SimConfig::default` so old documents keep their meaning.
        telemetry_every: match doc.get("telemetry_every") {
            Some(v) => dec_u64(v, &format!("{path}.telemetry_every"))?,
            None => 1,
        },
        // Absent in pre-healing scenario files; off is the old
        // behaviour.
        self_heal: match doc.get("self_heal") {
            Some(v) => dec_bool(v, &format!("{path}.self_heal"))?,
            None => false,
        },
        // Absent in pre-sharding scenario files; 1 is the classic
        // single-threaded tick (and every shard count is bit-identical
        // to it, so this is purely an execution-strategy knob).
        shards: match doc.get("shards") {
            Some(v) => dec_usize(v, &format!("{path}.shards"))?,
            None => 1,
        },
    })
}

// ---------------------------------------------------------------------------
// Faults
// ---------------------------------------------------------------------------

fn enc_faults(faults: &FaultSet) -> Json {
    let mut routers: Vec<(usize, usize)> = faults.dead_routers().collect();
    routers.sort_unstable();
    let mut links: Vec<(LinkId, FaultKind)> = faults.faulty_links().collect();
    links.sort_unstable_by_key(|(l, _)| (l.stage, l.router, l.port));
    let mut endpoints: Vec<usize> = faults.dead_endpoints().collect();
    endpoints.sort_unstable();
    Json::obj([
        (
            "routers",
            Json::arr(
                routers
                    .iter()
                    .map(|&(s, r)| Json::arr([Json::from(s), Json::from(r)])),
            ),
        ),
        (
            "links",
            Json::arr(links.iter().map(|(l, k)| {
                let mut doc = Json::obj([
                    ("stage", Json::from(l.stage)),
                    ("router", Json::from(l.router)),
                    ("port", Json::from(l.port)),
                ]);
                match k {
                    FaultKind::Dead => doc.set("kind", Json::from("dead")),
                    FaultKind::CorruptData { xor } => {
                        doc.set("kind", Json::from("corrupt"));
                        doc.set("xor", Json::from(u64::from(*xor)));
                    }
                    FaultKind::Intermittent { xor, period } => {
                        doc.set("kind", Json::from("intermittent"));
                        doc.set("xor", Json::from(u64::from(*xor)));
                        doc.set("period", Json::from(u64::from(*period)));
                    }
                }
                doc
            })),
        ),
        (
            "endpoints",
            Json::arr(endpoints.iter().map(|&e| Json::from(e))),
        ),
    ])
}

fn dec_faults(doc: &Json, path: &str) -> Result<FaultSet, CodecError> {
    check_fields(doc, &["routers", "links", "endpoints"], path)?;
    let mut faults = FaultSet::new();
    let routers_path = format!("{path}.routers");
    for (i, r) in dec_arr(get(doc, "routers", path)?, &routers_path)?
        .iter()
        .enumerate()
    {
        let rp = format!("{routers_path}[{i}]");
        let pair = dec_arr(r, &rp)?;
        if pair.len() != 2 {
            return err(&rp, "expected a [stage, router] pair");
        }
        faults.kill_router(dec_usize(&pair[0], &rp)?, dec_usize(&pair[1], &rp)?);
    }
    let links_path = format!("{path}.links");
    for (i, l) in dec_arr(get(doc, "links", path)?, &links_path)?
        .iter()
        .enumerate()
    {
        let lp = format!("{links_path}[{i}]");
        let kind_path = format!("{lp}.kind");
        let kind = match dec_str(get(l, "kind", &lp)?, &kind_path)? {
            "dead" => {
                check_fields(l, &["stage", "router", "port", "kind"], &lp)?;
                FaultKind::Dead
            }
            "corrupt" => {
                check_fields(l, &["stage", "router", "port", "kind", "xor"], &lp)?;
                FaultKind::CorruptData {
                    xor: dec_u16(get(l, "xor", &lp)?, &format!("{lp}.xor"))?,
                }
            }
            "intermittent" => {
                check_fields(
                    l,
                    &["stage", "router", "port", "kind", "xor", "period"],
                    &lp,
                )?;
                FaultKind::Intermittent {
                    xor: dec_u16(get(l, "xor", &lp)?, &format!("{lp}.xor"))?,
                    period: dec_u64(get(l, "period", &lp)?, &format!("{lp}.period"))? as u32,
                }
            }
            other => return err(&kind_path, format!("unknown link fault kind {other:?}")),
        };
        faults.break_link(
            LinkId::new(
                dec_usize(get(l, "stage", &lp)?, &format!("{lp}.stage"))?,
                dec_usize(get(l, "router", &lp)?, &format!("{lp}.router"))?,
                dec_usize(get(l, "port", &lp)?, &format!("{lp}.port"))?,
            ),
            kind,
        );
    }
    let eps_path = format!("{path}.endpoints");
    for (i, e) in dec_arr(get(doc, "endpoints", path)?, &eps_path)?
        .iter()
        .enumerate()
    {
        faults.kill_endpoint(dec_usize(e, &format!("{eps_path}[{i}]"))?);
    }
    Ok(faults)
}

fn enc_repairs(repairs: &RepairSet) -> Json {
    // Vec order is preserved verbatim — unlike `FaultSet`'s hash
    // containers, a `RepairSet` is already deterministic, so the
    // author's order is the canonical order.
    Json::obj([
        (
            "links",
            Json::arr(repairs.links.iter().map(|l| {
                Json::obj([
                    ("stage", Json::from(l.stage)),
                    ("router", Json::from(l.router)),
                    ("port", Json::from(l.port)),
                ])
            })),
        ),
        (
            "routers",
            Json::arr(
                repairs
                    .routers
                    .iter()
                    .map(|&(s, r)| Json::arr([Json::from(s), Json::from(r)])),
            ),
        ),
        (
            "endpoints",
            Json::arr(repairs.endpoints.iter().map(|&e| Json::from(e))),
        ),
    ])
}

fn dec_repairs(doc: &Json, path: &str) -> Result<RepairSet, CodecError> {
    check_fields(doc, &["links", "routers", "endpoints"], path)?;
    let mut repairs = RepairSet::default();
    let links_path = format!("{path}.links");
    for (i, l) in dec_arr(get(doc, "links", path)?, &links_path)?
        .iter()
        .enumerate()
    {
        let lp = format!("{links_path}[{i}]");
        check_fields(l, &["stage", "router", "port"], &lp)?;
        repairs.links.push(LinkId::new(
            dec_usize(get(l, "stage", &lp)?, &format!("{lp}.stage"))?,
            dec_usize(get(l, "router", &lp)?, &format!("{lp}.router"))?,
            dec_usize(get(l, "port", &lp)?, &format!("{lp}.port"))?,
        ));
    }
    let routers_path = format!("{path}.routers");
    for (i, r) in dec_arr(get(doc, "routers", path)?, &routers_path)?
        .iter()
        .enumerate()
    {
        let rp = format!("{routers_path}[{i}]");
        let pair = dec_arr(r, &rp)?;
        if pair.len() != 2 {
            return err(&rp, "expected a [stage, router] pair");
        }
        repairs
            .routers
            .push((dec_usize(&pair[0], &rp)?, dec_usize(&pair[1], &rp)?));
    }
    let eps_path = format!("{path}.endpoints");
    for (i, e) in dec_arr(get(doc, "endpoints", path)?, &eps_path)?
        .iter()
        .enumerate()
    {
        repairs
            .endpoints
            .push(dec_usize(e, &format!("{eps_path}[{i}]"))?);
    }
    Ok(repairs)
}

// ---------------------------------------------------------------------------
// Traffic / workload
// ---------------------------------------------------------------------------

fn enc_pattern(pattern: &TrafficPattern) -> Json {
    match pattern {
        TrafficPattern::Uniform => Json::obj([("kind", Json::from("uniform"))]),
        TrafficPattern::Hotspot { target, percent } => Json::obj([
            ("kind", Json::from("hotspot")),
            ("target", Json::from(*target)),
            ("percent", Json::from(*percent)),
        ]),
        TrafficPattern::Transpose => Json::obj([("kind", Json::from("transpose"))]),
        TrafficPattern::BitReversal => Json::obj([("kind", Json::from("bit_reversal"))]),
        TrafficPattern::Permutation(perm) => Json::obj([
            ("kind", Json::from("permutation")),
            ("perm", Json::arr(perm.iter().map(|&d| Json::from(d)))),
        ]),
    }
}

fn dec_pattern(doc: &Json, path: &str) -> Result<TrafficPattern, CodecError> {
    let kind_path = format!("{path}.kind");
    match dec_str(get(doc, "kind", path)?, &kind_path)? {
        "uniform" => {
            check_fields(doc, &["kind"], path)?;
            Ok(TrafficPattern::Uniform)
        }
        "hotspot" => {
            check_fields(doc, &["kind", "target", "percent"], path)?;
            Ok(TrafficPattern::Hotspot {
                target: dec_usize(get(doc, "target", path)?, &format!("{path}.target"))?,
                percent: dec_usize(get(doc, "percent", path)?, &format!("{path}.percent"))?,
            })
        }
        "transpose" => {
            check_fields(doc, &["kind"], path)?;
            Ok(TrafficPattern::Transpose)
        }
        "bit_reversal" => {
            check_fields(doc, &["kind"], path)?;
            Ok(TrafficPattern::BitReversal)
        }
        "permutation" => {
            check_fields(doc, &["kind", "perm"], path)?;
            let perm_path = format!("{path}.perm");
            let items = dec_arr(get(doc, "perm", path)?, &perm_path)?;
            let mut perm = Vec::with_capacity(items.len());
            for (i, d) in items.iter().enumerate() {
                perm.push(dec_usize(d, &format!("{perm_path}[{i}]"))?);
            }
            Ok(TrafficPattern::Permutation(perm))
        }
        other => err(&kind_path, format!("unknown traffic pattern {other:?}")),
    }
}

fn enc_arrival(arrival: &ArrivalProcess) -> Json {
    match arrival {
        ArrivalProcess::Bernoulli => Json::obj([("kind", Json::from("bernoulli"))]),
        ArrivalProcess::OnOff {
            burst_mean,
            idle_mean,
        } => Json::obj([
            ("kind", Json::from("on_off")),
            ("burst_mean", Json::from(*burst_mean)),
            ("idle_mean", Json::from(*idle_mean)),
        ]),
        ArrivalProcess::Trace(entries) => Json::obj([
            ("kind", Json::from("trace")),
            (
                "entries",
                Json::arr(entries.iter().map(|e| {
                    Json::obj([
                        ("at", Json::from(e.at)),
                        ("src", Json::from(e.src)),
                        ("dest", Json::from(e.dest)),
                        ("payload_words", Json::from(e.payload_words)),
                    ])
                })),
            ),
        ]),
    }
}

fn dec_arrival(doc: &Json, path: &str) -> Result<ArrivalProcess, CodecError> {
    let kind_path = format!("{path}.kind");
    match dec_str(get(doc, "kind", path)?, &kind_path)? {
        "bernoulli" => {
            check_fields(doc, &["kind"], path)?;
            Ok(ArrivalProcess::Bernoulli)
        }
        "on_off" => {
            check_fields(doc, &["kind", "burst_mean", "idle_mean"], path)?;
            Ok(ArrivalProcess::OnOff {
                burst_mean: dec_u64(get(doc, "burst_mean", path)?, &format!("{path}.burst_mean"))?,
                idle_mean: dec_u64(get(doc, "idle_mean", path)?, &format!("{path}.idle_mean"))?,
            })
        }
        "trace" => {
            check_fields(doc, &["kind", "entries"], path)?;
            let entries_path = format!("{path}.entries");
            let items = dec_arr(get(doc, "entries", path)?, &entries_path)?;
            let mut entries = Vec::with_capacity(items.len());
            for (i, e) in items.iter().enumerate() {
                let ep = format!("{entries_path}[{i}]");
                check_fields(e, &["at", "src", "dest", "payload_words"], &ep)?;
                entries.push(TraceEntry {
                    at: dec_u64(get(e, "at", &ep)?, &format!("{ep}.at"))?,
                    src: dec_usize(get(e, "src", &ep)?, &format!("{ep}.src"))?,
                    dest: dec_usize(get(e, "dest", &ep)?, &format!("{ep}.dest"))?,
                    payload_words: dec_usize(
                        get(e, "payload_words", &ep)?,
                        &format!("{ep}.payload_words"),
                    )?,
                });
            }
            Ok(ArrivalProcess::Trace(entries))
        }
        other => err(&kind_path, format!("unknown arrival process {other:?}")),
    }
}

fn enc_workload(workload: &WorkloadSpec) -> Json {
    match workload {
        WorkloadSpec::Load {
            pattern,
            arrival,
            rates,
            load,
            payload_words,
            warmup,
            measure,
            drain,
        } => {
            let mut fields = vec![
                ("kind", Json::from("load")),
                ("pattern", enc_pattern(pattern)),
            ];
            // Conditional emission keeps schema-1 corpus files (and
            // their scenario_hash) byte-stable: the defaults are never
            // written out.
            if *arrival != ArrivalProcess::Bernoulli {
                fields.push(("arrival", enc_arrival(arrival)));
            }
            if let RateMap::PerEndpoint(rates) = rates {
                fields.push(("rates", Json::arr(rates.iter().map(|&r| Json::from(r)))));
            }
            fields.extend([
                ("load", Json::from(*load)),
                ("payload_words", Json::from(*payload_words)),
                ("warmup", Json::from(*warmup)),
                ("measure", Json::from(*measure)),
                ("drain", Json::from(*drain)),
            ]);
            Json::obj(fields)
        }
        WorkloadSpec::Sends { sends, cycles } => Json::obj([
            ("kind", Json::from("sends")),
            ("cycles", Json::from(*cycles)),
            (
                "sends",
                Json::arr(sends.iter().map(|s| {
                    Json::obj([
                        ("at", Json::from(s.at)),
                        ("src", Json::from(s.src)),
                        ("dest", Json::from(s.dest)),
                        (
                            "payload",
                            Json::arr(s.payload.iter().map(|&w| Json::from(u64::from(w)))),
                        ),
                    ])
                })),
            ),
        ]),
    }
}

fn dec_workload(
    doc: &Json,
    path: &str,
    endpoints: usize,
    schema: u64,
) -> Result<WorkloadSpec, CodecError> {
    let kind_path = format!("{path}.kind");
    match dec_str(get(doc, "kind", path)?, &kind_path)? {
        "load" => {
            check_fields(
                doc,
                &[
                    "kind",
                    "pattern",
                    "arrival",
                    "rates",
                    "load",
                    "payload_words",
                    "warmup",
                    "measure",
                    "drain",
                ],
                path,
            )?;
            // Schema gate: the workload-subsystem fields only exist
            // from schema 2 — a schema-1 document carrying them is
            // mislabelled, not merely old.
            if schema < 2 {
                for key in ["arrival", "rates"] {
                    if doc.get(key).is_some() {
                        return err(
                            &format!("{path}.{key}"),
                            format!(
                                "field {key:?} requires scenario schema 2 \
                                 (document declares {schema})"
                            ),
                        );
                    }
                }
            }
            let arrival = match doc.get("arrival") {
                Some(a) => dec_arrival(a, &format!("{path}.arrival"))?,
                None => ArrivalProcess::Bernoulli,
            };
            let rates = match doc.get("rates") {
                Some(r) => {
                    let rates_path = format!("{path}.rates");
                    let items = dec_arr(r, &rates_path)?;
                    let mut rates = Vec::with_capacity(items.len());
                    for (i, v) in items.iter().enumerate() {
                        rates.push(dec_f64(v, &format!("{rates_path}[{i}]"))?);
                    }
                    RateMap::PerEndpoint(rates)
                }
                None => RateMap::Uniform,
            };
            let spec = WorkloadSpec::Load {
                pattern: dec_pattern(get(doc, "pattern", path)?, &format!("{path}.pattern"))?,
                arrival,
                rates,
                load: dec_f64(get(doc, "load", path)?, &format!("{path}.load"))?,
                payload_words: dec_usize(
                    get(doc, "payload_words", path)?,
                    &format!("{path}.payload_words"),
                )?,
                warmup: dec_u64(get(doc, "warmup", path)?, &format!("{path}.warmup"))?,
                measure: dec_u64(get(doc, "measure", path)?, &format!("{path}.measure"))?,
                drain: dec_u64(get(doc, "drain", path)?, &format!("{path}.drain"))?,
            };
            // Shape validation against the document's own topology:
            // out-of-range hotspots/permutation entries, self-targeting
            // traces, malformed rate maps, and transpose/bit-reversal
            // on non-power-of-two endpoint counts are decode errors,
            // not latent run-time mis-mappings.
            if let Err(e) = spec.validate(endpoints) {
                return err(path, e.to_string());
            }
            Ok(spec)
        }
        "sends" => {
            check_fields(doc, &["kind", "cycles", "sends"], path)?;
            let sends_path = format!("{path}.sends");
            let items = dec_arr(get(doc, "sends", path)?, &sends_path)?;
            let mut sends = Vec::with_capacity(items.len());
            for (i, s) in items.iter().enumerate() {
                let sp = format!("{sends_path}[{i}]");
                check_fields(s, &["at", "src", "dest", "payload"], &sp)?;
                let payload_path = format!("{sp}.payload");
                let words = dec_arr(get(s, "payload", &sp)?, &payload_path)?;
                let mut payload = Vec::with_capacity(words.len());
                for (j, w) in words.iter().enumerate() {
                    payload.push(dec_u16(w, &format!("{payload_path}[{j}]"))?);
                }
                sends.push(SendSpec {
                    at: dec_u64(get(s, "at", &sp)?, &format!("{sp}.at"))?,
                    src: dec_usize(get(s, "src", &sp)?, &format!("{sp}.src"))?,
                    dest: dec_usize(get(s, "dest", &sp)?, &format!("{sp}.dest"))?,
                    payload,
                });
            }
            Ok(WorkloadSpec::Sends {
                sends,
                cycles: dec_u64(get(doc, "cycles", path)?, &format!("{path}.cycles"))?,
            })
        }
        other => err(&kind_path, format!("unknown workload kind {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------------

/// Encodes a scenario as a schema-versioned JSON document. Key order
/// and fault ordering are fixed, so equal scenarios render
/// byte-identically.
#[must_use]
pub fn encode(scenario: &Scenario) -> Json {
    Json::obj([
        ("scenario_schema", Json::from(schema_for(scenario))),
        ("name", Json::from(scenario.name.as_str())),
        ("topology", enc_topology(&scenario.topology)),
        ("sim", enc_sim(&scenario.sim)),
        ("seed", enc_seed(scenario.seed)),
        ("faults", enc_faults(&scenario.faults)),
        (
            "injections",
            Json::arr(scenario.injections.iter().map(|i| {
                let mut doc =
                    Json::obj([("at", Json::from(i.at)), ("faults", enc_faults(&i.faults))]);
                // Emitted only when present, so pre-repair corpus
                // files stay byte-canonical under re-encoding.
                if !i.repairs.is_empty() {
                    doc.set("repairs", enc_repairs(&i.repairs));
                }
                doc
            })),
        ),
        ("workload", enc_workload(&scenario.workload)),
    ])
}

/// Decodes a scenario document, rejecting unknown fields and schema
/// versions outside `1..=`[`SCENARIO_SCHEMA`]. Older in-range versions
/// decode with their era's defaults (schema 1: Bernoulli arrivals,
/// uniform rates), so every pre-bump corpus file parses to an identical
/// in-memory scenario.
///
/// # Errors
///
/// Returns a [`CodecError`] naming the offending field.
pub fn decode(doc: &Json) -> Result<Scenario, CodecError> {
    check_fields(
        doc,
        &[
            "scenario_schema",
            "name",
            "topology",
            "sim",
            "seed",
            "faults",
            "injections",
            "workload",
        ],
        "scenario",
    )?;
    let schema = dec_u64(
        get(doc, "scenario_schema", "scenario")?,
        "scenario.scenario_schema",
    )?;
    if schema == 0 || schema > SCENARIO_SCHEMA {
        return err(
            "scenario.scenario_schema",
            format!("unsupported schema version {schema} (this build reads 1..={SCENARIO_SCHEMA})"),
        );
    }
    let injections_path = "scenario.injections";
    let mut injections = Vec::new();
    for (i, inj) in dec_arr(get(doc, "injections", "scenario")?, injections_path)?
        .iter()
        .enumerate()
    {
        let ip = format!("{injections_path}[{i}]");
        check_fields(inj, &["at", "faults", "repairs"], &ip)?;
        injections.push(FaultInjection {
            at: dec_u64(get(inj, "at", &ip)?, &format!("{ip}.at"))?,
            faults: dec_faults(get(inj, "faults", &ip)?, &format!("{ip}.faults"))?,
            // Absent in pre-repair scenario files (back-compat).
            repairs: match inj.get("repairs") {
                Some(r) => dec_repairs(r, &format!("{ip}.repairs"))?,
                None => RepairSet::default(),
            },
        });
    }
    // Topology decodes first: the workload decoder validates patterns,
    // rate maps, and trace entries against the endpoint count.
    let topology = dec_topology(get(doc, "topology", "scenario")?, "scenario.topology")?;
    let workload = dec_workload(
        get(doc, "workload", "scenario")?,
        "scenario.workload",
        topology.endpoints,
        schema,
    )?;
    Ok(Scenario {
        name: dec_str(get(doc, "name", "scenario")?, "scenario.name")?.to_string(),
        topology,
        sim: dec_sim(get(doc, "sim", "scenario")?, "scenario.sim")?,
        seed: dec_seed(get(doc, "seed", "scenario")?, "scenario.seed")?,
        faults: dec_faults(get(doc, "faults", "scenario")?, "scenario.faults")?,
        injections,
        workload,
    })
}

/// Parses and decodes a scenario from JSON text.
///
/// # Errors
///
/// Returns the JSON parse diagnostic or the decode error as a string.
pub fn from_text(text: &str) -> Result<Scenario, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    decode(&doc).map_err(|e| e.to_string())
}

/// The canonical hash of a scenario — `"0x"` + 16 hex digits of the
/// FNV-1a digest of the compact-rendered encoding. This is what the
/// results manifest records as `scenario_hash`.
#[must_use]
pub fn scenario_hash(scenario: &Scenario) -> String {
    format!("{:#018x}", encode(scenario).canonical_hash())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::run_scenario;

    fn rich_scenario() -> Scenario {
        let mut faults = FaultSet::new();
        faults.kill_router(0, 3);
        faults.kill_router(0, 1);
        faults.break_link(LinkId::new(1, 2, 0), FaultKind::CorruptData { xor: 0x40 });
        faults.break_link(LinkId::new(0, 0, 1), FaultKind::Dead);
        faults.break_link(
            LinkId::new(2, 1, 1),
            FaultKind::Intermittent { xor: 1, period: 4 },
        );
        faults.kill_endpoint(5);
        let mut inj = FaultSet::new();
        inj.kill_router(1, 0);
        Scenario {
            name: "rich".to_string(),
            topology: MultibutterflySpec::figure1(),
            sim: SimConfig {
                header_words: 1,
                wire_delay: 1,
                stage_wire_delays: Some(vec![0, 1, 0, 2]),
                selection: SelectionPolicy::RoundRobin,
                engine: EngineKind::Reference,
                seed: 0xDEAD_BEEF_DEAD_BEEF,
                endpoint: EndpointConfig {
                    reply: ReplyPolicy::ReadReply {
                        latency: 4,
                        words: 2,
                    },
                    max_retries: 7,
                    ..EndpointConfig::default()
                },
                ..SimConfig::default()
            },
            seed: u64::MAX,
            faults,
            injections: vec![FaultInjection {
                at: 250,
                faults: inj,
                repairs: RepairSet::default(),
            }],
            workload: WorkloadSpec::Load {
                pattern: TrafficPattern::Hotspot {
                    target: 0,
                    percent: 30,
                },
                arrival: ArrivalProcess::Bernoulli,
                rates: RateMap::Uniform,
                load: 0.35,
                payload_words: 19,
                warmup: 100,
                measure: 400,
                drain: 200,
            },
        }
    }

    #[test]
    fn rich_scenario_round_trips_exactly() {
        let s = rich_scenario();
        let doc = encode(&s);
        assert_eq!(decode(&doc).unwrap(), s);
        // Byte stability: parse → encode → render must reproduce the
        // original rendering exactly.
        let text = doc.render();
        let reparsed = from_text(&text).unwrap();
        assert_eq!(encode(&reparsed).render(), text);
    }

    #[test]
    fn sends_workload_round_trips() {
        let s = Scenario::scripted(
            "sends",
            MultibutterflySpec::small8(),
            vec![SendSpec {
                at: 3,
                src: 0,
                dest: 7,
                payload: vec![0, 65_535, 128],
            }],
            900,
        );
        assert_eq!(decode(&encode(&s)).unwrap(), s);
    }

    #[test]
    fn seeds_survive_beyond_f64_precision() {
        // 2^53 + 1 is the first integer f64 cannot represent; u64::MAX
        // is far beyond. Hex-string seeds must carry both exactly.
        for seed in [(1u64 << 53) + 1, u64::MAX, 0, 0xC0FFEE] {
            let mut s = rich_scenario();
            s.seed = seed;
            s.sim.seed = seed ^ 0x1234;
            s.topology.seed = seed.rotate_left(17);
            let back = decode(&encode(&s)).unwrap();
            assert_eq!(back.seed, seed);
            assert_eq!(back.sim.seed, seed ^ 0x1234);
            assert_eq!(back.topology.seed, seed.rotate_left(17));
        }
    }

    #[test]
    fn unknown_fields_are_rejected_at_every_level() {
        let s = rich_scenario();
        // Top level.
        let mut doc = encode(&s);
        doc.set("surprise", Json::from(1u64));
        assert!(decode(&doc).unwrap_err().message.contains("surprise"));
        // Nested: sim.
        let mut doc = encode(&s);
        let sim = doc.get("sim").unwrap().clone();
        let mut sim = sim;
        sim.set("turbo", Json::from(true));
        doc.set("sim", sim);
        let e = decode(&doc).unwrap_err();
        assert!(e.path.contains("sim") && e.message.contains("turbo"), "{e}");
        // Nested: a send entry.
        let s2 = Scenario::scripted(
            "x",
            MultibutterflySpec::small8(),
            vec![SendSpec {
                at: 0,
                src: 0,
                dest: 1,
                payload: vec![],
            }],
            100,
        );
        let mut doc = encode(&s2);
        let mut wl = doc.get("workload").unwrap().clone();
        let mut send0 = wl.get("sends").unwrap().as_arr().unwrap()[0].clone();
        send0.set("priority", Json::from(9u64));
        wl.set("sends", Json::arr([send0]));
        doc.set("workload", wl);
        assert!(decode(&doc).is_err());
    }

    #[test]
    fn repair_events_round_trip_and_stay_back_compatible() {
        let mut s = rich_scenario();
        s.injections[0].repairs = RepairSet {
            links: vec![LinkId::new(1, 2, 0), LinkId::new(0, 0, 1)],
            routers: vec![(0, 3)],
            endpoints: vec![5],
        };
        let doc = encode(&s);
        assert_eq!(decode(&doc).unwrap(), s);
        // Byte stability with repairs present.
        let text = doc.render();
        assert_eq!(encode(&from_text(&text).unwrap()).render(), text);

        // Back-compat: a pre-repair document (no "repairs" key) decodes
        // to an empty repair set, and re-encodes without the key —
        // existing corpus files keep their canonical bytes.
        let old = rich_scenario();
        let old_doc = encode(&old);
        assert!(old_doc.render().find("repairs").is_none());
        assert!(decode(&old_doc).unwrap().injections[0].repairs.is_empty());

        // Unknown fields inside a repair entry still fail loudly.
        let mut doc = encode(&s);
        let mut injections = doc.get("injections").unwrap().as_arr().unwrap().to_vec();
        let mut repairs = injections[0].get("repairs").unwrap().clone();
        repairs.set("surprise", Json::from(1u64));
        injections[0].set("repairs", repairs);
        doc.set("injections", Json::arr(injections));
        let e = decode(&doc).unwrap_err();
        assert_eq!(e.path, "scenario.injections[0].repairs");
        assert!(e.message.contains("surprise"));
    }

    #[test]
    fn shards_round_trip_and_stay_back_compatible() {
        // Non-default shard counts survive the round trip (including
        // 0 = host auto) and render byte-stably.
        for shards in [2usize, 4, 0] {
            let mut s = rich_scenario();
            s.sim.shards = shards;
            let doc = encode(&s);
            assert_eq!(decode(&doc).unwrap(), s, "shards={shards}");
            let text = doc.render();
            assert_eq!(encode(&from_text(&text).unwrap()).render(), text);
        }

        // Back-compat: the default (1, single-threaded) is never
        // written out, so pre-sharding corpus files keep their
        // canonical bytes, and a document without the key decodes to
        // shards = 1.
        let old = rich_scenario();
        assert_eq!(old.sim.shards, 1);
        let old_doc = encode(&old);
        assert!(old_doc.render().find("shards").is_none());
        assert_eq!(decode(&old_doc).unwrap().sim.shards, 1);
    }

    #[test]
    fn every_engine_name_round_trips_byte_stably() {
        // The codec and EngineKind::{name, from_name} must agree on one
        // spelling per kind — including "analytic", which decodes here
        // even though cycle-accurate contexts reject it later.
        for kind in EngineKind::ALL {
            let mut s = rich_scenario();
            s.sim.engine = kind;
            let doc = encode(&s);
            let text = doc.render();
            assert!(text.contains(&format!("\"engine\": \"{}\"", kind.name())));
            assert_eq!(decode(&doc).unwrap().sim.engine, kind);
            assert_eq!(encode(&from_text(&text).unwrap()).render(), text);
        }

        // A name outside the canonical set names its path in the error.
        let mut doc = encode(&rich_scenario());
        let mut sim = doc.get("sim").unwrap().clone();
        sim.set("engine", Json::from("warp"));
        doc.set("sim", sim);
        let e = decode(&doc).unwrap_err();
        assert_eq!(e.path, "scenario.sim.engine");
        assert!(e.message.contains("warp"), "{e}");
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut doc = encode(&rich_scenario());
        doc.set("scenario_schema", Json::from(3u64));
        let e = decode(&doc).unwrap_err();
        assert!(e.message.contains("unsupported schema version"), "{e}");
        doc.set("scenario_schema", Json::from(0u64));
        assert!(decode(&doc).is_err());
        // And a missing version is equally fatal.
        let Json::Obj(pairs) = &mut doc else {
            unreachable!()
        };
        pairs.retain(|(k, _)| k != "scenario_schema");
        assert!(decode(&doc).is_err());
    }

    #[test]
    fn legacy_workloads_still_encode_as_schema_one() {
        // A scenario using only schema-1 features must keep its
        // pre-bump bytes — and therefore its scenario_hash — so the
        // corpus and every recorded manifest entry survive the bump.
        let s = rich_scenario();
        let text = encode(&s).render();
        assert!(text.contains("\"scenario_schema\": 1"), "{text}");
        assert!(!text.contains("arrival"), "{text}");
        assert!(!text.contains("rates"), "{text}");
        // New workload features push the document to schema 2.
        let mut bursty = rich_scenario();
        let WorkloadSpec::Load { arrival, .. } = &mut bursty.workload else {
            unreachable!()
        };
        *arrival = ArrivalProcess::OnOff {
            burst_mean: 60,
            idle_mean: 120,
        };
        let text = encode(&bursty).render();
        assert!(text.contains("\"scenario_schema\": 2"), "{text}");
        assert!(text.contains("\"arrival\""), "{text}");
    }

    #[test]
    fn schema_one_fixture_decodes_to_the_same_scenario() {
        // A verbatim pre-bump document (schema 1, no workload-subsystem
        // fields). Decoding must produce exactly the scenario the old
        // build produced — pinned by hash equality against the
        // in-memory construction.
        let fixture = r#"{
            "scenario_schema": 1,
            "name": "legacy",
            "topology": {
                "endpoints": 16, "endpoint_ports": 2,
                "stages": [
                    {"forward_ports": 4, "backward_ports": 4, "dilation": 2},
                    {"forward_ports": 4, "backward_ports": 4, "dilation": 2},
                    {"forward_ports": 4, "backward_ports": 4, "dilation": 1}
                ],
                "wiring": "randomized", "seed": "0x10"
            },
            "sim": {
                "width": 8, "header_words": 0, "pipestages": 1,
                "wire_delay": 0, "stage_wire_delays": null,
                "fast_reclaim": true, "selection": "random",
                "endpoint": {
                    "reply": {"kind": "ack"}, "timeout": 600,
                    "open_timeout": 32, "retry_backoff_max": 3,
                    "max_retries": 0, "max_concurrent": 1,
                    "capture_failure_records": false
                },
                "seed": "0x7ea1", "engine": "flat", "telemetry_every": 1
            },
            "seed": "0x5eed",
            "faults": {"routers": [], "links": [], "endpoints": []},
            "injections": [],
            "workload": {
                "kind": "load",
                "pattern": {"kind": "uniform"},
                "load": 0.25, "payload_words": 19,
                "warmup": 100, "measure": 400, "drain": 200
            }
        }"#;
        let decoded = from_text(fixture).unwrap();
        let expected = Scenario {
            name: "legacy".to_string(),
            topology: MultibutterflySpec::figure1().with_seed(0x10),
            sim: SimConfig {
                seed: 0x7EA1,
                ..SimConfig::default()
            },
            seed: 0x5EED,
            faults: FaultSet::new(),
            injections: Vec::new(),
            workload: WorkloadSpec::Load {
                pattern: TrafficPattern::Uniform,
                arrival: ArrivalProcess::Bernoulli,
                rates: RateMap::Uniform,
                load: 0.25,
                payload_words: 19,
                warmup: 100,
                measure: 400,
                drain: 200,
            },
        };
        assert_eq!(decoded, expected);
        assert_eq!(scenario_hash(&decoded), scenario_hash(&expected));
        // Re-encoding a schema-1 document must not rewrite it to
        // schema 2.
        assert!(encode(&decoded).render().contains("\"scenario_schema\": 1"));
    }

    #[test]
    fn schema_one_documents_cannot_smuggle_workload_fields() {
        // arrival/rates on a document that declares schema 1 is a
        // mislabelled file, not a back-compat case.
        let mut s = rich_scenario();
        let WorkloadSpec::Load { arrival, .. } = &mut s.workload else {
            unreachable!()
        };
        *arrival = ArrivalProcess::OnOff {
            burst_mean: 10,
            idle_mean: 10,
        };
        let mut doc = encode(&s);
        doc.set("scenario_schema", Json::from(1u64));
        let e = decode(&doc).unwrap_err();
        assert_eq!(e.path, "scenario.workload.arrival");
        assert!(e.message.contains("requires scenario schema 2"), "{e}");
    }

    #[test]
    fn new_workload_variants_round_trip_byte_stably() {
        let mut s = rich_scenario();
        s.workload = WorkloadSpec::Load {
            pattern: TrafficPattern::Uniform,
            arrival: ArrivalProcess::OnOff {
                burst_mean: 60,
                idle_mean: 120,
            },
            rates: RateMap::PerEndpoint((0..16).map(|e| 0.5 + e as f64 / 16.0).collect()),
            load: 0.2,
            payload_words: 19,
            warmup: 100,
            measure: 400,
            drain: 200,
        };
        let doc = encode(&s);
        assert_eq!(decode(&doc).unwrap(), s);
        let text = doc.render();
        assert_eq!(encode(&from_text(&text).unwrap()).render(), text);

        let mut t = rich_scenario();
        t.workload = WorkloadSpec::Load {
            pattern: TrafficPattern::Uniform,
            arrival: ArrivalProcess::Trace(vec![
                TraceEntry {
                    at: 5,
                    src: 0,
                    dest: 9,
                    payload_words: 3,
                },
                TraceEntry {
                    at: 250,
                    src: 9,
                    dest: 1,
                    payload_words: 19,
                },
            ]),
            rates: RateMap::Uniform,
            load: 0.2,
            payload_words: 19,
            warmup: 50,
            measure: 500,
            drain: 200,
        };
        let doc = encode(&t);
        assert_eq!(decode(&doc).unwrap(), t);
        let text = doc.render();
        assert_eq!(encode(&from_text(&text).unwrap()).render(), text);
    }

    #[test]
    fn unknown_workload_and_arrival_kinds_name_their_path() {
        let mut doc = encode(&rich_scenario());
        let mut wl = doc.get("workload").unwrap().clone();
        wl.set("kind", Json::from("flood"));
        doc.set("workload", wl);
        let e = decode(&doc).unwrap_err();
        assert_eq!(e.path, "scenario.workload.kind");
        assert!(e.message.contains("flood"), "{e}");

        let mut s = rich_scenario();
        let WorkloadSpec::Load { arrival, .. } = &mut s.workload else {
            unreachable!()
        };
        *arrival = ArrivalProcess::OnOff {
            burst_mean: 10,
            idle_mean: 10,
        };
        let mut doc = encode(&s);
        let mut wl = doc.get("workload").unwrap().clone();
        let mut arr = wl.get("arrival").unwrap().clone();
        arr.set("kind", Json::from("poisson"));
        wl.set("arrival", arr);
        doc.set("workload", wl);
        let e = decode(&doc).unwrap_err();
        assert_eq!(e.path, "scenario.workload.arrival.kind");
        assert!(e.message.contains("poisson"), "{e}");
    }

    #[test]
    fn malformed_workload_shapes_are_decode_errors() {
        // Out-of-range permutation entry.
        let mut s = rich_scenario();
        let n = s.topology.endpoints;
        let mut perm: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
        let WorkloadSpec::Load { pattern, .. } = &mut s.workload else {
            unreachable!()
        };
        perm[3] = n + 5;
        *pattern = TrafficPattern::Permutation(perm.clone());
        let e = decode(&encode(&s)).unwrap_err();
        assert_eq!(e.path, "scenario.workload");
        assert!(e.message.contains("outside"), "{e}");
        // Self-targeting permutation entry.
        perm[3] = 3;
        let WorkloadSpec::Load { pattern, .. } = &mut s.workload else {
            unreachable!()
        };
        *pattern = TrafficPattern::Permutation(perm);
        let e = decode(&encode(&s)).unwrap_err();
        assert!(e.message.contains("itself"), "{e}");
        // Self-targeting trace entry.
        let mut t = rich_scenario();
        let WorkloadSpec::Load { arrival, .. } = &mut t.workload else {
            unreachable!()
        };
        *arrival = ArrivalProcess::Trace(vec![TraceEntry {
            at: 0,
            src: 2,
            dest: 2,
            payload_words: 1,
        }]);
        let e = decode(&encode(&t)).unwrap_err();
        assert!(e.message.contains("itself"), "{e}");
        // Rate map of the wrong length.
        let mut r = rich_scenario();
        let WorkloadSpec::Load { rates, .. } = &mut r.workload else {
            unreachable!()
        };
        *rates = RateMap::PerEndpoint(vec![1.0; 3]);
        let e = decode(&encode(&r)).unwrap_err();
        assert!(e.message.contains("entries"), "{e}");
    }

    #[test]
    fn malformed_fields_name_their_path() {
        let mut doc = encode(&rich_scenario());
        let mut topo = doc.get("topology").unwrap().clone();
        topo.set("wiring", Json::from("spaghetti"));
        doc.set("topology", topo);
        let e = decode(&doc).unwrap_err();
        assert_eq!(e.path, "scenario.topology.wiring");
    }

    #[test]
    fn decoded_scenario_runs_identically_to_the_original() {
        let mut s = rich_scenario();
        // Keep the run short and fault-light for test speed.
        s.faults = FaultSet::new();
        s.injections.clear();
        let back = decode(&encode(&s)).unwrap();
        let a = run_scenario(&s).unwrap();
        let b = run_scenario(&back).unwrap();
        assert_eq!(a, b, "serialization must not perturb the run");
    }

    #[test]
    fn scenario_hash_is_stable_and_discriminating() {
        let s = rich_scenario();
        assert_eq!(scenario_hash(&s), scenario_hash(&s.clone()));
        let mut t = s.clone();
        t.seed ^= 1;
        assert_ne!(scenario_hash(&s), scenario_hash(&t));
        assert!(scenario_hash(&s).starts_with("0x"));
        assert_eq!(scenario_hash(&s).len(), 18);
    }
}
