//! Declarative scenarios: one typed, serializable value describing an
//! entire simulation run.
//!
//! The paper's evaluation is a space of *configurations* — radix,
//! dilation, stages, fault sets, reclamation policy, traffic pattern
//! (Tables 3–5, Figures 1/3). A [`Scenario`] captures one point of that
//! space end to end: the topology ([`MultibutterflySpec`]), the router
//! and protocol parameters ([`SimConfig`], including the engine kind
//! and the simulator seed), the workload seed, a static [`FaultSet`],
//! timed dynamic [`FaultInjection`]s, and the workload itself
//! ([`WorkloadSpec`]).
//!
//! Scenarios serialize through [`codec`] onto the harness's hand-rolled
//! JSON model (schema-versioned, unknown-field-rejecting, byte-stable),
//! so a checked-in `scenarios/*.json` file, a manifest entry's
//! `scenario_hash`, and a `results/<artifact>.scenario.json` sidecar
//! all name exactly the same run. [`run_scenario`] replays one
//! deterministically; [`fuzz`] generates random scenarios and checks
//! the two tick engines against each other over them.

pub mod codec;
pub mod fuzz;

use crate::experiment::LoadPoint;
use crate::message::MessageOutcome;
use crate::network::{NetworkSim, SimConfig};
use crate::traffic::TrafficPattern;
use crate::workload::{ArrivalProcess, RateMap, WorkloadError};
use metro_harness::Json;
use metro_topo::fault::FaultSet;
use metro_topo::graph::LinkId;
use metro_topo::multibutterfly::MultibutterflySpec;

/// One scheduled message of a scripted workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendSpec {
    /// Cycle at which the message is queued at the source NIC.
    pub at: u64,
    /// Source endpoint.
    pub src: usize,
    /// Destination endpoint.
    pub dest: usize,
    /// Payload data words.
    pub payload: Vec<u16>,
}

/// What traffic the scenario offers.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// Open-loop load: stochastic arrivals at `load` on every endpoint
    /// with destinations drawn from `pattern` — the workload of the
    /// paper's Figure 3 and §6.2 sweeps. All randomness derives from
    /// the scenario's workload seed exactly as
    /// [`crate::experiment::run_load_point`] derives it, so a scenario
    /// at load `l` reproduces the equivalent sweep point bit for bit.
    /// The `arrival` process and per-endpoint `rates` generalize the
    /// historical Bernoulli-at-one-rate workload; with
    /// [`ArrivalProcess::Bernoulli`] and [`RateMap::Uniform`] the
    /// streams are bit-identical to every pre-existing recording.
    Load {
        /// Destination pattern (ignored when `arrival` is a trace).
        pattern: TrafficPattern,
        /// Arrival process at each endpoint.
        arrival: ArrivalProcess,
        /// Per-endpoint offered-load multipliers.
        rates: RateMap,
        /// Offered load (fraction of injection capacity).
        load: f64,
        /// Payload words per message.
        payload_words: usize,
        /// Warmup cycles excluded from statistics.
        warmup: u64,
        /// Measured cycles.
        measure: u64,
        /// Drain period after measurement.
        drain: u64,
    },
    /// A fixed, scripted send schedule — the workload shape of the
    /// golden-equivalence tests and the differential fuzzer.
    Sends {
        /// The scheduled messages (any order; replayed by cycle).
        sends: Vec<SendSpec>,
        /// Total cycles to run.
        cycles: u64,
    },
}

impl WorkloadSpec {
    /// Validates the workload against the topology it will drive:
    /// pattern/endpoint-count fit, rate-map shape, dwell and trace
    /// sanity. Called by [`NetworkSim::from_scenario`] so a malformed
    /// workload is a typed build-time error, never a silently
    /// mis-mapped run.
    ///
    /// # Errors
    ///
    /// See [`WorkloadError`].
    pub fn validate(&self, endpoints: usize) -> Result<(), WorkloadError> {
        if let Self::Load {
            pattern,
            arrival,
            rates,
            ..
        } = self
        {
            pattern.validate(endpoints)?;
            arrival.validate(endpoints)?;
            rates.validate(endpoints)?;
        }
        Ok(())
    }
}

/// Timed repairs riding on a fault injection: the named elements are
/// restored to service at the injection's cycle (after that cycle's
/// new faults merge, so an injection that both breaks and repairs one
/// element repairs it).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairSet {
    /// Links whose fault clears (`FaultSet::repair_link`).
    pub links: Vec<LinkId>,
    /// Routers revived, as `(stage, router)`
    /// (`FaultSet::revive_router`).
    pub routers: Vec<(usize, usize)>,
    /// Endpoints revived (`FaultSet::revive_endpoint`).
    pub endpoints: Vec<usize>,
}

impl RepairSet {
    /// Whether the set names no repairs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.routers.is_empty() && self.endpoints.is_empty()
    }

    /// Applies every repair to the given fault set.
    pub fn apply_to(&self, faults: &mut FaultSet) {
        for &l in &self.links {
            faults.repair_link(l);
        }
        for &(s, r) in &self.routers {
            faults.revive_router(s, r);
        }
        for &e in &self.endpoints {
            faults.revive_endpoint(e);
        }
    }
}

/// A timed dynamic fault injection: at cycle `at`, `faults` merge into
/// the active fault set (cumulatively — earlier injections stay in
/// force) and `repairs` then clear their named elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultInjection {
    /// Cycle at which the faults appear.
    pub at: u64,
    /// The elements that fail at that cycle.
    pub faults: FaultSet,
    /// The elements restored to service at that cycle.
    pub repairs: RepairSet,
}

/// A complete, self-contained description of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable name (results file stem for `metro scenario run`).
    pub name: String,
    /// Network topology.
    pub topology: MultibutterflySpec,
    /// Router/protocol/engine parameters (including the simulator's
    /// master seed).
    pub sim: SimConfig,
    /// Workload seed: traffic pattern and arrival randomness. Separate
    /// from `sim.seed` exactly as [`crate::experiment::SweepConfig`]
    /// separates them.
    pub seed: u64,
    /// Faults present from cycle 0 (masked/static faults).
    pub faults: FaultSet,
    /// Timed dynamic fault injections, applied cumulatively.
    pub injections: Vec<FaultInjection>,
    /// The offered traffic.
    pub workload: WorkloadSpec,
}

impl Scenario {
    /// A minimal scripted scenario on the given topology — a convenient
    /// starting point for tests and hand-written scenario files.
    #[must_use]
    pub fn scripted(
        name: &str,
        topology: MultibutterflySpec,
        sends: Vec<SendSpec>,
        cycles: u64,
    ) -> Self {
        Self {
            name: name.to_string(),
            topology,
            sim: SimConfig::default(),
            seed: 0x5CE0,
            faults: FaultSet::new(),
            injections: Vec::new(),
            workload: WorkloadSpec::Sends { sends, cycles },
        }
    }
}

impl NetworkSim {
    /// Builds the simulator a scenario describes: topology + sim
    /// parameters, with the scenario's static fault set already
    /// applied. Timed injections are the runner's job
    /// ([`run_scenario`]).
    ///
    /// # Errors
    ///
    /// Propagates topology validation errors from [`NetworkSim::new`].
    pub fn from_scenario(scenario: &Scenario) -> Result<Self, Box<dyn std::error::Error>> {
        let mut sim = NetworkSim::new(&scenario.topology, &scenario.sim)?;
        scenario.workload.validate(sim.topology().endpoints())?;
        if !scenario.faults.is_empty() {
            sim.apply_faults(scenario.faults.clone());
        }
        Ok(sim)
    }
}

/// What replaying a scenario produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Every completed message transaction, in completion order.
    pub outcomes: Vec<MessageOutcome>,
    /// Messages delivered (from the statistics window: for `Load`
    /// workloads this counts the measurement window only).
    pub delivered: u64,
    /// Messages abandoned (retry budget exhausted).
    pub abandoned: u64,
    /// The measured load point, for `Load` workloads.
    pub point: Option<LoadPoint>,
    /// Total payload words across all completed transactions.
    pub payload_words: usize,
    /// Whether the fabric was idle when the run ended.
    pub fabric_idle: bool,
    /// Telemetry sync interval the run used (from the scenario's
    /// `sim.telemetry_every`, clamped to at least 1) — recorded so a
    /// result names the cadence its trace/series data was observed at.
    pub telemetry_every: u64,
}

impl ScenarioResult {
    /// A 64-bit FNV-1a digest of the complete outcome stream — a
    /// compact determinism witness: two runs of the same scenario (or
    /// of one scenario on the two engines) produced identical outcome
    /// streams iff their digests match.
    #[must_use]
    pub fn outcome_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut absorb = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for o in &self.outcomes {
            absorb(o.src as u64);
            absorb(o.dest as u64);
            absorb(o.requested_at);
            absorb(o.first_injection_at);
            absorb(o.completed_at);
            absorb(o.retries as u64);
            absorb(o.failures.len() as u64);
            absorb(match o.status {
                crate::message::DeliveryStatus::Delivered => 0,
                crate::message::DeliveryStatus::Undeliverable { attempts } => 1 + attempts as u64,
            });
            absorb(o.payload_words as u64);
            for &w in &o.payload_delivered {
                absorb(u64::from(w));
            }
        }
        h
    }

    /// The machine-readable result summary, suitable for
    /// `results/scenario_<name>.json`. Deterministic: two replays of
    /// one scenario render byte-identical documents.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let point = match &self.point {
            Some(p) => Json::obj([
                ("offered", Json::from(p.offered)),
                ("accepted", Json::from(p.accepted)),
                ("mean_latency", Json::from(p.mean_latency)),
                ("p50_latency", Json::from(p.p50_latency)),
                ("p95_latency", Json::from(p.p95_latency)),
                ("mean_network_latency", Json::from(p.mean_network_latency)),
                ("retries_per_message", Json::from(p.retries_per_message)),
                ("delivered", Json::from(p.delivered)),
            ]),
            None => Json::Null,
        };
        Json::obj([
            ("outcomes", Json::from(self.outcomes.len())),
            ("delivered", Json::from(self.delivered)),
            ("abandoned", Json::from(self.abandoned)),
            ("payload_words", Json::from(self.payload_words)),
            ("fabric_idle", Json::from(self.fabric_idle)),
            ("telemetry_every", Json::from(self.telemetry_every)),
            (
                "outcome_digest",
                Json::from(format!("{:#018x}", self.outcome_digest())),
            ),
            ("point", point),
        ])
    }
}

/// Applies every injection due at or before `now`, cumulatively.
pub(crate) fn apply_due_injections(
    sim: &mut NetworkSim,
    pending: &mut Vec<FaultInjection>,
    active: &mut FaultSet,
    now: u64,
) {
    let mut changed = false;
    while pending.first().is_some_and(|i| i.at <= now) {
        let injection = pending.remove(0);
        active.merge(&injection.faults);
        injection.repairs.apply_to(active);
        changed = true;
    }
    if changed {
        sim.apply_faults(active.clone());
    }
}

/// Replays a scenario deterministically: builds the network via
/// [`NetworkSim::from_scenario`], offers the workload, applies timed
/// injections, and collects the complete outcome stream. Two calls on
/// the same scenario return identical results (asserted in tests) — the
/// reproducibility contract behind `scenarios/*.json` and the manifest's
/// `scenario_hash`.
///
/// A scenario naming [`EngineKind::Analytic`](crate::EngineKind::Analytic)
/// is dispatched to the estimator
/// ([`estimate_scenario`](crate::engine::analytic::estimate_scenario))
/// instead of a cycle-accurate replay; the result has the same shape
/// but is a prediction, not a simulation.
///
/// # Errors
///
/// Propagates topology validation errors.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioResult, Box<dyn std::error::Error>> {
    if scenario.sim.engine == crate::engine::EngineKind::Analytic {
        return crate::engine::analytic::estimate_scenario(scenario);
    }
    run_scenario_with_sim(scenario).map(|(result, _sim)| result)
}

/// [`run_scenario`], but also hands back the finished [`NetworkSim`] so
/// callers can inspect end-of-run state the [`ScenarioResult`] does not
/// carry — telemetry snapshots, fault masks, per-router counters. Used
/// by the shard-differential fuzzer to compare *all* observable state
/// between single-threaded and sharded runs, not just the outcome
/// stream.
///
/// # Errors
///
/// Propagates topology validation errors. Because this entry point
/// must hand back a live [`NetworkSim`], an analytic-engine scenario is
/// rejected with [`crate::engine::NotCycleAccurate`] — use
/// [`run_scenario`], which dispatches it to the estimator.
pub fn run_scenario_with_sim(
    scenario: &Scenario,
) -> Result<(ScenarioResult, NetworkSim), Box<dyn std::error::Error>> {
    // The loop itself lives in the checkpoint module, generalized over
    // a resume position and a periodic checkpoint hook; this entry
    // point is the classic start-from-zero, no-checkpoints case.
    crate::checkpoint::run_scenario_resumable(scenario, None, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metro_topo::fault::FaultKind;
    use metro_topo::graph::LinkId;

    fn scripted_sample() -> Scenario {
        let sends = vec![
            SendSpec {
                at: 0,
                src: 1,
                dest: 6,
                payload: vec![1, 2, 3],
            },
            SendSpec {
                at: 40,
                src: 3,
                dest: 0,
                payload: vec![9],
            },
        ];
        Scenario::scripted("sample", MultibutterflySpec::small8(), sends, 1_200)
    }

    #[test]
    fn from_scenario_applies_static_faults() {
        let mut s = scripted_sample();
        s.faults.kill_router(0, 1);
        let sim = NetworkSim::from_scenario(&s).unwrap();
        assert!(sim.faults().router_dead(0, 1));
    }

    #[test]
    fn scripted_scenario_delivers_and_is_deterministic() {
        let s = scripted_sample();
        let a = run_scenario(&s).unwrap();
        let b = run_scenario(&s).unwrap();
        assert_eq!(a, b, "two replays of one scenario must be identical");
        assert_eq!(a.outcomes.len(), 2);
        assert_eq!(a.outcomes[0].payload_words, 3);
        assert_eq!(a.delivered, 2);
        assert_eq!(a.outcome_digest(), b.outcome_digest());
    }

    #[test]
    fn load_scenario_matches_run_load_point_bitwise() {
        use crate::experiment::{run_load_point, SweepConfig};
        let cfg = SweepConfig {
            warmup: 200,
            measure: 1_000,
            drain: 500,
            ..SweepConfig::small()
        };
        let expect = run_load_point(&cfg, 0.2);
        let s = Scenario {
            name: "load".to_string(),
            topology: cfg.spec.clone(),
            sim: cfg.sim.clone(),
            seed: cfg.seed,
            faults: FaultSet::new(),
            injections: Vec::new(),
            workload: WorkloadSpec::Load {
                pattern: cfg.pattern.clone(),
                arrival: ArrivalProcess::Bernoulli,
                rates: RateMap::Uniform,
                load: 0.2,
                payload_words: cfg.payload_words,
                warmup: cfg.warmup,
                measure: cfg.measure,
                drain: cfg.drain,
            },
        };
        let got = run_scenario(&s).unwrap();
        assert_eq!(
            got.point.as_ref(),
            Some(&expect),
            "a Load scenario must reproduce the sweep point it describes"
        );
    }

    #[test]
    fn timed_injection_forces_retries() {
        // Corrupt every delivery link of the destination mid-run; the
        // injected fault must be visible in the outcome (retries > 0 or
        // corrupt failures recorded).
        let mut s = scripted_sample();
        s.workload = WorkloadSpec::Sends {
            sends: vec![SendSpec {
                at: 100,
                src: 1,
                dest: 6,
                payload: vec![7; 6],
            }],
            cycles: 2_000,
        };
        let clean = run_scenario(&s).unwrap();
        assert_eq!(clean.outcomes[0].retries, 0);

        let sim = NetworkSim::from_scenario(&s).unwrap();
        let last = sim.topology().stages() - 1;
        let mut faults = FaultSet::new();
        for l in metro_topo::paths::all_links(sim.topology()) {
            if l.stage == last {
                faults.break_link(l, FaultKind::CorruptData { xor: 0x01 });
            }
        }
        s.injections.push(FaultInjection {
            at: 0,
            faults,
            repairs: RepairSet::default(),
        });
        let faulty = run_scenario(&s).unwrap();
        assert!(
            faulty.outcomes.is_empty()
                || faulty.outcomes[0].retries > 0
                || !faulty.outcomes[0].failures.is_empty(),
            "an injected corrupting fault must perturb the run"
        );
        assert_ne!(clean.outcome_digest(), faulty.outcome_digest());
    }

    #[test]
    fn injections_accumulate_rather_than_replace() {
        let mut s = scripted_sample();
        let mut f1 = FaultSet::new();
        f1.kill_router(0, 0);
        let mut f2 = FaultSet::new();
        f2.break_link(LinkId::new(0, 1, 0), FaultKind::Dead);
        s.injections = vec![
            FaultInjection {
                at: 10,
                faults: f1,
                repairs: RepairSet::default(),
            },
            FaultInjection {
                at: 20,
                faults: f2,
                repairs: RepairSet::default(),
            },
        ];
        // Replay manually up to cycle 30 and check the live fault set.
        let mut sim = NetworkSim::from_scenario(&s).unwrap();
        let mut active = s.faults.clone();
        let mut pending = s.injections.clone();
        for now in 0..30 {
            apply_due_injections(&mut sim, &mut pending, &mut active, now);
            sim.tick();
        }
        assert!(
            sim.faults().router_dead(0, 0),
            "first injection still active"
        );
        assert!(sim.faults().link_dead(LinkId::new(0, 1, 0)));
    }

    #[test]
    fn timed_repairs_restore_service() {
        let mut s = scripted_sample();
        // Break a link at cycle 10, then repair it (and revive a
        // router killed by the same schedule) at cycle 20.
        let broken = LinkId::new(0, 1, 0);
        let mut f1 = FaultSet::new();
        f1.break_link(broken, FaultKind::Dead);
        f1.kill_router(1, 0);
        s.injections = vec![
            FaultInjection {
                at: 10,
                faults: f1,
                repairs: RepairSet::default(),
            },
            FaultInjection {
                at: 20,
                faults: FaultSet::new(),
                repairs: RepairSet {
                    links: vec![broken],
                    routers: vec![(1, 0)],
                    endpoints: vec![],
                },
            },
        ];
        let mut sim = NetworkSim::from_scenario(&s).unwrap();
        let mut active = s.faults.clone();
        let mut pending = s.injections.clone();
        for now in 0..15 {
            apply_due_injections(&mut sim, &mut pending, &mut active, now);
            sim.tick();
        }
        assert!(sim.faults().link_dead(broken), "fault active before repair");
        assert!(sim.faults().router_dead(1, 0));
        for now in 15..25 {
            apply_due_injections(&mut sim, &mut pending, &mut active, now);
            sim.tick();
        }
        assert!(sim.faults().is_empty(), "repair cleared every fault");
    }

    #[test]
    fn result_json_is_deterministic_and_round_trips() {
        let s = scripted_sample();
        let a = run_scenario(&s).unwrap().to_json();
        let b = run_scenario(&s).unwrap().to_json();
        assert_eq!(a.render(), b.render());
        assert_eq!(Json::parse(&a.render()).unwrap(), a);
    }
}
