//! Differential scenario fuzzing: seeded random scenarios, each run
//! through both tick engines.
//!
//! PR 1's golden-trace tests proved [`EngineKind::Flat`] equivalent to
//! [`EngineKind::Reference`] over hand-picked workload shapes. This
//! module turns that into scenario-space tooling: [`random_scenario`]
//! derives a complete [`Scenario`] from a single `u64` (pure function —
//! the same seed always builds the same scenario, so a CI failure
//! reproduces from its seed alone), and [`differential_check`] replays
//! it on both engines and demands identical [`MessageOutcome`] streams,
//! delivery counters, and fabric state.
//!
//! [`MessageOutcome`]: crate::message::MessageOutcome

use super::{codec, run_scenario, FaultInjection, RepairSet, Scenario, SendSpec, WorkloadSpec};
use crate::network::{EngineKind, SimConfig};
use crate::traffic::TrafficPattern;
use crate::workload::{ArrivalProcess, RateMap, TraceEntry};
use metro_core::RandomSource;
use metro_topo::fault::{FaultKind, FaultSet};
use metro_topo::graph::LinkId;
use metro_topo::multibutterfly::{MultibutterflySpec, StageSpec, WiringStyle};

/// The topology shapes the fuzzer draws from — the same span as the
/// golden-equivalence tests (radix, dilation, depth, and a radix-1
/// randomizer front stage), kept small so a fuzz campaign stays fast.
fn shape_for(rng: &mut RandomSource) -> MultibutterflySpec {
    let spec = match rng.index(4) {
        0 => MultibutterflySpec::small8(),
        1 => MultibutterflySpec::figure1(),
        2 => MultibutterflySpec::paper32(),
        _ => MultibutterflySpec {
            endpoints: 8,
            endpoint_ports: 2,
            stages: vec![
                StageSpec::new(4, 4, 4), // radix 1: pure randomizer
                StageSpec::new(4, 4, 2),
                StageSpec::new(4, 4, 2),
                StageSpec::new(2, 2, 1),
            ],
            wiring: WiringStyle::Randomized,
            seed: 8,
        },
    };
    spec.with_seed(rng.bits(64))
}

/// A random fault set over the non-final stages of `spec` (final-stage
/// faults can structurally isolate a destination; the fuzzer's job is
/// engine agreement, and both engines still agree on isolating faults —
/// but bounded shapes keep runs from degenerating into pure retry
/// storms).
fn random_faults(spec: &MultibutterflySpec, rng: &mut RandomSource) -> FaultSet {
    let mut faults = FaultSet::new();
    let stages = spec.stages.len();
    for _ in 0..rng.index(3) {
        let s = rng.index(stages.saturating_sub(1).max(1));
        let routers = spec.endpoints * spec.endpoint_ports / spec.stages[s].forward_ports;
        faults.kill_router(s, rng.index(routers));
    }
    for _ in 0..rng.index(3) {
        let s = rng.index(stages.saturating_sub(1).max(1));
        let routers = spec.endpoints * spec.endpoint_ports / spec.stages[s].forward_ports;
        let link = LinkId::new(
            s,
            rng.index(routers),
            rng.index(spec.stages[s].backward_ports),
        );
        let kind = match rng.index(3) {
            0 => FaultKind::Dead,
            1 => FaultKind::CorruptData {
                xor: (rng.bits(8) as u16).max(1),
            },
            _ => FaultKind::Intermittent {
                xor: (rng.bits(8) as u16).max(1),
                period: rng.index(5) as u32 + 1,
            },
        };
        faults.break_link(link, kind);
    }
    faults
}

/// Derives a complete scenario from `seed` — a pure function, so any
/// failing seed reproduces its scenario exactly. The generated space
/// spans topology shape and wiring, sim seed, protocol knobs
/// (`fast_reclaim`, `wire_delay`), static faults, one optional timed
/// injection, and a scripted send schedule.
#[must_use]
pub fn random_scenario(seed: u64) -> Scenario {
    let mut rng = RandomSource::new(seed ^ 0xF0_22ED);
    let topology = shape_for(&mut rng);
    let n = topology.endpoints;

    let sim = SimConfig {
        seed: rng.bits(64),
        wire_delay: rng.index(3),
        fast_reclaim: rng.bit(),
        ..SimConfig::default()
    };

    let faults = if rng.index(4) == 0 {
        random_faults(&topology, &mut rng)
    } else {
        FaultSet::new()
    };

    let cycles = 1_200 + rng.bits(10); // 1200..2224
    let injections = if rng.index(4) == 0 {
        vec![FaultInjection {
            at: rng.bits(8), // within the active window
            faults: random_faults(&topology, &mut rng),
            repairs: RepairSet::default(),
        }]
    } else {
        Vec::new()
    };

    let workload = random_workload(&mut rng, n, cycles);

    Scenario {
        name: format!("fuzz-{seed:#x}"),
        topology,
        sim,
        seed: rng.bits(64),
        faults,
        injections,
        workload,
    }
}

/// Draws one workload for a fuzz scenario. Scripted sends remain the
/// bulk of the space (they exercise exact payload contents and tight
/// schedules), but all three open-loop arrival processes — Bernoulli,
/// OnOff, Trace — are generated often enough that a 25-case CI campaign
/// differentially exercises every process on every engine
/// (`fuzz_covers_every_arrival_process` pins this).
fn random_workload(rng: &mut RandomSource, n: usize, cycles: u64) -> WorkloadSpec {
    match rng.index(8) {
        kind @ (0 | 1) => {
            let arrival = if kind == 0 {
                ArrivalProcess::Bernoulli
            } else {
                ArrivalProcess::OnOff {
                    burst_mean: 1 + rng.index(64) as u64,
                    idle_mean: 1 + rng.index(128) as u64,
                }
            };
            let pattern = match rng.index(4) {
                0 => TrafficPattern::Hotspot {
                    target: rng.index(n),
                    percent: rng.index(40),
                },
                1 => {
                    // A rotation is always a valid self-target-free
                    // permutation.
                    let k = 1 + rng.index(n - 1);
                    TrafficPattern::Permutation((0..n).map(|s| (s + k) % n).collect())
                }
                _ => TrafficPattern::Uniform,
            };
            let rates = if rng.index(3) == 0 {
                RateMap::PerEndpoint((0..n).map(|_| rng.index(200) as f64 / 100.0).collect())
            } else {
                RateMap::Uniform
            };
            WorkloadSpec::Load {
                pattern,
                arrival,
                rates,
                load: 0.05 + rng.index(31) as f64 / 100.0,
                payload_words: 1 + rng.index(10),
                warmup: 64 + rng.bits(6),
                measure: 256 + rng.bits(8),
                drain: 256 + rng.bits(7),
            }
        }
        2 => {
            let entries = (0..1 + rng.index(11))
                .map(|_| {
                    let src = rng.index(n);
                    TraceEntry {
                        at: rng.index(600) as u64,
                        src,
                        // Offset by 1..n modulo n: never self-targeting.
                        dest: (src + 1 + rng.index(n - 1)) % n,
                        payload_words: 1 + rng.index(10),
                    }
                })
                .collect();
            WorkloadSpec::Load {
                pattern: TrafficPattern::Uniform,
                arrival: ArrivalProcess::Trace(entries),
                rates: RateMap::Uniform,
                load: 0.2,
                payload_words: 4,
                warmup: 64,
                measure: 600 + rng.bits(8),
                drain: 256,
            }
        }
        _ => {
            let n_sends = 1 + rng.index(7);
            let sends = (0..n_sends)
                .map(|_| {
                    let words = rng.index(10);
                    SendSpec {
                        at: rng.bits(8), // 0..256
                        src: rng.index(n),
                        dest: rng.index(n),
                        payload: (0..words).map(|_| rng.bits(8) as u16).collect(),
                    }
                })
                .collect();
            WorkloadSpec::Sends { sends, cycles }
        }
    }
}

/// Replays `scenario` on both engines and checks full agreement:
/// identical outcome streams, delivery/abandon counters, payload word
/// totals, and fabric idleness. Also round-trips the scenario through
/// the codec first — the replayed scenario is the *decoded* one, so a
/// fuzz pass certifies the serialization path too.
///
/// # Errors
///
/// Returns a description of the first divergence (or codec failure).
pub fn differential_check(scenario: &Scenario) -> Result<(), String> {
    let decoded = codec::decode(&codec::encode(scenario))
        .map_err(|e| format!("scenario {:?} did not round-trip: {e}", scenario.name))?;
    if &decoded != scenario {
        return Err(format!(
            "scenario {:?} changed across encode/decode",
            scenario.name
        ));
    }
    let mut flat = decoded.clone();
    flat.sim.engine = EngineKind::Flat;
    let mut reference = decoded;
    reference.sim.engine = EngineKind::Reference;
    let a = run_scenario(&flat).map_err(|e| e.to_string())?;
    let b = run_scenario(&reference).map_err(|e| e.to_string())?;
    if a.outcomes != b.outcomes {
        return Err(format!(
            "MessageOutcome streams diverged on {:?}: flat produced {} outcomes (digest {:#x}), reference {} (digest {:#x})",
            scenario.name,
            a.outcomes.len(),
            a.outcome_digest(),
            b.outcomes.len(),
            b.outcome_digest(),
        ));
    }
    if (a.delivered, a.abandoned, a.payload_words, a.fabric_idle)
        != (b.delivered, b.abandoned, b.payload_words, b.fabric_idle)
    {
        return Err(format!(
            "run summaries diverged on {:?}: flat {:?} vs reference {:?}",
            scenario.name,
            (a.delivered, a.abandoned, a.payload_words, a.fabric_idle),
            (b.delivered, b.abandoned, b.payload_words, b.fabric_idle),
        ));
    }
    // The analytic engine is exercised differentially too: it must
    // accept every fuzzed workload (all three arrival processes) and
    // estimate it deterministically.
    let e1 = crate::engine::analytic::estimate_scenario(&flat).map_err(|e| e.to_string())?;
    let e2 = crate::engine::analytic::estimate_scenario(&flat).map_err(|e| e.to_string())?;
    if e1 != e2 {
        return Err(format!(
            "analytic estimates diverged across two runs of {:?}",
            scenario.name
        ));
    }
    Ok(())
}

/// Replays `scenario` on the Flat engine twice — single-threaded and
/// sharded into `shards` shards — and checks full bit-identity:
/// identical outcome streams, run summaries, and telemetry snapshots.
/// The shard knob must be pure execution strategy; any divergence here
/// is a partitioning bug (slot ownership, phase ordering, or merge
/// order), not a protocol difference.
///
/// # Errors
///
/// Returns a description of the first divergence (or codec failure).
pub fn shard_differential_check(scenario: &Scenario, shards: usize) -> Result<(), String> {
    let decoded = codec::decode(&codec::encode(scenario))
        .map_err(|e| format!("scenario {:?} did not round-trip: {e}", scenario.name))?;
    let mut single = decoded.clone();
    single.sim.engine = EngineKind::Flat;
    single.sim.shards = 1;
    let mut sharded = decoded;
    sharded.sim.engine = EngineKind::Flat;
    sharded.sim.shards = shards;
    let (a, mut sim_a) = super::run_scenario_with_sim(&single).map_err(|e| e.to_string())?;
    let (b, mut sim_b) = super::run_scenario_with_sim(&sharded).map_err(|e| e.to_string())?;
    if a.outcomes != b.outcomes {
        return Err(format!(
            "MessageOutcome streams diverged on {:?}: shards=1 produced {} outcomes (digest {:#x}), shards={shards} {} (digest {:#x})",
            scenario.name,
            a.outcomes.len(),
            a.outcome_digest(),
            b.outcomes.len(),
            b.outcome_digest(),
        ));
    }
    if (a.delivered, a.abandoned, a.payload_words, a.fabric_idle)
        != (b.delivered, b.abandoned, b.payload_words, b.fabric_idle)
    {
        return Err(format!(
            "run summaries diverged on {:?}: shards=1 {:?} vs shards={shards} {:?}",
            scenario.name,
            (a.delivered, a.abandoned, a.payload_words, a.fabric_idle),
            (b.delivered, b.abandoned, b.payload_words, b.fabric_idle),
        ));
    }
    let snap_a = sim_a.telemetry_snapshot(&scenario.name).to_json();
    let snap_b = sim_b.telemetry_snapshot(&scenario.name).to_json();
    if snap_a != snap_b {
        return Err(format!(
            "telemetry snapshots diverged on {:?} between shards=1 and shards={shards}",
            scenario.name,
        ));
    }
    Ok(())
}

/// Runs `count` seeded scenarios starting at `base_seed`, stopping at
/// the first divergence. Returns the number of scenarios checked.
///
/// # Errors
///
/// Returns the failing seed and the divergence description.
pub fn fuzz_campaign(base_seed: u64, count: u64) -> Result<u64, String> {
    for i in 0..count {
        let seed = crate::experiment::point_seed(base_seed, i);
        let scenario = random_scenario(seed);
        differential_check(&scenario)
            .map_err(|e| format!("seed {seed:#x} (case {i}/{count}): {e}"))?;
    }
    Ok(count)
}

/// Runs `count` seeded scenarios starting at `base_seed`, each checked
/// for shard bit-identity at `shards` shards (see
/// [`shard_differential_check`]). Returns the number checked.
///
/// # Errors
///
/// Returns the failing seed and the divergence description.
pub fn shard_fuzz_campaign(base_seed: u64, count: u64, shards: usize) -> Result<u64, String> {
    for i in 0..count {
        let seed = crate::experiment::point_seed(base_seed, i);
        let scenario = random_scenario(seed);
        shard_differential_check(&scenario, shards)
            .map_err(|e| format!("seed {seed:#x} (case {i}/{count}): {e}"))?;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_scenarios_are_pure_functions_of_the_seed() {
        for seed in [0u64, 1, 0xDEAD, u64::MAX] {
            assert_eq!(random_scenario(seed), random_scenario(seed));
        }
        assert_ne!(random_scenario(1), random_scenario(2));
    }

    #[test]
    fn generated_scenarios_are_buildable_and_codec_clean() {
        for seed in 0..12u64 {
            let s = random_scenario(seed);
            let decoded = codec::decode(&codec::encode(&s)).expect("codec round-trip");
            assert_eq!(decoded, s, "seed {seed}");
            crate::network::NetworkSim::from_scenario(&s).expect("buildable topology");
        }
    }

    #[test]
    fn small_campaign_passes() {
        // The full >= 100-case campaign lives in the integration test
        // suite (tests/scenario_differential.rs); this is the unit-level
        // smoke.
        assert_eq!(fuzz_campaign(0x5EED, 4).unwrap(), 4);
    }

    #[test]
    fn fuzz_covers_every_arrival_process() {
        // The CI scenario job runs `fuzz --count 25 --seed 0xC1`; those
        // exact 25 cases must differentially exercise scripted sends
        // and all three open-loop arrival processes.
        let (mut sends, mut bernoulli, mut on_off, mut trace) = (0, 0, 0, 0);
        for i in 0..25u64 {
            let seed = crate::experiment::point_seed(0xC1, i);
            match random_scenario(seed).workload {
                WorkloadSpec::Sends { .. } => sends += 1,
                WorkloadSpec::Load { arrival, .. } => match arrival {
                    ArrivalProcess::Bernoulli => bernoulli += 1,
                    ArrivalProcess::OnOff { .. } => on_off += 1,
                    ArrivalProcess::Trace(_) => trace += 1,
                },
            }
        }
        assert!(
            sends > 0 && bernoulli > 0 && on_off > 0 && trace > 0,
            "CI fuzz coverage hole: sends={sends} bernoulli={bernoulli} on_off={on_off} trace={trace}"
        );
    }

    #[test]
    fn small_shard_campaign_passes() {
        // Full-corpus shard identity lives in the bench crate's
        // integration suite; this unit smoke keeps the sharded tick and
        // telemetry comparison wired into `cargo test -p metro-sim`.
        assert_eq!(shard_fuzz_campaign(0x5EED, 2, 4).unwrap(), 2);
    }
}
