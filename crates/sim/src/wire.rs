//! Pipelined inter-component wires.
//!
//! METRO "pipelines data across the wires interconnecting routers …
//! the wire will look, for the most part, like a time-delay. The
//! necessary trick is to make the time-delay approximate an integral
//! number of clock cycles so that it does look like a number of pipeline
//! registers" (paper §5.1, Variable Turn Delay). A [`Wire`] is exactly
//! that: a shift register of configurable depth in each direction, plus
//! the backward control bit (BCB) used by fast path reclamation.
//!
//! A wire with delay 0 is combinational — the RN1 style where each
//! routing stage contributes a single pipeline register and the
//! interconnect adds none.

use metro_core::word::phit;
use metro_core::Word;
use metro_telemetry::state::{StateError, StateReader, StateWriter};
use metro_topo::fault::FaultKind;
use std::collections::VecDeque;

/// A bidirectional, pipelined link between two components.
///
/// The *forward* lane carries words away from the sources (toward
/// higher stages); the *reverse* lane carries words back; the BCB lane
/// carries fast-reclamation requests toward the sources (opposite the
/// forward lane).
#[derive(Debug, Clone)]
pub struct Wire {
    delay: usize,
    fwd: VecDeque<Word>,
    rev: VecDeque<Word>,
    bcb: VecDeque<bool>,
    fault: Option<FaultKind>,
    /// Data words seen since the fault was injected (drives the
    /// intermittent fault's period).
    words_seen: u32,
}

impl Wire {
    /// Creates a wire with the given pipeline delay in cycles (0 =
    /// combinational).
    #[must_use]
    pub fn new(delay: usize) -> Self {
        Self {
            delay,
            fwd: std::iter::repeat_n(Word::Empty, delay).collect(),
            rev: std::iter::repeat_n(Word::Empty, delay).collect(),
            bcb: std::iter::repeat_n(false, delay).collect(),
            fault: None,
            words_seen: 0,
        }
    }

    /// The wire's pipeline delay.
    #[must_use]
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// Injects a fault into the wire (dead or corrupting).
    pub fn set_fault(&mut self, fault: Option<FaultKind>) {
        self.fault = fault;
    }

    /// The wire's current fault, if any.
    #[must_use]
    pub fn fault(&self) -> Option<FaultKind> {
        self.fault
    }

    /// Advances the wire one clock cycle: pushes this cycle's words in
    /// at each end and returns the words emerging at the far ends,
    /// `(forward_out, reverse_out, bcb_out)`.
    pub fn advance(&mut self, fwd_in: Word, rev_in: Word, bcb_in: bool) -> (Word, Word, bool) {
        let (fwd_in, rev_in, bcb_in) = match self.fault {
            Some(FaultKind::Dead) => (Word::Empty, Word::Empty, false),
            Some(FaultKind::CorruptData { xor }) => {
                (corrupt(fwd_in, xor), corrupt(rev_in, xor), bcb_in)
            }
            Some(FaultKind::Intermittent { xor, period }) => {
                let mut strike = |w: Word| match w {
                    Word::Data(v) => {
                        self.words_seen = self.words_seen.wrapping_add(1);
                        if period > 0 && self.words_seen.is_multiple_of(period) {
                            Word::Data(v ^ xor)
                        } else {
                            Word::Data(v)
                        }
                    }
                    other => other,
                };
                let f = strike(fwd_in);
                let r = strike(rev_in);
                (f, r, bcb_in)
            }
            None => (fwd_in, rev_in, bcb_in),
        };
        if self.delay == 0 {
            return (fwd_in, rev_in, bcb_in);
        }
        self.fwd.push_back(fwd_in);
        self.rev.push_back(rev_in);
        self.bcb.push_back(bcb_in);
        (
            self.fwd.pop_front().unwrap_or(Word::Empty),
            self.rev.pop_front().unwrap_or(Word::Empty),
            self.bcb.pop_front().unwrap_or(false),
        )
    }

    /// Whether [`Wire::advance`] is the identity function: zero pipeline
    /// delay and no fault. Transparency only changes when a fault is
    /// injected or cleared, so an engine may cache it between fault
    /// applications and skip `advance` entirely for transparent wires.
    #[must_use]
    pub fn is_transparent(&self) -> bool {
        self.delay == 0 && self.fault.is_none()
    }

    /// Whether no word is in flight on either lane (and no BCB).
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.fwd.iter().all(|w| *w == Word::Empty)
            && self.rev.iter().all(|w| *w == Word::Empty)
            && self.bcb.iter().all(|b| !b)
    }

    /// Clears any in-flight words (used when re-arming a repaired wire).
    pub fn flush(&mut self) {
        for w in self.fwd.iter_mut().chain(self.rev.iter_mut()) {
            *w = Word::Empty;
        }
        for b in self.bcb.iter_mut() {
            *b = false;
        }
    }

    /// Appends the in-flight words on every lane plus the intermittent
    /// fault's word counter to a checkpoint stream. The delay is
    /// construction-fixed and the fault field is owned by the fault
    /// set (re-applied by the engine on restore), so neither is
    /// written.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.fwd.len());
        for &word in &self.fwd {
            w.u64(phit::pack(word));
        }
        for &word in &self.rev {
            w.u64(phit::pack(word));
        }
        for &b in &self.bcb {
            w.bool(b);
        }
        w.u64(u64::from(self.words_seen));
    }

    /// Overwrites the in-flight state from a checkpoint stream. Never
    /// touches the fault field — restore order is: rebuild, re-apply
    /// faults, then restore wire contents.
    ///
    /// # Errors
    ///
    /// [`StateError::BadValue`] on a delay mismatch or a corrupt packed
    /// word.
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let bad = |detail: String| StateError::BadValue {
            section: String::from("wire"),
            detail,
        };
        let n = r.usize()?;
        if n != self.delay {
            return Err(bad(format!("saved delay {n}, wire has {}", self.delay)));
        }
        let read_lane = |r: &mut StateReader<'_>| -> Result<VecDeque<Word>, StateError> {
            let mut lane = VecDeque::with_capacity(n);
            for _ in 0..n {
                let cell = r.u64()?;
                lane.push_back(
                    phit::unpack(cell)
                        .ok_or_else(|| bad(format!("{cell:#x} is not a packed channel word")))?,
                );
            }
            Ok(lane)
        };
        self.fwd = read_lane(r)?;
        self.rev = read_lane(r)?;
        let mut bcb = VecDeque::with_capacity(n);
        for _ in 0..n {
            bcb.push_back(r.bool()?);
        }
        self.bcb = bcb;
        let seen = r.u64()?;
        self.words_seen =
            u32::try_from(seen).map_err(|_| bad(format!("{seen} overflows the word counter")))?;
        Ok(())
    }
}

fn corrupt(word: Word, xor: u16) -> Word {
    match word {
        Word::Data(v) => Word::Data(v ^ xor),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_delay_is_combinational() {
        let mut w = Wire::new(0);
        let (f, r, b) = w.advance(Word::Data(5), Word::Turn, true);
        assert_eq!(f, Word::Data(5));
        assert_eq!(r, Word::Turn);
        assert!(b);
    }

    #[test]
    fn delay_k_shifts_k_cycles() {
        for k in 1..4 {
            let mut w = Wire::new(k);
            let mut outs = Vec::new();
            for c in 0..k + 2 {
                let (f, _, _) = w.advance(Word::Data(c as u16), Word::Empty, false);
                outs.push(f);
            }
            for (c, out) in outs.iter().enumerate() {
                if c < k {
                    assert_eq!(*out, Word::Empty, "delay {k} cycle {c}");
                } else {
                    assert_eq!(*out, Word::Data((c - k) as u16));
                }
            }
        }
    }

    #[test]
    fn both_lanes_are_independent() {
        let mut w = Wire::new(1);
        w.advance(Word::Data(1), Word::Data(2), true);
        let (f, r, b) = w.advance(Word::Empty, Word::Empty, false);
        assert_eq!(f, Word::Data(1));
        assert_eq!(r, Word::Data(2));
        assert!(b);
    }

    #[test]
    fn dead_wire_reads_empty() {
        let mut w = Wire::new(0);
        w.set_fault(Some(FaultKind::Dead));
        let (f, r, b) = w.advance(Word::Data(9), Word::Turn, true);
        assert_eq!(f, Word::Empty);
        assert_eq!(r, Word::Empty);
        assert!(!b);
    }

    #[test]
    fn corrupting_wire_flips_data_bits_only() {
        let mut w = Wire::new(0);
        w.set_fault(Some(FaultKind::CorruptData { xor: 0x01 }));
        let (f, r, _) = w.advance(Word::Data(0x10), Word::Turn, false);
        assert_eq!(f, Word::Data(0x11));
        assert_eq!(r, Word::Turn, "control words pass unharmed");
    }

    #[test]
    fn intermittent_fault_strikes_periodically() {
        let mut w = Wire::new(0);
        w.set_fault(Some(FaultKind::Intermittent {
            xor: 0x01,
            period: 3,
        }));
        let mut corrupted = 0;
        for k in 0..9u16 {
            let (f, _, _) = w.advance(Word::Data(k), Word::Empty, false);
            if f != Word::Data(k) {
                corrupted += 1;
            }
        }
        assert_eq!(corrupted, 3, "one strike per period");
        // Control words never counted nor corrupted.
        let (f, _, _) = w.advance(Word::Turn, Word::Empty, false);
        assert_eq!(f, Word::Turn);
    }

    #[test]
    fn fault_can_be_repaired() {
        let mut w = Wire::new(0);
        w.set_fault(Some(FaultKind::Dead));
        w.set_fault(None);
        let (f, _, _) = w.advance(Word::Data(3), Word::Empty, false);
        assert_eq!(f, Word::Data(3));
    }

    #[test]
    fn flush_clears_in_flight_words() {
        let mut w = Wire::new(2);
        w.advance(Word::Data(1), Word::Data(2), true);
        w.flush();
        let (f, r, b) = w.advance(Word::Empty, Word::Empty, false);
        assert_eq!((f, r, b), (Word::Empty, Word::Empty, false));
    }
}
