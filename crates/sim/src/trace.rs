//! Cycle-stamped event tracing.
//!
//! The routers count events (grants, blocks, turns, drops); the trace
//! log adds *when* and *where*. The simulator's
//! [`TelemetryRegistry`](metro_telemetry::TelemetryRegistry) computes
//! per-(stage, router) counter deltas at every telemetry interval, and
//! [`TraceLog::observe`] converts each nonzero delta into stamped
//! [`TraceEvent`]s — the trace is a *consumer* of registry deltas, not
//! a second counter-diffing mechanism. Coarsening the interval
//! (`NetworkSim::set_telemetry_interval`) coarsens the stamps to the
//! sync grid without losing events.
//!
//! The log is a bounded ring: with a nonzero capacity, the oldest
//! records are evicted as new ones arrive, so long runs trace at
//! bounded memory.

use metro_telemetry::{CounterBlock, RouterCounter};
use std::fmt;

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A router granted a connection (`grants` counter advanced).
    Granted {
        /// Stage of the router.
        stage: usize,
        /// Router index within the stage.
        router: usize,
    },
    /// A router blocked a connection.
    Blocked {
        /// Stage of the router.
        stage: usize,
        /// Router index within the stage.
        router: usize,
    },
    /// A router reversed a connection (TURN passed through).
    Turned {
        /// Stage of the router.
        stage: usize,
        /// Router index within the stage.
        router: usize,
    },
    /// A router dropped (closed) a connection.
    Dropped {
        /// Stage of the router.
        stage: usize,
        /// Router index within the stage.
        router: usize,
    },
    /// An endpoint completed a message.
    Completed {
        /// Source endpoint.
        src: usize,
        /// Destination endpoint.
        dest: usize,
        /// Retries the message needed.
        retries: usize,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Granted { stage, router } => write!(f, "grant   r{stage}.{router}"),
            TraceEvent::Blocked { stage, router } => write!(f, "block   r{stage}.{router}"),
            TraceEvent::Turned { stage, router } => write!(f, "turn    r{stage}.{router}"),
            TraceEvent::Dropped { stage, router } => write!(f, "drop    r{stage}.{router}"),
            TraceEvent::Completed { src, dest, retries } => {
                write!(f, "done    {src} -> {dest} (retries {retries})")
            }
        }
    }
}

/// A trace event with its cycle stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle at which the event was observed (the telemetry sync
    /// boundary; exact when the interval is 1).
    pub at: u64,
    /// What happened.
    pub event: TraceEvent,
}

/// A bounded log of cycle-stamped events fed by telemetry deltas.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    records: Vec<TraceRecord>,
    /// Maximum records retained; 0 = unbounded.
    capacity: usize,
}

impl TraceLog {
    /// An empty log retaining at most `capacity` records (0 =
    /// unbounded).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            records: Vec::new(),
            capacity,
        }
    }

    fn push(&mut self, at: u64, event: TraceEvent) {
        if self.capacity > 0 && self.records.len() == self.capacity {
            self.records.remove(0);
        }
        self.records.push(TraceRecord { at, event });
    }

    /// Converts one sync's registry deltas into stamped events: each
    /// grant/block/turn/drop counted since the previous sync becomes
    /// one record stamped `now`.
    pub fn observe(&mut self, now: u64, deltas: &CounterBlock) {
        for ((stage, router), cell) in deltas.iter() {
            if cell.is_zero() {
                continue;
            }
            let pairs = [
                (RouterCounter::Grants, TraceEvent::Granted { stage, router }),
                (RouterCounter::Blocks, TraceEvent::Blocked { stage, router }),
                (RouterCounter::Turns, TraceEvent::Turned { stage, router }),
                (RouterCounter::Drops, TraceEvent::Dropped { stage, router }),
            ];
            for (counter, event) in pairs {
                for _ in 0..cell.get(counter) {
                    self.push(now, event);
                }
            }
        }
    }

    /// Records a message completion.
    pub fn record_completion(&mut self, now: u64, src: usize, dest: usize, retries: usize) {
        self.push(now, TraceEvent::Completed { src, dest, retries });
    }

    /// All retained records, oldest first.
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records whose event matches the predicate.
    pub fn of_kind(&self, pred: impl Fn(&TraceEvent) -> bool) -> Vec<TraceRecord> {
        self.records
            .iter()
            .copied()
            .filter(|r| pred(&r.event))
            .collect()
    }

    /// Renders the log, one stamped line per record.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!("[{:>8}] {}\n", r.at, r.event));
        }
        out
    }

    /// Discards the retained records. The registry keeps the delta
    /// state, so observation continues seamlessly.
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// The retention limit this log was built with (0 = unbounded).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metro_telemetry::CounterBlock;

    /// A 1×1 delta block with the given grant/block counts.
    fn deltas(grants: u64, blocks: u64) -> CounterBlock {
        let mut b = CounterBlock::new(&[1]);
        b.cell_mut(0, 0).add(RouterCounter::Grants, grants);
        b.cell_mut(0, 0).add(RouterCounter::Blocks, blocks);
        b
    }

    #[test]
    fn observe_emits_one_event_per_delta_count() {
        let mut log = TraceLog::new(0);
        log.observe(1, &deltas(2, 1));
        let grants = log.of_kind(|e| matches!(e, TraceEvent::Granted { .. }));
        let blocks = log.of_kind(|e| matches!(e, TraceEvent::Blocked { .. }));
        assert_eq!(grants.len(), 2);
        assert_eq!(blocks.len(), 1);
        assert!(log.records().iter().all(|r| r.at == 1));

        // The next sync's deltas stand alone — no internal diffing.
        log.observe(5, &deltas(1, 0));
        assert_eq!(
            log.of_kind(|e| matches!(e, TraceEvent::Granted { .. }))
                .len(),
            3
        );
        assert_eq!(log.records().last().unwrap().at, 5);
    }

    #[test]
    fn zero_deltas_emit_nothing() {
        let mut log = TraceLog::new(0);
        log.observe(3, &deltas(0, 0));
        assert!(log.records().is_empty());
    }

    #[test]
    fn multi_router_deltas_name_the_right_slots() {
        let mut b = CounterBlock::new(&[2, 1]);
        b.cell_mut(0, 1).add(RouterCounter::Turns, 1);
        b.cell_mut(1, 0).add(RouterCounter::Drops, 2);
        let mut log = TraceLog::new(0);
        log.observe(9, &b);
        assert_eq!(
            log.records()[0].event,
            TraceEvent::Turned {
                stage: 0,
                router: 1
            }
        );
        assert_eq!(
            log.records()[1].event,
            TraceEvent::Dropped {
                stage: 1,
                router: 0
            }
        );
        assert_eq!(log.records().len(), 3);
    }

    #[test]
    fn capacity_bounds_the_log() {
        let mut log = TraceLog::new(3);
        for k in 0..5 {
            log.observe(k, &deltas(1, 0));
        }
        assert_eq!(log.records().len(), 3);
        // Oldest evicted: stamps 2, 3, 4 survive.
        let stamps: Vec<u64> = log.records().iter().map(|r| r.at).collect();
        assert_eq!(stamps, [2, 3, 4]);
    }

    #[test]
    fn overflow_at_exact_capacity_evicts_exactly_one() {
        let mut log = TraceLog::new(2);
        log.observe(0, &deltas(1, 0));
        log.observe(1, &deltas(1, 0));
        assert_eq!(log.records().len(), 2, "at capacity, nothing evicted yet");
        log.observe(2, &deltas(1, 0));
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.records()[0].at, 1);
        assert_eq!(log.records()[1].at, 2);

        // A single observe delivering more events than capacity keeps
        // only the newest `capacity` records.
        let mut log = TraceLog::new(2);
        log.observe(7, &deltas(5, 0));
        assert_eq!(log.records().len(), 2);
        assert!(log.records().iter().all(|r| r.at == 7));
    }

    #[test]
    fn render_stamps_every_line() {
        let mut log = TraceLog::new(0);
        log.observe(4, &deltas(1, 1));
        log.record_completion(12, 3, 9, 2);
        let text = log.render();
        assert_eq!(
            text,
            "[       4] grant   r0.0\n[       4] block   r0.0\n[      12] done    3 -> 9 (retries 2)\n"
        );
    }

    #[test]
    fn clear_discards_records_only() {
        let mut log = TraceLog::new(0);
        log.observe(1, &deltas(2, 0));
        log.clear();
        assert!(log.records().is_empty());
        log.observe(2, &deltas(1, 0));
        assert_eq!(log.records().len(), 1, "observation continues after clear");
    }
}
