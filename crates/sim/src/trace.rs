//! Cycle-level event tracing.
//!
//! A [`TraceLog`] records the connection-level events of a simulation —
//! opens, grants, blocks, turns, drops, BCB teardowns, retries,
//! deliveries — with their cycle stamps. Traces make protocol debugging
//! tractable (every event names its router or endpoint) and feed the
//! occupancy statistics the experiment harnesses report.
//!
//! Tracing is pull-based: the simulator's components already count
//! events ([`metro_core::router::RouterStats`]); the trace
//! log adds *when* and *where*. [`TraceLog::snapshot_routers`] diffs
//! router counters between cycles, producing events without touching
//! the router hot path.

use metro_core::router::RouterStats;
use std::fmt;

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A router granted a connection (`grants` counter advanced).
    Granted {
        /// Stage of the router.
        stage: usize,
        /// Router index within the stage.
        router: usize,
    },
    /// A router blocked a connection.
    Blocked {
        /// Stage of the router.
        stage: usize,
        /// Router index within the stage.
        router: usize,
    },
    /// A router reversed a connection (TURN passed through).
    Turned {
        /// Stage of the router.
        stage: usize,
        /// Router index within the stage.
        router: usize,
    },
    /// A router released a connection (DROP completed).
    Dropped {
        /// Stage of the router.
        stage: usize,
        /// Router index within the stage.
        router: usize,
    },
    /// A source endpoint completed a message.
    Completed {
        /// Source endpoint.
        src: usize,
        /// Destination endpoint.
        dest: usize,
        /// Retries the message needed.
        retries: usize,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Granted { stage, router } => write!(f, "grant   r{stage}.{router}"),
            Self::Blocked { stage, router } => write!(f, "block   r{stage}.{router}"),
            Self::Turned { stage, router } => write!(f, "turn    r{stage}.{router}"),
            Self::Dropped { stage, router } => write!(f, "drop    r{stage}.{router}"),
            Self::Completed { src, dest, retries } => {
                write!(f, "done    {src} -> {dest} ({retries} retries)")
            }
        }
    }
}

/// A stamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Clock cycle the event was observed at.
    pub at: u64,
    /// The event.
    pub event: TraceEvent,
}

/// An event log built by diffing per-router counters each cycle.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    records: Vec<TraceRecord>,
    last: Vec<Vec<RouterStats>>,
    capacity: usize,
}

impl TraceLog {
    /// Creates a log retaining at most `capacity` records (0 =
    /// unbounded).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            records: Vec::new(),
            last: Vec::new(),
            capacity,
        }
    }

    /// The recorded events.
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Clears the log (the counter snapshot is kept, so diffing
    /// continues seamlessly).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    fn push(&mut self, at: u64, event: TraceEvent) {
        if self.capacity > 0 && self.records.len() >= self.capacity {
            self.records.remove(0);
        }
        self.records.push(TraceRecord { at, event });
    }

    /// Diffs the current router counters against the previous snapshot,
    /// emitting one event per counter increment. `stats[s][r]` are the
    /// counters of router `r` in stage `s` at cycle `now`.
    pub fn snapshot_routers(&mut self, now: u64, stats: &[Vec<RouterStats>]) {
        if self.last.len() != stats.len() {
            self.last = stats.to_vec();
            return;
        }
        for (s, stage) in stats.iter().enumerate() {
            for (r, cur) in stage.iter().enumerate() {
                let prev = self.last[s][r];
                for _ in prev.grants..cur.grants {
                    self.push(
                        now,
                        TraceEvent::Granted {
                            stage: s,
                            router: r,
                        },
                    );
                }
                for _ in prev.blocks..cur.blocks {
                    self.push(
                        now,
                        TraceEvent::Blocked {
                            stage: s,
                            router: r,
                        },
                    );
                }
                for _ in prev.turns..cur.turns {
                    self.push(
                        now,
                        TraceEvent::Turned {
                            stage: s,
                            router: r,
                        },
                    );
                }
                for _ in prev.drops..cur.drops {
                    self.push(
                        now,
                        TraceEvent::Dropped {
                            stage: s,
                            router: r,
                        },
                    );
                }
            }
        }
        // Refresh the snapshot in place (`RouterStats` is `Copy`); the
        // per-snapshot clone this replaces dominated traced-run cost.
        for (last, stage) in self.last.iter_mut().zip(stats) {
            if last.len() == stage.len() {
                last.copy_from_slice(stage);
            } else {
                stage.clone_into(last);
            }
        }
    }

    /// Records a message completion.
    pub fn record_completion(&mut self, at: u64, src: usize, dest: usize, retries: usize) {
        self.push(at, TraceEvent::Completed { src, dest, retries });
    }

    /// Events of one kind, in order.
    pub fn of_kind(&self, pred: impl Fn(&TraceEvent) -> bool) -> Vec<TraceRecord> {
        self.records
            .iter()
            .copied()
            .filter(|r| pred(&r.event))
            .collect()
    }

    /// Renders the log as one line per event.
    #[must_use]
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(out, "[{:>8}] {}", r.at, r.event);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(grants: usize, blocks: usize) -> RouterStats {
        RouterStats {
            grants,
            blocks,
            ..RouterStats::default()
        }
    }

    #[test]
    fn diffing_emits_one_event_per_increment() {
        let mut log = TraceLog::new(0);
        log.snapshot_routers(0, &[vec![stats(0, 0)]]);
        log.snapshot_routers(1, &[vec![stats(2, 1)]]);
        assert_eq!(log.len(), 3);
        let grants = log.of_kind(|e| matches!(e, TraceEvent::Granted { .. }));
        assert_eq!(grants.len(), 2);
        assert_eq!(grants[0].at, 1);
    }

    #[test]
    fn first_snapshot_only_initializes() {
        let mut log = TraceLog::new(0);
        log.snapshot_routers(5, &[vec![stats(7, 7)]]);
        assert!(log.is_empty());
    }

    #[test]
    fn capacity_bounds_the_log() {
        let mut log = TraceLog::new(2);
        log.record_completion(1, 0, 1, 0);
        log.record_completion(2, 0, 2, 0);
        log.record_completion(3, 0, 3, 0);
        assert_eq!(log.len(), 2);
        assert_eq!(log.records()[0].at, 2, "oldest evicted first");
    }

    #[test]
    fn render_stamps_every_line() {
        let mut log = TraceLog::new(0);
        log.record_completion(42, 3, 9, 1);
        let s = log.render();
        assert!(s.contains("42"));
        assert!(s.contains("3 -> 9"));
        assert_eq!(s.lines().count(), 1);
    }

    #[test]
    fn clear_keeps_the_snapshot() {
        let mut log = TraceLog::new(0);
        log.snapshot_routers(0, &[vec![stats(0, 0)]]);
        log.snapshot_routers(1, &[vec![stats(1, 0)]]);
        log.clear();
        assert!(log.is_empty());
        log.snapshot_routers(2, &[vec![stats(2, 0)]]);
        assert_eq!(log.len(), 1, "diff continues from the kept snapshot");
    }
}
