//! Source-responsible network interfaces.
//!
//! "The routers work in conjunction with source-responsible network
//! interfaces to achieve reliable end-to-end data transmission in the
//! presence of heavy network congestion and dynamic faults" (paper §1).
//!
//! The transmit engine streams `header + payload + checksum + TURN`,
//! then holds the connection with DATA-IDLE while collecting the reply:
//! per-router STATUS/checksum words (nearest router first), then the
//! destination's acknowledgment. Any blocked status, BCB arrival, NACK,
//! or watchdog expiry triggers a retry; stochastic path selection inside
//! the network makes the retry overwhelmingly likely to take a different
//! path (paper §4).
//!
//! The receive engines (one per endpoint input port — endpoints "can
//! handle simultaneous traffic on both network output ports", Figure 3
//! caption) verify the end-to-end checksum and answer the TURN with an
//! acknowledgment or, for read-style workloads, a reply burst prefixed
//! by the acknowledgment and padded with DATA-IDLE to model memory
//! latency (paper §5.1, DATA-IDLE use 1).

use crate::message::{
    read_u16s, save_u16s, DeliveryRecord, DeliveryStatus, FailureKind, MessageOutcome, ACK_CORRUPT,
    ACK_OK,
};
use metro_core::word::phit;
use metro_core::{RandomSource, StreamChecksum, Word};
use metro_telemetry::{StateError, StateReader, StateWriter};
use std::collections::VecDeque;

fn bad(detail: String) -> StateError {
    StateError::BadValue {
        section: String::from("endpoint"),
        detail,
    }
}

fn save_stream(w: &mut StateWriter, stream: &[Word]) {
    w.usize(stream.len());
    for &word in stream {
        w.u64(phit::pack(word));
    }
}

fn read_stream(r: &mut StateReader<'_>) -> Result<Vec<Word>, StateError> {
    let n = r.usize()?;
    if n > r.remaining() {
        return Err(bad(format!("{n}-word stream exceeds the checkpoint")));
    }
    (0..n)
        .map(|_| {
            let cell = r.u64()?;
            phit::unpack(cell).ok_or_else(|| bad(format!("{cell:#x} is not a packed word")))
        })
        .collect()
}

fn save_streams(w: &mut StateWriter, streams: &[Vec<Word>]) {
    w.usize(streams.len());
    for s in streams {
        save_stream(w, s);
    }
}

fn read_streams(r: &mut StateReader<'_>) -> Result<Vec<Vec<Word>>, StateError> {
    let n = r.usize()?;
    if n > r.remaining() {
        return Err(bad(format!("{n}-stream list exceeds the checkpoint")));
    }
    (0..n).map(|_| read_stream(r)).collect()
}

/// Reads a `n > remaining`-guarded element count for a list restore.
fn read_count(r: &mut StateReader<'_>, what: &str) -> Result<usize, StateError> {
    let n = r.usize()?;
    if n > r.remaining() {
        return Err(bad(format!("{n}-entry {what} list exceeds the checkpoint")));
    }
    Ok(n)
}

/// How a destination responds once a message has fully arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplyPolicy {
    /// Acknowledge and close: `ACK`, `DROP`.
    Ack,
    /// Read-reply: hold the line with DATA-IDLE for `latency` cycles
    /// (cache/memory access time), then `ACK`, `words` reply data
    /// words, `DROP`.
    ReadReply {
        /// Cycles of DATA-IDLE before the reply (memory latency).
        latency: usize,
        /// Number of reply data words.
        words: usize,
    },
    /// Multi-round conversation: acknowledge each received segment and
    /// hand transmission back (`ACK`, `TURN`); the *source* closes the
    /// circuit after its final segment. Exercises the paper's "any
    /// number of data transmission reversals may occur during a single
    /// connection" (§5.1).
    Conversation,
}

/// Configuration of an endpoint's NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndpointConfig {
    /// Destination reply behaviour.
    pub reply: ReplyPolicy,
    /// Source watchdog: cycles without completion before an attempt is
    /// aborted and retried.
    pub timeout: usize,
    /// Fast connection-open watchdog: if the reverse lane shows no
    /// activity at all (not even the first-hop router's DATA-IDLE hold)
    /// this many cycles into an attempt, the entry port leads nowhere —
    /// a dead first-hop router or wire — and the attempt is abandoned
    /// immediately rather than waiting out the full `timeout`.
    pub open_timeout: usize,
    /// Maximum random backoff (cycles) between attempts.
    pub retry_backoff_max: usize,
    /// Give up after this many failed attempts (0 = never).
    pub max_retries: usize,
    /// Concurrent outgoing messages (clamped to the endpoint's output
    /// port count). Figure 3 restricts sources to one entering port at
    /// a time — the paper's parallelism-limited model — but the
    /// hardware supports a transmit engine per port.
    pub max_concurrent: usize,
    /// Capture each failed attempt's port and delivery record into the
    /// final `MessageOutcome` for diagnosis (off by default: records
    /// cost memory under sustained load).
    pub capture_failure_records: bool,
}

impl Default for EndpointConfig {
    fn default() -> Self {
        Self {
            reply: ReplyPolicy::Ack,
            timeout: 600,
            open_timeout: 32,
            retry_backoff_max: 3,
            max_retries: 0,
            max_concurrent: 1,
            capture_failure_records: false,
        }
    }
}

/// Evidence from one failed delivery attempt, drained by the network's
/// self-healing layer for online diagnosis (paper §5.3: reconfiguration
/// happens while the network carries traffic, driven by the same
/// checksum/STATUS words the retry protocol already collects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptEvidence {
    /// Source endpoint.
    pub src: usize,
    /// Destination endpoint of the failed attempt.
    pub dest: usize,
    /// Injection (output) port the attempt used.
    pub port: usize,
    /// How the attempt failed.
    pub kind: FailureKind,
    /// The return-stream record (statuses, checksums, ack) collected
    /// during the attempt, nearest router first.
    pub record: DeliveryRecord,
    /// The opening segment's word stream (header + payload + checksum +
    /// TURN) — the diagnoser recomputes expected per-stage checksums
    /// from it.
    pub stream: Vec<Word>,
    /// Whether the reverse lane showed any life during the attempt (a
    /// live first-hop router holds DATA-IDLE). `false` means the entry
    /// port leads nowhere.
    pub entry_alive: bool,
}

/// A message delivered at a destination endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivered {
    /// The payload data words, in order.
    pub payload: Vec<u16>,
    /// Completion cycle (when the TURN arrived).
    pub at: u64,
}

/// Per-cycle inputs to an endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointIo {
    /// Reverse-lane word arriving on each output (injection) port.
    pub out_rev_in: Vec<Word>,
    /// BCB arriving on each output port.
    pub out_bcb_in: Vec<bool>,
    /// Forward-lane word arriving on each input (delivery) port.
    pub in_fwd_in: Vec<Word>,
}

impl EndpointIo {
    /// All-idle inputs for an endpoint with `out` output and `inp`
    /// input ports.
    #[must_use]
    pub fn idle(out: usize, inp: usize) -> Self {
        Self {
            out_rev_in: vec![Word::Empty; out],
            out_bcb_in: vec![false; out],
            in_fwd_in: vec![Word::Empty; inp],
        }
    }
}

/// Per-cycle outputs of an endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointDrive {
    /// Forward-lane word driven on each output port.
    pub out_fwd: Vec<Word>,
    /// Reverse-lane word driven on each input port (replies).
    pub in_rev: Vec<Word>,
}

#[derive(Debug, Clone)]
struct ActiveMessage {
    dest: usize,
    payload_words: usize,
    stream: Vec<Word>,
    /// Further stream segments of a multi-round conversation, sent one
    /// per turn-back from the destination. Retries restart from
    /// `all_segments`.
    pending_segments: std::collections::VecDeque<Vec<Word>>,
    all_segments: Vec<Vec<Word>>,
    requested_at: u64,
    first_injection_at: Option<u64>,
    attempt_started_at: u64,
    retries: usize,
    failures: Vec<FailureKind>,
    record: DeliveryRecord,
    failure_records: Vec<(usize, DeliveryRecord)>,
    port: usize,
    success_at: Option<u64>,
    /// Whether the reverse lane showed any life this attempt (the
    /// first-hop router's DATA-IDLE hold counts).
    saw_reverse_activity: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxState {
    Idle,
    Backoff { until: u64 },
    Sending { idx: usize },
    Awaiting,
    Aborting { step: usize },
}

/// One transmit engine: drives one output port's connection at a time.
#[derive(Debug, Clone)]
struct TxEngine {
    state: TxState,
    /// Boxed so an idle engine is a handful of bytes: the tick path
    /// swaps engines in and out of `self` by value, and an inline
    /// `ActiveMessage` (several Vecs deep) would make that swap the
    /// single hottest memcpy in the simulator.
    active: Option<Box<ActiveMessage>>,
    /// Earliest cycle at which this engine's next stream may start.
    /// Streams must be separated by at least one undriven (Empty) cycle
    /// so the first-hop router can finish draining the previous
    /// connection — the NIC's output turnaround time.
    gap_until: u64,
}

impl TxEngine {
    fn idle() -> Self {
        Self {
            state: TxState::Idle,
            active: None,
            gap_until: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum RxState {
    Idle,
    Receiving {
        payload: Vec<u16>,
        expected: Option<u16>,
        cksum: StreamChecksum,
    },
    Replying {
        queue: VecDeque<Word>,
    },
}

/// A message waiting for a free transmit engine.
#[derive(Debug, Clone)]
struct QueuedMessage {
    dest: usize,
    payload_words: usize,
    segments: Vec<Vec<Word>>,
    requested_at: u64,
}

/// A network endpoint: one transmit engine (a processor stalls on its
/// outstanding message — the Figure 3 "parallelism limited" model) plus
/// one receive engine per input port.
#[derive(Debug, Clone)]
pub struct Endpoint {
    id: usize,
    out_ports: usize,
    config: EndpointConfig,
    rng: RandomSource,
    engines: Vec<TxEngine>,
    queue: VecDeque<QueuedMessage>,
    rx: Vec<RxState>,
    completed: Vec<MessageOutcome>,
    abandoned: Vec<MessageOutcome>,
    delivered: Vec<Delivered>,
    evidence: Vec<AttemptEvidence>,
    collect_evidence: bool,
    port_masked: Vec<bool>,
    dead: bool,
}

impl Endpoint {
    /// Creates endpoint `id` with the given port counts.
    #[must_use]
    pub fn new(
        id: usize,
        out_ports: usize,
        in_ports: usize,
        config: EndpointConfig,
        seed: u64,
    ) -> Self {
        let engines = config.max_concurrent.clamp(1, out_ports);
        Self {
            id,
            out_ports,
            config,
            rng: RandomSource::new(seed),
            engines: (0..engines).map(|_| TxEngine::idle()).collect(),
            queue: VecDeque::new(),
            rx: vec![RxState::Idle; in_ports],
            completed: Vec::new(),
            abandoned: Vec::new(),
            delivered: Vec::new(),
            evidence: Vec::new(),
            collect_evidence: false,
            port_masked: vec![false; out_ports],
            dead: false,
        }
    }

    /// The endpoint's index.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Marks the endpoint dead (it stops driving and responding) — a
    /// dynamic endpoint fault.
    pub fn set_dead(&mut self, dead: bool) {
        self.dead = dead;
    }

    /// Queues a message for transmission. `stream` is the complete word
    /// stream (header + payload + checksum + TURN) the NIC will inject;
    /// the network builder constructs it from the topology's header
    /// plan.
    pub fn enqueue(&mut self, dest: usize, payload: Vec<u16>, stream: Vec<Word>, now: u64) {
        self.queue.push_back(QueuedMessage {
            dest,
            payload_words: payload.len(),
            segments: vec![stream],
            requested_at: now,
        });
    }

    /// Queues a multi-round conversation: `segments[0]` opens the
    /// circuit (header + payload + checksum + TURN); each further
    /// segment is sent after the destination hands transmission back
    /// (payload + checksum + TURN, no header — the circuit is already
    /// established). The NIC closes the circuit with a DROP after the
    /// final segment is acknowledged. The destination must run
    /// [`ReplyPolicy::Conversation`]. `payload_words` is the total
    /// number of payload data words across all segments, recorded in
    /// the final [`MessageOutcome`].
    pub fn enqueue_conversation(
        &mut self,
        dest: usize,
        segments: Vec<Vec<Word>>,
        payload_words: usize,
        now: u64,
    ) {
        assert!(
            !segments.is_empty(),
            "a conversation needs at least one segment"
        );
        self.queue.push_back(QueuedMessage {
            dest,
            payload_words,
            segments,
            requested_at: now,
        });
    }

    /// Whether a message is in flight or queued.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.engines.iter().any(|e| e.active.is_some()) || !self.queue.is_empty()
    }

    /// Messages waiting behind the in-flight one.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Drains the outcomes of completed transactions.
    pub fn take_completed(&mut self) -> Vec<MessageOutcome> {
        std::mem::take(&mut self.completed)
    }

    /// Whether any completed or abandoned outcomes await harvesting —
    /// lets the per-tick harvest skip endpoints with nothing to drain.
    #[must_use]
    pub fn has_outcomes(&self) -> bool {
        !self.completed.is_empty() || !self.abandoned.is_empty()
    }

    /// Drains the outcomes of abandoned transactions (max retries hit).
    pub fn take_abandoned(&mut self) -> Vec<MessageOutcome> {
        std::mem::take(&mut self.abandoned)
    }

    /// Messages delivered *to* this endpoint.
    #[must_use]
    pub fn delivered(&self) -> &[Delivered] {
        &self.delivered
    }

    /// Drains the delivered-message log.
    pub fn take_delivered(&mut self) -> Vec<Delivered> {
        std::mem::take(&mut self.delivered)
    }

    /// Turns failed-attempt evidence collection on or off. Off by
    /// default: under sustained congested load every blocked attempt
    /// would clone its record, so only the self-healing layer enables
    /// this.
    pub fn set_collect_evidence(&mut self, on: bool) {
        self.collect_evidence = on;
        if !on {
            self.evidence.clear();
        }
    }

    /// Drains the failed-attempt evidence collected since the last
    /// drain (empty unless [`Endpoint::set_collect_evidence`] is on).
    pub fn take_evidence(&mut self) -> Vec<AttemptEvidence> {
        std::mem::take(&mut self.evidence)
    }

    /// Masks an output (injection) port: new attempts and retries avoid
    /// it while any unmasked port remains. Refuses (returning `false`)
    /// to mask the last unmasked port — a source must always keep one
    /// way into the network. Masking is advisory, not a hard disable:
    /// if every unmasked port is held by a sibling engine, a masked
    /// port may still be used rather than stalling forever.
    pub fn mask_out_port(&mut self, p: usize) -> bool {
        assert!(p < self.out_ports, "output port {p} out of range");
        if self.port_masked[p] {
            return true;
        }
        if self.port_masked.iter().filter(|&&m| !m).count() <= 1 {
            return false;
        }
        self.port_masked[p] = true;
        true
    }

    /// Unmasks an output port (e.g. after a repair).
    pub fn unmask_out_port(&mut self, p: usize) {
        assert!(p < self.out_ports, "output port {p} out of range");
        self.port_masked[p] = false;
    }

    /// Whether an output port is currently masked.
    #[must_use]
    pub fn out_port_masked(&self, p: usize) -> bool {
        self.port_masked[p]
    }

    /// Advances the endpoint one clock cycle.
    ///
    /// Compatibility wrapper over [`Endpoint::tick_into`] that allocates
    /// a fresh [`EndpointDrive`] per call.
    pub fn tick(&mut self, now: u64, io: &EndpointIo) -> EndpointDrive {
        let mut drive = EndpointDrive {
            out_fwd: vec![Word::Empty; self.out_ports],
            in_rev: vec![Word::Empty; self.rx.len()],
        };
        self.tick_into(
            now,
            &io.out_rev_in,
            &io.out_bcb_in,
            &io.in_fwd_in,
            &mut drive.out_fwd,
            &mut drive.in_rev,
        );
        drive
    }

    /// Advances the endpoint one clock cycle, reading inputs from and
    /// writing outputs to caller-provided slices. The steady-state path
    /// performs no heap allocation.
    ///
    /// `out_rev_in`/`out_bcb_in` are the reverse-lane word and BCB
    /// arriving on each output (injection) port; `in_fwd_in` is the
    /// forward-lane word arriving on each input (delivery) port.
    /// `out_fwd` and `in_rev` are overwritten in full.
    ///
    /// # Panics
    ///
    /// Panics if any slice length disagrees with the port counts.
    pub fn tick_into(
        &mut self,
        now: u64,
        out_rev_in: &[Word],
        out_bcb_in: &[bool],
        in_fwd_in: &[Word],
        out_fwd: &mut [Word],
        in_rev: &mut [Word],
    ) {
        assert_eq!(out_rev_in.len(), self.out_ports);
        assert_eq!(out_bcb_in.len(), self.out_ports);
        assert_eq!(in_fwd_in.len(), self.rx.len());
        assert_eq!(out_fwd.len(), self.out_ports);
        assert_eq!(in_rev.len(), self.rx.len());
        out_fwd.fill(Word::Empty);
        in_rev.fill(Word::Empty);
        if self.dead {
            return;
        }
        for k in 0..self.engines.len() {
            self.tick_engine(k, now, out_rev_in, out_bcb_in, out_fwd);
        }
        self.tick_rx(now, in_fwd_in, in_rev);
    }

    /// Whether output port `p` is owned by no engine other than `k`.
    fn port_free_for(&self, k: usize, p: usize) -> bool {
        self.engines
            .iter()
            .enumerate()
            .all(|(j, e)| j == k || e.active.as_ref().map(|m| m.port) != Some(p))
    }

    /// Number of output ports engine `k` may start or retry on.
    fn count_free_ports(&self, k: usize) -> usize {
        (0..self.out_ports)
            .filter(|&p| self.port_free_for(k, p))
            .count()
    }

    /// Number of output ports engine `k` should choose among: unmasked
    /// free ports when any exist, otherwise all free ports (masking is
    /// advisory — see [`Endpoint::mask_out_port`]).
    fn count_usable_ports(&self, k: usize) -> usize {
        let unmasked = (0..self.out_ports)
            .filter(|&p| !self.port_masked[p] && self.port_free_for(k, p))
            .count();
        if unmasked > 0 {
            unmasked
        } else {
            self.count_free_ports(k)
        }
    }

    /// The `n`-th (in port order) usable output port for engine `k`.
    fn nth_usable_port(&self, k: usize, n: usize) -> usize {
        let any_unmasked =
            (0..self.out_ports).any(|p| !self.port_masked[p] && self.port_free_for(k, p));
        (0..self.out_ports)
            .filter(|&p| self.port_free_for(k, p) && !(any_unmasked && self.port_masked[p]))
            .nth(n)
            .expect("n < count_usable_ports")
    }

    fn tick_engine(
        &mut self,
        k: usize,
        now: u64,
        out_rev_in: &[Word],
        out_bcb_in: &[bool],
        out_fwd: &mut [Word],
    ) {
        let mut eng = std::mem::replace(&mut self.engines[k], TxEngine::idle());
        // Start the next message if idle (and the inter-stream gap has
        // elapsed).
        if eng.active.is_none() && now >= eng.gap_until && !self.queue.is_empty() {
            let nfree = self.count_usable_ports(k);
            if nfree > 0 {
                let QueuedMessage {
                    dest,
                    payload_words,
                    segments,
                    requested_at,
                } = self.queue.pop_front().expect("queue checked non-empty");
                let n = self.rng.index(nfree);
                let port = self.nth_usable_port(k, n);
                eng.active = Some(Box::new(ActiveMessage {
                    dest,
                    payload_words,
                    stream: segments[0].clone(),
                    pending_segments: segments[1..].iter().cloned().collect(),
                    all_segments: segments,
                    requested_at,
                    first_injection_at: None,
                    attempt_started_at: now,
                    retries: 0,
                    failures: Vec::new(),
                    record: DeliveryRecord::default(),
                    failure_records: Vec::new(),
                    port,
                    success_at: None,
                    saw_reverse_activity: false,
                }));
                eng.state = TxState::Sending { idx: 0 };
            }
        }
        let Some(mut msg) = eng.active.take() else {
            self.engines[k] = eng;
            return;
        };

        // Watch the reverse lane and BCB of the active port.
        let rev = out_rev_in[msg.port];
        let bcb = out_bcb_in[msg.port];
        if rev != Word::Empty || bcb {
            msg.saw_reverse_activity = true;
        }
        let mut failure: Option<FailureKind> = None;
        let mut finished = false;

        match eng.state {
            TxState::Idle => unreachable!("active message implies non-idle tx"),
            TxState::Backoff { until } => {
                if now >= until {
                    // Restart the attempt clock *now*: the watchdog
                    // below runs this same tick, and the previous
                    // attempt's start time would trip it immediately.
                    msg.attempt_started_at = now;
                    eng.state = TxState::Sending { idx: 0 };
                }
            }
            TxState::Sending { idx } => {
                if bcb {
                    failure = Some(FailureKind::FastReclaimed);
                } else {
                    if idx == 0 {
                        msg.attempt_started_at = now;
                        if msg.first_injection_at.is_none() {
                            msg.first_injection_at = Some(now);
                        }
                    }
                    out_fwd[msg.port] = msg.stream[idx];
                    if idx + 1 < msg.stream.len() {
                        eng.state = TxState::Sending { idx: idx + 1 };
                    } else if msg.stream.last() == Some(&Word::Drop) && msg.success_at.is_some() {
                        // The closing DROP of a completed conversation
                        // has gone out; the transaction is done.
                        finished = true;
                    } else {
                        eng.state = TxState::Awaiting;
                    }
                }
            }
            TxState::Awaiting => {
                out_fwd[msg.port] = Word::DataIdle;
                if bcb {
                    failure = Some(FailureKind::FastReclaimed);
                } else {
                    match rev {
                        Word::Status(s) => msg.record.statuses.push(s),
                        Word::Checksum(c) => msg.record.checksums.push(c),
                        Word::Data(v) => {
                            if msg.record.ack.is_none() {
                                msg.record.ack = Some(v);
                                if v == ACK_OK && msg.pending_segments.is_empty() {
                                    // Final segment acknowledged.
                                    msg.success_at = Some(now);
                                } else if v == ACK_OK {
                                    // Mid-conversation segment acknowledged;
                                    // clear the slot for the next round's ack.
                                    msg.record.ack = None;
                                }
                            } else {
                                msg.record.reply_words.push(v);
                            }
                        }
                        Word::Turn => {
                            // The destination handed transmission back:
                            // send the next conversation segment (the
                            // closing DROP-only segment after the last).
                            if let Some(seg) = msg.pending_segments.pop_front() {
                                msg.stream = seg;
                                msg.attempt_started_at = now;
                                eng.state = TxState::Sending { idx: 0 };
                            } else if msg.success_at.is_some() {
                                msg.stream = vec![Word::Drop];
                                eng.state = TxState::Sending { idx: 0 };
                            }
                        }
                        Word::Drop | Word::Empty
                            if rev == Word::Drop
                                || msg.success_at.is_some()
                                || !msg.record.statuses.is_empty() =>
                        {
                            // Stream over: classify.
                            if msg.success_at.is_some() {
                                finished = true;
                            } else if let Some(stage) = msg.record.blocked_stage() {
                                failure = Some(FailureKind::Blocked { stage });
                            } else if msg.record.ack == Some(ACK_CORRUPT) {
                                failure = Some(FailureKind::Corrupt);
                            } else {
                                failure = Some(FailureKind::NoAck);
                            }
                        }
                        _ => {}
                    }
                }
            }
            TxState::Aborting { step } => {
                // Force the connection down: one DROP, then release.
                out_fwd[msg.port] = if step == 0 { Word::Drop } else { Word::Empty };
                if step >= 2 {
                    failure = Some(FailureKind::Timeout);
                } else {
                    eng.state = TxState::Aborting { step: step + 1 };
                }
            }
        }

        // Watchdogs: the full completion timeout, and the fast
        // connection-open check — a live first hop shows DATA-IDLE on
        // the reverse lane within a handful of cycles.
        if failure.is_none()
            && !finished
            && !matches!(
                eng.state,
                TxState::Aborting { .. } | TxState::Backoff { .. }
            )
        {
            let elapsed = now.saturating_sub(msg.attempt_started_at);
            let dead_entry = !msg.saw_reverse_activity && elapsed > self.config.open_timeout as u64;
            if elapsed > self.config.timeout as u64 || dead_entry {
                eng.state = TxState::Aborting { step: 0 };
            }
        }

        if let Some(kind) = failure {
            msg.failures.push(kind);
            msg.retries += 1;
            if self.config.capture_failure_records {
                msg.failure_records.push((msg.port, msg.record.clone()));
            }
            if self.collect_evidence {
                self.evidence.push(AttemptEvidence {
                    src: self.id,
                    dest: msg.dest,
                    port: msg.port,
                    kind,
                    record: msg.record.clone(),
                    stream: msg.all_segments[0].clone(),
                    entry_alive: msg.saw_reverse_activity,
                });
            }
            msg.record.reset();
            msg.success_at = None;
            msg.saw_reverse_activity = false;
            msg.stream = msg.all_segments[0].clone();
            msg.pending_segments = msg.all_segments[1..].iter().cloned().collect();
            if self.config.max_retries > 0 && msg.retries >= self.config.max_retries {
                self.abandoned.push(MessageOutcome {
                    src: self.id,
                    dest: msg.dest,
                    requested_at: msg.requested_at,
                    first_injection_at: msg.first_injection_at.unwrap_or(msg.requested_at),
                    completed_at: now,
                    retries: msg.retries,
                    failures: msg.failures,
                    payload_words: msg.payload_words,
                    payload_delivered: Vec::new(),
                    reply_received: Vec::new(),
                    failure_records: msg.failure_records,
                    status: DeliveryStatus::Undeliverable {
                        attempts: msg.retries,
                    },
                });
                eng.state = TxState::Idle;
                eng.gap_until = now + 2;
                self.engines[k] = eng;
                return;
            }
            let backoff = if self.config.retry_backoff_max == 0 {
                0
            } else {
                self.rng.index(self.config.retry_backoff_max + 1)
            };
            // Spread retries over the redundant entry ports too (but
            // never onto a port a sibling engine is using, and avoiding
            // masked ports while unmasked ones are free).
            let nfree = self.count_usable_ports(k);
            if nfree > 0 {
                let n = self.rng.index(nfree);
                msg.port = self.nth_usable_port(k, n);
            }
            // +2 guarantees at least one fully undriven cycle reaches
            // the first-hop router so it can drain the old connection.
            eng.state = TxState::Backoff {
                until: now + 2 + backoff as u64,
            };
            eng.active = Some(msg);
            self.engines[k] = eng;
            return;
        }

        if finished {
            self.completed.push(MessageOutcome {
                src: self.id,
                dest: msg.dest,
                requested_at: msg.requested_at,
                first_injection_at: msg.first_injection_at.unwrap_or(msg.requested_at),
                completed_at: msg.success_at.unwrap_or(now),
                retries: msg.retries,
                failures: msg.failures,
                payload_words: msg.payload_words,
                payload_delivered: Vec::new(),
                reply_received: msg.record.reply_words.clone(),
                failure_records: msg.failure_records,
                status: DeliveryStatus::Delivered,
            });
            eng.state = TxState::Idle;
            eng.gap_until = now + 2;
            self.engines[k] = eng;
            return;
        }

        eng.active = Some(msg);
        self.engines[k] = eng;
    }

    fn tick_rx(&mut self, now: u64, in_fwd_in: &[Word], in_rev: &mut [Word]) {
        for (p, state) in self.rx.iter_mut().enumerate() {
            let word = in_fwd_in[p];
            match state {
                RxState::Idle => match word {
                    Word::Data(v) => {
                        // Hold the reverse lane from the very first word:
                        // the upstream router may reverse on the next
                        // cycle (zero-payload messages), and an Empty
                        // here would read as a teardown.
                        in_rev[p] = Word::DataIdle;
                        let mut cksum = StreamChecksum::new();
                        cksum.absorb_value(v);
                        *state = RxState::Receiving {
                            payload: vec![v],
                            expected: None,
                            cksum,
                        };
                    }
                    Word::Checksum(c) => {
                        in_rev[p] = Word::DataIdle;
                        *state = RxState::Receiving {
                            payload: Vec::new(),
                            expected: Some(c),
                            cksum: StreamChecksum::new(),
                        };
                    }
                    _ => {}
                },
                RxState::Receiving {
                    payload,
                    expected,
                    cksum,
                } => {
                    // Hold the open connection: the upstream router is in
                    // the forward direction and expects DATA-IDLE (not
                    // Empty) on the reverse lane of a live circuit.
                    in_rev[p] = Word::DataIdle;
                    match word {
                        Word::Data(v) => {
                            payload.push(v);
                            cksum.absorb_value(v);
                        }
                        Word::Checksum(c) => *expected = Some(c),
                        Word::DataIdle => {}
                        Word::Turn => {
                            let ok = *expected == Some(cksum.value());
                            let mut queue = VecDeque::new();
                            if ok {
                                self.delivered.push(Delivered {
                                    payload: std::mem::take(payload),
                                    at: now,
                                });
                                match self.config.reply {
                                    ReplyPolicy::Ack => {
                                        queue.push_back(Word::Data(ACK_OK));
                                        queue.push_back(Word::Drop);
                                    }
                                    ReplyPolicy::ReadReply { latency, words } => {
                                        for _ in 0..latency {
                                            queue.push_back(Word::DataIdle);
                                        }
                                        queue.push_back(Word::Data(ACK_OK));
                                        for k in 0..words {
                                            queue.push_back(Word::Data((k as u16) & 0xFF));
                                        }
                                        queue.push_back(Word::Drop);
                                    }
                                    ReplyPolicy::Conversation => {
                                        // Acknowledge and hand transmission
                                        // back; the source closes the circuit.
                                        queue.push_back(Word::Data(ACK_OK));
                                        queue.push_back(Word::Turn);
                                    }
                                }
                            } else {
                                queue.push_back(Word::Data(ACK_CORRUPT));
                                queue.push_back(Word::Drop);
                            }
                            *state = RxState::Replying { queue };
                        }
                        Word::Drop | Word::Empty => {
                            in_rev[p] = Word::Empty;
                            *state = RxState::Idle;
                        }
                        Word::Status(_) => {}
                    }
                }
                RxState::Replying { queue } => {
                    if word == Word::Empty {
                        // Path torn down under us.
                        *state = RxState::Idle;
                        continue;
                    }
                    let out = queue.pop_front().unwrap_or(Word::Drop);
                    in_rev[p] = out;
                    if out == Word::Drop {
                        *state = RxState::Idle;
                    } else if out == Word::Turn {
                        // Receiver again: await the next segment of the
                        // conversation on the still-open circuit.
                        *state = RxState::Receiving {
                            payload: Vec::new(),
                            expected: None,
                            cksum: StreamChecksum::new(),
                        };
                    }
                }
            }
        }
    }
}

impl ActiveMessage {
    fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.dest);
        w.usize(self.payload_words);
        save_stream(w, &self.stream);
        w.usize(self.pending_segments.len());
        for seg in &self.pending_segments {
            save_stream(w, seg);
        }
        save_streams(w, &self.all_segments);
        w.u64(self.requested_at);
        w.opt_u64(self.first_injection_at);
        w.u64(self.attempt_started_at);
        w.usize(self.retries);
        w.usize(self.failures.len());
        for f in &self.failures {
            f.save_state(w);
        }
        self.record.save_state(w);
        w.usize(self.failure_records.len());
        for (port, record) in &self.failure_records {
            w.usize(*port);
            record.save_state(w);
        }
        w.usize(self.port);
        w.opt_u64(self.success_at);
        w.bool(self.saw_reverse_activity);
    }

    fn restore_state(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        let dest = r.usize()?;
        let payload_words = r.usize()?;
        let stream = read_stream(r)?;
        let n = read_count(r, "pending-segment")?;
        let pending_segments = (0..n).map(|_| read_stream(r)).collect::<Result<_, _>>()?;
        let all_segments = read_streams(r)?;
        let requested_at = r.u64()?;
        let first_injection_at = r.opt_u64()?;
        let attempt_started_at = r.u64()?;
        let retries = r.usize()?;
        let n = read_count(r, "failure")?;
        let failures = (0..n)
            .map(|_| FailureKind::restore_state(r))
            .collect::<Result<_, _>>()?;
        let record = DeliveryRecord::restore_state(r)?;
        let n = read_count(r, "failure-record")?;
        let failure_records = (0..n)
            .map(|_| Ok((r.usize()?, DeliveryRecord::restore_state(r)?)))
            .collect::<Result<_, StateError>>()?;
        Ok(Self {
            dest,
            payload_words,
            stream,
            pending_segments,
            all_segments,
            requested_at,
            first_injection_at,
            attempt_started_at,
            retries,
            failures,
            record,
            failure_records,
            port: r.usize()?,
            success_at: r.opt_u64()?,
            saw_reverse_activity: r.bool()?,
        })
    }
}

impl TxEngine {
    fn save_state(&self, w: &mut StateWriter) {
        match self.state {
            TxState::Idle => w.u64(0),
            TxState::Backoff { until } => {
                w.u64(1);
                w.u64(until);
            }
            TxState::Sending { idx } => {
                w.u64(2);
                w.usize(idx);
            }
            TxState::Awaiting => w.u64(3),
            TxState::Aborting { step } => {
                w.u64(4);
                w.usize(step);
            }
        }
        w.u64(self.gap_until);
        match &self.active {
            None => w.bool(false),
            Some(msg) => {
                w.bool(true);
                msg.save_state(w);
            }
        }
    }

    fn restore_state(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        let state = match r.u64()? {
            0 => TxState::Idle,
            1 => TxState::Backoff { until: r.u64()? },
            2 => TxState::Sending { idx: r.usize()? },
            3 => TxState::Awaiting,
            4 => TxState::Aborting { step: r.usize()? },
            k => return Err(bad(format!("{k} is not a transmit state"))),
        };
        let gap_until = r.u64()?;
        let active = if r.bool()? {
            Some(Box::new(ActiveMessage::restore_state(r)?))
        } else {
            None
        };
        if active.is_none() && !matches!(state, TxState::Idle) {
            return Err(bad(String::from(
                "a non-idle transmit state requires an active message",
            )));
        }
        Ok(Self {
            state,
            active,
            gap_until,
        })
    }
}

impl RxState {
    fn save_state(&self, w: &mut StateWriter) {
        match self {
            RxState::Idle => w.u64(0),
            RxState::Receiving {
                payload,
                expected,
                cksum,
            } => {
                w.u64(1);
                save_u16s(w, payload);
                w.opt_u64(expected.map(u64::from));
                w.u64(u64::from(cksum.value()));
            }
            RxState::Replying { queue } => {
                w.u64(2);
                w.usize(queue.len());
                for &word in queue {
                    w.u64(phit::pack(word));
                }
            }
        }
    }

    fn restore_state(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(match r.u64()? {
            0 => RxState::Idle,
            1 => {
                let payload = read_u16s(r).map_err(|e| bad(e.to_string()))?;
                let expected = match r.opt_u64()? {
                    None => None,
                    Some(v) => Some(
                        u16::try_from(v)
                            .map_err(|_| bad(format!("checksum {v} overflows 16 bits")))?,
                    ),
                };
                let sum = r.u64()?;
                let sum = u16::try_from(sum)
                    .map_err(|_| bad(format!("checksum state {sum} overflows 16 bits")))?;
                RxState::Receiving {
                    payload,
                    expected,
                    cksum: StreamChecksum::from_value(sum),
                }
            }
            2 => {
                let n = read_count(r, "reply-queue")?;
                let mut queue = VecDeque::with_capacity(n);
                for _ in 0..n {
                    let cell = r.u64()?;
                    queue.push_back(
                        phit::unpack(cell)
                            .ok_or_else(|| bad(format!("{cell:#x} is not a packed word")))?,
                    );
                }
                RxState::Replying { queue }
            }
            k => return Err(bad(format!("{k} is not a receive state"))),
        })
    }
}

impl Endpoint {
    /// Appends the endpoint's complete mutable state to a checkpoint
    /// stream: the RNG, every transmit engine (including in-flight
    /// messages and retry budgets), the waiting queue, the receive
    /// engines, unharvested outcome/delivery/evidence logs, and the
    /// healing port masks. Identity and configuration (`id`, port
    /// counts, `EndpointConfig`) are rebuilt from the scenario; the
    /// `dead` flag is owned by the fault set, re-applied before restore.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.section("endpoint");
        w.u64(self.rng.state_bits());
        w.usize(self.engines.len());
        for eng in &self.engines {
            eng.save_state(w);
        }
        w.usize(self.queue.len());
        for q in &self.queue {
            w.usize(q.dest);
            w.usize(q.payload_words);
            save_streams(w, &q.segments);
            w.u64(q.requested_at);
        }
        w.usize(self.rx.len());
        for rx in &self.rx {
            rx.save_state(w);
        }
        w.usize(self.completed.len());
        for o in &self.completed {
            o.save_state(w);
        }
        w.usize(self.abandoned.len());
        for o in &self.abandoned {
            o.save_state(w);
        }
        w.usize(self.delivered.len());
        for d in &self.delivered {
            save_u16s(w, &d.payload);
            w.u64(d.at);
        }
        w.usize(self.evidence.len());
        for ev in &self.evidence {
            w.usize(ev.src);
            w.usize(ev.dest);
            w.usize(ev.port);
            ev.kind.save_state(w);
            ev.record.save_state(w);
            save_stream(w, &ev.stream);
            w.bool(ev.entry_alive);
        }
        for &m in &self.port_masked {
            w.bool(m);
        }
    }

    /// Overwrites the endpoint's mutable state from a checkpoint
    /// stream ([`Endpoint::save_state`]'s inverse).
    ///
    /// # Errors
    ///
    /// [`StateError`] on a shape mismatch (engine or port counts differ
    /// from the scenario-built endpoint) or a corrupt stream.
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        r.section("endpoint")?;
        self.rng = RandomSource::from_state_bits(r.u64()?);
        let n = r.usize()?;
        if n != self.engines.len() {
            return Err(bad(format!(
                "saved {n} transmit engines, endpoint has {}",
                self.engines.len()
            )));
        }
        for eng in &mut self.engines {
            *eng = TxEngine::restore_state(r)?;
        }
        let n = read_count(r, "queued-message")?;
        self.queue = (0..n)
            .map(|_| {
                Ok(QueuedMessage {
                    dest: r.usize()?,
                    payload_words: r.usize()?,
                    segments: read_streams(r)?,
                    requested_at: r.u64()?,
                })
            })
            .collect::<Result<_, StateError>>()?;
        let n = r.usize()?;
        if n != self.rx.len() {
            return Err(bad(format!(
                "saved {n} receive engines, endpoint has {}",
                self.rx.len()
            )));
        }
        for rx in &mut self.rx {
            *rx = RxState::restore_state(r)?;
        }
        let n = read_count(r, "completed-outcome")?;
        self.completed = (0..n)
            .map(|_| MessageOutcome::restore_state(r))
            .collect::<Result<_, _>>()?;
        let n = read_count(r, "abandoned-outcome")?;
        self.abandoned = (0..n)
            .map(|_| MessageOutcome::restore_state(r))
            .collect::<Result<_, _>>()?;
        let n = read_count(r, "delivery")?;
        self.delivered = (0..n)
            .map(|_| {
                Ok(Delivered {
                    payload: read_u16s(r)?,
                    at: r.u64()?,
                })
            })
            .collect::<Result<_, StateError>>()?;
        let n = read_count(r, "evidence")?;
        self.evidence = (0..n)
            .map(|_| {
                Ok(AttemptEvidence {
                    src: r.usize()?,
                    dest: r.usize()?,
                    port: r.usize()?,
                    kind: FailureKind::restore_state(r)?,
                    record: DeliveryRecord::restore_state(r)?,
                    stream: read_stream(r)?,
                    entry_alive: r.bool()?,
                })
            })
            .collect::<Result<_, StateError>>()?;
        for m in &mut self.port_masked {
            *m = r.bool()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_for(payload: &[u16]) -> Vec<Word> {
        let mut s = vec![Word::Data(0x00)]; // header word
        let mut ck = StreamChecksum::new();
        for &v in payload {
            s.push(Word::Data(v));
            ck.absorb_value(v);
        }
        s.push(Word::Checksum(ck.value()));
        s.push(Word::Turn);
        s
    }

    #[test]
    fn tx_streams_words_in_order_then_idles() {
        let mut e = Endpoint::new(0, 2, 2, EndpointConfig::default(), 7);
        let payload = vec![1, 2, 3];
        e.enqueue(5, payload.clone(), stream_for(&payload), 0);
        let io = EndpointIo::idle(2, 2);
        let mut sent = Vec::new();
        for now in 0..8 {
            let d = e.tick(now, &io);
            for p in 0..2 {
                if d.out_fwd[p] != Word::Empty {
                    sent.push(d.out_fwd[p]);
                }
            }
        }
        assert_eq!(&sent[..6], &stream_for(&payload)[..]);
        assert!(sent[6..].iter().all(|w| *w == Word::DataIdle));
    }

    #[test]
    fn rx_acks_intact_message_and_records_delivery() {
        let mut e = Endpoint::new(1, 1, 1, EndpointConfig::default(), 3);
        let payload = [7u16, 8, 9];
        let ck = StreamChecksum::over_values(payload);
        let feed = [
            Word::Data(7),
            Word::Data(8),
            Word::Data(9),
            Word::Checksum(ck),
            Word::Turn,
            Word::DataIdle,
            Word::DataIdle,
            Word::DataIdle,
        ];
        let mut replies = Vec::new();
        for (now, w) in feed.iter().enumerate() {
            let io = EndpointIo {
                out_rev_in: vec![Word::Empty],
                out_bcb_in: vec![false],
                in_fwd_in: vec![*w],
            };
            let d = e.tick(now as u64, &io);
            if !matches!(d.in_rev[0], Word::Empty | Word::DataIdle) {
                replies.push(d.in_rev[0]);
            }
        }
        assert_eq!(replies, vec![Word::Data(ACK_OK), Word::Drop]);
        assert_eq!(e.delivered().len(), 1);
        assert_eq!(e.delivered()[0].payload, vec![7, 8, 9]);
    }

    #[test]
    fn rx_nacks_corrupt_message() {
        let mut e = Endpoint::new(1, 1, 1, EndpointConfig::default(), 3);
        let feed = [
            Word::Data(7),
            Word::Data(8),
            Word::Checksum(0xBAD), // wrong
            Word::Turn,
            Word::DataIdle,
            Word::DataIdle,
        ];
        let mut replies = Vec::new();
        for (now, w) in feed.iter().enumerate() {
            let io = EndpointIo {
                out_rev_in: vec![Word::Empty],
                out_bcb_in: vec![false],
                in_fwd_in: vec![*w],
            };
            let d = e.tick(now as u64, &io);
            if !matches!(d.in_rev[0], Word::Empty | Word::DataIdle) {
                replies.push(d.in_rev[0]);
            }
        }
        assert_eq!(replies, vec![Word::Data(ACK_CORRUPT), Word::Drop]);
        assert!(e.delivered().is_empty());
    }

    #[test]
    fn bcb_triggers_retry_on_another_random_port() {
        let mut e = Endpoint::new(0, 2, 2, EndpointConfig::default(), 11);
        e.enqueue(5, vec![1], stream_for(&[1]), 0);
        // First cycle: header goes out.
        let d = e.tick(0, &EndpointIo::idle(2, 2));
        let port = d.out_fwd.iter().position(|w| *w != Word::Empty).unwrap();
        // BCB comes back on that port.
        let mut io = EndpointIo::idle(2, 2);
        io.out_bcb_in[port] = true;
        e.tick(1, &io);
        assert!(e.is_busy(), "message must be retried, not dropped");
        // Eventually it starts sending again from word 0.
        let mut resent = false;
        for now in 2..12 {
            let d = e.tick(now, &EndpointIo::idle(2, 2));
            if d.out_fwd.iter().any(|w| matches!(w, Word::Data(_))) {
                resent = true;
                break;
            }
        }
        assert!(resent);
    }

    #[test]
    fn successful_ack_completes_with_outcome() {
        let mut e = Endpoint::new(0, 1, 1, EndpointConfig::default(), 5);
        e.enqueue(2, vec![4], stream_for(&[4]), 0);
        // Stream: 4 words (H, 4, CK, TURN) on cycles 0..3.
        for now in 0..4 {
            e.tick(now, &EndpointIo::idle(1, 1));
        }
        // Reply arrives: status, checksum, ack, drop.
        let reply = [
            Word::Status(metro_core::StatusWord::connected(0)),
            Word::Checksum(0x1234),
            Word::Data(ACK_OK),
            Word::Drop,
        ];
        for (k, w) in reply.iter().enumerate() {
            let io = EndpointIo {
                out_rev_in: vec![*w],
                out_bcb_in: vec![false],
                in_fwd_in: vec![Word::Empty],
            };
            e.tick(4 + k as u64, &io);
        }
        let done = e.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].dest, 2);
        assert_eq!(done[0].retries, 0);
        assert_eq!(done[0].completed_at, 6);
        assert!(!e.is_busy());
    }

    #[test]
    fn blocked_status_triggers_retry_with_stage() {
        let mut e = Endpoint::new(0, 1, 1, EndpointConfig::default(), 5);
        e.enqueue(2, vec![4], stream_for(&[4]), 0);
        for now in 0..4 {
            e.tick(now, &EndpointIo::idle(1, 1));
        }
        let reply = [
            Word::Status(metro_core::StatusWord::connected(1)),
            Word::Checksum(0),
            Word::Status(metro_core::StatusWord::blocked()),
            Word::Checksum(0),
            Word::Drop,
        ];
        for (k, w) in reply.iter().enumerate() {
            let io = EndpointIo {
                out_rev_in: vec![*w],
                out_bcb_in: vec![false],
                in_fwd_in: vec![Word::Empty],
            };
            e.tick(4 + k as u64, &io);
        }
        assert!(e.is_busy(), "blocked message must retry");
        assert!(e.take_completed().is_empty());
    }

    #[test]
    fn timeout_aborts_and_retries() {
        let cfg = EndpointConfig {
            timeout: 10,
            ..EndpointConfig::default()
        };
        let mut e = Endpoint::new(0, 1, 1, cfg, 5);
        e.enqueue(2, vec![4], stream_for(&[4]), 0);
        let mut saw_drop = false;
        for now in 0..25 {
            let d = e.tick(now, &EndpointIo::idle(1, 1));
            if d.out_fwd[0] == Word::Drop {
                saw_drop = true;
            }
        }
        assert!(saw_drop, "watchdog must force the connection down");
        assert!(e.is_busy(), "and the message must be retried");
    }

    #[test]
    fn max_retries_abandons() {
        let cfg = EndpointConfig {
            timeout: 5,
            max_retries: 2,
            retry_backoff_max: 0,
            ..EndpointConfig::default()
        };
        let mut e = Endpoint::new(0, 1, 1, cfg, 5);
        e.enqueue(2, vec![4], stream_for(&[4]), 0);
        for now in 0..60 {
            e.tick(now, &EndpointIo::idle(1, 1));
        }
        let lost = e.take_abandoned();
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].retries, 2);
        assert!(!e.is_busy());
    }

    #[test]
    fn dead_endpoint_is_silent() {
        let mut e = Endpoint::new(0, 1, 1, EndpointConfig::default(), 5);
        e.enqueue(2, vec![4], stream_for(&[4]), 0);
        e.set_dead(true);
        let d = e.tick(0, &EndpointIo::idle(1, 1));
        assert!(d.out_fwd.iter().all(|w| *w == Word::Empty));
    }

    #[test]
    fn two_engines_transmit_concurrently_on_distinct_ports() {
        let cfg = EndpointConfig {
            max_concurrent: 2,
            ..EndpointConfig::default()
        };
        let mut e = Endpoint::new(0, 2, 2, cfg, 9);
        e.enqueue(3, vec![1], stream_for(&[1]), 0);
        e.enqueue(5, vec![2], stream_for(&[2]), 0);
        let d = e.tick(0, &EndpointIo::idle(2, 2));
        let active: Vec<usize> = (0..2).filter(|&p| d.out_fwd[p] != Word::Empty).collect();
        assert_eq!(
            active.len(),
            2,
            "both ports must carry streams: {:?}",
            d.out_fwd
        );
    }

    #[test]
    fn single_engine_uses_one_port_at_a_time() {
        let mut e = Endpoint::new(0, 2, 2, EndpointConfig::default(), 9);
        e.enqueue(3, vec![1], stream_for(&[1]), 0);
        e.enqueue(5, vec![2], stream_for(&[2]), 0);
        let d = e.tick(0, &EndpointIo::idle(2, 2));
        let active = (0..2).filter(|&p| d.out_fwd[p] != Word::Empty).count();
        assert_eq!(
            active, 1,
            "figure 3 restriction: one entering port at a time"
        );
        assert_eq!(e.queue_len(), 1);
    }

    #[test]
    fn save_restore_resumes_mid_message_bit_identically() {
        let cfg = EndpointConfig {
            timeout: 9,
            retry_backoff_max: 3,
            ..EndpointConfig::default()
        };
        // Drive an endpoint mid-retry-storm (idle inputs: every attempt
        // times out, exercising the RNG, backoff, and abort paths),
        // checkpoint, restore into a fresh twin, and lock-step both.
        let mut live = Endpoint::new(0, 2, 2, cfg, 77);
        live.enqueue(3, vec![1, 2], stream_for(&[1, 2]), 0);
        live.enqueue(5, vec![9], stream_for(&[9]), 4);
        for now in 0..20 {
            live.tick(now, &EndpointIo::idle(2, 2));
        }
        let mut w = StateWriter::new();
        live.save_state(&mut w);
        let words = w.into_words();

        let mut twin = Endpoint::new(0, 2, 2, cfg, 77);
        let mut r = StateReader::new(&words);
        twin.restore_state(&mut r).expect("restore");
        r.finish().expect("no trailing state");

        for now in 20..80 {
            let io = EndpointIo::idle(2, 2);
            assert_eq!(live.tick(now, &io), twin.tick(now, &io), "cycle {now}");
        }
        assert_eq!(live.take_completed(), twin.take_completed());
        assert_eq!(live.take_abandoned(), twin.take_abandoned());
        assert_eq!(live.queue_len(), twin.queue_len());
    }

    #[test]
    fn restore_rejects_an_engine_count_mismatch() {
        let mut one = Endpoint::new(0, 2, 2, EndpointConfig::default(), 7);
        let mut w = StateWriter::new();
        one.save_state(&mut w);
        let words = w.into_words();
        let two = EndpointConfig {
            max_concurrent: 2,
            ..EndpointConfig::default()
        };
        let mut other = Endpoint::new(0, 2, 2, two, 7);
        let mut r = StateReader::new(&words);
        assert!(other.restore_state(&mut r).is_err());
        // And the original still restores cleanly.
        let mut r = StateReader::new(&words);
        one.restore_state(&mut r).expect("self-restore");
    }

    #[test]
    fn read_reply_sends_idle_then_ack_then_words() {
        let cfg = EndpointConfig {
            reply: ReplyPolicy::ReadReply {
                latency: 2,
                words: 3,
            },
            ..EndpointConfig::default()
        };
        let mut e = Endpoint::new(1, 1, 1, cfg, 3);
        let ck = StreamChecksum::over_values([5u16]);
        let feed = [
            Word::Data(5),
            Word::Checksum(ck),
            Word::Turn,
            Word::DataIdle,
            Word::DataIdle,
            Word::DataIdle,
            Word::DataIdle,
            Word::DataIdle,
            Word::DataIdle,
            Word::DataIdle,
        ];
        let mut replies = Vec::new();
        for (now, w) in feed.iter().enumerate() {
            let io = EndpointIo {
                out_rev_in: vec![Word::Empty],
                out_bcb_in: vec![false],
                in_fwd_in: vec![*w],
            };
            let d = e.tick(now as u64, &io);
            if !matches!(d.in_rev[0], Word::Empty | Word::DataIdle) {
                replies.push(d.in_rev[0]);
            }
        }
        assert_eq!(
            replies,
            vec![
                Word::Data(ACK_OK),
                Word::Data(0),
                Word::Data(1),
                Word::Data(2),
                Word::Drop
            ],
            "memory-latency DATA-IDLE fill is filtered by the collector"
        );
    }
}
