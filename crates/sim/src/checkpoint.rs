//! Crash-safe checkpoints: a schema-versioned envelope capturing a
//! scenario run mid-flight, and a resumable runner that continues one
//! bit-identically.
//!
//! A checkpoint is taken at a **tick boundary** — after `sim.tick()`
//! for some cycle `c`, before anything of cycle `c + 1` happens — and
//! records three things:
//!
//! 1. the **scenario** itself (embedded verbatim, plus its
//!    `scenario_hash`), so a checkpoint file is self-contained: resume
//!    needs no side channel to the original `scenarios/*.json`;
//! 2. the **runner position** (`phase`, `cycle`): which loop of
//!    [`run_scenario_resumable`] was executing and how many cycles had
//!    completed;
//! 3. the **machine state** as one flat word stream
//!    ([`NetworkSim::save_state`] followed, for `Load` workloads, by
//!    the [`WorkloadDriver`]'s stream positions), hex-chunked into the
//!    JSON document.
//!
//! The envelope follows the scenario codec's conventions exactly:
//! unknown fields are rejected at every object level, the schema
//! version is checked first, and `checkpoint_hash` is the FNV-1a
//! digest of the rest of the document — a corrupt or truncated file
//! fails loudly at decode, never as a silently divergent resume.
//!
//! Because every component snapshot is taken at a tick boundary and
//! the sharded engine rewrites its `next` arena completely each tick,
//! a checkpoint is **shard-count-agnostic**: a run checkpointed under
//! `shards = 4` resumes bit-identically under `shards = 1` and vice
//! versa. The bit-identity contract — run `N` cycles, checkpoint,
//! restore, run `M` more ≡ run `N + M` straight — is proven by the
//! `checkpoint_identity` proptest suite in `tests/`.

use crate::network::NetworkSim;
use crate::scenario::codec::{self, check_fields, dec_arr, dec_str, dec_u64, err, get, CodecError};
use crate::scenario::{apply_due_injections, Scenario, ScenarioResult, WorkloadSpec};
use crate::workload::{StreamRecipe, StreamSeeds, WorkloadDriver};
use metro_harness::Json;
use metro_telemetry::{StateError, StateReader, StateWriter};

/// The newest checkpoint schema version this build writes and reads.
///
/// Version history:
/// * **1** — original schema: embedded scenario, `(phase, cycle)`
///   runner position, hex-chunked state words.
pub const CHECKPOINT_SCHEMA: u64 = 1;

/// Hex characters per `"state"` array entry. Chunking keeps lines
/// editor- and diff-friendly; the chunk boundaries carry no meaning.
const HEX_CHUNK: usize = 4096;

/// Which loop of the scenario runner a checkpoint was taken in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunPhase {
    /// The driven portion: warmup + measurement for `Load` workloads,
    /// the whole scripted schedule for `Sends`.
    Main,
    /// The post-measurement drain loop (`Load` workloads only).
    Drain,
}

impl RunPhase {
    /// The canonical document spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RunPhase::Main => "main",
            RunPhase::Drain => "drain",
        }
    }

    /// Parses the canonical spelling back.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "main" => Some(RunPhase::Main),
            "drain" => Some(RunPhase::Drain),
            _ => None,
        }
    }
}

/// A complete, self-contained snapshot of one scenario run at a tick
/// boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The scenario being run, embedded verbatim.
    pub scenario: Scenario,
    /// Which runner loop was executing.
    pub phase: RunPhase,
    /// Cycles completed — equivalently, the next cycle index to run.
    pub cycle: u64,
    /// The flat state words: [`NetworkSim::save_state`], then (for
    /// `Load` workloads) [`WorkloadDriver::save_state`].
    pub state: Vec<u64>,
}

impl Checkpoint {
    /// Snapshots a live run. `driver` must be given exactly when the
    /// scenario's workload is [`WorkloadSpec::Load`].
    #[must_use]
    pub fn capture(
        scenario: &Scenario,
        sim: &NetworkSim,
        driver: Option<&WorkloadDriver>,
        phase: RunPhase,
        cycle: u64,
    ) -> Self {
        let mut w = StateWriter::new();
        sim.save_state(&mut w);
        if let Some(d) = driver {
            d.save_state(&mut w);
        }
        Self {
            scenario: scenario.clone(),
            phase,
            cycle,
            state: w.into_words(),
        }
    }

    /// Restores the captured machine state into a freshly built sim
    /// (and driver, for `Load` workloads). The sim must come from
    /// [`NetworkSim::from_scenario`] on this checkpoint's scenario.
    ///
    /// # Errors
    ///
    /// [`StateError`] on a corrupt or mismatched state stream.
    pub fn restore_into(
        &self,
        sim: &mut NetworkSim,
        driver: Option<&mut WorkloadDriver>,
    ) -> Result<(), StateError> {
        let mut r = StateReader::new(&self.state);
        sim.restore_state(&mut r)?;
        if let Some(d) = driver {
            d.restore_state(&mut r)?;
        }
        r.finish()
    }

    /// Encodes the checkpoint as a schema-versioned JSON document. Key
    /// order, hex chunking, and the trailing `checkpoint_hash` are all
    /// fixed, so equal checkpoints render byte-identically — a resumed
    /// run's later checkpoints match the straight run's byte for byte.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj([
            ("checkpoint_schema", Json::from(CHECKPOINT_SCHEMA)),
            ("scenario", codec::encode(&self.scenario)),
            (
                "scenario_hash",
                Json::from(codec::scenario_hash(&self.scenario)),
            ),
            (
                "runner",
                Json::obj([
                    ("phase", Json::from(self.phase.name())),
                    ("cycle", Json::from(self.cycle)),
                ]),
            ),
            (
                "state",
                Json::arr(state_chunks(&self.state).into_iter().map(Json::from)),
            ),
        ]);
        // The digest covers everything above it; appending it last
        // keeps "hash the document minus this field" well-defined.
        doc.set(
            "checkpoint_hash",
            Json::from(format!("{:#018x}", doc.canonical_hash())),
        );
        doc
    }

    /// Decodes a checkpoint document: schema gate, digest check,
    /// embedded-scenario decode (with its own hash cross-checked),
    /// runner-position sanity, state words.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] naming the offending field.
    pub fn from_json(doc: &Json) -> Result<Self, CodecError> {
        check_fields(
            doc,
            &[
                "checkpoint_schema",
                "scenario",
                "scenario_hash",
                "runner",
                "state",
                "checkpoint_hash",
            ],
            "checkpoint",
        )?;
        let schema = dec_u64(
            get(doc, "checkpoint_schema", "checkpoint")?,
            "checkpoint.checkpoint_schema",
        )?;
        if schema == 0 || schema > CHECKPOINT_SCHEMA {
            return err(
                "checkpoint.checkpoint_schema",
                format!(
                    "unsupported schema version {schema} \
                     (this build reads 1..={CHECKPOINT_SCHEMA})"
                ),
            );
        }
        // Integrity first: a flipped bit anywhere in the document is a
        // digest mismatch, not a subtly different restored machine.
        let declared = dec_str(
            get(doc, "checkpoint_hash", "checkpoint")?,
            "checkpoint.checkpoint_hash",
        )?;
        let mut stripped = doc.clone();
        if let Json::Obj(pairs) = &mut stripped {
            pairs.retain(|(k, _)| k != "checkpoint_hash");
        }
        let actual = format!("{:#018x}", stripped.canonical_hash());
        if declared != actual {
            return err(
                "checkpoint.checkpoint_hash",
                format!("digest mismatch: document hashes to {actual}, header says {declared}"),
            );
        }
        let scenario =
            codec::decode(get(doc, "scenario", "checkpoint")?).map_err(|e| CodecError {
                path: format!("checkpoint.{}", e.path),
                message: e.message,
            })?;
        let declared_scenario = dec_str(
            get(doc, "scenario_hash", "checkpoint")?,
            "checkpoint.scenario_hash",
        )?;
        let actual_scenario = codec::scenario_hash(&scenario);
        if declared_scenario != actual_scenario {
            return err(
                "checkpoint.scenario_hash",
                format!(
                    "embedded scenario hashes to {actual_scenario}, \
                     header says {declared_scenario}"
                ),
            );
        }
        let runner = get(doc, "runner", "checkpoint")?;
        check_fields(runner, &["phase", "cycle"], "checkpoint.runner")?;
        let phase_name = dec_str(
            get(runner, "phase", "checkpoint.runner")?,
            "checkpoint.runner.phase",
        )?;
        let Some(phase) = RunPhase::from_name(phase_name) else {
            return err(
                "checkpoint.runner.phase",
                format!("unknown run phase {phase_name:?}"),
            );
        };
        let cycle = dec_u64(
            get(runner, "cycle", "checkpoint.runner")?,
            "checkpoint.runner.cycle",
        )?;
        validate_position(&scenario, phase, cycle)?;
        let state = dec_state(get(doc, "state", "checkpoint")?, "checkpoint.state")?;
        Ok(Self {
            scenario,
            phase,
            cycle,
            state,
        })
    }

    /// Parses and decodes a checkpoint from JSON text.
    ///
    /// # Errors
    ///
    /// Returns the JSON parse diagnostic or the decode error as a
    /// string.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&doc).map_err(|e| e.to_string())
    }
}

/// Rejects runner positions the scenario's own loops could never have
/// produced — a mislabelled or hand-mangled file, caught at decode.
fn validate_position(scenario: &Scenario, phase: RunPhase, cycle: u64) -> Result<(), CodecError> {
    match &scenario.workload {
        WorkloadSpec::Load {
            warmup,
            measure,
            drain,
            ..
        } => {
            let total = warmup + measure;
            let ok = match phase {
                RunPhase::Main => cycle <= total,
                RunPhase::Drain => cycle >= total && cycle <= total + drain,
            };
            if !ok {
                return err(
                    "checkpoint.runner.cycle",
                    format!(
                        "cycle {cycle} is outside the {} phase of a \
                         warmup={warmup} measure={measure} drain={drain} workload",
                        phase.name()
                    ),
                );
            }
        }
        WorkloadSpec::Sends { cycles, .. } => {
            if phase == RunPhase::Drain {
                return err(
                    "checkpoint.runner.phase",
                    "a scripted workload has no drain phase",
                );
            }
            if cycle > *cycles {
                return err(
                    "checkpoint.runner.cycle",
                    format!("cycle {cycle} is beyond the schedule's {cycles} cycles"),
                );
            }
        }
    }
    Ok(())
}

/// Renders the state words as fixed-width hex, split into chunks.
fn state_chunks(words: &[u64]) -> Vec<String> {
    let mut hex = String::with_capacity(words.len() * 16);
    for &w in words {
        use std::fmt::Write as _;
        let _ = write!(hex, "{w:016x}");
    }
    if hex.is_empty() {
        return Vec::new();
    }
    hex.as_bytes()
        .chunks(HEX_CHUNK)
        // Chunk boundaries land on ASCII hex digits, never mid-UTF-8.
        .map(|c| String::from_utf8(c.to_vec()).expect("hex is ASCII"))
        .collect()
}

/// Reassembles the state words from the document's hex chunks.
fn dec_state(doc: &Json, path: &str) -> Result<Vec<u64>, CodecError> {
    let chunks = dec_arr(doc, path)?;
    let mut hex = String::new();
    for (i, c) in chunks.iter().enumerate() {
        hex.push_str(dec_str(c, &format!("{path}[{i}]"))?);
    }
    if !hex.len().is_multiple_of(16) {
        return err(
            path,
            format!(
                "{} hex digits is not a whole number of 64-bit words",
                hex.len()
            ),
        );
    }
    (0..hex.len() / 16)
        .map(|i| {
            u64::from_str_radix(&hex[i * 16..(i + 1) * 16], 16).map_err(|_| CodecError {
                path: path.to_string(),
                message: format!("word {i} is not hex"),
            })
        })
        .collect()
}

/// A checkpoint receiver: called with each periodic snapshot; an error
/// aborts the run (a checkpoint that cannot be persisted is not crash
/// safety).
pub type SinkFn<'a> = dyn FnMut(&Checkpoint) -> Result<(), Box<dyn std::error::Error>> + 'a;

/// A periodic checkpoint request for [`run_scenario_resumable`].
pub struct CheckpointSink<'a> {
    /// Take a checkpoint every this many completed cycles (0 disables).
    pub every: u64,
    /// Receives each checkpoint as it is taken; an error aborts the
    /// run (a checkpoint that cannot be persisted is not crash safety).
    pub sink: &'a mut SinkFn<'a>,
}

impl std::fmt::Debug for CheckpointSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointSink")
            .field("every", &self.every)
            .finish_non_exhaustive()
    }
}

fn take_checkpoint(
    hook: &mut Option<CheckpointSink<'_>>,
    scenario: &Scenario,
    sim: &NetworkSim,
    driver: Option<&WorkloadDriver>,
    phase: RunPhase,
    cycle: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    let Some(h) = hook.as_mut() else {
        return Ok(());
    };
    if h.every == 0 || !cycle.is_multiple_of(h.every) {
        return Ok(());
    }
    let ckpt = Checkpoint::capture(scenario, sim, driver, phase, cycle);
    (h.sink)(&ckpt)
}

/// Resumes a checkpointed run to completion: rebuilds the sim (and
/// driver) from the embedded scenario, restores the captured state,
/// and re-enters the runner loop at the recorded position. The result
/// is bit-identical to the run the checkpoint interrupted.
///
/// # Errors
///
/// Propagates topology validation and state-restore errors.
pub fn resume_scenario(
    ckpt: &Checkpoint,
) -> Result<(ScenarioResult, NetworkSim), Box<dyn std::error::Error>> {
    run_scenario_resumable(&ckpt.scenario, Some(ckpt), None)
}

/// [`resume_scenario`], continuing to take periodic checkpoints — the
/// engine behind `metro resume` when the original run asked for
/// `--checkpoint-every`.
///
/// # Errors
///
/// Propagates topology validation, state-restore, and sink errors.
pub fn resume_scenario_with(
    ckpt: &Checkpoint,
    hook: Option<CheckpointSink<'_>>,
) -> Result<(ScenarioResult, NetworkSim), Box<dyn std::error::Error>> {
    run_scenario_resumable(&ckpt.scenario, Some(ckpt), hook)
}

/// The scenario runner, generalized over a start position and a
/// checkpoint hook. `run_scenario_with_sim` is exactly
/// `run_scenario_resumable(scenario, None, None)`; `metro resume`
/// enters here through [`resume_scenario`].
///
/// Invariants that make resume bit-identical:
///
/// * Checkpoints happen only at tick boundaries, after `sim.tick()`
///   for cycle `c`, recorded as `cycle = c + 1` — the state every
///   component snapshot assumes.
/// * The runner's injection bookkeeping (`active`, `pending`) is
///   **replayed**, not snapshotted: every injection with `at <
///   start_cycle` merges before the loop re-enters. The sim-side
///   fault tables come from the checkpoint itself
///   ([`NetworkSim::restore_state`] re-applies the saved fault set),
///   so the two stay in lock-step with the straight run.
/// * `Sends` schedules are likewise replayed by retaining only the
///   entries the interrupted run had not yet consumed
///   (`at >= start_cycle`).
///
/// # Errors
///
/// Propagates topology validation errors; an analytic-engine scenario
/// is rejected by [`NetworkSim::from_scenario`]. A `resume` checkpoint
/// whose state stream does not fit the scenario-built machine is a
/// [`StateError`].
pub fn run_scenario_resumable(
    scenario: &Scenario,
    resume: Option<&Checkpoint>,
    mut hook: Option<CheckpointSink<'_>>,
) -> Result<(ScenarioResult, NetworkSim), Box<dyn std::error::Error>> {
    let mut sim = NetworkSim::from_scenario(scenario)?;
    let n = sim.topology().endpoints();
    let mut active = scenario.faults.clone();
    let mut pending = scenario.injections.clone();
    pending.sort_by_key(|i| i.at);
    let (start_phase, start_cycle) = match resume {
        Some(c) => (c.phase, c.cycle),
        None => (RunPhase::Main, 0),
    };
    // Replay the injection schedule up to the resume point. The loop
    // below applies injections with `at <= now` at the start of cycle
    // `now`, so everything with `at < start_cycle` has already merged.
    while pending.first().is_some_and(|i| i.at < start_cycle) {
        let injection = pending.remove(0);
        active.merge(&injection.faults);
        injection.repairs.apply_to(&mut active);
    }

    let mut point = None;
    match &scenario.workload {
        WorkloadSpec::Load {
            pattern,
            arrival,
            rates,
            load,
            payload_words,
            warmup,
            measure,
            drain,
        } => {
            let stream_words = sim.stream_for(0, &vec![0; *payload_words]).len();
            let recipe = StreamRecipe {
                arrival,
                rates,
                pattern,
                load: *load,
                stream_words,
                payload_words: *payload_words,
                endpoints: n,
                seeds: StreamSeeds::load(scenario.seed),
            };
            let mut driver = recipe.driver();
            if let Some(c) = resume {
                c.restore_into(&mut sim, Some(&mut driver))?;
            }
            let payload: Vec<u16> = (0..*payload_words).map(|k| k as u16).collect();
            let total = warmup + measure;
            let main_start = match start_phase {
                RunPhase::Main => start_cycle,
                RunPhase::Drain => total,
            };
            for cycle in main_start..total {
                if cycle == *warmup {
                    sim.reset_stats();
                }
                apply_due_injections(&mut sim, &mut pending, &mut active, cycle);
                driver.poll(cycle, |a| {
                    if a.payload_words == payload.len() {
                        sim.send(a.src, a.dest, &payload);
                    } else {
                        // Trace entries may carry their own sizes.
                        let p: Vec<u16> = (0..a.payload_words).map(|k| k as u16).collect();
                        sim.send(a.src, a.dest, &p);
                    }
                });
                sim.tick();
                take_checkpoint(
                    &mut hook,
                    scenario,
                    &sim,
                    Some(&driver),
                    RunPhase::Main,
                    cycle + 1,
                )?;
            }
            let drain_start = match start_phase {
                RunPhase::Drain => start_cycle,
                RunPhase::Main => total,
            };
            for cycle in drain_start..total + drain {
                if sim.is_quiescent() {
                    break;
                }
                apply_due_injections(&mut sim, &mut pending, &mut active, cycle);
                sim.tick();
                take_checkpoint(
                    &mut hook,
                    scenario,
                    &sim,
                    Some(&driver),
                    RunPhase::Drain,
                    cycle + 1,
                )?;
            }
            let stats = sim.stats_mut();
            let delivered = stats.delivered;
            point = Some(crate::experiment::LoadPoint {
                offered: *load,
                accepted: delivered as f64 * stream_words as f64 / *measure as f64 / n as f64,
                mean_latency: stats.total_latency.mean(),
                p50_latency: stats.total_latency.percentile(50.0),
                p95_latency: stats.total_latency.percentile(95.0),
                mean_network_latency: stats.network_latency.mean(),
                retries_per_message: stats.retries_per_message(),
                delivered,
            });
        }
        WorkloadSpec::Sends { sends, cycles } => {
            if let Some(c) = resume {
                c.restore_into(&mut sim, None)?;
            }
            let mut queue = sends.clone();
            queue.sort_by_key(|s| s.at);
            // Sends with `at <= now` are consumed at the start of cycle
            // `now`, so the interrupted run had drained everything
            // scheduled before `start_cycle`.
            queue.retain(|s| s.at >= start_cycle);
            for now in start_cycle..*cycles {
                while let Some(s) = queue.first() {
                    if s.at > now {
                        break;
                    }
                    let s = queue.remove(0);
                    sim.send(s.src % n, s.dest % n, &s.payload);
                }
                apply_due_injections(&mut sim, &mut pending, &mut active, now);
                sim.tick();
                take_checkpoint(&mut hook, scenario, &sim, None, RunPhase::Main, now + 1)?;
            }
        }
    }

    let outcomes = sim.drain_outcomes();
    let payload_words = outcomes.iter().map(|o| o.payload_words).sum();
    let fabric_idle = sim.fabric_idle();
    let telemetry_every = sim.telemetry().interval();
    let stats = sim.stats_mut();
    let result = ScenarioResult {
        delivered: stats.delivered,
        abandoned: stats.abandoned,
        point,
        payload_words,
        fabric_idle,
        telemetry_every,
        outcomes,
    };
    Ok((result, sim))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, SendSpec};
    use crate::traffic::TrafficPattern;
    use crate::workload::{ArrivalProcess, RateMap};
    use metro_topo::fault::{FaultKind, FaultSet};
    use metro_topo::graph::LinkId;
    use metro_topo::multibutterfly::MultibutterflySpec;

    fn load_scenario() -> Scenario {
        let mut faults = FaultSet::new();
        faults.break_link(LinkId::new(0, 1, 0), FaultKind::CorruptData { xor: 0x10 });
        let mut injected = FaultSet::new();
        injected.kill_router(1, 2);
        Scenario {
            name: "ckpt-load".to_string(),
            topology: MultibutterflySpec::figure1(),
            sim: crate::network::SimConfig::default(),
            seed: 0xC4A7,
            faults,
            injections: vec![crate::scenario::FaultInjection {
                at: 150,
                faults: injected,
                repairs: crate::scenario::RepairSet::default(),
            }],
            workload: WorkloadSpec::Load {
                pattern: TrafficPattern::Uniform,
                arrival: ArrivalProcess::Bernoulli,
                rates: RateMap::Uniform,
                load: 0.3,
                payload_words: 7,
                warmup: 100,
                measure: 300,
                drain: 200,
            },
        }
    }

    /// Runs with a single mid-run checkpoint at `at` and returns
    /// (straight result, checkpoint).
    fn checkpoint_at(scenario: &Scenario, at: u64) -> (ScenarioResult, Checkpoint) {
        let mut taken = None;
        let mut sink = |c: &Checkpoint| {
            if c.cycle == at {
                taken = Some(c.clone());
            }
            Ok(())
        };
        let (result, _sim) = run_scenario_resumable(
            scenario,
            None,
            Some(CheckpointSink {
                every: at,
                sink: &mut sink,
            }),
        )
        .unwrap();
        (result, taken.expect("checkpoint at requested cycle"))
    }

    #[test]
    fn resumed_run_matches_the_straight_run_exactly() {
        let s = load_scenario();
        // Checkpoint mid-warmup, mid-measure (after the injection), and
        // straddling the stats reset.
        for at in [60, 100, 250] {
            let (straight, ckpt) = checkpoint_at(&s, at);
            assert_eq!(ckpt.phase, RunPhase::Main);
            let (resumed, _sim) = resume_scenario(&ckpt).unwrap();
            assert_eq!(resumed, straight, "resume at cycle {at} diverged");
        }
    }

    #[test]
    fn resume_crosses_the_drain_boundary() {
        let s = load_scenario();
        // every=401 fires first at cycle 401 — inside the drain loop
        // (total = 400) unless the fabric went quiescent immediately.
        let mut taken = None;
        let mut sink = |c: &Checkpoint| {
            taken.get_or_insert_with(|| c.clone());
            Ok(())
        };
        let (straight, _sim) = run_scenario_resumable(
            &s,
            None,
            Some(CheckpointSink {
                every: 401,
                sink: &mut sink,
            }),
        )
        .unwrap();
        let ckpt = taken.expect("drain-phase checkpoint");
        assert_eq!(ckpt.phase, RunPhase::Drain);
        let (resumed, _sim) = resume_scenario(&ckpt).unwrap();
        assert_eq!(resumed, straight);
    }

    #[test]
    fn scripted_runs_resume_identically() {
        let sends = vec![
            SendSpec {
                at: 0,
                src: 1,
                dest: 6,
                payload: vec![1, 2, 3],
            },
            SendSpec {
                at: 90,
                src: 3,
                dest: 0,
                payload: vec![9; 5],
            },
            SendSpec {
                at: 400,
                src: 5,
                dest: 2,
                payload: vec![4],
            },
        ];
        let s = Scenario::scripted("ckpt-sends", MultibutterflySpec::small8(), sends, 1_200);
        for at in [50, 100, 600] {
            let (straight, ckpt) = checkpoint_at(&s, at);
            let (resumed, _sim) = resume_scenario(&ckpt).unwrap();
            assert_eq!(resumed, straight, "resume at cycle {at} diverged");
        }
    }

    #[test]
    fn a_resumed_runs_later_checkpoints_match_the_straight_runs() {
        let s = load_scenario();
        let mut straight_ckpts = Vec::new();
        let mut sink = |c: &Checkpoint| {
            straight_ckpts.push(c.to_json().render());
            Ok(())
        };
        let (_r, _sim) = run_scenario_resumable(
            &s,
            None,
            Some(CheckpointSink {
                every: 100,
                sink: &mut sink,
            }),
        )
        .unwrap();
        assert!(straight_ckpts.len() >= 4, "{}", straight_ckpts.len());
        // Resume from the first checkpoint and compare every later one
        // byte for byte.
        let first = Checkpoint::from_text(&straight_ckpts[0]).unwrap();
        let mut resumed_ckpts = Vec::new();
        let mut sink = |c: &Checkpoint| {
            resumed_ckpts.push(c.to_json().render());
            Ok(())
        };
        let (_r, _sim) = resume_scenario_with(
            &first,
            Some(CheckpointSink {
                every: 100,
                sink: &mut sink,
            }),
        )
        .unwrap();
        assert_eq!(resumed_ckpts, straight_ckpts[1..].to_vec());
    }

    #[test]
    fn envelope_round_trips_byte_stably() {
        let s = load_scenario();
        let (_straight, ckpt) = checkpoint_at(&s, 120);
        let doc = ckpt.to_json();
        let back = Checkpoint::from_json(&doc).unwrap();
        assert_eq!(back, ckpt);
        let text = doc.render();
        assert_eq!(back.to_json().render(), text);
        assert_eq!(Checkpoint::from_text(&text).unwrap(), ckpt);
    }

    #[test]
    fn corrupt_documents_fail_the_digest_check() {
        let s = load_scenario();
        let (_straight, ckpt) = checkpoint_at(&s, 80);
        let text = ckpt.to_json().render();
        // Flip one state digit (the first chunk's first hex char that
        // has a distinct flip partner).
        let tag = "\"state\": [";
        let i = text.find(tag).unwrap() + tag.len() + 6;
        let orig = text.as_bytes()[i] as char;
        let flipped = if orig == '0' { '1' } else { '0' };
        let mut bytes = text.clone().into_bytes();
        bytes[i] = flipped as u8;
        let corrupt = String::from_utf8(bytes).unwrap();
        let e = Checkpoint::from_text(&corrupt).unwrap_err();
        assert!(e.contains("digest mismatch"), "{e}");
    }

    #[test]
    fn unknown_fields_and_bad_positions_are_rejected() {
        let s = load_scenario();
        let (_straight, ckpt) = checkpoint_at(&s, 80);
        let mut doc = ckpt.to_json();
        doc.set("surprise", Json::from(1u64));
        // Re-stamp the digest so the unknown field itself is reached.
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "checkpoint_hash");
        }
        let h = format!("{:#018x}", doc.canonical_hash());
        doc.set("checkpoint_hash", Json::from(h));
        let e = Checkpoint::from_json(&doc).unwrap_err();
        assert!(e.message.contains("surprise"), "{e:?}");

        // A runner position the workload could never produce.
        let mut bad = ckpt.clone();
        bad.cycle = 10_000;
        let e = Checkpoint::from_json(&bad.to_json()).unwrap_err();
        assert_eq!(e.path, "checkpoint.runner.cycle");

        // Drain phase on a scripted workload.
        let scripted = Scenario::scripted("x", MultibutterflySpec::small8(), vec![], 100);
        let (_r, mut sc) = checkpoint_at(&scripted, 50);
        sc.phase = RunPhase::Drain;
        let e = Checkpoint::from_json(&sc.to_json()).unwrap_err();
        assert_eq!(e.path, "checkpoint.runner.phase");
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let s = load_scenario();
        let (_straight, ckpt) = checkpoint_at(&s, 80);
        let mut doc = ckpt.to_json();
        doc.set("checkpoint_schema", Json::from(2u64));
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "checkpoint_hash");
        }
        let h = format!("{:#018x}", doc.canonical_hash());
        doc.set("checkpoint_hash", Json::from(h));
        let e = Checkpoint::from_json(&doc).unwrap_err();
        assert!(e.message.contains("unsupported schema version"), "{e:?}");
    }

    #[test]
    fn run_scenario_with_sim_is_the_unresumed_runner() {
        let s = load_scenario();
        let plain = run_scenario(&s).unwrap();
        let (via_resumable, _sim) = run_scenario_resumable(&s, None, None).unwrap();
        assert_eq!(plain, via_resumable);
    }
}
