//! The allocation-free flat engine: double-buffered channel arenas
//! walked with precomputed slot indices.
//!
//! One copy of every registered channel value lives in a flat arena
//! indexed by [`FlatLinks`]'s slot scheme; the engine keeps two — `cur`
//! (read by components this cycle) and `next` (written by wires for the
//! coming cycle) — and swaps them once per tick. The steady-state step
//! performs no heap allocation, and fault state is resolved into flat
//! tables in [`Engine::apply_faults`] so the hot path never queries the
//! fault set. With `SimConfig::shards > 1` the same dataflow fans out
//! across cores through [`super::shard`], bit-identically.

use super::{boundary_delay, shard::ShardState, Engine, StepCtx};
use crate::network::SimConfig;
use crate::shard::ShardPlan;
use crate::wire::Wire;
use metro_core::word::phit;
use metro_core::Word;
use metro_telemetry::{StateError, StateReader, StateWriter};
use metro_topo::fault::FaultSet;
use metro_topo::flatlinks::{FlatLinks, FlatTarget};
use metro_topo::graph::LinkId;
use metro_topo::multibutterfly::Multibutterfly;

/// Appends a word lane to a checkpoint stream (length-prefixed packed
/// cells). Shared by both engines' snapshots.
pub(crate) fn save_words(w: &mut StateWriter, lane: &[Word]) {
    w.usize(lane.len());
    for &word in lane {
        w.u64(phit::pack(word));
    }
}

/// Overwrites a word lane from a checkpoint stream, in place.
pub(crate) fn restore_words(r: &mut StateReader<'_>, lane: &mut [Word]) -> Result<(), StateError> {
    let bad = |detail: String| StateError::BadValue {
        section: String::from("arena"),
        detail,
    };
    let n = r.usize()?;
    if n != lane.len() {
        return Err(bad(format!(
            "saved lane of {n}, engine holds {}",
            lane.len()
        )));
    }
    for word in lane.iter_mut() {
        let cell = r.u64()?;
        *word = phit::unpack(cell).ok_or_else(|| bad(format!("{cell:#x} is not a packed word")))?;
    }
    Ok(())
}

/// Appends a BCB lane to a checkpoint stream.
pub(crate) fn save_flags(w: &mut StateWriter, lane: &[bool]) {
    w.usize(lane.len());
    for &b in lane {
        w.bool(b);
    }
}

/// Overwrites a BCB lane from a checkpoint stream, in place.
pub(crate) fn restore_flags(r: &mut StateReader<'_>, lane: &mut [bool]) -> Result<(), StateError> {
    let n = r.usize()?;
    if n != lane.len() {
        return Err(StateError::BadValue {
            section: String::from("arena"),
            detail: format!("saved lane of {n}, engine holds {}", lane.len()),
        });
    }
    for b in lane.iter_mut() {
        *b = r.bool()?;
    }
    Ok(())
}

/// One copy of every registered channel value in the network, indexed
/// by the flat slot scheme of [`FlatLinks`].
#[derive(Debug, Clone)]
pub(crate) struct ChannelArena {
    /// Forward-lane word arriving at each router forward port (fslot).
    pub(crate) fwd_in: Vec<Word>,
    /// Reverse-lane word arriving at each router backward port (bslot).
    pub(crate) rev_in: Vec<Word>,
    /// BCB arriving at each router backward port (bslot).
    pub(crate) bcb_in: Vec<bool>,
    /// Reverse-lane word arriving at each endpoint output port
    /// (ep slot).
    pub(crate) ep_out_rev: Vec<Word>,
    /// BCB arriving at each endpoint output port (ep slot).
    pub(crate) ep_out_bcb: Vec<bool>,
    /// Forward-lane word arriving at each endpoint input port (ep slot).
    pub(crate) ep_in_fwd: Vec<Word>,
}

impl ChannelArena {
    fn idle(links: &FlatLinks) -> Self {
        Self {
            fwd_in: vec![Word::Empty; links.n_fwd_slots()],
            rev_in: vec![Word::Empty; links.n_bwd_slots()],
            bcb_in: vec![false; links.n_bwd_slots()],
            ep_out_rev: vec![Word::Empty; links.n_ep_slots()],
            ep_out_bcb: vec![false; links.n_ep_slots()],
            ep_in_fwd: vec![Word::Empty; links.n_ep_slots()],
        }
    }

    fn save_state(&self, w: &mut StateWriter) {
        save_words(w, &self.fwd_in);
        save_words(w, &self.rev_in);
        save_flags(w, &self.bcb_in);
        save_words(w, &self.ep_out_rev);
        save_flags(w, &self.ep_out_bcb);
        save_words(w, &self.ep_in_fwd);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        restore_words(r, &mut self.fwd_in)?;
        restore_words(r, &mut self.rev_in)?;
        restore_flags(r, &mut self.bcb_in)?;
        restore_words(r, &mut self.ep_out_rev)?;
        restore_flags(r, &mut self.ep_out_bcb)?;
        restore_words(r, &mut self.ep_in_fwd)
    }
}

/// Component outputs computed during the current tick, before the wires
/// consume them. Preallocated once; every slot is overwritten each
/// cycle.
#[derive(Debug, Clone)]
pub(crate) struct DriveBus {
    /// Forward-lane word each router drives out of a backward port
    /// (bslot).
    pub(crate) out_bwd: Vec<Word>,
    /// Reverse-lane word each router drives out of a forward port
    /// (fslot).
    pub(crate) out_fwd: Vec<Word>,
    /// BCB each router drives out of a forward port (fslot).
    pub(crate) out_bcb: Vec<bool>,
    /// Forward-lane word each endpoint drives into the network
    /// (ep slot).
    pub(crate) ep_out_fwd: Vec<Word>,
    /// Reverse-lane reply each endpoint drives at its input side
    /// (ep slot).
    pub(crate) ep_in_rev: Vec<Word>,
}

impl DriveBus {
    fn idle(links: &FlatLinks) -> Self {
        Self {
            out_bwd: vec![Word::Empty; links.n_bwd_slots()],
            out_fwd: vec![Word::Empty; links.n_fwd_slots()],
            out_bcb: vec![false; links.n_fwd_slots()],
            ep_out_fwd: vec![Word::Empty; links.n_ep_slots()],
            ep_in_rev: vec![Word::Empty; links.n_ep_slots()],
        }
    }
}

/// The allocation-free tick engine: flat arenas + precomputed slots.
#[derive(Debug, Clone)]
pub struct FlatEngine {
    pub(crate) links: FlatLinks,
    pub(crate) cur: ChannelArena,
    pub(crate) next: ChannelArena,
    pub(crate) bus: DriveBus,
    /// Injection wires, one per endpoint slot.
    pub(crate) inj_wires: Vec<Wire>,
    /// Inter-stage / delivery wires, one per backward slot.
    pub(crate) stage_wires: Vec<Wire>,
    /// Dead-router flags, flat router numbering; synced from the fault
    /// set in [`Engine::apply_faults`] so the step path never queries
    /// the fault set.
    pub(crate) router_dead: Vec<bool>,
    /// Per-wire [`Wire::is_transparent`] flags (zero delay, no fault):
    /// the step path copies slots directly instead of calling
    /// `advance`. Transparency only changes when faults change, so
    /// these are rebuilt in [`Engine::apply_faults`], never per tick.
    pub(crate) inj_transparent: Vec<bool>,
    pub(crate) stage_transparent: Vec<bool>,
    /// Sharded-step state when `SimConfig.shards` resolved to more
    /// than one shard; `None` runs the classic single-threaded step.
    pub(crate) shard: Option<Box<ShardState>>,
}

impl FlatEngine {
    /// Builds the flat engine for `topo` under `config`, resolving the
    /// shard knob (0 = host parallelism, capped at the router count).
    #[must_use]
    pub(crate) fn build(topo: &Multibutterfly, config: &SimConfig) -> Self {
        let links = FlatLinks::build(topo);
        let inj_wires: Vec<Wire> = (0..links.n_ep_slots())
            .map(|_| Wire::new(boundary_delay(config, 0)))
            .collect();
        let stage_wires: Vec<Wire> = (0..topo.stages())
            .flat_map(|s| {
                let n = topo.routers_in_stage(s) * topo.stage_spec(s).backward_ports;
                std::iter::repeat_n(boundary_delay(config, s + 1), n)
            })
            .map(Wire::new)
            .collect();
        let inj_transparent = inj_wires.iter().map(Wire::is_transparent).collect();
        let stage_transparent = stage_wires.iter().map(Wire::is_transparent).collect();
        // Resolve the shard knob: 0 = host parallelism, then cap at
        // the router count (a shard without routers is pure overhead);
        // one effective shard means the classic single-threaded step.
        let requested = match config.shards {
            0 => metro_harness::default_jobs().get(),
            n => n,
        };
        let effective = requested.min(links.n_routers()).max(1);
        let shard = (effective > 1).then(|| {
            Box::new(ShardState {
                plan: ShardPlan::build(&links, effective),
                pool: None,
                fwd_inj: vec![Word::Empty; links.n_ep_slots()],
                fwd_stage: vec![Word::Empty; links.n_bwd_slots()],
            })
        });
        Self {
            cur: ChannelArena::idle(&links),
            next: ChannelArena::idle(&links),
            bus: DriveBus::idle(&links),
            inj_wires,
            stage_wires,
            router_dead: vec![false; links.n_routers()],
            inj_transparent,
            stage_transparent,
            shard,
            links,
        }
    }

    /// The single-threaded flat cycle: endpoints and routers read
    /// registered inputs from the `cur` arena and drive the bus; wires
    /// consume the bus and write every slot of the `next` arena; the
    /// arenas swap. The swap is sound because every linked slot is
    /// written every cycle (unlinked slots stay `Empty` in both
    /// buffers), and nothing here allocates.
    fn step_single(&mut self, ctx: StepCtx<'_>) {
        let Self {
            links,
            cur,
            next,
            bus,
            inj_wires,
            stage_wires,
            router_dead,
            inj_transparent,
            stage_transparent,
            shard: _,
        } = self;
        let ep = links.ep_ports();

        // 1. Endpoints compute their outputs from last cycle's inputs.
        for (e, endpoint) in ctx.endpoints.iter_mut().enumerate() {
            let lo = e * ep;
            let hi = lo + ep;
            endpoint.tick_into(
                ctx.now,
                &cur.ep_out_rev[lo..hi],
                &cur.ep_out_bcb[lo..hi],
                &cur.ep_in_fwd[lo..hi],
                &mut bus.ep_out_fwd[lo..hi],
                &mut bus.ep_in_rev[lo..hi],
            );
        }

        // 2. Routers compute their outputs.
        for (s, stage) in ctx.routers.iter_mut().enumerate() {
            let nf = links.forward_ports(s);
            let nb = links.backward_ports(s);
            for (r, router) in stage.iter_mut().enumerate() {
                let f0 = links.fslot(s, r, 0);
                let b0 = links.bslot(s, r, 0);
                if router_dead[links.router_index(s, r)] {
                    bus.out_bwd[b0..b0 + nb].fill(Word::Empty);
                    bus.out_fwd[f0..f0 + nf].fill(Word::Empty);
                    bus.out_bcb[f0..f0 + nf].fill(false);
                    continue;
                }
                router.tick_into(
                    &cur.fwd_in[f0..f0 + nf],
                    &cur.rev_in[b0..b0 + nb],
                    &cur.bcb_in[b0..b0 + nb],
                    &mut bus.out_bwd[b0..b0 + nb],
                    &mut bus.out_fwd[f0..f0 + nf],
                    &mut bus.out_bcb[f0..f0 + nf],
                );
            }
        }

        // 3. Wires advance, writing every slot of the next arena.
        // Transparent wires (zero delay, fault-free — the common RN1
        // boundary) are identity functions: copy bus slots straight into
        // the next arena and never touch the `Wire` state.
        for (i, wire) in inj_wires.iter_mut().enumerate() {
            let t = links.inj_target(i);
            let (fwd_o, rev_o, bcb_o) = if inj_transparent[i] {
                (bus.ep_out_fwd[i], bus.out_fwd[t], bus.out_bcb[t])
            } else {
                wire.advance(bus.ep_out_fwd[i], bus.out_fwd[t], bus.out_bcb[t])
            };
            next.fwd_in[t] = fwd_o;
            next.ep_out_rev[i] = rev_o;
            next.ep_out_bcb[i] = bcb_o;
        }
        for (j, wire) in stage_wires.iter_mut().enumerate() {
            match links.bwd_target(j) {
                FlatTarget::Fwd(t) => {
                    let t = t as usize;
                    let (fwd_o, rev_o, bcb_o) = if stage_transparent[j] {
                        (bus.out_bwd[j], bus.out_fwd[t], bus.out_bcb[t])
                    } else {
                        wire.advance(bus.out_bwd[j], bus.out_fwd[t], bus.out_bcb[t])
                    };
                    next.fwd_in[t] = fwd_o;
                    next.rev_in[j] = rev_o;
                    next.bcb_in[j] = bcb_o;
                }
                FlatTarget::Endpoint(i) => {
                    let i = i as usize;
                    let (fwd_o, rev_o) = if stage_transparent[j] {
                        (bus.out_bwd[j], bus.ep_in_rev[i])
                    } else {
                        let (f, r, _) = wire.advance(bus.out_bwd[j], bus.ep_in_rev[i], false);
                        (f, r)
                    };
                    next.ep_in_fwd[i] = fwd_o;
                    next.rev_in[j] = rev_o;
                    next.bcb_in[j] = false;
                }
            }
        }
        std::mem::swap(cur, next);
    }
}

impl Engine for FlatEngine {
    fn step(&mut self, ctx: StepCtx<'_>) {
        if self.shard.is_some() {
            super::shard::step_sharded(self, ctx);
        } else {
            self.step_single(ctx);
        }
    }

    fn wires_quiet(&self) -> bool {
        self.inj_wires
            .iter()
            .chain(self.stage_wires.iter())
            .all(Wire::is_quiet)
    }

    fn probe_wire(&self, stage: usize, router: usize, b: usize) -> Wire {
        self.stage_wires[self.links.bslot(stage, router, b)].clone()
    }

    fn apply_faults(&mut self, topo: &Multibutterfly, faults: &FaultSet) {
        // Resolve the fault set into flat tables here, once, instead
        // of querying it every step.
        for s in 0..topo.stages() {
            for r in 0..topo.routers_in_stage(s) {
                self.router_dead[self.links.router_index(s, r)] = faults.router_dead(s, r);
                for b in 0..topo.stage_spec(s).backward_ports {
                    self.stage_wires[self.links.bslot(s, r, b)]
                        .set_fault(faults.link_fault(LinkId::new(s, r, b)));
                }
            }
        }
        // Transparency follows the fault set; refresh the cached flags
        // in the same pass.
        for (t, w) in self.stage_transparent.iter_mut().zip(&self.stage_wires) {
            *t = w.is_transparent();
        }
    }

    fn shards(&self) -> usize {
        self.shard.as_ref().map_or(1, |s| s.plan.shards())
    }

    fn clone_box(&self) -> Box<dyn Engine> {
        Box::new(self.clone())
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.section("flateng");
        self.cur.save_state(w);
        self.next.save_state(w);
        w.usize(self.inj_wires.len());
        for wire in &self.inj_wires {
            wire.save_state(w);
        }
        w.usize(self.stage_wires.len());
        for wire in &self.stage_wires {
            wire.save_state(w);
        }
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let bad = |detail: String| StateError::BadValue {
            section: String::from("flateng"),
            detail,
        };
        r.section("flateng")?;
        self.cur.restore_state(r)?;
        self.next.restore_state(r)?;
        let n_inj = r.usize()?;
        if n_inj != self.inj_wires.len() {
            return Err(bad(format!(
                "saved {n_inj} injection wires, engine holds {}",
                self.inj_wires.len()
            )));
        }
        for wire in &mut self.inj_wires {
            wire.restore_state(r)?;
        }
        let n_stage = r.usize()?;
        if n_stage != self.stage_wires.len() {
            return Err(bad(format!(
                "saved {n_stage} stage wires, engine holds {}",
                self.stage_wires.len()
            )));
        }
        for wire in &mut self.stage_wires {
            wire.restore_state(r)?;
        }
        Ok(())
    }
}
