//! The engine seam: every way the simulator can advance (or predict)
//! a network lives behind one interface.
//!
//! [`NetworkSim`](crate::network::NetworkSim) is an orchestrator — it
//! owns the routers, endpoints, telemetry, and healing state, and
//! delegates the per-cycle dataflow to an [`Engine`]: [`flat`] (the
//! allocation-free arena engine, optionally sharded across cores by
//! [`shard`]), or [`reference`] (the scalar executable spec). The
//! third [`EngineKind`], [`analytic`], is not a cycle engine at all:
//! it predicts latency distributions from per-stage models instead of
//! ticking, so it is rejected by [`NetworkSim::new`] and dispatched by
//! [`run_scenario`](crate::scenario::run_scenario) to the estimator.
//!
//! The trait is **sealed**: the engine set is a closed, tested family
//! (bit-identical cycle engines plus the estimator), not an extension
//! point. Everything that used to match on engine strings — the
//! scenario codec, the CLI flags, the result emitters — now goes
//! through [`EngineKind::name`] / [`EngineKind::from_name`].

pub mod analytic;
pub mod flat;
pub mod reference;
pub mod shard;

use crate::endpoint::Endpoint;
use crate::wire::Wire;
use metro_core::Router;
use metro_topo::fault::FaultSet;
use metro_topo::multibutterfly::Multibutterfly;

/// Which engine drives (or estimates) the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Flat double-buffered channel arenas walked with precomputed slot
    /// indices ([`metro_topo::flatlinks`]); the steady-state tick path
    /// performs no heap allocation. The default.
    #[default]
    Flat,
    /// The original nested-`Vec` engine, rebuilt buffers each tick.
    /// Retained as the golden reference for equivalence testing and
    /// before/after benchmarking.
    Reference,
    /// The analytic latency estimator: per-stage models clustered by
    /// (dilation, load, fault state) predict latency distributions
    /// without ticking a single cycle ([`analytic`]). Not
    /// cycle-accurate — [`NetworkSim::new`](crate::NetworkSim::new)
    /// and the chaos harness reject it with a typed error; scenario
    /// replay routes it to the estimator.
    Analytic,
}

impl EngineKind {
    /// Every engine kind, in canonical order.
    pub const ALL: [EngineKind; 3] = [
        EngineKind::Flat,
        EngineKind::Reference,
        EngineKind::Analytic,
    ];

    /// The canonical lowercase name — the single spelling used by the
    /// scenario codec, the `--engine` CLI flags, result/manifest
    /// emitters, and telemetry snapshots.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Flat => "flat",
            EngineKind::Reference => "reference",
            EngineKind::Analytic => "analytic",
        }
    }

    /// Parses a canonical engine name ([`Self::name`]'s inverse).
    #[must_use]
    pub fn from_name(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Whether this engine advances the network cycle by cycle.
    /// Cycle-accurate engines are bit-identical to each other and
    /// usable everywhere; the analytic estimator is not, and contexts
    /// that require exactness (chaos campaigns, golden-equivalence
    /// replay, `NetworkSim` itself) reject it with a typed error.
    #[must_use]
    pub fn is_cycle_accurate(self) -> bool {
        !matches!(self, EngineKind::Analytic)
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for EngineKind {
    type Err = UnknownEngine;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::from_name(s).ok_or_else(|| UnknownEngine(s.to_string()))
    }
}

/// Parse error for [`EngineKind::from_str`]: the given name matches no
/// engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownEngine(pub String);

impl std::fmt::Display for UnknownEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown engine {:?} (expected one of: flat, reference, analytic)",
            self.0
        )
    }
}

impl std::error::Error for UnknownEngine {}

/// A context that requires a cycle-accurate engine was handed
/// [`EngineKind::Analytic`]. Returned (never panicked) by
/// [`NetworkSim::new`](crate::NetworkSim::new) and the chaos harness;
/// callers that want an estimate go through
/// [`estimate_scenario`](analytic::estimate_scenario) instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotCycleAccurate {
    /// The rejected engine.
    pub engine: EngineKind,
}

impl std::fmt::Display for NotCycleAccurate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "engine {:?} is not cycle-accurate: it cannot tick a network \
             (use the analytic estimator via scenario replay, or pick flat/reference)",
            self.engine.name()
        )
    }
}

impl std::error::Error for NotCycleAccurate {}

mod sealed {
    /// The engine family is closed: only this crate's engines implement
    /// [`super::Engine`].
    pub trait Sealed {}
    impl Sealed for super::flat::FlatEngine {}
    impl Sealed for super::reference::ReferenceEngine {}
}

/// Everything a cycle engine may touch during one step: the shared
/// component state owned by the orchestrator. Engines read last-tick
/// channel state from their own arenas and drive components through
/// this borrow bundle; they never see telemetry, stats, or healing
/// state.
#[derive(Debug)]
pub struct StepCtx<'a> {
    /// The current clock cycle.
    pub now: u64,
    /// The topology under simulation.
    pub topo: &'a Multibutterfly,
    /// The active fault set (the reference engine queries it per tick;
    /// the flat engine resolves it into tables in
    /// [`Engine::apply_faults`] instead).
    pub faults: &'a FaultSet,
    /// Every router, by `[stage][index]`.
    pub routers: &'a mut [Vec<Router>],
    /// Every endpoint NIC.
    pub endpoints: &'a mut [Endpoint],
}

/// The sealed cycle-engine interface: step the network one clock,
/// report wire quiescence, hand out wire probes for boundary scan, and
/// resolve fault sets. Implemented by [`flat::FlatEngine`] and
/// [`reference::ReferenceEngine`] only (the trait is sealed); the
/// analytic estimator deliberately does **not** implement it — it has
/// no cycles to step.
pub trait Engine: sealed::Sealed + std::fmt::Debug + Send {
    /// Advances the network one clock cycle: endpoints and routers
    /// compute outputs from last-cycle inputs, wires advance, and the
    /// engine's channel state rolls over.
    fn step(&mut self, ctx: StepCtx<'_>);

    /// Whether every wire is quiet (holds no in-flight words) — the
    /// engine's half of the fabric-idle quiesce check.
    fn wires_quiet(&self) -> bool;

    /// A clone of the inter-stage wire out of `(stage, router)`'s
    /// backward port `b`, for behavioral boundary-scan probing. The
    /// clone leaves live traffic untouched.
    fn probe_wire(&self, stage: usize, router: usize, b: usize) -> Wire;

    /// Resolves a newly applied fault set into engine state (the flat
    /// engine refreshes its dead-router table, wire faults, and
    /// transparency cache; the reference engine queries the fault set
    /// per tick and does nothing here).
    fn apply_faults(&mut self, topo: &Multibutterfly, faults: &FaultSet);

    /// The effective shard count the step runs with (1 for every
    /// single-threaded path).
    fn shards(&self) -> usize;

    /// Clones the engine behind the trait object ([`NetworkSim`] is
    /// `Clone`).
    ///
    /// [`NetworkSim`]: crate::network::NetworkSim
    fn clone_box(&self) -> Box<dyn Engine>;

    /// Appends the engine's mutable channel state (arenas and wires)
    /// to a checkpoint stream. Scratch that is fully rewritten every
    /// tick (drive buses, shard staging, worker pools) is not state
    /// and is not written — which is also why a checkpoint taken at a
    /// tick boundary is shard-count-agnostic.
    fn save_state(&self, w: &mut metro_telemetry::StateWriter);

    /// Overwrites the engine's channel state from a checkpoint stream.
    /// Callers must re-apply the active fault set via
    /// [`Engine::apply_faults`] *before* restoring, so wire fault
    /// fields and transparency caches are already consistent.
    ///
    /// # Errors
    ///
    /// [`metro_telemetry::StateError`] on shape mismatch or a corrupt
    /// stream.
    fn restore_state(
        &mut self,
        r: &mut metro_telemetry::StateReader<'_>,
    ) -> Result<(), metro_telemetry::StateError>;
}

impl Clone for Box<dyn Engine> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The pipeline depth of the wire at boundary `b` under `config`:
/// entry 0 is the injection boundary, entry `s + 1` the boundary out
/// of stage `s`. Shared by router parameterization and both engine
/// builders so every component sees one consistent delay map.
#[must_use]
pub(crate) fn boundary_delay(config: &crate::network::SimConfig, b: usize) -> usize {
    config
        .stage_wire_delays
        .as_ref()
        .map_or(config.wire_delay, |d| d[b])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_for_every_kind() {
        for kind in EngineKind::ALL {
            assert_eq!(EngineKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.name().parse::<EngineKind>(), Ok(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(EngineKind::from_name("warp"), None);
        let err = "warp".parse::<EngineKind>().unwrap_err();
        assert!(err.to_string().contains("warp"));
    }

    #[test]
    fn only_the_analytic_kind_lacks_cycle_accuracy() {
        assert!(EngineKind::Flat.is_cycle_accurate());
        assert!(EngineKind::Reference.is_cycle_accurate());
        assert!(!EngineKind::Analytic.is_cycle_accurate());
    }

    #[test]
    fn not_cycle_accurate_error_names_the_engine() {
        let e = NotCycleAccurate {
            engine: EngineKind::Analytic,
        };
        assert!(e.to_string().contains("analytic"));
    }
}
