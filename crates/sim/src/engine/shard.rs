//! The sharded flat step: the flat engine's dataflow fanned out over
//! the [`ShardPlan`]'s disjoint slot ranges with a pool barrier between
//! phases.
//!
//! Phase 1 ticks each shard's endpoints and routers into its bus
//! regions; phase 2 advances each shard's wires, writing reverse/BCB
//! lanes directly into owned `next` regions and staging forward-lane
//! words; phase 3 gathers staged words to their (possibly remote)
//! target slots via the plan's precomputed lists. Every component and
//! wire is ticked exactly once by exactly one shard, all randomness
//! stays inside per-component RNGs, and the orchestrator's
//! telemetry/harvest walk remains sequential in canonical slot order —
//! which is why any shard count is bit-identical to one.

use super::flat::{ChannelArena, DriveBus, FlatEngine};
use super::StepCtx;
use crate::endpoint::Endpoint;
use crate::shard::ShardPlan;
use crate::wire::Wire;
use metro_core::{Router, Word};
use metro_harness::TickPool;
use metro_topo::flatlinks::{FlatLinks, FlatTarget};

/// Everything the sharded flat step needs beyond the engine itself:
/// the topology partition, the persistent worker pool, and the
/// forward-lane staging buffers wires park cross-shard words in
/// between the wire and gather phases.
#[derive(Debug)]
pub(crate) struct ShardState {
    pub(crate) plan: ShardPlan,
    /// Created lazily on the first sharded step (so merely *building*
    /// a sharded sim spawns no threads) and intentionally not cloned —
    /// a cloned sim respins its own pool on its next step.
    pub(crate) pool: Option<TickPool>,
    /// Forward-lane word each injection wire produced this cycle,
    /// indexed by endpoint slot; the gather phase routes it to the
    /// target stage-0 forward slot (which may live on another shard).
    pub(crate) fwd_inj: Vec<Word>,
    /// Forward-lane word each inter-stage/delivery wire produced this
    /// cycle, indexed by backward slot.
    pub(crate) fwd_stage: Vec<Word>,
}

impl Clone for ShardState {
    fn clone(&self) -> Self {
        Self {
            plan: self.plan.clone(),
            pool: None,
            fwd_inj: self.fwd_inj.clone(),
            fwd_stage: self.fwd_stage.clone(),
        }
    }
}

/// Splits `slice` at a shard plan's cut points (a nondecreasing
/// `(shards + 1)`-entry array covering `0..slice.len()`), returning one
/// disjoint mutable subslice per shard — the lock-free write partition
/// the sharded step hands its workers.
fn split_by_cuts<'a, T>(mut slice: &'a mut [T], cuts: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(cuts.len().saturating_sub(1));
    let mut prev = 0usize;
    for &c in &cuts[1..] {
        let (head, tail) = slice.split_at_mut(c - prev);
        out.push(head);
        slice = tail;
        prev = c;
    }
    out
}

/// Phase-1 work package: one shard's endpoints and routers read the
/// shared `cur` arena (last-tick state only — the Moore-machine
/// property that makes partitioned ticking exact) and drive this
/// shard's disjoint bus regions.
struct CompShard<'a> {
    now: u64,
    ep: usize,
    /// First endpoint index / endpoint slot / forward slot / backward
    /// slot this shard owns (global-to-local offsets for the split bus
    /// slices below).
    ep_base: usize,
    eps0: usize,
    f0: usize,
    b0: usize,
    links: &'a FlatLinks,
    cur: &'a ChannelArena,
    router_dead: &'a [bool],
    endpoints: &'a mut [Endpoint],
    /// `(stage, first in-stage router index, routers)` segments tiling
    /// this shard's flat router range.
    routers: Vec<(usize, usize, &'a mut [Router])>,
    ep_out_fwd: &'a mut [Word],
    ep_in_rev: &'a mut [Word],
    out_bwd: &'a mut [Word],
    out_fwd: &'a mut [Word],
    out_bcb: &'a mut [bool],
}

impl CompShard<'_> {
    fn run(&mut self) {
        let ep = self.ep;
        for (i, endpoint) in self.endpoints.iter_mut().enumerate() {
            let g = (self.ep_base + i) * ep;
            let l = g - self.eps0;
            endpoint.tick_into(
                self.now,
                &self.cur.ep_out_rev[g..g + ep],
                &self.cur.ep_out_bcb[g..g + ep],
                &self.cur.ep_in_fwd[g..g + ep],
                &mut self.ep_out_fwd[l..l + ep],
                &mut self.ep_in_rev[l..l + ep],
            );
        }
        for (s, r0, routers) in &mut self.routers {
            let (s, r0) = (*s, *r0);
            let nf = self.links.forward_ports(s);
            let nb = self.links.backward_ports(s);
            for (i, router) in routers.iter_mut().enumerate() {
                let r = r0 + i;
                let fl = self.links.fslot(s, r, 0) - self.f0;
                let bl = self.links.bslot(s, r, 0) - self.b0;
                let fg = fl + self.f0;
                let bg = bl + self.b0;
                if self.router_dead[self.links.router_index(s, r)] {
                    self.out_bwd[bl..bl + nb].fill(Word::Empty);
                    self.out_fwd[fl..fl + nf].fill(Word::Empty);
                    self.out_bcb[fl..fl + nf].fill(false);
                    continue;
                }
                router.tick_into(
                    &self.cur.fwd_in[fg..fg + nf],
                    &self.cur.rev_in[bg..bg + nb],
                    &self.cur.bcb_in[bg..bg + nb],
                    &mut self.out_bwd[bl..bl + nb],
                    &mut self.out_fwd[fl..fl + nf],
                    &mut self.out_bcb[fl..fl + nf],
                );
            }
        }
    }
}

/// Phase-2 work package: this shard's wires read the whole bus
/// (complete after the phase-1 barrier) and write the reverse/BCB
/// lanes straight into the shard's own `next` regions — a wire's
/// backward slot and endpoint slot are its owner's by construction.
/// Only the forward lane can cross shards, so it is parked in the
/// staging buffers for the gather phase.
struct WireShard<'a> {
    eps0: usize,
    b0: usize,
    links: &'a FlatLinks,
    bus: &'a DriveBus,
    inj_transparent: &'a [bool],
    stage_transparent: &'a [bool],
    inj_wires: &'a mut [Wire],
    stage_wires: &'a mut [Wire],
    next_ep_out_rev: &'a mut [Word],
    next_ep_out_bcb: &'a mut [bool],
    next_rev_in: &'a mut [Word],
    next_bcb_in: &'a mut [bool],
    fwd_inj: &'a mut [Word],
    fwd_stage: &'a mut [Word],
}

impl WireShard<'_> {
    fn run(&mut self) {
        for (l, wire) in self.inj_wires.iter_mut().enumerate() {
            let i = self.eps0 + l;
            let t = self.links.inj_target(i);
            let (fwd_o, rev_o, bcb_o) = if self.inj_transparent[i] {
                (
                    self.bus.ep_out_fwd[i],
                    self.bus.out_fwd[t],
                    self.bus.out_bcb[t],
                )
            } else {
                wire.advance(
                    self.bus.ep_out_fwd[i],
                    self.bus.out_fwd[t],
                    self.bus.out_bcb[t],
                )
            };
            self.fwd_inj[l] = fwd_o;
            self.next_ep_out_rev[l] = rev_o;
            self.next_ep_out_bcb[l] = bcb_o;
        }
        for (l, wire) in self.stage_wires.iter_mut().enumerate() {
            let j = self.b0 + l;
            match self.links.bwd_target(j) {
                FlatTarget::Fwd(t) => {
                    let t = t as usize;
                    let (fwd_o, rev_o, bcb_o) = if self.stage_transparent[j] {
                        (
                            self.bus.out_bwd[j],
                            self.bus.out_fwd[t],
                            self.bus.out_bcb[t],
                        )
                    } else {
                        wire.advance(
                            self.bus.out_bwd[j],
                            self.bus.out_fwd[t],
                            self.bus.out_bcb[t],
                        )
                    };
                    self.fwd_stage[l] = fwd_o;
                    self.next_rev_in[l] = rev_o;
                    self.next_bcb_in[l] = bcb_o;
                }
                FlatTarget::Endpoint(i) => {
                    let i = i as usize;
                    let (fwd_o, rev_o) = if self.stage_transparent[j] {
                        (self.bus.out_bwd[j], self.bus.ep_in_rev[i])
                    } else {
                        let (f, r, _) =
                            wire.advance(self.bus.out_bwd[j], self.bus.ep_in_rev[i], false);
                        (f, r)
                    };
                    self.fwd_stage[l] = fwd_o;
                    self.next_rev_in[l] = rev_o;
                    self.next_bcb_in[l] = false;
                }
            }
        }
    }
}

/// Phase-3 work package: copy staged forward-lane words (complete
/// after the phase-2 barrier) into the forward-input and
/// endpoint-input slots this shard owns, walking the plan's
/// precomputed target-owner gather lists.
struct GatherShard<'a> {
    f0: usize,
    eps0: usize,
    fwd_from_inj: &'a [(u32, u32)],
    fwd_from_bwd: &'a [(u32, u32)],
    ep_in_from_bwd: &'a [(u32, u32)],
    fwd_inj: &'a [Word],
    fwd_stage: &'a [Word],
    next_fwd_in: &'a mut [Word],
    next_ep_in_fwd: &'a mut [Word],
}

impl GatherShard<'_> {
    fn run(&mut self) {
        for &(t, i) in self.fwd_from_inj {
            self.next_fwd_in[t as usize - self.f0] = self.fwd_inj[i as usize];
        }
        for &(t, j) in self.fwd_from_bwd {
            self.next_fwd_in[t as usize - self.f0] = self.fwd_stage[j as usize];
        }
        for &(i, j) in self.ep_in_from_bwd {
            self.next_ep_in_fwd[i as usize - self.eps0] = self.fwd_stage[j as usize];
        }
    }
}

/// One sharded flat cycle over `eng`'s shard state (which must be
/// present): three barrier-separated phases on the persistent worker
/// pool, then the arena swap.
pub(crate) fn step_sharded(eng: &mut FlatEngine, ctx: StepCtx<'_>) {
    let FlatEngine {
        links,
        cur,
        next,
        bus,
        inj_wires,
        stage_wires,
        router_dead,
        inj_transparent,
        stage_transparent,
        shard,
    } = eng;
    let state = shard.as_mut().expect("sharded step requires a shard plan");
    let ShardState {
        plan,
        pool,
        fwd_inj,
        fwd_stage,
    } = &mut **state;
    let n = plan.shards();
    let pool = &*pool.get_or_insert_with(|| {
        TickPool::new(std::num::NonZeroUsize::new(n).expect("shard count >= 1"))
    });
    let now = ctx.now;
    let ep = links.ep_ports();
    let links = &*links;
    let router_dead = &router_dead[..];

    // Phase 1: components drive the bus.
    {
        let cur = &*cur;
        let mut eps_it = split_by_cuts(ctx.endpoints, &plan.ep_cut).into_iter();
        // Tile each shard's flat router range into per-stage
        // segments (shard ranges are contiguous in flat router
        // order, so this is one linear walk).
        let mut segs: Vec<Vec<(usize, usize, &mut [Router])>> =
            (0..n).map(|_| Vec::new()).collect();
        {
            let mut k = 0usize;
            let mut flat_base = 0usize;
            for (s, stage) in ctx.routers.iter_mut().enumerate() {
                let stage_len = stage.len();
                let mut rest: &mut [Router] = stage;
                let mut offset = 0usize;
                while !rest.is_empty() {
                    while plan.router_cut[k + 1] <= flat_base + offset {
                        k += 1;
                    }
                    let take = (plan.router_cut[k + 1] - (flat_base + offset)).min(rest.len());
                    let (head, tail) = rest.split_at_mut(take);
                    segs[k].push((s, offset, head));
                    offset += take;
                    rest = tail;
                }
                flat_base += stage_len;
            }
        }
        let mut segs_it = segs.into_iter();
        let mut ep_out_fwd_it = split_by_cuts(&mut bus.ep_out_fwd, &plan.eps_cut).into_iter();
        let mut ep_in_rev_it = split_by_cuts(&mut bus.ep_in_rev, &plan.eps_cut).into_iter();
        let mut out_bwd_it = split_by_cuts(&mut bus.out_bwd, &plan.b_cut).into_iter();
        let mut out_fwd_it = split_by_cuts(&mut bus.out_fwd, &plan.f_cut).into_iter();
        let mut out_bcb_it = split_by_cuts(&mut bus.out_bcb, &plan.f_cut).into_iter();
        let pkgs: Vec<std::sync::Mutex<CompShard>> = (0..n)
            .map(|k| {
                std::sync::Mutex::new(CompShard {
                    now,
                    ep,
                    ep_base: plan.ep_cut[k],
                    eps0: plan.eps_cut[k],
                    f0: plan.f_cut[k],
                    b0: plan.b_cut[k],
                    links,
                    cur,
                    router_dead,
                    endpoints: eps_it.next().expect("one endpoint part per shard"),
                    routers: segs_it.next().expect("one segment list per shard"),
                    ep_out_fwd: ep_out_fwd_it.next().expect("one bus part per shard"),
                    ep_in_rev: ep_in_rev_it.next().expect("one bus part per shard"),
                    out_bwd: out_bwd_it.next().expect("one bus part per shard"),
                    out_fwd: out_fwd_it.next().expect("one bus part per shard"),
                    out_bcb: out_bcb_it.next().expect("one bus part per shard"),
                })
            })
            .collect();
        pool.run(|w| pkgs[w].try_lock().expect("disjoint shard package").run());
    }

    // Phase 2: wires consume the completed bus.
    {
        let bus = &*bus;
        let inj_transparent = &inj_transparent[..];
        let stage_transparent = &stage_transparent[..];
        let ChannelArena {
            rev_in,
            bcb_in,
            ep_out_rev,
            ep_out_bcb,
            ..
        } = &mut *next;
        let mut inj_it = split_by_cuts(inj_wires, &plan.eps_cut).into_iter();
        let mut stage_it = split_by_cuts(stage_wires, &plan.b_cut).into_iter();
        let mut rev_it = split_by_cuts(rev_in, &plan.b_cut).into_iter();
        let mut bcb_it = split_by_cuts(bcb_in, &plan.b_cut).into_iter();
        let mut eor_it = split_by_cuts(ep_out_rev, &plan.eps_cut).into_iter();
        let mut eob_it = split_by_cuts(ep_out_bcb, &plan.eps_cut).into_iter();
        let mut finj_it = split_by_cuts(fwd_inj, &plan.eps_cut).into_iter();
        let mut fstage_it = split_by_cuts(fwd_stage, &plan.b_cut).into_iter();
        let pkgs: Vec<std::sync::Mutex<WireShard>> = (0..n)
            .map(|k| {
                std::sync::Mutex::new(WireShard {
                    eps0: plan.eps_cut[k],
                    b0: plan.b_cut[k],
                    links,
                    bus,
                    inj_transparent,
                    stage_transparent,
                    inj_wires: inj_it.next().expect("one wire part per shard"),
                    stage_wires: stage_it.next().expect("one wire part per shard"),
                    next_ep_out_rev: eor_it.next().expect("one arena part per shard"),
                    next_ep_out_bcb: eob_it.next().expect("one arena part per shard"),
                    next_rev_in: rev_it.next().expect("one arena part per shard"),
                    next_bcb_in: bcb_it.next().expect("one arena part per shard"),
                    fwd_inj: finj_it.next().expect("one staging part per shard"),
                    fwd_stage: fstage_it.next().expect("one staging part per shard"),
                })
            })
            .collect();
        pool.run(|w| pkgs[w].try_lock().expect("disjoint shard package").run());
    }

    // Phase 3: gather staged forward-lane words to their targets.
    {
        let fwd_inj = &fwd_inj[..];
        let fwd_stage = &fwd_stage[..];
        let ChannelArena {
            fwd_in, ep_in_fwd, ..
        } = &mut *next;
        let mut fin_it = split_by_cuts(fwd_in, &plan.f_cut).into_iter();
        let mut eif_it = split_by_cuts(ep_in_fwd, &plan.eps_cut).into_iter();
        let pkgs: Vec<std::sync::Mutex<GatherShard>> = (0..n)
            .map(|k| {
                std::sync::Mutex::new(GatherShard {
                    f0: plan.f_cut[k],
                    eps0: plan.eps_cut[k],
                    fwd_from_inj: &plan.fwd_from_inj[k],
                    fwd_from_bwd: &plan.fwd_from_bwd[k],
                    ep_in_from_bwd: &plan.ep_in_from_bwd[k],
                    fwd_inj,
                    fwd_stage,
                    next_fwd_in: fin_it.next().expect("one arena part per shard"),
                    next_ep_in_fwd: eif_it.next().expect("one arena part per shard"),
                })
            })
            .collect();
        pool.run(|w| pkgs[w].try_lock().expect("disjoint shard package").run());
    }

    std::mem::swap(cur, next);
}
