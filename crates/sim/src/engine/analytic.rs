//! [`EngineKind::Analytic`](crate::EngineKind::Analytic) — the
//! closed-form latency estimator behind the engine seam's third kind.
//!
//! The cycle-accurate engines answer *what happened*; the estimator
//! answers *roughly what would happen* in milliseconds instead of
//! seconds. It never builds routers or wires. The deterministic part of
//! a message's latency is computed exactly from the scenario's topology
//! and [`SimConfig`]; the stochastic part — contention blocking, fast
//! reclamation, fault-induced retries — is sampled from per-stage
//! cluster models with a seeded [`RandomSource`], then folded into the
//! same [`LatencyStats`] histogram the simulator uses, so the output is
//! directly comparable (p50/p95/p99) with a cycle-accurate replay.
//!
//! ## Correspondence to the S13 timing model
//!
//! `metro-timing`'s Table 4 decomposition writes delivery latency as
//! `stages · t_stg + bits · t_bit` with `t_stg = t_on_chip + vtd ·
//! t_clk`. In the simulator's cycle domain the same decomposition holds
//! with `t_clk = 1`: per-stage transit is `dp` (the on-chip pipestage
//! image of `t_on_chip`) plus the boundary wire delay (the `vtd`
//! image), and serialization is one cycle per stream word (the `t_bit`
//! image). [`estimate_scenario`] computes that base exactly — for the
//! Figure 3 fabric it reproduces the paper's ~28-cycle unloaded round
//! trip — and layers the sampled contention terms on top.
//!
//! ## Stage clustering
//!
//! Stages are clustered by [`ClusterKey`] — dilation group, offered-load
//! bucket, active-fault bucket — and each cluster resolves to one
//! [`StageModel`] (blocking probability, reclamation cost, fault-retry
//! pressure). A five-stage metro1k fabric thus shares one model across
//! its four identical dilation-2 stages instead of carrying per-stage
//! state, and two scenarios at the same load bucket see bit-identical
//! stage models.

use crate::experiment::LoadPoint;
use crate::message::{DeliveryStatus, FailureKind, MessageOutcome};
use crate::network::SimConfig;
use crate::scenario::{Scenario, ScenarioResult, SendSpec, WorkloadSpec};
use crate::stats::LatencyStats;
use crate::workload::{StreamRecipe, StreamSeeds};
use metro_core::header::HeaderPlan;
use metro_core::RandomSource;
use metro_topo::multibutterfly::MultibutterflySpec;

use super::boundary_delay;

/// The stream-derivation salt for the estimator's sampling randomness:
/// message `i` of a scenario draws from
/// `RandomSource::new(seed ^ SAMPLE_SALT).derive(i)`, so estimates are
/// reproducible and independent of evaluation order.
const SAMPLE_SALT: u64 = 0xE571_AA7E;

/// Attempt budget the sampler refuses to exceed — a hard stop well
/// above anything the cluster models produce, mirroring the NIC's
/// own watchdog discipline.
const MAX_SAMPLED_ATTEMPTS: usize = 64;

/// What a stage cluster is keyed by: every stage mapping to the same
/// key shares one [`StageModel`]. The key is deliberately coarse —
/// dilation *group* rather than exact shape, load and fault *buckets*
/// rather than raw values — so models are shared across scenarios and
/// the mapping is stable (pinned by unit test) as the corpus grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterKey {
    /// The stage's configured dilation (1 = single-path delivery
    /// stage, ≥2 = multipath stage).
    pub dilation: usize,
    /// Offered load in tenths, rounded, clamped to 0..=10.
    pub load_bucket: u8,
    /// Active-fault pressure: fault count clamped to 0..=8.
    pub fault_bucket: u8,
    /// Arrival burstiness (peak-to-mean rate ratio,
    /// [`crate::workload::ArrivalProcess::burstiness`]), rounded and
    /// clamped to 1..=8. Bucket 1 (memoryless / trace arrivals) leaves
    /// the model exactly as it was before burstiness existed.
    pub burst_bucket: u8,
}

impl ClusterKey {
    /// Clusters one stage under the given offered load (fraction of
    /// injection capacity), active-fault count, and arrival burstiness
    /// (peak-to-mean ratio; 1.0 for memoryless arrivals).
    #[must_use]
    pub fn new(dilation: usize, load: f64, faults: usize, burstiness: f64) -> Self {
        let load_bucket = (load.clamp(0.0, 1.0) * 10.0).round() as u8;
        Self {
            dilation,
            load_bucket,
            fault_bucket: faults.min(8) as u8,
            burst_bucket: burstiness.clamp(1.0, 8.0).round() as u8,
        }
    }

    /// The load fraction at the center of this key's bucket.
    #[must_use]
    fn load(self) -> f64 {
        f64::from(self.load_bucket) / 10.0
    }
}

/// The per-cluster latency model: what one stage of the cluster
/// contributes to an attempt's failure probability and to the cost of
/// recovering from a failure there.
#[derive(Debug, Clone, PartialEq)]
pub struct StageModel {
    /// Probability an attempt is blocked at this stage (per attempt).
    pub block_probability: f64,
    /// Mean cycles a blocked attempt loses at this stage before the
    /// source can retry (BCB reclamation + backoff base).
    pub reclaim_cost: f64,
    /// Probability an attempt is corrupted/eaten by an active fault at
    /// this stage and must retry after a full round trip.
    pub fault_retry_probability: f64,
}

impl StageModel {
    /// Resolves the model for one cluster. The shape is seeded by the
    /// S13 decomposition (recovery costs scale with the stage's transit
    /// share) and the blocking coefficients are calibrated against
    /// cycle-accurate replays of the checked-in scenario corpus.
    #[must_use]
    pub fn for_cluster(key: ClusterKey) -> Self {
        // Bursty sources spend their duty cycle at burstiness × the
        // mean rate, but sources burst independently, so fabric-wide
        // contention grows with a damped image of the peak-to-mean
        // ratio rather than the full ratio (calibrated against
        // cycle-accurate replays of the bursty corpus scenarios).
        // Bucket 1 (memoryless) reduces to the plain bucket-center
        // load, keeping pre-burstiness models bit-identical.
        let burst_factor = 1.0 + (f64::from(key.burst_bucket) - 1.0) / 8.0;
        let rho = (key.load() * burst_factor).min(1.0);
        // Multipath (dilated) stages absorb most contention: the
        // allocator can place a stream on any of `d` distinct copies.
        // The single-path delivery stage is where streams to one
        // destination collide, so its coefficient dominates.
        let block_probability = if key.dilation >= 2 {
            0.06 * rho
        } else {
            0.55 * rho
        };
        // A blocked attempt is detected by fast reclamation (BCB) well
        // before the turn; the loss is a short reclaim window plus the
        // NIC's backoff draw.
        let reclaim_cost = if key.dilation >= 2 { 8.0 } else { 12.0 };
        // Fault pressure: each active faulty element catches a small
        // slice of the path ensemble; dilated stages re-route around
        // dead parts, the delivery stage cannot.
        let per_fault = if key.dilation >= 2 { 0.030 } else { 0.050 };
        let fault_retry_probability = per_fault * f64::from(key.fault_bucket);
        Self {
            block_probability,
            reclaim_cost,
            fault_retry_probability,
        }
    }
}

/// Everything about a scenario the sampler needs, precomputed once:
/// the exact deterministic latency anatomy plus one [`StageModel`] per
/// stage.
#[derive(Debug)]
struct FabricModel {
    /// Header words prepended to every message stream.
    header_words: usize,
    /// One-way deterministic transit: `Σ dp + Σ boundary wire delays`
    /// (the cycle-domain `stages · t_stg` of S13).
    transit: u64,
    /// Cycles from request to first word on the wire when the NIC is
    /// idle (calibrated against the cycle-accurate engines).
    nic_turnaround: u64,
    /// One resolved cluster model per stage, injection side first.
    models: Vec<StageModel>,
}

impl FabricModel {
    fn new(
        spec: &MultibutterflySpec,
        config: &SimConfig,
        load: f64,
        faults: usize,
        burstiness: f64,
    ) -> Self {
        let digit_bits: Vec<usize> = spec.stages.iter().map(|st| st.digit_bits()).collect();
        let plan = HeaderPlan::new(&digit_bits, config.width, config.header_words);
        let stages = spec.stages.len();
        let dp_total = (config.pipestages * stages) as u64;
        let wire_total: u64 = (0..=stages).map(|b| boundary_delay(config, b) as u64).sum();
        let models = spec
            .stages
            .iter()
            .map(|st| {
                StageModel::for_cluster(ClusterKey::new(st.dilation, load, faults, burstiness))
            })
            .collect();
        Self {
            header_words: plan.header_words(),
            transit: dp_total + wire_total,
            nic_turnaround: 2,
            models,
        }
    }

    /// Words on the wire for one message: header + payload + end-to-end
    /// checksum + TURN.
    fn stream_words(&self, payload_words: usize) -> u64 {
        (self.header_words + payload_words + 2) as u64
    }

    /// Unloaded network latency (first injection → acknowledgment):
    /// serialization plus the deterministic transit, out and back.
    fn base_network(&self, payload_words: usize) -> u64 {
        self.stream_words(payload_words) + 2 * self.transit
    }

    /// Per-attempt probability that an active fault corrupts the stream
    /// somewhere along the path.
    fn fault_probability(&self) -> f64 {
        1.0 - self
            .models
            .iter()
            .map(|m| 1.0 - m.fault_retry_probability)
            .product::<f64>()
    }

    /// Samples the stochastic penalty one message pays on top of its
    /// deterministic base, returning `(extra_cycles, failures)`.
    ///
    /// Contention blocking is Bernoulli-sampled from `rng` — load
    /// scenarios have thousands of messages, so the noise averages out.
    /// Fault retries are rare events over often tiny scripted
    /// populations, so they use low-discrepancy sampling instead:
    /// `fault_acc` accumulates the per-message hit probability across
    /// the whole workload and a retry fires exactly when it crosses 1 —
    /// the expected count is realized deterministically rather than
    /// left to the luck of a handful of draws.
    fn sample_penalty(
        &self,
        rng: &mut RandomSource,
        payload_words: usize,
        fault_acc: &mut f64,
    ) -> (u64, Vec<FailureKind>) {
        let mut extra = 0u64;
        let mut failures = Vec::new();
        let round_trip = self.base_network(payload_words) as f64;
        *fault_acc += self.fault_probability();
        if *fault_acc >= 1.0 {
            // Corrupted by an active fault: detected by the
            // destination's end-to-end check, so a full round trip is
            // lost before the retry.
            *fault_acc -= 1.0;
            let backoff = 8.0 * unit(rng);
            extra += (round_trip + backoff) as u64;
            failures.push(FailureKind::Corrupt);
        }
        for attempt in 0..MAX_SAMPLED_ATTEMPTS {
            let mut failed = false;
            for (s, m) in self.models.iter().enumerate() {
                if unit(rng) < m.block_probability {
                    // Blocked mid-fabric: fast reclamation returns a BCB
                    // after the partial outbound transit; the retry adds
                    // a backoff that grows with the attempt index.
                    let partial = round_trip * (s + 1) as f64 / (2.0 * self.models.len() as f64);
                    let backoff = (1 << attempt.min(3)) as f64 * unit(rng);
                    extra += (m.reclaim_cost + partial + backoff) as u64;
                    failures.push(FailureKind::Blocked { stage: s });
                    failed = true;
                    break;
                }
            }
            if !failed {
                break;
            }
        }
        (extra, failures)
    }
}

/// A uniform draw in `[0, 1)` from the simulator's own PRNG.
fn unit(rng: &mut RandomSource) -> f64 {
    rng.bits(32) as f64 / f64::from(u32::MAX)
}

/// A full estimate: the [`ScenarioResult`] plus the raw latency
/// histograms, so callers can query any percentile (the result's
/// [`LoadPoint`] carries p50/p95 only; the histograms answer p99 too).
#[derive(Debug)]
pub struct LatencyEstimate {
    /// The estimated result, shaped like a cycle-accurate replay's.
    pub result: ScenarioResult,
    /// Total-latency samples (request → acknowledgment) from the
    /// statistics window.
    pub total_latency: LatencyStats,
    /// Network-latency samples (first injection → acknowledgment).
    pub network_latency: LatencyStats,
}

/// Estimates a scenario's latency profile without simulating it.
///
/// Dispatched by [`crate::scenario::run_scenario`] when the scenario
/// names [`EngineKind::Analytic`](crate::EngineKind::Analytic); also
/// callable directly on any scenario regardless of its engine field
/// (the estimate describes what a cycle-accurate engine would do).
///
/// # Errors
///
/// Returns an error for scenarios the estimator cannot model (none
/// today; the signature matches `run_scenario` for drop-in dispatch).
pub fn estimate_scenario(
    scenario: &Scenario,
) -> Result<ScenarioResult, Box<dyn std::error::Error>> {
    estimate_latency(scenario).map(|e| e.result)
}

/// [`estimate_scenario`], also handing back the sampled latency
/// histograms for arbitrary percentile queries (p99 and beyond).
///
/// # Errors
///
/// Returns an error for scenarios the estimator cannot model (none
/// today).
pub fn estimate_latency(
    scenario: &Scenario,
) -> Result<LatencyEstimate, Box<dyn std::error::Error>> {
    match &scenario.workload {
        WorkloadSpec::Load { .. } => Ok(estimate_load(scenario)),
        WorkloadSpec::Sends { sends, cycles } => Ok(estimate_sends(scenario, sends, *cycles)),
    }
}

/// Active-fault count over the scenario's life: static faults plus
/// every timed injection's net contribution (injections are cumulative;
/// repairs subtract). One scalar is enough for the cluster key — the
/// estimator models fault *pressure*, not individual elements.
///
/// With self-healing on, the §5.3 loop masks a faulty element after its
/// first piece of evidence, so steady-state pressure is zero: the
/// estimator models the healed fabric, not the transient.
fn fault_pressure(scenario: &Scenario) -> usize {
    if scenario.sim.self_heal {
        return 0;
    }
    let mut merged = scenario.faults.clone();
    for inj in &scenario.injections {
        merged.merge(&inj.faults);
        inj.repairs.apply_to(&mut merged);
    }
    merged.total()
}

/// The estimator's replay of a `Load` workload: arrivals are drawn from
/// the *exact* per-endpoint streams the cycle engines use — the shared
/// [`StreamRecipe::schedule`] rebuilds them from the same seeds and
/// draws — so message counts and request times match the simulation;
/// only each message's service time is sampled from the fabric model
/// instead of simulated.
fn estimate_load(scenario: &Scenario) -> LatencyEstimate {
    let WorkloadSpec::Load {
        pattern,
        arrival,
        rates,
        load,
        payload_words,
        warmup,
        measure,
        drain,
    } = &scenario.workload
    else {
        unreachable!("estimate_load is only dispatched for Load workloads");
    };
    let (load, payload_words) = (*load, *payload_words);
    let (warmup, measure, drain) = (*warmup, *measure, *drain);
    let n = scenario.topology.endpoints;
    let faults = fault_pressure(scenario);
    let total = warmup + measure;
    // The cluster key wants the *offered* load. For generated arrivals
    // that is the spec's load field; for a trace the field is carried
    // but the trace itself is the workload, so measure the channel
    // utilization the recorded entries actually offer.
    let model_load = match arrival {
        crate::workload::ArrivalProcess::Trace(entries) => {
            let offered: u64 = entries
                .iter()
                .filter(|e| e.at < total)
                .map(|e| e.payload_words as u64)
                .sum();
            offered as f64 / (n as u64 * total.max(1)) as f64
        }
        _ => load,
    };
    let fabric = FabricModel::new(
        &scenario.topology,
        &scenario.sim,
        model_load,
        faults,
        arrival.burstiness(),
    );
    let stream_words = fabric.stream_words(payload_words) as usize;

    // Exact arrival replay: the same recipe (seeds, draws, sort order)
    // run_scenario's driver polls, precomputed over the offered window.
    let recipe = StreamRecipe {
        arrival,
        rates,
        pattern,
        load,
        stream_words,
        payload_words,
        endpoints: n,
        seeds: StreamSeeds::load(scenario.seed),
    };
    let arrivals = recipe.schedule(total);

    let horizon = total + drain;
    let mut src_free = vec![0u64; n];
    let mut outcomes = Vec::with_capacity(arrivals.len());
    let mut total_hist = LatencyStats::new();
    let mut network_hist = LatencyStats::new();
    let mut delivered = 0u64;
    let mut retries_total = 0u64;
    let mut in_flight = 0u64;
    let master = RandomSource::new(scenario.seed ^ SAMPLE_SALT);
    let mut fault_acc = 0.0;
    for (i, a) in arrivals.iter().enumerate() {
        let (requested_at, src) = (a.at, a.src);
        let mut rng = master.derive(i as u64);
        // Closed-loop NIC: one outstanding message per source, so a new
        // request waits for the previous completion (this queueing is
        // where load-dependent total latency mostly comes from).
        let first_injection_at =
            (requested_at + fabric.nic_turnaround).max(src_free[src] + fabric.nic_turnaround);
        let (penalty, failures) = fabric.sample_penalty(&mut rng, a.payload_words, &mut fault_acc);
        let network = fabric.base_network(a.payload_words) + penalty;
        let completed_at = first_injection_at + network;
        src_free[src] = completed_at;
        if completed_at > horizon {
            in_flight += 1;
            continue;
        }
        if completed_at >= warmup {
            delivered += 1;
            retries_total += failures.len() as u64;
            total_hist.record(completed_at - requested_at);
            network_hist.record(completed_at - first_injection_at);
        }
        outcomes.push(MessageOutcome {
            src,
            dest: src, // destinations do not change the estimate
            requested_at,
            first_injection_at,
            completed_at,
            retries: failures.len(),
            failures,
            payload_words: a.payload_words,
            payload_delivered: Vec::new(),
            reply_received: Vec::new(),
            failure_records: Vec::new(),
            status: DeliveryStatus::Delivered,
        });
    }

    let point = LoadPoint {
        offered: load,
        accepted: delivered as f64 * stream_words as f64 / measure as f64 / n as f64,
        mean_latency: total_hist.mean(),
        p50_latency: total_hist.percentile(50.0),
        p95_latency: total_hist.percentile(95.0),
        mean_network_latency: network_hist.mean(),
        retries_per_message: if delivered == 0 {
            0.0
        } else {
            retries_total as f64 / delivered as f64
        },
        delivered,
    };
    let payload_total = outcomes.iter().map(|o| o.payload_words).sum();
    LatencyEstimate {
        result: ScenarioResult {
            outcomes,
            delivered,
            abandoned: 0,
            point: Some(point),
            payload_words: payload_total,
            fabric_idle: in_flight == 0,
            telemetry_every: scenario.sim.telemetry_every.max(1),
        },
        total_latency: total_hist,
        network_latency: network_hist,
    }
}

/// The estimator's replay of a scripted `Sends` workload: per-source
/// FIFO serialization is exact (one outstanding message per NIC), the
/// per-message service time is the deterministic base plus a sampled
/// penalty.
fn estimate_sends(scenario: &Scenario, sends: &[SendSpec], cycles: u64) -> LatencyEstimate {
    let n = scenario.topology.endpoints;
    let faults = fault_pressure(scenario);
    // Scripted workloads are sparse; cluster them in the lightest load
    // bucket and let fault pressure drive the stochastic term.
    let fabric = FabricModel::new(&scenario.topology, &scenario.sim, 0.0, faults, 1.0);

    let mut queue: Vec<SendSpec> = sends.to_vec();
    queue.sort_by_key(|s| s.at);
    let mut src_free = vec![0u64; n];
    let mut outcomes = Vec::with_capacity(queue.len());
    let mut total_hist = LatencyStats::new();
    let mut network_hist = LatencyStats::new();
    let mut delivered = 0u64;
    let mut in_flight = 0u64;
    let master = RandomSource::new(scenario.seed ^ SAMPLE_SALT);
    let mut fault_acc = 0.0;
    for (i, s) in queue.iter().enumerate() {
        let src = s.src % n;
        let dest = s.dest % n;
        let mut rng = master.derive(i as u64);
        let first_injection_at =
            (s.at + fabric.nic_turnaround).max(src_free[src] + fabric.nic_turnaround);
        let (penalty, failures) = fabric.sample_penalty(&mut rng, s.payload.len(), &mut fault_acc);
        let network = fabric.base_network(s.payload.len()) + penalty;
        let completed_at = first_injection_at + network;
        src_free[src] = completed_at;
        if completed_at > cycles {
            in_flight += 1;
            continue;
        }
        delivered += 1;
        total_hist.record(completed_at - s.at);
        network_hist.record(completed_at - first_injection_at);
        outcomes.push(MessageOutcome {
            src,
            dest,
            requested_at: s.at,
            first_injection_at,
            completed_at,
            retries: failures.len(),
            failures,
            payload_words: s.payload.len(),
            payload_delivered: Vec::new(),
            reply_received: Vec::new(),
            failure_records: Vec::new(),
            status: DeliveryStatus::Delivered,
        });
    }

    let payload_total = outcomes.iter().map(|o| o.payload_words).sum();
    LatencyEstimate {
        result: ScenarioResult {
            outcomes,
            delivered,
            abandoned: 0,
            point: None,
            payload_words: payload_total,
            fabric_idle: in_flight == 0,
            telemetry_every: scenario.sim.telemetry_every.max(1),
        },
        total_latency: total_hist,
        network_latency: network_hist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SimConfig;
    use metro_topo::multibutterfly::MultibutterflySpec;

    #[test]
    fn cluster_keys_are_pinned() {
        // The clustering function is part of the estimator's contract:
        // changing a bucket boundary silently re-clusters every stage,
        // so the mapping is pinned here.
        assert_eq!(
            ClusterKey::new(2, 0.4, 0, 1.0),
            ClusterKey {
                dilation: 2,
                load_bucket: 4,
                fault_bucket: 0,
                burst_bucket: 1
            }
        );
        assert_eq!(ClusterKey::new(1, 0.15, 3, 1.0).load_bucket, 2);
        assert_eq!(ClusterKey::new(1, 0.14, 3, 1.0).load_bucket, 1);
        assert_eq!(ClusterKey::new(1, 2.0, 99, 1.0).load_bucket, 10);
        assert_eq!(ClusterKey::new(1, 2.0, 99, 1.0).fault_bucket, 8);
        // Burstiness buckets: memoryless pins to 1, bursty sources
        // round their peak-to-mean ratio, clamped at 8.
        assert_eq!(ClusterKey::new(1, 0.4, 0, 1.0).burst_bucket, 1);
        assert_eq!(ClusterKey::new(1, 0.4, 0, 3.0).burst_bucket, 3);
        assert_eq!(ClusterKey::new(1, 0.4, 0, 25.0).burst_bucket, 8);
        // Same key -> bit-identical model.
        assert_eq!(
            StageModel::for_cluster(ClusterKey::new(2, 0.4, 1, 1.0)),
            StageModel::for_cluster(ClusterKey::new(2, 0.4, 1, 1.0)),
        );
        // Burst bucket 1 leaves the model exactly where the
        // pre-burstiness estimator had it (BENCH_estimate pins depend
        // on this).
        assert_eq!(
            StageModel::for_cluster(ClusterKey::new(1, 0.4, 0, 1.0)).block_probability,
            0.55 * 0.4
        );
    }

    #[test]
    fn dilated_stages_block_less_than_delivery_stages() {
        let dilated = StageModel::for_cluster(ClusterKey::new(2, 0.4, 0, 1.0));
        let delivery = StageModel::for_cluster(ClusterKey::new(1, 0.4, 0, 1.0));
        assert!(dilated.block_probability < delivery.block_probability);
        // No load, no faults -> fully deterministic stage.
        let quiet = StageModel::for_cluster(ClusterKey::new(2, 0.0, 0, 1.0));
        assert_eq!(quiet.block_probability, 0.0);
        assert_eq!(quiet.fault_retry_probability, 0.0);
    }

    #[test]
    fn burstier_clusters_block_more_until_saturation() {
        let calm = StageModel::for_cluster(ClusterKey::new(1, 0.2, 0, 1.0));
        let bursty = StageModel::for_cluster(ClusterKey::new(1, 0.2, 0, 4.0));
        assert!(bursty.block_probability > calm.block_probability);
        // The effective load saturates at capacity.
        let saturated = StageModel::for_cluster(ClusterKey::new(1, 0.9, 0, 8.0));
        assert_eq!(saturated.block_probability, 0.55);
    }

    #[test]
    fn figure3_base_reproduces_the_28_cycle_unloaded_round_trip() {
        let fabric = FabricModel::new(
            &MultibutterflySpec::figure3(),
            &SimConfig::default(),
            0.0,
            0,
            1.0,
        );
        // 1 header word + 19 payload + checksum + TURN = 22 words,
        // plus 3 pipestages out and back: the paper's ~28 cycles.
        assert_eq!(fabric.base_network(19), 28);
    }

    #[test]
    fn estimates_are_deterministic() {
        let s = Scenario::scripted(
            "det",
            MultibutterflySpec::small8(),
            vec![SendSpec {
                at: 0,
                src: 1,
                dest: 6,
                payload: vec![1, 2, 3],
            }],
            500,
        );
        let a = estimate_scenario(&s).unwrap();
        let b = estimate_scenario(&s).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.delivered, 1);
        assert!(a.fabric_idle);
    }
}
