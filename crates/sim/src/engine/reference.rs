//! The original nested-`Vec` engine, retained verbatim as the golden
//! reference: per-tick buffer allocation, topology lookups, and
//! fault-set queries. Deliberately scalar and simple — it is the
//! executable spec the flat engine is proven bit-identical against.

use super::flat::{restore_flags, restore_words, save_flags, save_words};
use super::{boundary_delay, Engine, StepCtx};
use crate::endpoint::EndpointIo;
use crate::network::SimConfig;
use crate::wire::Wire;
use metro_core::{BwdIn, FwdIn, TickOutput, Word};
use metro_telemetry::{StateError, StateReader, StateWriter};
use metro_topo::fault::FaultSet;
use metro_topo::graph::{LinkId, LinkTarget};
use metro_topo::multibutterfly::Multibutterfly;

/// Checks a saved collection count against the live engine's shape.
fn check_len(saved: usize, live: usize, what: &str) -> Result<(), StateError> {
    if saved == live {
        Ok(())
    } else {
        Err(StateError::BadValue {
            section: String::from("refeng"),
            detail: format!("saved {saved} {what}, engine holds {live}"),
        })
    }
}

/// The original engine: nested `Vec` buffers rebuilt each tick, with
/// per-tick topology and fault lookups.
#[derive(Debug, Clone)]
pub struct ReferenceEngine {
    inj_wires: Vec<Vec<Wire>>,
    stage_wires: Vec<Vec<Vec<Wire>>>,
    fwd_in: Vec<Vec<Vec<Word>>>,
    rev_in: Vec<Vec<Vec<Word>>>,
    bcb_in: Vec<Vec<Vec<bool>>>,
    ep_out_rev: Vec<Vec<Word>>,
    ep_out_bcb: Vec<Vec<bool>>,
    ep_in_fwd: Vec<Vec<Word>>,
}

impl ReferenceEngine {
    /// Builds the nested-`Vec` engine for `topo` under `config`.
    #[must_use]
    pub(crate) fn build(topo: &Multibutterfly, config: &SimConfig) -> Self {
        let ep = topo.endpoint_ports();
        Self {
            inj_wires: (0..topo.endpoints())
                .map(|_| {
                    (0..ep)
                        .map(|_| Wire::new(boundary_delay(config, 0)))
                        .collect()
                })
                .collect(),
            stage_wires: (0..topo.stages())
                .map(|s| {
                    (0..topo.routers_in_stage(s))
                        .map(|_| {
                            (0..topo.stage_spec(s).backward_ports)
                                .map(|_| Wire::new(boundary_delay(config, s + 1)))
                                .collect()
                        })
                        .collect()
                })
                .collect(),
            fwd_in: (0..topo.stages())
                .map(|s| {
                    vec![
                        vec![Word::Empty; topo.stage_spec(s).forward_ports];
                        topo.routers_in_stage(s)
                    ]
                })
                .collect(),
            rev_in: (0..topo.stages())
                .map(|s| {
                    vec![
                        vec![Word::Empty; topo.stage_spec(s).backward_ports];
                        topo.routers_in_stage(s)
                    ]
                })
                .collect(),
            bcb_in: (0..topo.stages())
                .map(|s| {
                    vec![vec![false; topo.stage_spec(s).backward_ports]; topo.routers_in_stage(s)]
                })
                .collect(),
            ep_out_rev: vec![vec![Word::Empty; ep]; topo.endpoints()],
            ep_out_bcb: vec![vec![false; ep]; topo.endpoints()],
            ep_in_fwd: vec![vec![Word::Empty; ep]; topo.endpoints()],
        }
    }
}

impl Engine for ReferenceEngine {
    /// The original engine's cycle, kept verbatim: per-tick buffer
    /// allocation, topology lookups, and fault-set queries.
    fn step(&mut self, ctx: StepCtx<'_>) {
        let stages = ctx.topo.stages();
        let ep = ctx.topo.endpoint_ports();

        // 1. Endpoints compute their outputs from last cycle's inputs.
        let mut ep_drive = Vec::with_capacity(ctx.endpoints.len());
        for (e, endpoint) in ctx.endpoints.iter_mut().enumerate() {
            let io = EndpointIo {
                out_rev_in: self.ep_out_rev[e].clone(),
                out_bcb_in: self.ep_out_bcb[e].clone(),
                in_fwd_in: self.ep_in_fwd[e].clone(),
            };
            ep_drive.push(endpoint.tick(ctx.now, &io));
        }

        // 2. Routers compute their outputs.
        let mut router_out: Vec<Vec<TickOutput>> = Vec::with_capacity(stages);
        for s in 0..stages {
            let st = ctx.topo.stage_spec(s);
            let mut stage_out = Vec::with_capacity(ctx.routers[s].len());
            for r in 0..ctx.routers[s].len() {
                if ctx.faults.router_dead(s, r) {
                    stage_out.push(TickOutput {
                        bwd: vec![Word::Empty; st.backward_ports],
                        fwd: vec![Word::Empty; st.forward_ports],
                        bcb: vec![false; st.forward_ports],
                    });
                    continue;
                }
                let fwd = FwdIn::data(&self.fwd_in[s][r]);
                let bwd = BwdIn::new(&self.rev_in[s][r], &self.bcb_in[s][r]);
                stage_out.push(ctx.routers[s][r].tick(&fwd, &bwd));
            }
            router_out.push(stage_out);
        }

        // 3. Wires advance; next-cycle input buffers are rebuilt.
        for (e, drive) in ep_drive.iter().enumerate() {
            for p in 0..ep {
                let (r0, f0) = ctx.topo.injection(e, p);
                let (fwd_o, rev_o, bcb_o) = self.inj_wires[e][p].advance(
                    drive.out_fwd[p],
                    router_out[0][r0].fwd[f0],
                    router_out[0][r0].bcb[f0],
                );
                self.fwd_in[0][r0][f0] = fwd_o;
                self.ep_out_rev[e][p] = rev_o;
                self.ep_out_bcb[e][p] = bcb_o;
            }
        }
        for s in 0..stages {
            let st = ctx.topo.stage_spec(s);
            for r in 0..ctx.routers[s].len() {
                for b in 0..st.backward_ports {
                    let fault = ctx.faults.link_fault(LinkId::new(s, r, b));
                    self.stage_wires[s][r][b].set_fault(fault);
                    match ctx.topo.link(s, r, b) {
                        LinkTarget::Router { router, port } => {
                            let (fwd_o, rev_o, bcb_o) = self.stage_wires[s][r][b].advance(
                                router_out[s][r].bwd[b],
                                router_out[s + 1][router].fwd[port],
                                router_out[s + 1][router].bcb[port],
                            );
                            self.fwd_in[s + 1][router][port] = fwd_o;
                            self.rev_in[s][r][b] = rev_o;
                            self.bcb_in[s][r][b] = bcb_o;
                        }
                        LinkTarget::Endpoint { endpoint, port } => {
                            let (fwd_o, rev_o, _) = self.stage_wires[s][r][b].advance(
                                router_out[s][r].bwd[b],
                                ep_drive[endpoint].in_rev[port],
                                false,
                            );
                            self.ep_in_fwd[endpoint][port] = fwd_o;
                            self.rev_in[s][r][b] = rev_o;
                            self.bcb_in[s][r][b] = false;
                        }
                    }
                }
            }
        }
    }

    fn wires_quiet(&self) -> bool {
        self.inj_wires
            .iter()
            .flatten()
            .chain(self.stage_wires.iter().flatten().flatten())
            .all(Wire::is_quiet)
    }

    fn probe_wire(&self, stage: usize, router: usize, b: usize) -> Wire {
        self.stage_wires[stage][router][b].clone()
    }

    fn apply_faults(&mut self, _topo: &Multibutterfly, _faults: &FaultSet) {
        // The reference engine queries the fault set per tick (the
        // verbatim original behavior), so there is nothing to resolve.
    }

    fn shards(&self) -> usize {
        1
    }

    fn clone_box(&self) -> Box<dyn Engine> {
        Box::new(self.clone())
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.section("refeng");
        w.usize(self.inj_wires.len());
        for per_ep in &self.inj_wires {
            w.usize(per_ep.len());
            for wire in per_ep {
                wire.save_state(w);
            }
        }
        w.usize(self.stage_wires.len());
        for per_stage in &self.stage_wires {
            w.usize(per_stage.len());
            for per_router in per_stage {
                w.usize(per_router.len());
                for wire in per_router {
                    wire.save_state(w);
                }
            }
        }
        for field in [&self.fwd_in, &self.rev_in] {
            w.usize(field.len());
            for per_stage in field {
                w.usize(per_stage.len());
                for lane in per_stage {
                    save_words(w, lane);
                }
            }
        }
        w.usize(self.bcb_in.len());
        for per_stage in &self.bcb_in {
            w.usize(per_stage.len());
            for lane in per_stage {
                save_flags(w, lane);
            }
        }
        w.usize(self.ep_out_rev.len());
        for lane in &self.ep_out_rev {
            save_words(w, lane);
        }
        w.usize(self.ep_out_bcb.len());
        for lane in &self.ep_out_bcb {
            save_flags(w, lane);
        }
        w.usize(self.ep_in_fwd.len());
        for lane in &self.ep_in_fwd {
            save_words(w, lane);
        }
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        r.section("refeng")?;
        check_len(r.usize()?, self.inj_wires.len(), "injection endpoints")?;
        for per_ep in &mut self.inj_wires {
            check_len(r.usize()?, per_ep.len(), "injection wires")?;
            for wire in per_ep {
                wire.restore_state(r)?;
            }
        }
        check_len(r.usize()?, self.stage_wires.len(), "wire stages")?;
        for per_stage in &mut self.stage_wires {
            check_len(r.usize()?, per_stage.len(), "wire routers")?;
            for per_router in per_stage {
                check_len(r.usize()?, per_router.len(), "stage wires")?;
                for wire in per_router {
                    wire.restore_state(r)?;
                }
            }
        }
        for field in [&mut self.fwd_in, &mut self.rev_in] {
            check_len(r.usize()?, field.len(), "word stages")?;
            for per_stage in field.iter_mut() {
                check_len(r.usize()?, per_stage.len(), "word routers")?;
                for lane in per_stage {
                    restore_words(r, lane)?;
                }
            }
        }
        check_len(r.usize()?, self.bcb_in.len(), "bcb stages")?;
        for per_stage in &mut self.bcb_in {
            check_len(r.usize()?, per_stage.len(), "bcb routers")?;
            for lane in per_stage {
                restore_flags(r, lane)?;
            }
        }
        check_len(r.usize()?, self.ep_out_rev.len(), "endpoint rev lanes")?;
        for lane in &mut self.ep_out_rev {
            restore_words(r, lane)?;
        }
        check_len(r.usize()?, self.ep_out_bcb.len(), "endpoint bcb lanes")?;
        for lane in &mut self.ep_out_bcb {
            restore_flags(r, lane)?;
        }
        check_len(r.usize()?, self.ep_in_fwd.len(), "endpoint fwd lanes")?;
        for lane in &mut self.ep_in_fwd {
            restore_words(r, lane)?;
        }
        Ok(())
    }
}
