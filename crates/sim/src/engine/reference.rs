//! The original nested-`Vec` engine, retained verbatim as the golden
//! reference: per-tick buffer allocation, topology lookups, and
//! fault-set queries. Deliberately scalar and simple — it is the
//! executable spec the flat engine is proven bit-identical against.

use super::{boundary_delay, Engine, StepCtx};
use crate::endpoint::EndpointIo;
use crate::network::SimConfig;
use crate::wire::Wire;
use metro_core::{BwdIn, FwdIn, TickOutput, Word};
use metro_topo::fault::FaultSet;
use metro_topo::graph::{LinkId, LinkTarget};
use metro_topo::multibutterfly::Multibutterfly;

/// The original engine: nested `Vec` buffers rebuilt each tick, with
/// per-tick topology and fault lookups.
#[derive(Debug, Clone)]
pub struct ReferenceEngine {
    inj_wires: Vec<Vec<Wire>>,
    stage_wires: Vec<Vec<Vec<Wire>>>,
    fwd_in: Vec<Vec<Vec<Word>>>,
    rev_in: Vec<Vec<Vec<Word>>>,
    bcb_in: Vec<Vec<Vec<bool>>>,
    ep_out_rev: Vec<Vec<Word>>,
    ep_out_bcb: Vec<Vec<bool>>,
    ep_in_fwd: Vec<Vec<Word>>,
}

impl ReferenceEngine {
    /// Builds the nested-`Vec` engine for `topo` under `config`.
    #[must_use]
    pub(crate) fn build(topo: &Multibutterfly, config: &SimConfig) -> Self {
        let ep = topo.endpoint_ports();
        Self {
            inj_wires: (0..topo.endpoints())
                .map(|_| {
                    (0..ep)
                        .map(|_| Wire::new(boundary_delay(config, 0)))
                        .collect()
                })
                .collect(),
            stage_wires: (0..topo.stages())
                .map(|s| {
                    (0..topo.routers_in_stage(s))
                        .map(|_| {
                            (0..topo.stage_spec(s).backward_ports)
                                .map(|_| Wire::new(boundary_delay(config, s + 1)))
                                .collect()
                        })
                        .collect()
                })
                .collect(),
            fwd_in: (0..topo.stages())
                .map(|s| {
                    vec![
                        vec![Word::Empty; topo.stage_spec(s).forward_ports];
                        topo.routers_in_stage(s)
                    ]
                })
                .collect(),
            rev_in: (0..topo.stages())
                .map(|s| {
                    vec![
                        vec![Word::Empty; topo.stage_spec(s).backward_ports];
                        topo.routers_in_stage(s)
                    ]
                })
                .collect(),
            bcb_in: (0..topo.stages())
                .map(|s| {
                    vec![vec![false; topo.stage_spec(s).backward_ports]; topo.routers_in_stage(s)]
                })
                .collect(),
            ep_out_rev: vec![vec![Word::Empty; ep]; topo.endpoints()],
            ep_out_bcb: vec![vec![false; ep]; topo.endpoints()],
            ep_in_fwd: vec![vec![Word::Empty; ep]; topo.endpoints()],
        }
    }
}

impl Engine for ReferenceEngine {
    /// The original engine's cycle, kept verbatim: per-tick buffer
    /// allocation, topology lookups, and fault-set queries.
    fn step(&mut self, ctx: StepCtx<'_>) {
        let stages = ctx.topo.stages();
        let ep = ctx.topo.endpoint_ports();

        // 1. Endpoints compute their outputs from last cycle's inputs.
        let mut ep_drive = Vec::with_capacity(ctx.endpoints.len());
        for (e, endpoint) in ctx.endpoints.iter_mut().enumerate() {
            let io = EndpointIo {
                out_rev_in: self.ep_out_rev[e].clone(),
                out_bcb_in: self.ep_out_bcb[e].clone(),
                in_fwd_in: self.ep_in_fwd[e].clone(),
            };
            ep_drive.push(endpoint.tick(ctx.now, &io));
        }

        // 2. Routers compute their outputs.
        let mut router_out: Vec<Vec<TickOutput>> = Vec::with_capacity(stages);
        for s in 0..stages {
            let st = ctx.topo.stage_spec(s);
            let mut stage_out = Vec::with_capacity(ctx.routers[s].len());
            for r in 0..ctx.routers[s].len() {
                if ctx.faults.router_dead(s, r) {
                    stage_out.push(TickOutput {
                        bwd: vec![Word::Empty; st.backward_ports],
                        fwd: vec![Word::Empty; st.forward_ports],
                        bcb: vec![false; st.forward_ports],
                    });
                    continue;
                }
                let fwd = FwdIn::data(&self.fwd_in[s][r]);
                let bwd = BwdIn::new(&self.rev_in[s][r], &self.bcb_in[s][r]);
                stage_out.push(ctx.routers[s][r].tick(&fwd, &bwd));
            }
            router_out.push(stage_out);
        }

        // 3. Wires advance; next-cycle input buffers are rebuilt.
        for (e, drive) in ep_drive.iter().enumerate() {
            for p in 0..ep {
                let (r0, f0) = ctx.topo.injection(e, p);
                let (fwd_o, rev_o, bcb_o) = self.inj_wires[e][p].advance(
                    drive.out_fwd[p],
                    router_out[0][r0].fwd[f0],
                    router_out[0][r0].bcb[f0],
                );
                self.fwd_in[0][r0][f0] = fwd_o;
                self.ep_out_rev[e][p] = rev_o;
                self.ep_out_bcb[e][p] = bcb_o;
            }
        }
        for s in 0..stages {
            let st = ctx.topo.stage_spec(s);
            for r in 0..ctx.routers[s].len() {
                for b in 0..st.backward_ports {
                    let fault = ctx.faults.link_fault(LinkId::new(s, r, b));
                    self.stage_wires[s][r][b].set_fault(fault);
                    match ctx.topo.link(s, r, b) {
                        LinkTarget::Router { router, port } => {
                            let (fwd_o, rev_o, bcb_o) = self.stage_wires[s][r][b].advance(
                                router_out[s][r].bwd[b],
                                router_out[s + 1][router].fwd[port],
                                router_out[s + 1][router].bcb[port],
                            );
                            self.fwd_in[s + 1][router][port] = fwd_o;
                            self.rev_in[s][r][b] = rev_o;
                            self.bcb_in[s][r][b] = bcb_o;
                        }
                        LinkTarget::Endpoint { endpoint, port } => {
                            let (fwd_o, rev_o, _) = self.stage_wires[s][r][b].advance(
                                router_out[s][r].bwd[b],
                                ep_drive[endpoint].in_rev[port],
                                false,
                            );
                            self.ep_in_fwd[endpoint][port] = fwd_o;
                            self.rev_in[s][r][b] = rev_o;
                            self.bcb_in[s][r][b] = false;
                        }
                    }
                }
            }
        }
    }

    fn wires_quiet(&self) -> bool {
        self.inj_wires
            .iter()
            .flatten()
            .chain(self.stage_wires.iter().flatten().flatten())
            .all(Wire::is_quiet)
    }

    fn probe_wire(&self, stage: usize, router: usize, b: usize) -> Wire {
        self.stage_wires[stage][router][b].clone()
    }

    fn apply_faults(&mut self, _topo: &Multibutterfly, _faults: &FaultSet) {
        // The reference engine queries the fault set per tick (the
        // verbatim original behavior), so there is nothing to resolve.
    }

    fn shards(&self) -> usize {
        1
    }

    fn clone_box(&self) -> Box<dyn Engine> {
        Box::new(self.clone())
    }
}
