//! # metro-sim — cycle-accurate METRO network simulator
//!
//! Assembles [`metro_core::Router`]s according to a
//! [`metro_topo::Multibutterfly`] topology, connects them with pipelined
//! wires, attaches **source-responsible network interfaces**, and runs
//! the whole network synchronously from a central clock — the paper's
//! operating model (§3, §4).
//!
//! The endpoints implement the full reliability protocol: route headers,
//! end-to-end checksums, connection reversal (TURN), per-router status
//! collection, acknowledgments, and retry with stochastic path
//! re-selection on blocking, corruption, or dynamic faults.
//!
//! ```
//! use metro_sim::{NetworkSim, SimConfig};
//! use metro_topo::MultibutterflySpec;
//!
//! // One message across the paper's Figure 1 network.
//! let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &SimConfig::default()).unwrap();
//! let outcome = sim.send_and_wait(3, 12, &[0xA, 0xB, 0xC], 200).expect("delivered");
//! assert_eq!(outcome.payload_delivered, vec![0xA, 0xB, 0xC]);
//! ```
//!
//! | module | contents |
//! |--------|----------|
//! | [`wire`] | pipelined inter-component links (variable turn delay) |
//! | [`message`] | messages, delivery records, outcome classification |
//! | [`endpoint`] | the source-responsible NIC state machines |
//! | [`engine`] | the sealed engine seam: flat, sharded, reference, analytic |
//! | [`network`] | the assembled, tickable network (orchestration) |
//! | [`healing`] | the online self-healing loop (diagnosis → masking) |
//! | [`traffic`] | destination patterns (uniform, hotspot, permutations) |
//! | [`workload`] | arrival processes, rate maps, and the shared workload driver |
//! | [`stats`] | latency/throughput/retry statistics |
//! | [`experiment`] | load sweeps and fault sweeps (Figure 3 and §6.2) |
//! | [`scenario`] | declarative, serializable run descriptions + differential fuzzing |
//! | [`checkpoint`] | crash-safe checkpoint envelopes and the resumable runner |
//! | [`chaos`] | randomized fault-storm campaigns with hard self-healing invariants |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// The engine seam exists because network.rs once grew into a
// 2000-line monolith; this lint (threshold in clippy.toml, denied in
// CI via -D warnings) keeps any single function from regrowing one.
#![warn(clippy::too_many_lines)]

pub mod chaos;
pub mod checkpoint;
pub mod endpoint;
pub mod engine;
pub mod experiment;
pub mod healing;
pub mod message;
pub mod network;
pub mod scenario;
pub mod shard;
pub mod stats;
pub mod trace;
pub mod traffic;
pub mod wire;
pub mod workload;

pub use chaos::{ChaosCampaign, ChaosReport, ChaosViolation, StormEvent};
pub use checkpoint::{
    resume_scenario, resume_scenario_with, run_scenario_resumable, Checkpoint, CheckpointSink,
    RunPhase, CHECKPOINT_SCHEMA,
};
pub use endpoint::{AttemptEvidence, EndpointConfig, ReplyPolicy};
pub use experiment::{FaultSweepPoint, LoadPoint, SweepConfig};
pub use message::{DeliveryRecord, DeliveryStatus, FailureKind, MessageOutcome};
pub use network::{EngineKind, NetworkSim, SimConfig};
pub use scenario::{
    run_scenario, FaultInjection, RepairSet, Scenario, ScenarioResult, SendSpec, WorkloadSpec,
};
pub use stats::{LatencyStats, NetworkStats};
pub use trace::{TraceEvent, TraceLog, TraceRecord};
pub use traffic::{TrafficError, TrafficPattern};
pub use workload::{ArrivalProcess, RateMap, TraceEntry, WorkloadDriver, WorkloadError};
