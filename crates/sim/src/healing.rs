//! The self-healing loop: evidence-driven diagnosis and live port
//! masking (paper §5.3, detect → localize → disable, closed online).
//!
//! This is an orchestration concern layered on [`NetworkSim`]: the
//! endpoints capture [`AttemptEvidence`] on failed deliveries, the
//! network runs each item through `metro-scan` diagnosis, and the
//! implicated ports are disabled in the live router configurations —
//! never by reading the injected fault set. Engine access is limited
//! to [`Engine::probe_wire`](crate::engine::Engine::probe_wire) clones
//! for the behavioral boundary-scan sweep.

use crate::endpoint::AttemptEvidence;
use crate::message::FailureKind;
use crate::network::NetworkSim;
use metro_core::{PortMode, Word};
use metro_scan::boundary::test_wire;
use metro_scan::diagnosis::{diagnose_attempt, expected_stage_checksums, AttemptDiagnosis};
use metro_telemetry::RouterCounter;
use metro_topo::graph::{LinkId, LinkTarget};

impl NetworkSim {
    /// Turns the self-healing loop on or off at runtime (see
    /// [`crate::network::SimConfig::self_heal`]). Turning it off also
    /// drops any not-yet-processed evidence; applied masks stay in
    /// force.
    pub fn set_self_heal(&mut self, on: bool) {
        self.config.self_heal = on;
        for e in &mut self.endpoints {
            e.set_collect_evidence(on);
        }
    }

    /// Links the self-healing layer has masked so far (both port ends
    /// disabled), in masking order. Diagnosis-driven: derived from
    /// reply evidence and behavioral wire probes, never from the
    /// injected fault set.
    #[must_use]
    pub fn healed_links(&self) -> &[LinkId] {
        &self.healed_links
    }

    /// Injection ports the self-healing layer has masked at their
    /// endpoints, as `(endpoint, output_port)` pairs.
    #[must_use]
    pub fn healed_injections(&self) -> &[(usize, usize)] {
        &self.healed_injections
    }

    /// Drains the endpoints' failed-attempt evidence and runs each item
    /// through diagnosis and masking.
    pub(crate) fn process_evidence(&mut self) {
        let mut evidence: Vec<AttemptEvidence> = Vec::new();
        for e in &mut self.endpoints {
            evidence.extend(e.take_evidence());
        }
        for ev in &evidence {
            self.heal_from(ev);
        }
    }

    /// Runs one piece of failed-attempt evidence through the scan
    /// diagnosis ([`diagnose_attempt`]) and applies any resulting mask
    /// to the live router configurations — the paper's §5.3 loop
    /// (detect → localize → disable) closed online, while the network
    /// carries traffic.
    fn heal_from(&mut self, ev: &AttemptEvidence) {
        // Any failed attempt arriving after the first mask counts as a
        // post-masking retry, attributed to the entry router.
        if !self.healed_links.is_empty() || !self.healed_injections.is_empty() {
            let (r0, _) = self.topo.injection(ev.src, ev.port);
            self.routers[0][r0].note_event(RouterCounter::RetriesAfterMask);
        }
        // Blocking and fast reclamation are congestion, not faults.
        if matches!(
            ev.kind,
            FailureKind::Blocked { .. } | FailureKind::FastReclaimed
        ) {
            return;
        }

        // Reconstruct the path the attempt switched: entry router from
        // the injection map, then one hop per STATUS-reported backward
        // port.
        let mut ports_taken = Vec::with_capacity(ev.record.statuses.len());
        for s in &ev.record.statuses {
            match s.port() {
                Some(p) => ports_taken.push(p),
                None => break,
            }
        }
        let (entry, f0) = self.topo.injection(ev.src, ev.port);
        let mut routers_on_path = vec![entry];
        let mut fwd_ports = vec![f0];
        for (s, &b) in ports_taken.iter().enumerate() {
            match self.topo.link(s, routers_on_path[s], b) {
                LinkTarget::Router { router, port } => {
                    routers_on_path.push(router);
                    fwd_ports.push(port);
                }
                LinkTarget::Endpoint { .. } => break,
            }
        }

        // Expected transit checksums, recomputed from what the NIC
        // actually sent (the source knows its own stream).
        let digits = self.topo.route_digits(ev.dest);
        let header_len = self.plan.pack(&digits).len().min(ev.stream.len());
        let payload: Vec<u16> = ev.stream[header_len..]
            .iter()
            .filter_map(|w| match w {
                Word::Data(v) => Some(*v),
                _ => None,
            })
            .collect();
        let expected = expected_stage_checksums(
            &self.plan,
            &digits,
            &payload,
            self.config.width,
            self.config.header_words,
        );
        let delivery_failed = matches!(ev.kind, FailureKind::Corrupt | FailureKind::NoAck);
        match diagnose_attempt(
            &expected,
            &ev.record.checksums,
            &ports_taken,
            &fwd_ports,
            delivery_failed,
        ) {
            AttemptDiagnosis::Corruption(plan) => {
                let ds = plan.downstream_stage;
                if ds < routers_on_path.len() {
                    let dr = routers_on_path[ds];
                    self.routers[ds][dr].note_event(RouterCounter::ChecksumMismatches);
                    match (plan.upstream_stage, plan.upstream_backward_port) {
                        (Some(us), Some(ub)) => {
                            self.mask_link_ends(us, routers_on_path[us], ub);
                        }
                        _ => self.mask_injection(ev.src, ev.port),
                    }
                }
            }
            AttemptDiagnosis::DeliveryBoundary {
                stage,
                backward_port,
            } => {
                // ACK_CORRUPT is the destination's end-to-end checksum
                // catching the corruption past the last transit
                // checksum — count it where it was detected.
                if stage < routers_on_path.len() {
                    let r = routers_on_path[stage];
                    self.routers[stage][r].note_event(RouterCounter::ChecksumMismatches);
                    self.mask_link_ends(stage, r, backward_port);
                }
            }
            AttemptDiagnosis::NeedsSweep => self.sweep_and_mask(ev),
            AttemptDiagnosis::Inconclusive => {}
        }
    }

    /// Disables both port ends of the link out of `(stage, router)`'s
    /// backward port `b` in the live configurations (paper §5.1:
    /// "Disabled faults are masked"). Refuses to sever an endpoint's
    /// last unmasked delivery link — redundancy, not reachability, is
    /// what masking spends. Idempotent per link.
    fn mask_link_ends(&mut self, stage: usize, router: usize, b: usize) {
        let link = LinkId::new(stage, router, b);
        if self.healed_links.contains(&link) {
            return;
        }
        if let LinkTarget::Endpoint { endpoint, .. } = self.topo.link(stage, router, b) {
            if self.delivery_links_left(endpoint) <= 1 {
                return;
            }
        }
        let mut cfg = self.routers[stage][router].config().clone();
        cfg.set_backward_mode(b, PortMode::DisabledDriven);
        self.routers[stage][router].apply_config(cfg);
        if let LinkTarget::Router { router: dr, port } = self.topo.link(stage, router, b) {
            let mut cfg = self.routers[stage + 1][dr].config().clone();
            cfg.set_forward_mode(port, PortMode::DisabledDriven);
            self.routers[stage + 1][dr].apply_config(cfg);
        }
        self.healed_links.push(link);
    }

    /// Masks one endpoint injection port (the endpoint refuses to mask
    /// its last unmasked port).
    fn mask_injection(&mut self, endpoint: usize, port: usize) {
        if self.endpoints[endpoint].mask_out_port(port)
            && !self.healed_injections.contains(&(endpoint, port))
        {
            self.healed_injections.push((endpoint, port));
        }
    }

    /// How many delivery links into `endpoint` the healer has not yet
    /// masked.
    fn delivery_links_left(&self, endpoint: usize) -> usize {
        let s = self.topo.stages() - 1;
        let mut left = 0;
        for r in 0..self.topo.routers_in_stage(s) {
            for b in 0..self.topo.stage_spec(s).backward_ports {
                let to_endpoint = matches!(
                    self.topo.link(s, r, b),
                    LinkTarget::Endpoint { endpoint: e, .. } if e == endpoint
                );
                if to_endpoint && !self.healed_links.contains(&LinkId::new(s, r, b)) {
                    left += 1;
                }
            }
        }
        left
    }

    /// No reversal evidence at all: a dead element ate the stream.
    /// Sweeps every inter-stage wire with the boundary-scan test
    /// vectors (paper §5.1 — vectors across the suspect wires while the
    /// rest of the network carries traffic) and masks the links that
    /// fail. When every wire passes and the entry port itself never
    /// showed life, the silent element is the first hop: the endpoint
    /// stops injecting there.
    fn sweep_and_mask(&mut self, ev: &AttemptEvidence) {
        let mut found = Vec::new();
        for s in 0..self.topo.stages() {
            for r in 0..self.topo.routers_in_stage(s) {
                for b in 0..self.topo.stage_spec(s).backward_ports {
                    if self.healed_links.contains(&LinkId::new(s, r, b)) {
                        continue;
                    }
                    if !self.probe_wire_passes(s, r, b) {
                        found.push((s, r, b));
                    }
                }
            }
        }
        if found.is_empty() {
            if !ev.entry_alive {
                self.mask_injection(ev.src, ev.port);
            }
            return;
        }
        for (s, r, b) in found {
            self.mask_link_ends(s, r, b);
        }
    }

    /// Behaviorally probes one inter-stage wire with the boundary-scan
    /// test vectors (paper §5.1 EXTEST): each vector is driven through
    /// a clone of the wire as a data word and the emerging word
    /// compared against what was driven. The clone leaves live traffic
    /// untouched; the flush models the port pair being quiesced before
    /// the test. No oracle: the verdict comes from the wire's observed
    /// behavior, not the fault set.
    fn probe_wire_passes(&self, s: usize, r: usize, b: usize) -> bool {
        let mut probe = self.engine.probe_wire(s, r, b);
        probe.flush();
        let w = self.config.width.min(16);
        test_wire(w, |bits| {
            let value = bits
                .iter()
                .enumerate()
                .fold(0u16, |acc, (i, &bit)| acc | (u16::from(bit) << i));
            let (mut out, _, _) = probe.advance(Word::Data(value), Word::Empty, false);
            for _ in 0..probe.delay() {
                if out != Word::Empty {
                    break;
                }
                out = probe.advance(Word::Empty, Word::Empty, false).0;
            }
            match out {
                Word::Data(v) => (0..w).map(|i| (v >> i) & 1 == 1).collect(),
                _ => vec![false; w],
            }
        })
        .passed()
    }
}
