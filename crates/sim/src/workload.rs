//! The offered-traffic subsystem: arrival processes, per-endpoint rate
//! maps, seed derivation, and the [`WorkloadDriver`] every engine
//! draws its workload from.
//!
//! The paper evaluates METRO under "randomly distributed, 20-byte
//! message traffic" (Figure 3); multistage-network studies also lean on
//! adversarial workloads — hotspots, permutations, bursty sources.
//! Before this module existed, Bernoulli stream construction was
//! copy-pasted across four layers (the scenario runner, both experiment
//! sweeps, and the occupancy bench) with divergent seed constants, and
//! the analytic estimator had to replay those streams *exactly* — so
//! every new generator meant five coordinated edits or a silently
//! broken estimator. Now there is exactly one construction path:
//!
//! * [`StreamRecipe`] bundles everything needed to rebuild a workload's
//!   per-endpoint arrival sources bit-identically — process, rate map,
//!   pattern, load, stream length, and [`StreamSeeds`].
//! * [`StreamRecipe::driver`] yields the cycle engines' view: a
//!   [`WorkloadDriver`] polled once per cycle for [`Arrival`]s.
//! * [`StreamRecipe::schedule`] yields the estimator's view: the same
//!   arrivals, precomputed and sorted, drawn from the *same* streams.
//!
//! ## Arrival-process semantics
//!
//! * [`ArrivalProcess::Bernoulli`] — an independent coin per endpoint
//!   per cycle at `p = load / stream_words` ([`LoadGenerator`]); the
//!   memoryless source of every paper sweep.
//! * [`ArrivalProcess::OnOff`] — a two-state Markov-modulated source
//!   ([`OnOffGenerator`]): geometric dwell in a burst state (arrivals
//!   at an elevated rate) and an idle state (no arrivals), calibrated
//!   so the *mean* rate still equals `load / stream_words`.
//! * [`ArrivalProcess::Trace`] — replay of a recorded
//!   `(cycle, src, dest, payload_words)` stream, for workloads no
//!   stochastic model reproduces.

use crate::traffic::{TrafficError, TrafficPattern};
use metro_core::RandomSource;
use metro_telemetry::{StateError, StateReader, StateWriter};

/// Per-endpoint seed stride for load workloads: endpoint `e` of a run
/// seeded `s` draws arrivals from `s + e * 7919` (the 1000th prime).
/// Committed results replay byte-identically from this constant.
pub const LOAD_STREAM_STRIDE: u64 = 7919;

/// Per-endpoint seed stride for fault-sweep workloads (the 10000th
/// prime) — historically distinct from [`LOAD_STREAM_STRIDE`] so a
/// fault point and a load point at one master seed stay decorrelated.
pub const FAULT_STREAM_STRIDE: u64 = 104_729;

/// The salt XORed into a workload seed to derive the destination-
/// pattern stream (shared by all endpoints of a run).
pub const PATTERN_SALT: u64 = 0xABCD;

/// Derives the arrival-stream seed for one endpoint:
/// `base + endpoint * stride` (wrapping). This is the single derivation
/// site for every per-endpoint stream in the codebase; the per-site
/// constants
/// ([`LOAD_STREAM_STRIDE`], [`FAULT_STREAM_STRIDE`]) are pinned by
/// regression test so committed results keep replaying byte-for-byte.
#[must_use]
pub fn derive_stream_seed(base: u64, stride: u64, endpoint: usize) -> u64 {
    base.wrapping_add((endpoint as u64).wrapping_mul(stride))
}

/// The seed plan of one workload: where the destination-pattern stream
/// and each endpoint's arrival stream come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSeeds {
    /// Seed of the shared destination-pattern stream.
    pub pattern_seed: u64,
    /// Base of the per-endpoint arrival streams.
    pub stream_base: u64,
    /// Per-endpoint stride added onto `stream_base`.
    pub stream_stride: u64,
}

impl StreamSeeds {
    /// The scenario/load-sweep plan: pattern from `seed ^`
    /// [`PATTERN_SALT`], arrival streams at [`LOAD_STREAM_STRIDE`].
    #[must_use]
    pub fn load(seed: u64) -> Self {
        Self {
            pattern_seed: seed ^ PATTERN_SALT,
            stream_base: seed,
            stream_stride: LOAD_STREAM_STRIDE,
        }
    }

    /// The fault-sweep plan: same pattern salt, arrival streams at
    /// [`FAULT_STREAM_STRIDE`].
    #[must_use]
    pub fn fault(seed: u64) -> Self {
        Self {
            pattern_seed: seed ^ PATTERN_SALT,
            stream_base: seed,
            stream_stride: FAULT_STREAM_STRIDE,
        }
    }

    /// The arrival-stream seed for one endpoint.
    #[must_use]
    pub fn stream_seed(&self, endpoint: usize) -> u64 {
        derive_stream_seed(self.stream_base, self.stream_stride, endpoint)
    }
}

/// One recorded message of a [`ArrivalProcess::Trace`] workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Cycle at which the message is requested at the source NIC.
    pub at: u64,
    /// Source endpoint.
    pub src: usize,
    /// Destination endpoint.
    pub dest: usize,
    /// Payload words carried.
    pub payload_words: usize,
}

/// How message arrivals are generated at each endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Independent per-cycle coin at `p = load / stream_words` — the
    /// memoryless source of the paper's sweeps ([`LoadGenerator`]).
    Bernoulli,
    /// Two-state bursty source ([`OnOffGenerator`]): geometric dwells
    /// of the given mean lengths, arrivals only while bursting, mean
    /// rate calibrated to the workload's `load`.
    OnOff {
        /// Mean cycles per burst (ON dwell), ≥ 1.
        burst_mean: u64,
        /// Mean cycles per idle gap (OFF dwell), ≥ 1.
        idle_mean: u64,
    },
    /// Replay of a recorded arrival stream; the workload's `pattern`,
    /// `load`, and rate map are ignored — the trace *is* the traffic.
    Trace(Vec<TraceEntry>),
}

impl ArrivalProcess {
    /// Peak-to-mean arrival-rate ratio: 1.0 for the memoryless and
    /// replayed processes, `(burst + idle) / burst` for the bursty one
    /// (while ON, the source runs that much hotter than its mean).
    /// Feeds the analytic estimator's burstiness cluster bucket.
    #[must_use]
    pub fn burstiness(&self) -> f64 {
        match self {
            Self::Bernoulli | Self::Trace(_) => 1.0,
            Self::OnOff {
                burst_mean,
                idle_mean,
            } => {
                let burst = (*burst_mean).max(1) as f64;
                (burst + *idle_mean as f64) / burst
            }
        }
    }

    /// Validates the process against an endpoint count.
    ///
    /// # Errors
    ///
    /// Zero dwell means for `OnOff`; out-of-range or self-targeting
    /// entries for `Trace`.
    pub fn validate(&self, endpoints: usize) -> Result<(), WorkloadError> {
        match self {
            Self::Bernoulli => Ok(()),
            Self::OnOff {
                burst_mean,
                idle_mean,
            } => {
                if *burst_mean == 0 || *idle_mean == 0 {
                    return Err(WorkloadError::OnOffDwell {
                        burst_mean: *burst_mean,
                        idle_mean: *idle_mean,
                    });
                }
                Ok(())
            }
            Self::Trace(entries) => {
                for (index, e) in entries.iter().enumerate() {
                    if e.src >= endpoints || e.dest >= endpoints {
                        return Err(WorkloadError::TraceEndpoint {
                            index,
                            src: e.src,
                            dest: e.dest,
                            endpoints,
                        });
                    }
                    if e.src == e.dest {
                        return Err(WorkloadError::TraceSelfTarget { index, src: e.src });
                    }
                }
                Ok(())
            }
        }
    }
}

/// Per-endpoint offered-load multipliers — geo-style `vtd` skew, so
/// endpoints need not share one rate.
#[derive(Debug, Clone, PartialEq)]
pub enum RateMap {
    /// Every endpoint offers the workload's `load` unchanged.
    Uniform,
    /// Endpoint `e` offers `load * rates[e]`; the vector length must
    /// equal the endpoint count.
    PerEndpoint(Vec<f64>),
}

impl RateMap {
    /// The multiplier for one endpoint.
    #[must_use]
    pub fn rate(&self, endpoint: usize) -> f64 {
        match self {
            Self::Uniform => 1.0,
            Self::PerEndpoint(v) => v[endpoint],
        }
    }

    /// Validates the map against an endpoint count.
    ///
    /// # Errors
    ///
    /// Length mismatch, or a non-finite / negative multiplier.
    pub fn validate(&self, endpoints: usize) -> Result<(), WorkloadError> {
        if let Self::PerEndpoint(v) = self {
            if v.len() != endpoints {
                return Err(WorkloadError::RateCount {
                    expected: endpoints,
                    got: v.len(),
                });
            }
            for (endpoint, &rate) in v.iter().enumerate() {
                if !rate.is_finite() || rate < 0.0 {
                    return Err(WorkloadError::RateValue { endpoint, rate });
                }
            }
        }
        Ok(())
    }
}

/// A workload that cannot be constructed: the typed rejection the
/// scenario builder and codec raise instead of silently mis-mapping
/// traffic (the old `Transpose`-on-non-power-of-two failure mode).
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// The destination pattern does not fit the topology.
    Pattern(TrafficError),
    /// A per-endpoint rate map of the wrong length.
    RateCount {
        /// Endpoints in the topology.
        expected: usize,
        /// Entries in the map.
        got: usize,
    },
    /// A non-finite or negative rate multiplier.
    RateValue {
        /// The offending endpoint.
        endpoint: usize,
        /// The offending multiplier.
        rate: f64,
    },
    /// An `OnOff` process with a zero mean dwell.
    OnOffDwell {
        /// Configured mean burst length.
        burst_mean: u64,
        /// Configured mean idle length.
        idle_mean: u64,
    },
    /// A trace entry naming an endpoint outside the topology.
    TraceEndpoint {
        /// Index of the offending entry.
        index: usize,
        /// Its source endpoint.
        src: usize,
        /// Its destination endpoint.
        dest: usize,
        /// Endpoints in the topology.
        endpoints: usize,
    },
    /// A trace entry sending a message to its own source.
    TraceSelfTarget {
        /// Index of the offending entry.
        index: usize,
        /// The self-targeting endpoint.
        src: usize,
    },
}

impl From<TrafficError> for WorkloadError {
    fn from(e: TrafficError) -> Self {
        Self::Pattern(e)
    }
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Pattern(e) => write!(f, "{e}"),
            Self::RateCount { expected, got } => {
                write!(f, "rate map has {got} entries for {expected} endpoints")
            }
            Self::RateValue { endpoint, rate } => {
                write!(
                    f,
                    "rate map entry {endpoint} is {rate} (must be finite and >= 0)"
                )
            }
            Self::OnOffDwell {
                burst_mean,
                idle_mean,
            } => write!(
                f,
                "on/off dwell means must be >= 1 (burst {burst_mean}, idle {idle_mean})"
            ),
            Self::TraceEndpoint {
                index,
                src,
                dest,
                endpoints,
            } => write!(
                f,
                "trace entry {index} names endpoint {src} -> {dest} outside 0..{endpoints}"
            ),
            Self::TraceSelfTarget { index, src } => {
                write!(f, "trace entry {index} sends endpoint {src} to itself")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Bernoulli message arrivals at a configured offered load.
///
/// Offered load is expressed as the fraction of each source's injection
/// capacity: a source at load 1.0 would stream messages back to back.
/// With messages of `stream_words` words (header + payload + checksum +
/// TURN), the per-cycle arrival probability is `load / stream_words`.
#[derive(Debug, Clone)]
pub struct LoadGenerator {
    threshold: u64,
    rng: RandomSource,
}

impl LoadGenerator {
    /// Creates a generator for the given offered load (0.0–1.0+) and
    /// message stream length.
    #[must_use]
    pub fn new(load: f64, stream_words: usize, seed: u64) -> Self {
        let p = (load / stream_words.max(1) as f64).clamp(0.0, 1.0);
        Self {
            threshold: (p * (u32::MAX as f64 + 1.0)) as u64,
            rng: RandomSource::new(seed),
        }
    }

    /// Whether a new message arrives this cycle.
    #[inline]
    pub fn arrival(&mut self) -> bool {
        self.rng.bits(32) < self.threshold
    }
}

/// A two-state bursty arrival source: geometric dwells in an ON state
/// (arrivals at an elevated rate) and an OFF state (silence), with the
/// ON rate calibrated so the long-run mean rate equals
/// `load / stream_words` — the same mean a [`LoadGenerator`] at that
/// load offers, concentrated into bursts.
///
/// Every cycle draws exactly two 32-bit values (one arrival coin, one
/// dwell-transition coin) regardless of state, so a source's stream
/// position is a pure function of its cycle count.
#[derive(Debug, Clone)]
pub struct OnOffGenerator {
    /// Arrival threshold while ON.
    threshold: u64,
    /// Transition threshold out of ON (p = 1 / burst_mean).
    exit_on: u64,
    /// Transition threshold out of OFF (p = 1 / idle_mean).
    exit_off: u64,
    on: bool,
    rng: RandomSource,
}

impl OnOffGenerator {
    /// Creates a bursty generator with the given mean dwell lengths
    /// (clamped to ≥ 1 cycle). Sources start ON.
    #[must_use]
    pub fn new(load: f64, stream_words: usize, burst_mean: u64, idle_mean: u64, seed: u64) -> Self {
        let burst = burst_mean.max(1) as f64;
        let idle = idle_mean.max(1) as f64;
        // Duty cycle of the ON state; the ON-state arrival probability
        // is the mean probability boosted by 1/duty (capped at 1 — a
        // very hot source saturates its bursts).
        let duty = burst / (burst + idle);
        let p_mean = (load / stream_words.max(1) as f64).clamp(0.0, 1.0);
        let p_on = (p_mean / duty).clamp(0.0, 1.0);
        let scale = u32::MAX as f64 + 1.0;
        Self {
            threshold: (p_on * scale) as u64,
            exit_on: ((1.0 / burst) * scale) as u64,
            exit_off: ((1.0 / idle) * scale) as u64,
            on: true,
            rng: RandomSource::new(seed),
        }
    }

    /// Whether a new message arrives this cycle.
    #[inline]
    pub fn arrival(&mut self) -> bool {
        let arrival_draw = self.rng.bits(32);
        let dwell_draw = self.rng.bits(32);
        let fired = self.on && arrival_draw < self.threshold;
        let exit = if self.on { self.exit_on } else { self.exit_off };
        if dwell_draw < exit {
            self.on = !self.on;
        }
        fired
    }
}

/// One endpoint's arrival stream — the stochastic processes behind a
/// [`WorkloadDriver`]'s open-loop mode.
#[derive(Debug, Clone)]
enum ArrivalSource {
    Bernoulli(LoadGenerator),
    OnOff(OnOffGenerator),
}

impl ArrivalSource {
    #[inline]
    fn arrival(&mut self) -> bool {
        match self {
            Self::Bernoulli(g) => g.arrival(),
            Self::OnOff(g) => g.arrival(),
        }
    }

    /// Appends the source's stream position (and the bursty source's
    /// dwell state) to a checkpoint stream. Thresholds are
    /// construction-derived and not written.
    fn save_state(&self, w: &mut StateWriter) {
        match self {
            Self::Bernoulli(g) => {
                w.u64(0);
                w.u64(g.rng.state_bits());
            }
            Self::OnOff(g) => {
                w.u64(1);
                w.u64(g.rng.state_bits());
                w.bool(g.on);
            }
        }
    }

    /// Overwrites the stream position from a checkpoint stream; the
    /// saved process kind must match this (construction-derived)
    /// source's.
    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let kind = r.u64()?;
        match (kind, self) {
            (0, Self::Bernoulli(g)) => {
                g.rng = RandomSource::from_state_bits(r.u64()?);
                Ok(())
            }
            (1, Self::OnOff(g)) => {
                g.rng = RandomSource::from_state_bits(r.u64()?);
                g.on = r.bool()?;
                Ok(())
            }
            (k, _) => Err(StateError::BadValue {
                section: String::from("workload"),
                detail: format!("saved arrival process {k} does not match the scenario's"),
            }),
        }
    }
}

/// One message the workload offers this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Source endpoint.
    pub src: usize,
    /// Destination endpoint.
    pub dest: usize,
    /// Payload words to send.
    pub payload_words: usize,
}

/// Everything needed to rebuild one workload's arrival streams
/// bit-identically — the single construction recipe shared by the
/// cycle engines ([`Self::driver`]) and the analytic estimator
/// ([`Self::schedule`]).
#[derive(Debug, Clone)]
pub struct StreamRecipe<'a> {
    /// The arrival process.
    pub arrival: &'a ArrivalProcess,
    /// Per-endpoint rate multipliers.
    pub rates: &'a RateMap,
    /// Destination pattern (ignored by `Trace`).
    pub pattern: &'a TrafficPattern,
    /// Mean offered load (fraction of injection capacity).
    pub load: f64,
    /// Words per message stream (header + payload + checksum + TURN).
    pub stream_words: usize,
    /// Payload words per generated message (ignored by `Trace`).
    pub payload_words: usize,
    /// Endpoints in the topology.
    pub endpoints: usize,
    /// The seed plan.
    pub seeds: StreamSeeds,
}

impl StreamRecipe<'_> {
    /// The per-endpoint arrival source, seeded from the recipe's plan.
    /// Open-loop processes only — `Trace` has no stochastic source.
    fn source(&self, endpoint: usize) -> ArrivalSource {
        let seed = self.seeds.stream_seed(endpoint);
        let load = self.load * self.rates.rate(endpoint);
        match self.arrival {
            ArrivalProcess::OnOff {
                burst_mean,
                idle_mean,
            } => ArrivalSource::OnOff(OnOffGenerator::new(
                load,
                self.stream_words,
                *burst_mean,
                *idle_mean,
                seed,
            )),
            // Trace is handled before sources are built; Bernoulli is
            // the open-loop default.
            _ => ArrivalSource::Bernoulli(LoadGenerator::new(load, self.stream_words, seed)),
        }
    }

    /// The cycle engines' view: a driver polled once per cycle.
    #[must_use]
    pub fn driver(&self) -> WorkloadDriver {
        if let ArrivalProcess::Trace(entries) = self.arrival {
            return WorkloadDriver::replay(entries);
        }
        WorkloadDriver {
            kind: DriverKind::Open {
                pattern: self.pattern.clone(),
                pattern_rng: RandomSource::new(self.seeds.pattern_seed),
                sources: (0..self.endpoints).map(|e| self.source(e)).collect(),
                payload_words: self.payload_words,
                endpoints: self.endpoints,
            },
        }
    }

    /// The estimator's view: every arrival of cycles `0..total`,
    /// precomputed from the *same* streams [`Self::driver`] polls and
    /// sorted by `(cycle, endpoint)` — exactly the order a cycle-major
    /// poll would produce, since the per-endpoint streams draw
    /// independently.
    #[must_use]
    pub fn schedule(&self, total: u64) -> Vec<ScheduledArrival> {
        if let ArrivalProcess::Trace(entries) = self.arrival {
            let mut sched: Vec<ScheduledArrival> = entries
                .iter()
                .filter(|e| e.at < total)
                .map(|e| ScheduledArrival {
                    at: e.at,
                    src: e.src,
                    payload_words: e.payload_words,
                })
                .collect();
            sched.sort_unstable();
            return sched;
        }
        let mut arrivals: Vec<ScheduledArrival> = Vec::new();
        let mut push = |at: u64, src: usize, payload_words: usize| {
            arrivals.push(ScheduledArrival {
                at,
                src,
                payload_words,
            });
        };
        // Endpoint-major replay, four sources abreast: one source's
        // draw sequence is a serial xorshift dependency chain (~7
        // cycles per draw of pure latency), but the sources are
        // mutually independent, so stepping four per loop iteration
        // lets the CPU overlap four chains and sets the pace by
        // throughput instead. The final sort restores exactly the
        // order a cycle-major poll would produce.
        let n = self.endpoints;
        let words = self.payload_words;
        let mut e = 0;
        while e + 4 <= n {
            let (mut g0, mut g1, mut g2, mut g3) = (
                self.source(e),
                self.source(e + 1),
                self.source(e + 2),
                self.source(e + 3),
            );
            for cycle in 0..total {
                if g0.arrival() {
                    push(cycle, e, words);
                }
                if g1.arrival() {
                    push(cycle, e + 1, words);
                }
                if g2.arrival() {
                    push(cycle, e + 2, words);
                }
                if g3.arrival() {
                    push(cycle, e + 3, words);
                }
            }
            e += 4;
        }
        while e < n {
            let mut g = self.source(e);
            for cycle in 0..total {
                if g.arrival() {
                    push(cycle, e, words);
                }
            }
            e += 1;
        }
        arrivals.sort_unstable();
        arrivals
    }
}

/// One precomputed arrival of a [`StreamRecipe::schedule`] — what the
/// analytic estimator iterates instead of polling a driver per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ScheduledArrival {
    /// Request cycle.
    pub at: u64,
    /// Source endpoint.
    pub src: usize,
    /// Payload words.
    pub payload_words: usize,
}

#[derive(Debug)]
enum DriverKind {
    /// Open-loop stochastic arrivals: per-endpoint sources plus the
    /// shared destination-pattern stream.
    Open {
        pattern: TrafficPattern,
        pattern_rng: RandomSource,
        sources: Vec<ArrivalSource>,
        payload_words: usize,
        endpoints: usize,
    },
    /// Trace replay: entries pre-sorted by cycle (stable, so same-cycle
    /// entries keep their recorded order).
    Replay {
        entries: Vec<TraceEntry>,
        cursor: usize,
    },
}

/// The per-cycle arrival feed of a running workload. Built from a
/// [`StreamRecipe`]; polled once per cycle, in cycle order, by every
/// cycle engine's run loop.
#[derive(Debug)]
pub struct WorkloadDriver {
    kind: DriverKind,
}

impl WorkloadDriver {
    /// A driver replaying a recorded arrival stream.
    #[must_use]
    pub fn replay(entries: &[TraceEntry]) -> Self {
        let mut entries = entries.to_vec();
        entries.sort_by_key(|e| e.at);
        Self {
            kind: DriverKind::Replay { entries, cursor: 0 },
        }
    }

    /// Yields every arrival due at `cycle`, in endpoint order (open
    /// loop) or recorded order (trace). Must be called with
    /// monotonically non-decreasing cycles; each open-loop source draws
    /// exactly once per call, which is what makes a driver poll
    /// bit-identical to the historical inline loops.
    pub fn poll(&mut self, cycle: u64, mut deliver: impl FnMut(Arrival)) {
        match &mut self.kind {
            DriverKind::Open {
                pattern,
                pattern_rng,
                sources,
                payload_words,
                endpoints,
            } => {
                for (e, source) in sources.iter_mut().enumerate() {
                    if source.arrival() {
                        let dest = pattern.destination(e, *endpoints, pattern_rng);
                        deliver(Arrival {
                            src: e,
                            dest,
                            payload_words: *payload_words,
                        });
                    }
                }
            }
            DriverKind::Replay { entries, cursor } => {
                while let Some(e) = entries.get(*cursor) {
                    if e.at > cycle {
                        break;
                    }
                    deliver(Arrival {
                        src: e.src,
                        dest: e.dest,
                        payload_words: e.payload_words,
                    });
                    *cursor += 1;
                }
            }
        }
    }

    /// Appends the driver's stream position to a checkpoint stream: the
    /// pattern RNG and per-source positions (open loop) or the replay
    /// cursor (trace). Everything else — thresholds, the pattern, the
    /// trace entries — is rebuilt from the scenario's recipe.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.section("workload");
        match &self.kind {
            DriverKind::Open {
                pattern_rng,
                sources,
                ..
            } => {
                w.u64(0);
                w.u64(pattern_rng.state_bits());
                w.usize(sources.len());
                for s in sources {
                    s.save_state(w);
                }
            }
            DriverKind::Replay { cursor, .. } => {
                w.u64(1);
                w.usize(*cursor);
            }
        }
    }

    /// Overwrites the driver's stream position from a checkpoint stream
    /// ([`Self::save_state`]'s inverse). The driver must have been
    /// rebuilt from the same recipe.
    ///
    /// # Errors
    ///
    /// [`StateError`] when the saved driver kind, source count, or
    /// replay cursor does not fit this driver.
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let bad = |detail: String| StateError::BadValue {
            section: String::from("workload"),
            detail,
        };
        r.section("workload")?;
        let kind = r.u64()?;
        match (&mut self.kind, kind) {
            (
                DriverKind::Open {
                    pattern_rng,
                    sources,
                    ..
                },
                0,
            ) => {
                *pattern_rng = RandomSource::from_state_bits(r.u64()?);
                let n = r.usize()?;
                if n != sources.len() {
                    return Err(bad(format!(
                        "saved {n} arrival sources, driver has {}",
                        sources.len()
                    )));
                }
                for s in sources {
                    s.restore_state(r)?;
                }
                Ok(())
            }
            (DriverKind::Replay { entries, cursor }, 1) => {
                let c = r.usize()?;
                if c > entries.len() {
                    return Err(bad(format!(
                        "saved replay cursor {c} beyond the {}-entry trace",
                        entries.len()
                    )));
                }
                *cursor = c;
                Ok(())
            }
            (_, k) => Err(bad(format!(
                "saved driver kind {k} does not match the scenario's workload"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_generator_rate_is_calibrated() {
        let mut g = LoadGenerator::new(0.5, 25, 7);
        let arrivals = (0..100_000).filter(|_| g.arrival()).count();
        // Expected p = 0.02 -> ~2000 arrivals.
        assert!((1700..2300).contains(&arrivals), "got {arrivals}");
    }

    #[test]
    fn zero_load_never_arrives() {
        let mut g = LoadGenerator::new(0.0, 25, 7);
        assert!((0..10_000).filter(|_| g.arrival()).count() == 0);
    }

    #[test]
    fn stream_seed_constants_are_pinned() {
        // Committed results replay from these exact constants; changing
        // either rewrites every recorded arrival stream.
        assert_eq!(LOAD_STREAM_STRIDE, 7919);
        assert_eq!(FAULT_STREAM_STRIDE, 104_729);
        assert_eq!(PATTERN_SALT, 0xABCD);
        assert_eq!(
            derive_stream_seed(0x5EED, LOAD_STREAM_STRIDE, 3),
            0x5EED + 3 * 7919
        );
        assert_eq!(
            derive_stream_seed(0x5EED, FAULT_STREAM_STRIDE, 5),
            0x5EED + 5 * 104_729
        );
        // Wrapping, not panicking, at the top of the seed space.
        let _ = derive_stream_seed(u64::MAX, FAULT_STREAM_STRIDE, usize::MAX);
        let seeds = StreamSeeds::load(0xF163);
        assert_eq!(seeds.pattern_seed, 0xF163 ^ 0xABCD);
        assert_eq!(seeds.stream_seed(2), 0xF163 + 2 * 7919);
        assert_eq!(
            StreamSeeds::fault(0xF163).stream_seed(2),
            0xF163 + 2 * 104_729
        );
    }

    #[test]
    fn on_off_mean_rate_matches_bernoulli_mean() {
        // The bursty source must offer the same long-run rate as a
        // Bernoulli source at the same load — bursts concentrate, not
        // inflate, the traffic.
        let cycles = 400_000;
        let mut bursty = OnOffGenerator::new(0.4, 25, 40, 60, 11);
        let got = (0..cycles).filter(|_| bursty.arrival()).count() as f64;
        let expected = 0.4 / 25.0 * cycles as f64;
        assert!(
            (got - expected).abs() / expected < 0.15,
            "bursty mean rate {got} vs expected {expected}"
        );
    }

    #[test]
    fn on_off_concentrates_arrivals() {
        // Windowed arrival counts must be burstier than Bernoulli's:
        // compare the variance-to-mean ratio (index of dispersion) of
        // 100-cycle window counts.
        fn dispersion(counts: &[usize]) -> f64 {
            let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
            let var = counts
                .iter()
                .map(|&c| (c as f64 - mean).powi(2))
                .sum::<f64>()
                / counts.len() as f64;
            var / mean
        }
        let windows = 2_000;
        let mut bern = LoadGenerator::new(0.5, 25, 3);
        let mut bursty = OnOffGenerator::new(0.5, 25, 50, 150, 3);
        let b: Vec<usize> = (0..windows)
            .map(|_| (0..100).filter(|_| bern.arrival()).count())
            .collect();
        let o: Vec<usize> = (0..windows)
            .map(|_| (0..100).filter(|_| bursty.arrival()).count())
            .collect();
        assert!(
            dispersion(&o) > 2.0 * dispersion(&b),
            "on/off dispersion {} must exceed bernoulli {}",
            dispersion(&o),
            dispersion(&b)
        );
    }

    #[test]
    fn burstiness_is_peak_to_mean() {
        assert_eq!(ArrivalProcess::Bernoulli.burstiness(), 1.0);
        assert_eq!(ArrivalProcess::Trace(Vec::new()).burstiness(), 1.0);
        let p = ArrivalProcess::OnOff {
            burst_mean: 50,
            idle_mean: 150,
        };
        assert_eq!(p.burstiness(), 4.0);
    }

    #[test]
    fn driver_poll_matches_the_historical_inline_loop() {
        // The open-loop driver must reproduce the exact pre-refactor
        // loop: per-endpoint LoadGenerator at seed + e * 7919, shared
        // pattern stream at seed ^ 0xABCD, endpoint-order draws.
        let (seed, n, stream_words, load) = (0x5EED_u64, 8_usize, 25_usize, 0.6_f64);
        let pattern = TrafficPattern::Uniform;
        let recipe = StreamRecipe {
            arrival: &ArrivalProcess::Bernoulli,
            rates: &RateMap::Uniform,
            pattern: &pattern,
            load,
            stream_words,
            payload_words: 4,
            endpoints: n,
            seeds: StreamSeeds::load(seed),
        };
        let mut driver = recipe.driver();
        let mut got = Vec::new();
        for cycle in 0..500u64 {
            driver.poll(cycle, |a| got.push((cycle, a.src, a.dest)));
        }

        let mut pattern_rng = RandomSource::new(seed ^ 0xABCD);
        let mut gens: Vec<LoadGenerator> = (0..n)
            .map(|e| LoadGenerator::new(load, stream_words, seed.wrapping_add(e as u64 * 7919)))
            .collect();
        let mut expect = Vec::new();
        for cycle in 0..500u64 {
            for (e, g) in gens.iter_mut().enumerate() {
                if g.arrival() {
                    let dest = pattern.destination(e, n, &mut pattern_rng);
                    expect.push((cycle, e, dest));
                }
            }
        }
        assert!(!expect.is_empty());
        assert_eq!(got, expect, "driver diverged from the historical loop");
    }

    #[test]
    fn schedule_matches_driver_poll_for_every_process() {
        // The estimator's precomputed schedule and the engines' driver
        // must be two views of one stream.
        let trace = ArrivalProcess::Trace(vec![
            TraceEntry {
                at: 3,
                src: 1,
                dest: 2,
                payload_words: 4,
            },
            TraceEntry {
                at: 3,
                src: 0,
                dest: 5,
                payload_words: 2,
            },
            TraceEntry {
                at: 700,
                src: 2,
                dest: 0,
                payload_words: 1,
            },
        ]);
        let rates = RateMap::PerEndpoint(vec![1.5, 0.5, 1.0, 1.0, 2.0, 0.0, 1.0, 1.0]);
        for arrival in [
            ArrivalProcess::Bernoulli,
            ArrivalProcess::OnOff {
                burst_mean: 20,
                idle_mean: 30,
            },
            trace,
        ] {
            let pattern = TrafficPattern::Uniform;
            let recipe = StreamRecipe {
                arrival: &arrival,
                rates: &rates,
                pattern: &pattern,
                load: 0.5,
                stream_words: 25,
                payload_words: 4,
                endpoints: 8,
                seeds: StreamSeeds::load(0xAB),
            };
            let total = 600u64;
            let mut driver = recipe.driver();
            let mut polled = Vec::new();
            for cycle in 0..total {
                driver.poll(cycle, |a| polled.push((cycle, a.src, a.payload_words)));
            }
            polled.sort_unstable();
            let sched: Vec<(u64, usize, usize)> = recipe
                .schedule(total)
                .into_iter()
                .map(|a| (a.at, a.src, a.payload_words))
                .collect();
            assert_eq!(sched, polled, "schedule/driver split for {arrival:?}");
        }
    }

    #[test]
    fn rate_map_scales_per_endpoint_rates() {
        let rates = RateMap::PerEndpoint(vec![2.0, 0.0]);
        let pattern = TrafficPattern::Uniform;
        let recipe = StreamRecipe {
            arrival: &ArrivalProcess::Bernoulli,
            rates: &rates,
            pattern: &pattern,
            load: 0.4,
            stream_words: 25,
            payload_words: 4,
            endpoints: 2,
            seeds: StreamSeeds::load(0x11),
        };
        let counts = recipe
            .schedule(20_000)
            .iter()
            .fold([0usize; 2], |mut c, a| {
                c[a.src] += 1;
                c
            });
        assert!(counts[0] > 400, "hot endpoint starved: {counts:?}");
        assert_eq!(counts[1], 0, "zero-rate endpoint must stay silent");
    }

    #[test]
    fn validation_rejects_malformed_workload_parts() {
        assert!(ArrivalProcess::Bernoulli.validate(8).is_ok());
        assert_eq!(
            ArrivalProcess::OnOff {
                burst_mean: 0,
                idle_mean: 5
            }
            .validate(8),
            Err(WorkloadError::OnOffDwell {
                burst_mean: 0,
                idle_mean: 5
            })
        );
        let oob = ArrivalProcess::Trace(vec![TraceEntry {
            at: 0,
            src: 9,
            dest: 1,
            payload_words: 1,
        }]);
        assert!(matches!(
            oob.validate(8),
            Err(WorkloadError::TraceEndpoint { index: 0, .. })
        ));
        let selfie = ArrivalProcess::Trace(vec![TraceEntry {
            at: 0,
            src: 3,
            dest: 3,
            payload_words: 1,
        }]);
        assert_eq!(
            selfie.validate(8),
            Err(WorkloadError::TraceSelfTarget { index: 0, src: 3 })
        );
        assert!(RateMap::Uniform.validate(8).is_ok());
        assert_eq!(
            RateMap::PerEndpoint(vec![1.0; 3]).validate(8),
            Err(WorkloadError::RateCount {
                expected: 8,
                got: 3
            })
        );
        assert!(matches!(
            RateMap::PerEndpoint(vec![1.0, f64::NAN]).validate(2),
            Err(WorkloadError::RateValue { endpoint: 1, .. })
        ));
    }

    #[test]
    fn driver_save_restore_resumes_every_process_exactly() {
        let trace = ArrivalProcess::Trace(vec![
            TraceEntry {
                at: 100,
                src: 0,
                dest: 1,
                payload_words: 2,
            },
            TraceEntry {
                at: 400,
                src: 2,
                dest: 3,
                payload_words: 2,
            },
        ]);
        for arrival in [
            ArrivalProcess::Bernoulli,
            ArrivalProcess::OnOff {
                burst_mean: 20,
                idle_mean: 30,
            },
            trace,
        ] {
            let pattern = TrafficPattern::Uniform;
            let recipe = StreamRecipe {
                arrival: &arrival,
                rates: &RateMap::Uniform,
                pattern: &pattern,
                load: 0.6,
                stream_words: 25,
                payload_words: 4,
                endpoints: 8,
                seeds: StreamSeeds::load(0x1CE),
            };
            // One driver runs straight through; a twin is rebuilt from
            // the recipe mid-stream and restored from a checkpoint.
            let mut straight = recipe.driver();
            let mut live = recipe.driver();
            for cycle in 0..300u64 {
                straight.poll(cycle, |_| {});
                live.poll(cycle, |_| {});
            }
            let mut w = StateWriter::new();
            live.save_state(&mut w);
            let words = w.into_words();
            let mut resumed = recipe.driver();
            let mut r = StateReader::new(&words);
            resumed.restore_state(&mut r).expect("restore");
            r.finish().expect("no trailing state");
            for cycle in 300..600u64 {
                let mut a = Vec::new();
                let mut b = Vec::new();
                straight.poll(cycle, |x| a.push(x));
                resumed.poll(cycle, |x| b.push(x));
                assert_eq!(a, b, "cycle {cycle} under {arrival:?}");
            }
        }
    }

    #[test]
    fn trace_driver_replays_in_recorded_order() {
        let entries = vec![
            TraceEntry {
                at: 5,
                src: 1,
                dest: 0,
                payload_words: 3,
            },
            TraceEntry {
                at: 5,
                src: 0,
                dest: 1,
                payload_words: 2,
            },
            TraceEntry {
                at: 1,
                src: 2,
                dest: 3,
                payload_words: 1,
            },
        ];
        let mut driver = WorkloadDriver::replay(&entries);
        let mut got = Vec::new();
        for cycle in 0..10u64 {
            driver.poll(cycle, |a| got.push((cycle, a.src, a.dest, a.payload_words)));
        }
        // Sorted by cycle; the two cycle-5 entries keep recorded order.
        assert_eq!(got, vec![(1, 2, 3, 1), (5, 1, 0, 3), (5, 0, 1, 2)]);
    }
}
