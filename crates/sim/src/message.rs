//! Messages and delivery records.

use metro_core::StatusWord;
use metro_telemetry::{StateError, StateReader, StateWriter};

fn bad(detail: String) -> StateError {
    StateError::BadValue {
        section: String::from("message"),
        detail,
    }
}

pub(crate) fn read_u16(r: &mut StateReader<'_>) -> Result<u16, StateError> {
    let v = r.u64()?;
    u16::try_from(v).map_err(|_| bad(format!("{v} overflows a 16-bit field")))
}

pub(crate) fn save_u16s(w: &mut StateWriter, vals: &[u16]) {
    w.usize(vals.len());
    for &v in vals {
        w.u64(u64::from(v));
    }
}

pub(crate) fn read_u16s(r: &mut StateReader<'_>) -> Result<Vec<u16>, StateError> {
    let n = r.usize()?;
    if n > r.remaining() {
        return Err(bad(format!("{n}-entry list exceeds the stream")));
    }
    (0..n).map(|_| read_u16(r)).collect()
}

/// The acknowledgment code a destination returns for an intact message.
pub const ACK_OK: u16 = 0x5A;
/// The acknowledgment code for a message whose end-to-end checksum
/// failed (the source must retry).
pub const ACK_CORRUPT: u16 = 0x66;

/// Why a transmission attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// A router reported the connection blocked (detailed reclamation),
    /// at the given 0-indexed stage.
    Blocked {
        /// The stage at which blocking occurred.
        stage: usize,
    },
    /// Fast path reclamation: a BCB reached the source.
    FastReclaimed,
    /// The destination NACKed (end-to-end checksum mismatch).
    Corrupt,
    /// The reply stream ended without an acknowledgment.
    NoAck,
    /// The source watchdog expired with no reply at all.
    Timeout,
}

impl FailureKind {
    /// Appends the failure kind to a checkpoint stream.
    pub(crate) fn save_state(self, w: &mut StateWriter) {
        match self {
            FailureKind::Blocked { stage } => {
                w.u64(0);
                w.usize(stage);
            }
            FailureKind::FastReclaimed => w.u64(1),
            FailureKind::Corrupt => w.u64(2),
            FailureKind::NoAck => w.u64(3),
            FailureKind::Timeout => w.u64(4),
        }
    }

    /// Reads a failure kind back from a checkpoint stream.
    pub(crate) fn restore_state(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(match r.u64()? {
            0 => FailureKind::Blocked { stage: r.usize()? },
            1 => FailureKind::FastReclaimed,
            2 => FailureKind::Corrupt,
            3 => FailureKind::NoAck,
            4 => FailureKind::Timeout,
            k => return Err(bad(format!("{k} is not a failure kind"))),
        })
    }
}

/// How a message transaction ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum DeliveryStatus {
    /// The acknowledgment arrived: delivered exactly once.
    #[default]
    Delivered,
    /// The NIC exhausted its configured attempt budget
    /// (`EndpointConfig::max_retries`, 0 = never give up) and
    /// surrendered the message after `attempts` tries.
    Undeliverable {
        /// Transmission attempts made before giving up.
        attempts: usize,
    },
}

impl DeliveryStatus {
    /// Whether the message was delivered (vs. given up on).
    #[must_use]
    pub fn is_delivered(self) -> bool {
        matches!(self, DeliveryStatus::Delivered)
    }
}

impl DeliveryStatus {
    pub(crate) fn save_state(self, w: &mut StateWriter) {
        match self {
            DeliveryStatus::Delivered => w.u64(0),
            DeliveryStatus::Undeliverable { attempts } => {
                w.u64(1);
                w.usize(attempts);
            }
        }
    }

    pub(crate) fn restore_state(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        Ok(match r.u64()? {
            0 => DeliveryStatus::Delivered,
            1 => DeliveryStatus::Undeliverable {
                attempts: r.usize()?,
            },
            k => return Err(bad(format!("{k} is not a delivery status"))),
        })
    }
}

/// The result of one complete message transaction (possibly after
/// several attempts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageOutcome {
    /// Source endpoint.
    pub src: usize,
    /// Destination endpoint.
    pub dest: usize,
    /// Cycle at which the message was requested (queued at the NIC).
    pub requested_at: u64,
    /// Cycle at which the first word of the first attempt entered the
    /// network.
    pub first_injection_at: u64,
    /// Cycle at which the acknowledgment was received.
    pub completed_at: u64,
    /// Number of failed attempts before success.
    pub retries: usize,
    /// Failures encountered along the way, in order.
    pub failures: Vec<FailureKind>,
    /// Number of payload data words the source transmitted (summed over
    /// all segments of a conversation). Unlike `payload_delivered`,
    /// this is always recorded, so throughput accounting does not
    /// depend on destination-side capture.
    pub payload_words: usize,
    /// The payload as the destination delivered it (for loopback-style
    /// verification in tests; empty when not captured).
    pub payload_delivered: Vec<u16>,
    /// Reply payload received by the source (read-reply workloads).
    pub reply_received: Vec<u16>,
    /// Per-failed-attempt diagnostics, captured only when
    /// `EndpointConfig::capture_failure_records` is set: the source
    /// output port used and the delivery record (statuses + transit
    /// checksums) the attempt collected — the raw material for
    /// checksum-based fault localization (`metro-scan::diagnosis`).
    pub failure_records: Vec<(usize, DeliveryRecord)>,
    /// How the transaction ended: delivered, or given up as
    /// undeliverable after exhausting the attempt budget.
    pub status: DeliveryStatus,
}

impl MessageOutcome {
    /// Total latency: request to acknowledgment, in cycles — the metric
    /// of the paper's Figure 3 ("from message injection to
    /// acknowledgment receipt", including any stall awaiting the NIC).
    #[must_use]
    pub fn total_latency(&self) -> u64 {
        self.completed_at - self.requested_at
    }

    /// Network latency: first word injected to acknowledgment, in
    /// cycles (excludes NIC queueing).
    #[must_use]
    pub fn network_latency(&self) -> u64 {
        self.completed_at - self.first_injection_at
    }

    /// Appends the full outcome to a checkpoint stream.
    pub(crate) fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.src);
        w.usize(self.dest);
        w.u64(self.requested_at);
        w.u64(self.first_injection_at);
        w.u64(self.completed_at);
        w.usize(self.retries);
        w.usize(self.failures.len());
        for f in &self.failures {
            f.save_state(w);
        }
        w.usize(self.payload_words);
        save_u16s(w, &self.payload_delivered);
        save_u16s(w, &self.reply_received);
        w.usize(self.failure_records.len());
        for (port, record) in &self.failure_records {
            w.usize(*port);
            record.save_state(w);
        }
        self.status.save_state(w);
    }

    /// Reads an outcome back from a checkpoint stream.
    pub(crate) fn restore_state(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        let src = r.usize()?;
        let dest = r.usize()?;
        let requested_at = r.u64()?;
        let first_injection_at = r.u64()?;
        let completed_at = r.u64()?;
        let retries = r.usize()?;
        let n = r.usize()?;
        if n > r.remaining() {
            return Err(bad(format!("{n}-entry failure list exceeds the stream")));
        }
        let failures = (0..n)
            .map(|_| FailureKind::restore_state(r))
            .collect::<Result<_, _>>()?;
        let payload_words = r.usize()?;
        let payload_delivered = read_u16s(r)?;
        let reply_received = read_u16s(r)?;
        let n = r.usize()?;
        if n > r.remaining() {
            return Err(bad(format!("{n}-entry record list exceeds the stream")));
        }
        let failure_records = (0..n)
            .map(|_| Ok((r.usize()?, DeliveryRecord::restore_state(r)?)))
            .collect::<Result<_, StateError>>()?;
        Ok(Self {
            src,
            dest,
            requested_at,
            first_injection_at,
            completed_at,
            retries,
            failures,
            payload_words,
            payload_delivered,
            reply_received,
            failure_records,
            status: DeliveryStatus::restore_state(r)?,
        })
    }
}

/// A record of one *attempt*'s reply as collected by the source: the
/// per-router status and transit checksum words, in path order
/// (nearest router first).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Status words, nearest router first.
    pub statuses: Vec<StatusWord>,
    /// Transit checksums, paired with `statuses`.
    pub checksums: Vec<u16>,
    /// Acknowledgment code received, if any.
    pub ack: Option<u16>,
    /// Reply data words (for read replies).
    pub reply_words: Vec<u16>,
}

impl DeliveryRecord {
    /// Whether any router reported the connection blocked, and at which
    /// position along the path.
    #[must_use]
    pub fn blocked_stage(&self) -> Option<usize> {
        self.statuses.iter().position(StatusWord::is_blocked)
    }

    /// Clears the record for the next attempt.
    pub fn reset(&mut self) {
        self.statuses.clear();
        self.checksums.clear();
        self.ack = None;
        self.reply_words.clear();
    }

    /// Appends the record to a checkpoint stream.
    pub(crate) fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.statuses.len());
        for s in &self.statuses {
            w.u64(u64::from(s.encode()));
        }
        save_u16s(w, &self.checksums);
        w.opt_u64(self.ack.map(u64::from));
        save_u16s(w, &self.reply_words);
    }

    /// Reads a record back from a checkpoint stream.
    pub(crate) fn restore_state(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        let n = r.usize()?;
        if n > r.remaining() {
            return Err(bad(format!("{n}-entry status list exceeds the stream")));
        }
        let statuses = (0..n)
            .map(|_| Ok(StatusWord::decode(read_u16(r)?)))
            .collect::<Result<_, StateError>>()?;
        let checksums = read_u16s(r)?;
        let ack = match r.opt_u64()? {
            None => None,
            Some(v) => {
                Some(u16::try_from(v).map_err(|_| bad(format!("ack {v} overflows 16 bits")))?)
            }
        };
        Ok(Self {
            statuses,
            checksums,
            ack,
            reply_words: read_u16s(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metro_core::StatusWord;

    #[test]
    fn latencies_subtract_correctly() {
        let o = MessageOutcome {
            src: 0,
            dest: 1,
            requested_at: 10,
            first_injection_at: 14,
            completed_at: 50,
            retries: 1,
            failures: vec![FailureKind::FastReclaimed],
            payload_words: 0,
            payload_delivered: vec![],
            reply_received: vec![],
            failure_records: vec![],
            status: DeliveryStatus::Delivered,
        };
        assert_eq!(o.total_latency(), 40);
        assert_eq!(o.network_latency(), 36);
    }

    #[test]
    fn undeliverable_status_carries_the_attempt_count() {
        let s = DeliveryStatus::Undeliverable { attempts: 4 };
        assert!(!s.is_delivered());
        assert!(DeliveryStatus::default().is_delivered());
        match s {
            DeliveryStatus::Undeliverable { attempts } => assert_eq!(attempts, 4),
            DeliveryStatus::Delivered => unreachable!(),
        }
    }

    #[test]
    fn blocked_stage_finds_first_blocked_status() {
        let mut r = DeliveryRecord::default();
        r.statuses.push(StatusWord::connected(1));
        r.statuses.push(StatusWord::blocked());
        assert_eq!(r.blocked_stage(), Some(1));
        r.reset();
        assert_eq!(r.blocked_stage(), None);
        assert!(r.statuses.is_empty());
    }
}
